//! Cross-crate integration tests through the public `rocescale` facade:
//! packets through transport through NICs through switches over real
//! topologies, with the monitoring subsystem as the observer.

use rocescale::core::{
    ClusterBuilder, DeploymentStage, FabricProfile, PfcMode, ServerId, ServerKind, TransportProfile,
};
use rocescale::monitor::pingmesh::{ProbeResult, Scope};
use rocescale::monitor::{Percentiles, Pingmesh, ProgressTracker};
use rocescale::nic::QpApp;
use rocescale::sim::SimTime;
use rocescale::switch::DropReason;
use rocescale::tcp::TcpApp;
use rocescale::topology::{ClosSpec, Tier, Topology};
use rocescale::transport::Verb;

/// The full stack moves a message across three switch tiers and the
/// monitoring counters agree with the application view.
#[test]
fn cross_pod_transfer_with_agreeing_counters() {
    let mut c = ClusterBuilder::new(ClosSpec::uniform_40g(2, 2, 2, 2, 2))
        .seed(11)
        .build();
    let a = c
        .all_servers()
        .into_iter()
        .find(|s| c.server_pod(*s) == 0)
        .unwrap();
    let b = c
        .all_servers()
        .into_iter()
        .find(|s| c.server_pod(*s) == 1)
        .unwrap();
    let (qa, qb) = c.connect_qp(a, b, 4444, QpApp::None, QpApp::None);
    c.rdma_mut(a)
        .post(qa, Verb::Send { len: 3 << 20 }, SimTime::ZERO, false);
    c.run_for_millis(3);
    // Application view.
    assert_eq!(c.rdma(b).qp_endpoint(qb).goodput_bytes(), 3 << 20);
    // Network view: payload crossed every tier, nothing lossless dropped.
    for tier in [Tier::Tor, Tier::Leaf, Tier::Spine] {
        let tx: u64 = c
            .switches_of_tier(tier)
            .into_iter()
            .map(|i| c.switch(i).total_data_tx_pkts())
            .sum();
        assert!(tx >= 3072, "{tier:?} forwarded {tx} packets");
    }
    assert_eq!(c.lossless_drops(), 0);
}

/// Deployment staging: with PFC at ToR level only, cross-rack RDMA rides
/// lossy classes in the leaf layer and can drop under incast; at Spine
/// stage the same workload is loss-free. (The reason the paper staged its
/// rollout bottom-up, §6.1.)
#[test]
fn staged_deployment_controls_where_loss_can_happen() {
    let run_stage = |stage: DeploymentStage| {
        let mut c = ClusterBuilder::two_tier(2, 4)
            .fabric(FabricProfile::paper_default().stage(stage))
            .transport(TransportProfile::paper_default().dcqcn(false))
            .seed(13)
            .build();
        let rack0 = c.servers_under(0, 0);
        let rack1 = c.servers_under(0, 1);
        // 4:1 cross-rack incast into rack1[0] — transits the leaves.
        for (i, s) in rack0.iter().enumerate() {
            c.connect_qp(
                *s,
                rack1[0],
                (4500 + i) as u16,
                QpApp::Saturate {
                    msg_len: 1 << 20,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
        c.run_for_millis(8);
        let lossy: u64 = c.total_drops_of(DropReason::LossyOverflow);
        (lossy, c.lossless_drops())
    };
    let (lossy_tor_only, ll_tor_only) = run_stage(DeploymentStage::TorOnly);
    assert!(ll_tor_only == 0);
    assert!(
        lossy_tor_only > 0,
        "leaves without PFC must shed the incast: {lossy_tor_only}"
    );
    let (lossy_full, ll_full) = run_stage(DeploymentStage::Spine);
    assert_eq!(lossy_full + ll_full, 0, "full PFC: no loss anywhere");
}

/// VLAN-based and DSCP-based PFC protect identically at the RDMA level —
/// the whole point of §3 is that the *data packet* format changes while
/// the pause machinery is untouched.
#[test]
fn pfc_modes_equivalent_for_rdma() {
    let run_mode = |mode: PfcMode| {
        let mut c = ClusterBuilder::single_tor(3)
            .fabric(FabricProfile::paper_default().pfc_mode(mode))
            .transport(TransportProfile::paper_default().dcqcn(false))
            .seed(3)
            .build();
        for i in 1..3usize {
            c.connect_qp(
                ServerId(i),
                ServerId(0),
                (4600 + i) as u16,
                QpApp::Saturate {
                    msg_len: 512 * 1024,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
        c.run_for_millis(5);
        (
            c.rdma(ServerId(0)).total_goodput_bytes(),
            c.lossless_drops(),
            c.total_switch_pause_tx() > 0,
        )
    };
    let (g_dscp, d_dscp, p_dscp) = run_mode(PfcMode::Dscp);
    let (g_vlan, d_vlan, p_vlan) = run_mode(PfcMode::Vlan);
    assert_eq!(d_dscp + d_vlan, 0);
    assert!(p_dscp && p_vlan);
    // VLAN tags add 4 bytes per frame; goodput within 1%.
    let ratio = g_dscp as f64 / g_vlan as f64;
    assert!((0.98..1.02).contains(&ratio), "goodput ratio {ratio}");
}

/// Pingmesh over a mixed fleet: RDMA probes measure healthy RTTs and the
/// aggregation marks the fabric healthy.
#[test]
fn pingmesh_health_verdict() {
    let mut c = ClusterBuilder::two_tier(2, 3).seed(21).build();
    let rack0 = c.servers_under(0, 0);
    let rack1 = c.servers_under(0, 1);
    for i in 0..3usize {
        c.connect_qp(
            rack0[i],
            rack1[i],
            (4700 + i) as u16,
            QpApp::Pinger {
                payload: 512,
                interval: SimTime::from_micros(100),
                start_at: SimTime::from_micros(10 + i as u64),
            },
            QpApp::Echo { reply_len: 512 },
        );
    }
    c.run_for_millis(5);
    let mut pm = Pingmesh::new();
    for rtt in c.take_rdma_rtts() {
        pm.record(Scope::IntraPodset, ProbeResult::Rtt(rtt));
    }
    assert!(pm.total() > 100);
    assert!(
        pm.healthy(Scope::IntraPodset, SimTime::from_micros(100).as_ps()),
        "an idle podset must be healthy at the 100 µs bar"
    );
}

/// TCP and RDMA share the fabric without the lossless classes ever
/// dropping, and both make progress.
#[test]
fn mixed_fleet_coexistence() {
    let mut c = ClusterBuilder::two_tier(2, 4)
        .server_kind(|i| {
            if i % 2 == 0 {
                ServerKind::Rdma
            } else {
                ServerKind::Tcp
            }
        })
        .seed(33)
        .build();
    let rdma = c.servers_of_kind(ServerKind::Rdma);
    let tcp = c.servers_of_kind(ServerKind::Tcp);
    c.connect_qp(
        rdma[0],
        rdma[2],
        4800,
        QpApp::Saturate {
            msg_len: 1 << 20,
            inflight: 2,
        },
        QpApp::None,
    );
    let (ct, _) = c.connect_tcp(
        tcp[0],
        tcp[2],
        TcpApp::Saturate {
            msg_len: 256 * 1024,
        },
        TcpApp::None,
    );
    c.run_for_millis(10);
    // Coexistence, not performance: both stacks make progress (DCQCN
    // deliberately yields while converging against the TCP share) and
    // the lossless classes never drop.
    assert!(c.rdma(rdma[2]).total_goodput_bytes() > 4 << 20);
    assert!(c.tcp(tcp[0]).sender_stats(ct).bytes_acked > 4 << 20);
    assert_eq!(c.lossless_drops(), 0);
}

/// Determinism across the whole stack: same seed, same world.
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut c = ClusterBuilder::two_tier(2, 3).seed(77).build();
        let rack0 = c.servers_under(0, 0);
        let rack1 = c.servers_under(0, 1);
        for i in 0..3usize {
            c.connect_qp(
                rack0[i],
                rack1[(i + 1) % 3],
                (4900 + i) as u16,
                QpApp::Saturate {
                    msg_len: 300 * 1024,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
        c.run_for_millis(6);
        (
            c.total_rdma_goodput(),
            c.total_switch_pause_tx(),
            c.world.events_processed(),
        )
    };
    assert_eq!(run(), run());
}

/// The deadlock detector sees a healthy fabric as healthy (no false
/// positives from an active cluster).
#[test]
fn progress_tracker_no_false_positives() {
    let mut c = ClusterBuilder::two_tier(2, 3).seed(41).build();
    let rack0 = c.servers_under(0, 0);
    let rack1 = c.servers_under(0, 1);
    for i in 0..3usize {
        c.connect_qp(
            rack0[i],
            rack1[i],
            (5100 + i) as u16,
            QpApp::Saturate {
                msg_len: 1 << 20,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    let mut tracker = ProgressTracker::new();
    for ms in 1..=10u64 {
        c.run_until(SimTime::from_millis(ms));
        tracker.observe(&c.switch_snapshots());
    }
    assert!(tracker.stuck(3).is_empty());
}

/// Latency percentiles through the whole stack are physically sensible:
/// an unloaded same-rack RTT beats a cross-pod RTT, and both sit in the
/// microsecond band the hardware implies.
#[test]
fn rtt_scales_with_distance() {
    let mut c = ClusterBuilder::new(ClosSpec::uniform_40g(2, 2, 2, 2, 3))
        .seed(55)
        .build();
    let rack0 = c.servers_under(0, 0);
    let pod1 = c.servers_under(1, 0);
    // Same-rack probe from rack0[0]; cross-pod probe from rack0[1] —
    // distinct prober hosts so the per-host sample logs stay separable.
    c.connect_qp(
        rack0[0],
        rack0[2],
        5200,
        QpApp::Pinger {
            payload: 512,
            interval: SimTime::from_micros(50),
            start_at: SimTime::from_micros(5),
        },
        QpApp::Echo { reply_len: 512 },
    );
    c.connect_qp(
        rack0[1],
        pod1[0],
        5201,
        QpApp::Pinger {
            payload: 512,
            interval: SimTime::from_micros(50),
            start_at: SimTime::from_micros(5),
        },
        QpApp::Echo { reply_len: 512 },
    );
    c.run_for_millis(3);
    let tor_rtts = std::mem::take(&mut c.rdma_mut(rack0[0]).stats.rtt_samples_ps);
    let dc_rtts = std::mem::take(&mut c.rdma_mut(rack0[1]).stats.rtt_samples_ps);
    let mut tor = Percentiles::from_samples(&tor_rtts);
    let mut dc = Percentiles::from_samples(&dc_rtts);
    let (t50, d50) = (tor.p50().unwrap(), dc.p50().unwrap());
    assert!(t50 < d50, "same-rack {t50} !< cross-pod {d50}");
    // Cross-pod crosses 4 extra hops incl. two 300 m spine cables
    // (≈ 6 µs of extra propagation + serialization + pipeline).
    assert!(d50 - t50 > 5_000_000, "delta {} ps", d50 - t50);
    assert!(d50 < 40_000_000, "cross-pod p50 {} ps", d50);
}

/// Topology invariants hold for the exact paper-scale fabric.
#[test]
fn paper_scale_topology_materializes() {
    let spec = ClosSpec::uniform_40g(2, 24, 4, 64, 24);
    let topo = Topology::clos(&spec);
    assert_eq!(topo.of_tier(Tier::Server).len(), 1152);
    // 1152 server links + 2×24×4 ToR-leaf + 2×64 leaf-spine.
    assert_eq!(topo.links.len(), 1152 + 192 + 128);
}

/// The full Pingmesh service: install on every RDMA server, run, and get
/// a per-scope health report (§5.3's operational loop end to end).
#[test]
fn pingmesh_service_end_to_end() {
    let mut c = ClusterBuilder::new(ClosSpec::uniform_40g(2, 2, 2, 2, 3))
        .seed(91)
        .build();
    let pairs = c.install_pingmesh(2, SimTime::from_micros(150));
    assert!(pairs.len() >= c.server_count(), "coverage: {}", pairs.len());
    c.run_for_millis(4);
    let mut report = c.pingmesh_report(&pairs);
    assert!(report.total() > 200, "probes: {}", report.total());
    // At least one scope is populated and healthy at a loose 500 µs bar.
    let healthy_any = [
        rocescale::monitor::pingmesh::Scope::IntraTor,
        rocescale::monitor::pingmesh::Scope::IntraPodset,
        rocescale::monitor::pingmesh::Scope::IntraDc,
    ]
    .into_iter()
    .any(|s| report.healthy(s, SimTime::from_micros(500).as_ps()));
    assert!(
        healthy_any,
        "an idle fabric must be healthy\n{}",
        report.render()
    );
}

/// The §6.2 switch_tweak hook: a "new switch type" can be misconfigured
/// per-name, and only its racks feel it.
#[test]
fn per_switch_type_misconfiguration() {
    let mut c = ClusterBuilder::two_tier(2, 4)
        .transport(TransportProfile::paper_default().dcqcn(false))
        .switch_tweak(|name, cfg| {
            if name == "pod0-tor1" {
                cfg.buffer.alpha = Some(1.0 / 256.0); // absurdly jumpy
            }
        })
        .seed(15)
        .build();
    // Identical 3:1 incasts into one server of each rack.
    for (tor, base) in [(0u32, 0usize), (1, 0)] {
        let rack = c.servers_under(0, tor);
        for i in 1..4usize {
            c.connect_qp(
                rack[i],
                rack[base],
                (18_000 + tor as usize * 16 + i) as u16,
                QpApp::Saturate {
                    msg_len: 512 * 1024,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
    }
    c.run_for_millis(6);
    let tors = c.switches_of_tier(Tier::Tor);
    let p0: u64 = c.switch(tors[0]).stats.total_pause_tx();
    let p1: u64 = c.switch(tors[1]).stats.total_pause_tx();
    assert!(
        p1 > 2 * p0.max(1),
        "the misconfigured ToR must pause far more: {p0} vs {p1}"
    );
    assert_eq!(c.lossless_drops(), 0);
}
