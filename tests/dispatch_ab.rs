//! Interleaved A/B calibration harness for the dispatch modes.
//!
//! The sched bench times its arms minutes apart, so on a noisy machine
//! slow load drift swamps small deltas (EXPERIMENTS.md, bench-arm
//! regeneration note). This harness measures `DispatchMode::Batched`
//! against `DispatchMode::SingleStep` in *interleaved pairs* — each
//! pair runs both modes back to back (order alternating), and the
//! statistic is the median of per-pair ratios, which cancels any drift
//! slower than one pair (~5 ms). Ignored by default: it is a
//! measurement tool, not a pass/fail gate — run it when re-baselining:
//!
//! ```text
//! cargo test --release --test dispatch_ab -- --ignored --nocapture
//! ```

use std::time::Instant;

use rocescale_core::{ClusterBuilder, ServerId};
use rocescale_nic::QpApp;
use rocescale_sim::{DispatchMode, EngineKind, SimTime};
use rocescale_topology::ClosSpec;

/// One timed podset incast (the sched bench's `incast_podset_*`
/// scenarios); returns (run_until nanos, events) — build time excluded.
fn run_once(spec: ClosSpec, mode: DispatchMode) -> (u128, u64) {
    let mut cl = ClusterBuilder::new(spec)
        .seed(11)
        .engine(EngineKind::Wheel)
        .build();
    for i in 1..=7usize {
        cl.connect_qp(
            ServerId(i),
            ServerId(0),
            5000 + i as u16,
            QpApp::Saturate {
                msg_len: 64 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    cl.world.set_dispatch_mode(mode);
    let t = Instant::now();
    cl.run_until(SimTime::from_micros(200));
    (t.elapsed().as_nanos(), cl.world.events_processed())
}

fn ab_fabric(label: &str, spec: ClosSpec) {
    const PAIRS: usize = 151;
    // Warm up caches, branch predictors, and the allocator.
    let (_, ev_b) = run_once(spec, DispatchMode::Batched);
    let (_, ev_s) = run_once(spec, DispatchMode::SingleStep);
    assert_eq!(ev_b, ev_s, "modes must dispatch the same event stream");
    let mut ratios: Vec<f64> = Vec::with_capacity(PAIRS);
    let (mut best_b, mut best_s) = (u128::MAX, u128::MAX);
    for i in 0..PAIRS {
        // Alternate order within the pair so neither mode always runs
        // on the warmer cache.
        let (b, s) = if i % 2 == 0 {
            let b = run_once(spec, DispatchMode::Batched).0;
            let s = run_once(spec, DispatchMode::SingleStep).0;
            (b, s)
        } else {
            let s = run_once(spec, DispatchMode::SingleStep).0;
            let b = run_once(spec, DispatchMode::Batched).0;
            (b, s)
        };
        best_b = best_b.min(b);
        best_s = best_s.min(s);
        ratios.push(s as f64 / b as f64);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = ratios[PAIRS / 2];
    let (p25, p75) = (ratios[PAIRS / 4], ratios[3 * PAIRS / 4]);
    println!("[{label}] pairs: {PAIRS}, events/run: {ev_b}");
    println!("[{label}] best-of batched:     {best_b} ns");
    println!("[{label}] best-of single_step: {best_s} ns");
    println!(
        "[{label}] single_step/batched ratio: median {median:.4} (p25 {p25:.4}, p75 {p75:.4})"
    );
    println!(
        "[{label}] batched is {:+.1}% vs single-step (median-of-pairs)",
        (median - 1.0) * 100.0
    );
}

#[test]
#[ignore = "timing calibration harness, run with --ignored --nocapture"]
fn ab_batched_vs_single_step_podset_incast() {
    ab_fabric("podset_2x2x4", ClosSpec::uniform_40g(2, 2, 2, 4, 4));
}

#[test]
#[ignore = "timing calibration harness, run with --ignored --nocapture"]
fn ab_batched_vs_single_step_podset_4x4x8_incast() {
    ab_fabric("podset_4x4x8", ClosSpec::uniform_40g(4, 4, 4, 8, 8));
}
