//! Lockstep check for the lock-free telemetry fast path.
//!
//! The hub keeps a `locked_reference` mode that routes every counter and
//! gauge update through the registration mutex into plain shadow values —
//! the semantics the atomic fast path must reproduce. This test runs the
//! paper-default incast twice, once per path, and demands bit-identical
//! results on both sides of the membrane: the same dispatch digest (the
//! hub observed, never steered) and the same `counters_snapshot()` (the
//! relaxed atomic adds lost nothing the mutex path counted).

use rocescale_core::{ClusterBuilder, ServerId};
use rocescale_monitor::MetricsHub;
use rocescale_nic::QpApp;
use rocescale_sim::SimTime;

/// Everything one path observes: `(digest, events, counters, gauges)`.
type Observation = (u64, u64, Vec<(String, u64)>, Vec<(String, f64)>);

fn run_incast(hub: MetricsHub) -> Observation {
    let mut cl = ClusterBuilder::two_tier(2, 4)
        .seed(7)
        .telemetry(hub)
        .build();
    for i in 1..4usize {
        cl.connect_qp(
            ServerId(i),
            ServerId(0),
            6000 + i as u16,
            QpApp::Saturate {
                msg_len: 128 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    cl.run_until(SimTime::from_micros(500));
    let digest = cl.world.dispatch_digest();
    let events = cl.world.events_processed();
    let hub = cl.telemetry().clone();
    (
        digest,
        events,
        hub.counters_snapshot(),
        hub.gauges_snapshot(),
    )
}

#[test]
fn atomic_fast_path_matches_mutex_reference_in_lockstep() {
    let (digest_fast, events_fast, counters_fast, gauges_fast) = run_incast(MetricsHub::enabled());
    let (digest_ref, events_ref, counters_ref, gauges_ref) =
        run_incast(MetricsHub::enabled_locked_reference());

    assert_eq!(
        (digest_fast, events_fast),
        (digest_ref, events_ref),
        "the update path must never steer the simulation"
    );
    assert_eq!(
        counters_fast, counters_ref,
        "atomic counter path diverges from the mutex reference"
    );
    assert_eq!(
        gauges_fast, gauges_ref,
        "atomic gauge path diverges from the mutex reference"
    );
    // Sanity: this compared real data, not two empty hubs.
    assert!(
        counters_fast.iter().any(|(_, v)| *v > 0),
        "no counter ever incremented: {counters_fast:?}"
    );
}
