//! Determinism pins for sharded execution (`ExecutionProfile::Sharded`).
//!
//! Three guarantees anchor the conservative exchange (see
//! `rocescale_core::sharded` and DESIGN.md §Sharded execution):
//!
//! 1. One effective shard dispatches the byte-identical event stream of
//!    the plain `Cluster` — including the committed golden digest.
//! 2. With N ≥ 2 shards, serial and threaded epoch execution agree
//!    byte-for-byte: digest, event count, exchange bookkeeping, and the
//!    merged telemetry snapshot.
//! 3. Scripted faults — including a link flap on a *cross-shard* fabric
//!    link, where the admin action and its effect live in different
//!    worlds — keep both guarantees.
//! 4. Adaptive epoch pacing (skipping provably idle grid windows) is an
//!    engine knob, not a physics knob: dense and adaptive runs agree
//!    byte-for-byte, window-exact (`executed + skipped` under adaptive
//!    equals the dense window count), even when a scripted fault lands
//!    inside a span the fleet is otherwise quiet for.
//! 5. Observation runs bank-per-shard: a trace sink attached to a
//!    multi-shard build receives every shard's records merged in
//!    `(time, shard, emission)` order, byte-identical threaded vs
//!    serial.
//!
//! The sweep below runs every (topology, seed, shard-count) cell twice,
//! threaded and serial, and demands byte-equality; a scheduling race,
//! an unordered exchange merge, or a nondeterministic telemetry fold
//! all fail loudly here.

use rocescale_core::{
    ClusterBuilder, ExecutionProfile, FaultProfile, InstrumentationProfile, ScriptAction, ServerId,
};
use rocescale_monitor::{MemorySink, MetricsHub};
use rocescale_nic::QpApp;
use rocescale_sim::{EpochPacing, SimTime};
use rocescale_topology::ClosSpec;

/// Must match `tests/golden_trace.rs` — the committed golden pin.
const GOLDEN_DIGEST: u64 = 5655298337002817904;
const GOLDEN_EVENTS: u64 = 13800;

fn saturate() -> QpApp {
    QpApp::Saturate {
        msg_len: 64 * 1024,
        inflight: 2,
    }
}

/// Everything a run produces that must be byte-identical across
/// threading modes (and, for one effective shard, across builders).
type Fingerprint = (u64, u64, u64, u64, Vec<(String, u64)>);

/// Build `spec` at `shards`, install one cross-pod saturating flow per
/// pod (a ring — every flow crosses a shard boundary when sharded),
/// run to `dur`, and fingerprint the result.
fn run_sharded(
    spec: ClosSpec,
    seed: u64,
    shards: u32,
    threaded: bool,
    faults: FaultProfile,
    dur: SimTime,
) -> Fingerprint {
    let mut c = ClusterBuilder::new(spec)
        .seed(seed)
        .telemetry(MetricsHub::enabled())
        .execution(ExecutionProfile::Sharded { shards })
        .faults(faults)
        .build_sharded();
    c.set_threaded(threaded);
    let pods = spec.pods;
    for p in 0..pods {
        let src = c.servers_under(p, 0)[0];
        let dst = c.servers_under((p + 1) % pods, 0)[1];
        c.connect_qp(src, dst, 6000 + p as u16, saturate(), QpApp::None);
    }
    c.run_until(dur);
    (
        c.dispatch_digest(),
        c.events_processed(),
        c.exchange_epochs(),
        c.boundary_messages(),
        c.counters_snapshot(),
    )
}

#[test]
fn serial_and_threaded_sweep_byte_identical() {
    // Small multi-pod fabrics: 2 pods (one boundary) and 4 pods (spines
    // spread round-robin over shards). Shard counts above the pod count
    // collapse — also part of the property.
    let dur = SimTime::from_micros(400);
    for spec in [
        ClosSpec::uniform_40g(2, 1, 2, 2, 2),
        ClosSpec::uniform_40g(4, 2, 2, 4, 3),
    ] {
        for seed in [7u64, 21] {
            for shards in [1u32, 2, 4] {
                let t = run_sharded(spec, seed, shards, true, FaultProfile::paper_default(), dur);
                let s = run_sharded(
                    spec,
                    seed,
                    shards,
                    false,
                    FaultProfile::paper_default(),
                    dur,
                );
                assert_eq!(
                    t, s,
                    "threaded vs serial divergence: pods={} seed={seed} shards={shards}",
                    spec.pods
                );
            }
        }
    }
}

#[test]
fn single_shard_matches_the_plain_cluster_on_a_multi_pod_fabric() {
    // Event-stream equality (digest + count). Telemetry stays at the
    // paper default here: the two builders register fleet gauges over
    // different index structures (one bank vs bank-per-shard), so
    // counter-snapshot equality across *builders* is not the contract —
    // byte-identity across threading and pacing modes of the same
    // builder is (the tests around this one). Device behavior is what
    // the digest pins.
    let spec = ClosSpec::uniform_40g(4, 2, 2, 4, 3);
    let dur = SimTime::from_micros(400);

    let mut plain = ClusterBuilder::new(spec).seed(21).build();
    for p in 0..spec.pods {
        let src = plain.servers_under(p, 0)[0];
        let dst = plain.servers_under((p + 1) % spec.pods, 0)[1];
        plain.connect_qp(src, dst, 6000 + p as u16, saturate(), QpApp::None);
    }
    plain.run_until(dur);
    let want = (
        plain.world.dispatch_digest(),
        plain.world.events_processed(),
    );

    let got = run_sharded(spec, 21, 1, true, FaultProfile::paper_default(), dur);
    assert_eq!(
        (got.0, got.1),
        want,
        "one shard must dispatch the plain cluster's event stream, byte for byte"
    );
    assert_eq!((got.2, got.3), (0, 0), "no exchange with one shard");
}

#[test]
fn golden_trace_re_pins_under_sharded_execution() {
    // The exact recipe of tests/golden_trace.rs, built through
    // `build_sharded`. two_tier fabrics have one pod, so *any* shard
    // request collapses to one effective shard — the golden digest is
    // pinned under both `shards: 1` and `shards: 4`.
    for shards in [1u32, 4] {
        let mut cl = ClusterBuilder::two_tier(2, 4)
            .seed(7)
            .execution(ExecutionProfile::Sharded { shards })
            .build_sharded();
        assert_eq!(cl.shard_count(), 1);
        for i in 1..4usize {
            cl.connect_qp(
                ServerId(i),
                ServerId(0),
                6000 + i as u16,
                QpApp::Saturate {
                    msg_len: 128 * 1024,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
        cl.run_until(SimTime::from_micros(500));
        assert_eq!(
            (cl.dispatch_digest(), cl.events_processed()),
            (GOLDEN_DIGEST, GOLDEN_EVENTS),
            "golden trace deviates under ExecutionProfile::Sharded {{ shards: {shards} }}"
        );
    }
}

#[test]
fn cross_boundary_link_flap_is_deterministic() {
    // pod1-leaf0 lives on shard 1, spine0 on shard 0: the scripted flap
    // downs a port whose peer is in another world, so the admin event
    // and its LinkSet boundary message cross the exchange.
    let spec = ClosSpec::uniform_40g(2, 1, 2, 2, 2);
    let dur = SimTime::from_micros(500);
    let flap = || {
        FaultProfile::paper_default()
            .at(
                SimTime::from_micros(100),
                ScriptAction::FabricLink {
                    a: "pod1-leaf0".to_string(),
                    b: "spine0".to_string(),
                    up: false,
                },
            )
            .at(
                SimTime::from_micros(250),
                ScriptAction::FabricLink {
                    a: "pod1-leaf0".to_string(),
                    b: "spine0".to_string(),
                    up: true,
                },
            )
    };
    let threaded = run_sharded(spec, 7, 2, true, flap(), dur);
    let serial = run_sharded(spec, 7, 2, false, flap(), dur);
    assert_eq!(threaded, serial, "flapped run must stay byte-identical");

    let unflapped = run_sharded(spec, 7, 2, true, FaultProfile::paper_default(), dur);
    assert_ne!(
        threaded.0, unflapped.0,
        "the scripted flap must actually change the event stream"
    );
}

/// A bounded transfer per pod (the ring again, but [`QpApp::Burst`]):
/// the flows drain and the fabric goes quiet except for periodic host
/// timers — the workload shape adaptive pacing exists for.
fn burst() -> QpApp {
    QpApp::Burst {
        msg_len: 64 * 1024,
        count: 4,
        inflight: 2,
    }
}

/// Like [`run_sharded`] but with the burst workload and explicit epoch
/// pacing; also returns (executed, skipped) epoch counts.
fn run_paced(
    spec: ClosSpec,
    seed: u64,
    shards: u32,
    pacing: EpochPacing,
    faults: FaultProfile,
    dur: SimTime,
) -> (Fingerprint, u64, u64) {
    let mut c = ClusterBuilder::new(spec)
        .seed(seed)
        .telemetry(MetricsHub::enabled())
        .execution(ExecutionProfile::Sharded { shards })
        .faults(faults)
        .build_sharded();
    c.set_pacing(pacing);
    let pods = spec.pods;
    for p in 0..pods {
        let src = c.servers_under(p, 0)[0];
        let dst = c.servers_under((p + 1) % pods, 0)[1];
        c.connect_qp(src, dst, 6000 + p as u16, burst(), QpApp::None);
    }
    c.run_until(dur);
    let fp = (
        c.dispatch_digest(),
        c.events_processed(),
        c.exchange_epochs(),
        c.boundary_messages(),
        c.counters_snapshot(),
    );
    (fp, c.exchange_epochs(), c.epochs_skipped())
}

#[test]
fn adaptive_skipping_matches_dense_across_the_sweep() {
    // Guarantee 4 as a property over (topology × seed × shards): the
    // fingerprint — digest, events, boundary messages, merged counters —
    // must not depend on pacing, and the window accounting must be
    // exact: every window adaptive pacing skips is one dense pacing
    // executed (executed_adaptive + skipped == executed_dense). The
    // burst workload drains mid-run, so every multi-shard cell has a
    // quiet tail to skip.
    let dur = SimTime::from_micros(400);
    let mut skipped_anywhere = 0u64;
    for spec in [
        ClosSpec::uniform_40g(2, 1, 2, 2, 2),
        ClosSpec::uniform_40g(4, 2, 2, 4, 3),
    ] {
        for seed in [7u64, 21] {
            for shards in [2u32, 4] {
                let (fp_d, exec_d, skip_d) = run_paced(
                    spec,
                    seed,
                    shards,
                    EpochPacing::Dense,
                    FaultProfile::paper_default(),
                    dur,
                );
                let (fp_a, exec_a, skip_a) = run_paced(
                    spec,
                    seed,
                    shards,
                    EpochPacing::Adaptive,
                    FaultProfile::paper_default(),
                    dur,
                );
                let cell = format!("pods={} seed={seed} shards={shards}", spec.pods);
                assert_eq!(skip_d, 0, "dense pacing never skips: {cell}");
                assert_eq!(
                    (fp_a.0, fp_a.1, fp_a.3, fp_a.4.clone()),
                    (fp_d.0, fp_d.1, fp_d.3, fp_d.4.clone()),
                    "pacing changed the physics: {cell}"
                );
                assert_eq!(
                    exec_a + skip_a,
                    exec_d,
                    "window accounting must be exact: {cell}"
                );
                skipped_anywhere += skip_a;
            }
        }
    }
    assert!(
        skipped_anywhere > 0,
        "the burst workload must leave windows to skip somewhere in the sweep"
    );
}

#[test]
fn script_action_inside_a_quiet_span_forces_its_window_to_execute() {
    // The bursts drain well before 300 µs; the flap lands at 320/360 µs
    // — inside a span adaptive pacing would otherwise jump over. The
    // skip decision must see the scripted event and execute its window:
    // dense and adaptive stay byte-identical, and the flap provably
    // dispatched (different digest from the unflapped run).
    let spec = ClosSpec::uniform_40g(2, 1, 2, 2, 2);
    let dur = SimTime::from_micros(500);
    let flap = || {
        FaultProfile::paper_default()
            .at(
                SimTime::from_micros(320),
                ScriptAction::FabricLink {
                    a: "pod1-leaf0".to_string(),
                    b: "spine0".to_string(),
                    up: false,
                },
            )
            .at(
                SimTime::from_micros(360),
                ScriptAction::FabricLink {
                    a: "pod1-leaf0".to_string(),
                    b: "spine0".to_string(),
                    up: true,
                },
            )
    };
    let (fp_d, exec_d, _) = run_paced(spec, 7, 2, EpochPacing::Dense, flap(), dur);
    let (fp_a, exec_a, skip_a) = run_paced(spec, 7, 2, EpochPacing::Adaptive, flap(), dur);
    // Physics must not depend on pacing (epoch *counts* do, by design:
    // that is the whole point of skipping).
    assert_eq!(
        (fp_a.0, fp_a.1, fp_a.3, fp_a.4.clone()),
        (fp_d.0, fp_d.1, fp_d.3, fp_d.4.clone()),
        "the flapped run must not depend on pacing"
    );
    assert_eq!(exec_a + skip_a, exec_d, "window accounting must stay exact");
    assert!(skip_a > 0, "the quiet span around the flap must still skip");

    let (fp_u, _, _) = run_paced(
        spec,
        7,
        2,
        EpochPacing::Adaptive,
        FaultProfile::paper_default(),
        dur,
    );
    assert_ne!(
        fp_a.0, fp_u.0,
        "the flap's window must have executed, not been skipped over"
    );
}

#[test]
fn sharded_trace_export_is_byte_identical_threaded_vs_serial() {
    // Guarantee 5: a trace-sink-enabled build under
    // `Sharded { shards: 4 }` merges every shard's bank into the
    // caller's sink in (time, shard, emission) order — a pure function
    // of the records, so the exported stream cannot depend on epoch
    // threading.
    let spec = ClosSpec::uniform_40g(4, 2, 2, 4, 3);
    let run = |threaded: bool| {
        let sink = MemorySink::new();
        let mut c = ClusterBuilder::new(spec)
            .seed(21)
            .instrumentation(
                InstrumentationProfile::paper_default()
                    .telemetry(MetricsHub::enabled())
                    .trace_sink(sink.clone()),
            )
            .execution(ExecutionProfile::Sharded { shards: 4 })
            .build_sharded();
        assert_eq!(c.shard_count(), 4);
        c.set_threaded(threaded);
        for p in 0..spec.pods {
            let src = c.servers_under(p, 0)[0];
            let dst = c.servers_under((p + 1) % spec.pods, 0)[1];
            c.connect_qp(src, dst, 6000 + p as u16, burst(), QpApp::None);
        }
        c.run_until(SimTime::from_micros(400));
        (sink.records(), c.dispatch_digest())
    };
    let (threaded, digest_t) = run(true);
    let (serial, digest_s) = run(false);
    assert_eq!(digest_t, digest_s);
    assert_eq!(
        threaded, serial,
        "merged trace export must be byte-identical"
    );
    assert!(
        !threaded.is_empty(),
        "the sink must actually receive records"
    );
    // Every record is shard-tagged, all four shards contribute, and the
    // merge is globally time-ordered.
    let mut shards_seen = std::collections::BTreeSet::new();
    for r in &threaded {
        shards_seen.insert(r.shard.expect("sharded records carry their shard"));
    }
    assert_eq!(
        shards_seen.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    assert!(
        threaded.windows(2).all(|w| w[0].t_ps <= w[1].t_ps),
        "merged records must be time-sorted"
    );
}
