//! End-to-end trace export round trip: the JSONL file a real run streams
//! to disk parses back into exactly the records an in-memory sink saw on
//! the identical run, and every line survives render → parse → render
//! byte-identically — the property `trace_analyze` relies on.

use rocescale_core::{ClusterBuilder, InstrumentationProfile, ServerId};
use rocescale_monitor::{parse_jsonl, JsonlSink, MemorySink, TraceFilter};
use rocescale_nic::QpApp;
use rocescale_sim::SimTime;

/// A short single-ToR incast with DCQCN on: produces every record class
/// (hops, queue samples, pause/resume events, cc_rate points).
fn run_incast(instr: InstrumentationProfile) {
    let mut cl = ClusterBuilder::single_tor(5)
        .seed(11)
        .instrumentation(instr)
        .build();
    for i in 1..5usize {
        cl.connect_qp(
            ServerId(i),
            ServerId(0),
            9000 + i as u16,
            QpApp::Saturate {
                msg_len: 1 << 20,
                inflight: 4,
            },
            QpApp::None,
        );
    }
    cl.run_until(SimTime::from_millis(2));
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "rocescale_trace_{tag}_{}.jsonl",
        std::process::id()
    ))
}

/// The deterministic simulator makes two identical runs emit identical
/// record streams, so a file-backed run can be checked record-for-record
/// against a memory-backed one: same count, and every parsed line
/// re-renders to the same canonical JSON the memory sink produces.
#[test]
fn exported_file_round_trips_to_the_memory_sinks_records() {
    let mem = MemorySink::new();
    run_incast(InstrumentationProfile::paper_default().trace_sink(mem.clone()));

    let path = temp_path("roundtrip");
    let sink = JsonlSink::create(path.to_str().unwrap()).unwrap();
    run_incast(InstrumentationProfile::paper_default().trace_sink(sink));

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let parsed = parse_jsonl(&text).unwrap();
    let reference = mem.records();
    assert!(
        parsed.len() > 1000,
        "a 2 ms incast must stream a substantial trace: {}",
        parsed.len()
    );
    assert_eq!(
        parsed.len(),
        reference.len(),
        "identical runs, same records"
    );

    // Byte-level round trip, record by record, against both the file
    // line and the reference record's canonical rendering.
    for ((line, p), r) in text.lines().zip(&parsed).zip(&reference) {
        let rendered = p.to_json().render();
        assert_eq!(rendered, line, "parse must reach the render fixpoint");
        assert_eq!(rendered, r.to_json().render(), "file and memory agree");
    }

    // The run exercised every record class the analyzer handles: hops,
    // queue samples, rate points, and teed flight events (DCQCN's
    // `rate_change` — a 2 ms slow-started incast never reaches XOFF, so
    // pauses are covered by the scenario-level exports instead).
    for kind in ["hop", "queue", "cc_rate", "rate_change"] {
        assert!(
            parsed.iter().any(|p| p.kind == kind),
            "trace is missing {kind:?} records"
        );
    }
}

/// The export filter drops classes at the source: a no-hops sink sees
/// trajectories but not a single per-packet record.
#[test]
fn no_hops_filter_is_respected_end_to_end() {
    let mem = MemorySink::new();
    run_incast(
        InstrumentationProfile::paper_default()
            .trace_sink_filtered(mem.clone(), TraceFilter::no_hops()),
    );
    assert_eq!(mem.count_kind("hop"), 0, "hops must be filtered");
    assert!(mem.count_kind("queue") > 0, "queue samples still flow");
    assert!(mem.count_kind("cc_rate") > 0, "rate points still flow");
}
