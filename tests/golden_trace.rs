//! Golden dispatch-trace pin for the event engine.
//!
//! `World` folds every dispatched event — `(time, kind, node, detail)` —
//! into an FNV-1a digest, a compact fingerprint of the full event trace.
//! This test pins that digest for a fixed full-stack scenario so any
//! change to dispatch *order or content* (a scheduler bug, an accidental
//! semantic change riding along a refactor) fails loudly, and proves the
//! timer wheel and the reference binary heap dispatch byte-identical
//! streams.
//!
//! If a PR changes simulation semantics on purpose, re-deriving the
//! constant is the explicit, reviewable act of accepting the new trace.

use rocescale_core::{ClusterBuilder, InstrumentationProfile, ServerId};
use rocescale_monitor::{MemorySink, MetricsHub};
use rocescale_nic::QpApp;
use rocescale_sim::{DigestMode, EngineKind, EventProfile, ProfileMode, SimTime};

/// Digest pinned at the timer-wheel engine's introduction (identical to
/// the binary heap's on the same scenario).
const GOLDEN_DIGEST: u64 = 5655298337002817904;
/// Event count of the pinned trace.
const GOLDEN_EVENTS: u64 = 13800;

fn run(engine: EngineKind) -> (u64, u64) {
    run_full(
        engine,
        MetricsHub::disabled(),
        DigestMode::On,
        ProfileMode::Off,
    )
    .0
}

fn run_with_hub(engine: EngineKind, hub: MetricsHub) -> ((u64, u64), MetricsHub) {
    run_full(engine, hub, DigestMode::On, ProfileMode::Off)
}

fn run_full(
    engine: EngineKind,
    hub: MetricsHub,
    digest: DigestMode,
    profile: ProfileMode,
) -> ((u64, u64), MetricsHub) {
    let (out, hub, _) = run_profiled(engine, hub, digest, profile);
    (out, hub)
}

fn run_profiled(
    engine: EngineKind,
    hub: MetricsHub,
    digest: DigestMode,
    profile: ProfileMode,
) -> ((u64, u64), MetricsHub, EventProfile) {
    let mut cl = ClusterBuilder::two_tier(2, 4)
        .seed(7)
        .engine(engine)
        .telemetry(hub)
        .digest(digest)
        .profile(profile)
        .build();
    for i in 1..4usize {
        cl.connect_qp(
            ServerId(i),
            ServerId(0),
            6000 + i as u16,
            QpApp::Saturate {
                msg_len: 128 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    cl.run_until(SimTime::from_micros(500));
    let out = (cl.world.dispatch_digest(), cl.world.events_processed());
    let profile = cl.world.event_profile();
    (out, cl.telemetry().clone(), profile)
}

#[test]
fn dispatch_trace_matches_committed_golden() {
    assert_eq!(
        run(EngineKind::Wheel),
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "wheel trace deviates from the committed golden digest"
    );
}

#[test]
fn both_engines_dispatch_byte_identical_traces() {
    assert_eq!(
        run(EngineKind::BinaryHeap),
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "binary-heap trace deviates from the wheel's"
    );
}

/// `DigestMode::Off` (the fleet/bench fast path) must skip only the
/// fold, not change the simulation: the pinned scenario dispatches the
/// exact golden event count while the digest stays at the FNV basis.
#[test]
fn digest_off_dispatches_the_same_event_stream() {
    let ((digest, events), _) = run_full(
        EngineKind::Wheel,
        MetricsHub::disabled(),
        DigestMode::Off,
        ProfileMode::Off,
    );
    assert_eq!(
        events, GOLDEN_EVENTS,
        "digest mode must not change the event stream"
    );
    assert_ne!(
        digest, GOLDEN_DIGEST,
        "off mode must not accidentally keep folding"
    );
}

/// The pluggable congestion-control layer must leave the paper-default
/// path untouched: `paper_default()` still selects DCQCN + go-back-N,
/// and the pinned scenario — which is built from exactly that profile —
/// still dispatches the committed golden trace. Together with
/// [`dispatch_trace_matches_committed_golden`] this pins the refactor
/// as digest-neutral: swapping the concrete RP/NP state machines for
/// the `CongestionControl` trait moved code, not events.
#[test]
fn paper_default_cc_selection_preserves_the_golden_trace() {
    use rocescale_core::{CcKind, TransportProfile};
    use rocescale_transport::LossRecovery;
    let t = TransportProfile::paper_default();
    assert_eq!(t.cc, CcKind::Dcqcn, "paper default must stay DCQCN");
    assert_eq!(t.recovery, LossRecovery::GoBackN);
    // And the deprecated shim still lands on the same controller.
    assert_eq!(TransportProfile::paper_default().dcqcn(true).cc, t.cc);
    assert_eq!(
        run(EngineKind::Wheel),
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "the CC layer must be digest-neutral on the paper-default path"
    );
}

/// The telemetry bus must be a pure observer: running the pinned
/// scenario with a live hub — counters, flight recorder, and chunked
/// sampled `run_until` all active — must reproduce the exact golden
/// digest, byte for byte, while actually collecting data.
#[test]
fn telemetry_does_not_perturb_the_dispatch_trace() {
    let (out, hub) = run_with_hub(EngineKind::Wheel, MetricsHub::enabled());
    assert_eq!(
        out,
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "telemetry-on trace deviates from the committed golden digest"
    );
    // And it must really have observed the run, not silently no-opped.
    assert!(hub.samples_taken() > 0, "sampling never ran");
    let counters = hub.counters_snapshot();
    let total: u64 = counters.iter().map(|(_, v)| v).sum();
    assert!(total > 0, "no counter ever incremented: {counters:?}");
}

/// A configured-but-unfired fault script must be invisible: scripted
/// actions ride ordinary timer events, so a script whose first action is
/// scheduled *after* the run ends adds zero dispatched events and the
/// pinned scenario — detector live, telemetry on — reproduces the exact
/// golden digest.
#[test]
fn unfired_fault_script_preserves_the_golden_trace() {
    use rocescale_core::{FaultProfile, ScriptAction};
    let mut cl = ClusterBuilder::two_tier(2, 4)
        .seed(7)
        .telemetry(MetricsHub::enabled())
        .faults(FaultProfile::paper_default().at(
            SimTime::from_millis(1000), // run ends at 500 µs: never fires
            ScriptAction::SetLossless {
                switch: "pod0-tor0".to_string(),
                prio: 3,
                on: false,
            },
        ))
        .build();
    for i in 1..4usize {
        cl.connect_qp(
            ServerId(i),
            ServerId(0),
            6000 + i as u16,
            QpApp::Saturate {
                msg_len: 128 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    cl.run_until(SimTime::from_micros(500));
    assert_eq!(
        (cl.world.dispatch_digest(), cl.world.events_processed()),
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "an unfired script must not perturb the dispatch trace"
    );
    assert_eq!(
        cl.deadlock_probe().cycle_epochs(),
        0,
        "healthy pinned scenario must stay cycle-free"
    );
    assert!(
        cl.deadlock_probe().epochs() > 0,
        "the live detector must actually have run"
    );
}

/// Run the pinned scenario with an arbitrary instrumentation profile.
fn run_instrumented(instr: InstrumentationProfile) -> (u64, u64) {
    let mut cl = ClusterBuilder::two_tier(2, 4)
        .seed(7)
        .instrumentation(instr)
        .build();
    for i in 1..4usize {
        cl.connect_qp(
            ServerId(i),
            ServerId(0),
            6000 + i as u16,
            QpApp::Saturate {
                msg_len: 128 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    cl.run_until(SimTime::from_micros(500));
    (cl.world.dispatch_digest(), cl.world.events_processed())
}

/// A streaming trace sink must be a pure observer: the pinned scenario
/// with a live sink — per-packet hops, queue samples, rate points and
/// teed flight events all flowing — reproduces the exact golden digest
/// while actually exporting a substantial trace.
#[test]
fn trace_sink_does_not_perturb_the_dispatch_trace() {
    let mem = MemorySink::new();
    let out = run_instrumented(
        InstrumentationProfile::paper_default()
            .telemetry(MetricsHub::enabled())
            .trace_sink(mem.clone()),
    );
    assert_eq!(
        out,
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "sink-attached trace deviates from the committed golden digest"
    );
    // And the sink must really have streamed the run, not no-opped:
    // every packet enqueue is a hop, each telemetry epoch a queue
    // sample per switch, and DCQCN activity shows up as rate points.
    assert!(
        mem.count_kind("hop") > 1000,
        "hops: {}",
        mem.count_kind("hop")
    );
    assert!(mem.count_kind("queue") > 0, "queue samples missing");
    assert!(mem.count_kind("cc_rate") > 0, "rate points missing");
}

/// Attaching a sink without a hub must imply an enabled hub (otherwise
/// the sink would silently see nothing) — and still leave the golden
/// trace untouched.
#[test]
fn sink_implies_enabled_hub_and_preserves_the_golden_trace() {
    let mem = MemorySink::new();
    let out = run_instrumented(InstrumentationProfile::paper_default().trace_sink(mem.clone()));
    assert_eq!(out, (GOLDEN_DIGEST, GOLDEN_EVENTS));
    assert!(!mem.is_empty(), "implied hub must actually stream");
}

/// The deprecated loose builder setters (`telemetry`/`digest`/`profile`)
/// are shims into [`InstrumentationProfile`]; both surfaces must
/// configure identical observation and dispatch the identical golden
/// trace — the PR 4 `dcqcn(bool)` shim-agreement pattern.
#[test]
fn builder_shims_agree_with_instrumentation_profile() {
    let via_shims = run_full(
        EngineKind::Wheel,
        MetricsHub::enabled(),
        DigestMode::On,
        ProfileMode::Off,
    )
    .0;
    let via_profile = run_instrumented(
        InstrumentationProfile::paper_default()
            .telemetry(MetricsHub::enabled())
            .digest(DigestMode::On)
            .profiler(ProfileMode::Off),
    );
    assert_eq!(
        via_shims, via_profile,
        "old setters and the profile must be the same configuration"
    );
    assert_eq!(via_profile, (GOLDEN_DIGEST, GOLDEN_EVENTS));
}

/// Batched dispatch (the default since the same-tick coalescing change)
/// must be observationally identical to single-step dispatch on the full
/// paper incast with telemetry and the profiler live: same golden
/// digest, same event count, every telemetry counter byte-identical,
/// and the same per-kind event breakdown. Only the batch histogram may
/// differ — it is the one artifact of the batching itself.
#[test]
fn batched_and_single_step_dispatch_are_trace_identical() {
    use rocescale_sim::DispatchMode;
    let run_mode = |mode: DispatchMode| {
        let mut cl = ClusterBuilder::two_tier(2, 4)
            .seed(7)
            .telemetry(MetricsHub::enabled())
            .profile(ProfileMode::On)
            .build();
        cl.world.set_dispatch_mode(mode);
        for i in 1..4usize {
            cl.connect_qp(
                ServerId(i),
                ServerId(0),
                6000 + i as u16,
                QpApp::Saturate {
                    msg_len: 128 * 1024,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
        cl.run_until(SimTime::from_micros(500));
        (
            cl.world.dispatch_digest(),
            cl.world.events_processed(),
            cl.telemetry().counters_snapshot(),
            cl.world.event_profile(),
        )
    };
    let (b_digest, b_events, b_counters, b_profile) = run_mode(DispatchMode::Batched);
    let (s_digest, s_events, s_counters, s_profile) = run_mode(DispatchMode::SingleStep);
    assert_eq!(
        (b_digest, b_events),
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "batched dispatch deviates from the committed golden digest"
    );
    assert_eq!(
        (s_digest, s_events),
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "single-step dispatch deviates from the committed golden digest"
    );
    assert_eq!(
        b_counters, s_counters,
        "telemetry counters must not depend on the dispatch mode"
    );
    assert_eq!(
        b_profile.counts, s_profile.counts,
        "per-kind event counts must not depend on the dispatch mode"
    );
    // The histogram is where the modes are allowed to differ: batching
    // really coalesced (fewer batches than events), single-step did not.
    assert!(
        b_profile.total_batches() > 0 && b_profile.total_batches() < GOLDEN_EVENTS,
        "batched run must record coalesced batches: {:?}",
        b_profile.batches
    );
    assert_eq!(
        s_profile.total_batches(),
        0,
        "single-step run must record no batches"
    );
}

/// The dispatch profiler must also be a pure observer: with profiling
/// *and* telemetry both live, the pinned scenario still dispatches the
/// exact golden trace, and the profile's per-kind counts sum to the
/// golden event count (wall-clock timing is bookkeeping, not events).
#[test]
fn profiler_does_not_perturb_the_dispatch_trace() {
    let (out, _, profile) = run_profiled(
        EngineKind::Wheel,
        MetricsHub::enabled(),
        DigestMode::On,
        ProfileMode::On,
    );
    assert_eq!(
        out,
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "profiler-on trace deviates from the committed golden digest"
    );
    assert_eq!(
        profile.total_events(),
        GOLDEN_EVENTS,
        "profile counts must cover every dispatched event"
    );
    // Arrivals dominate a saturating incast; the breakdown must show it.
    assert!(
        profile.counts[1] > 0 && profile.counts[3] > 0,
        "expected arrival and timer events in the breakdown: {profile:?}"
    );
}
