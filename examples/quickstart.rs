//! Quickstart: build a small RoCEv2 cluster with the paper's recommended
//! configuration, run a bulk transfer plus Pingmesh probes, and read the
//! counters the paper's monitoring systems read.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rocescale::core::{ClusterBuilder, ServerId};
use rocescale::monitor::pingmesh::{ProbeResult, Scope};
use rocescale::monitor::{Percentiles, Pingmesh};
use rocescale::nic::QpApp;
use rocescale::sim::SimTime;

fn main() {
    // Two racks of four 40 GbE servers under a leaf/spine pair — DSCP-based
    // PFC, go-back-N, DCQCN, watchdogs, and the deadlock fix all on.
    let mut cluster = ClusterBuilder::two_tier(2, 4).seed(7).build();
    println!(
        "cluster: {} servers, {} switches",
        cluster.server_count(),
        cluster.switch_count()
    );

    // A cross-rack bulk sender: keep two 1 MB messages in flight.
    let (src, dst) = (ServerId(0), ServerId(4));
    cluster.connect_qp(
        src,
        dst,
        5000,
        QpApp::Saturate {
            msg_len: 1 << 20,
            inflight: 2,
        },
        QpApp::None,
    );

    // Pingmesh probes riding the same fabric (512-byte RDMA SENDs, §5.3).
    cluster.connect_qp(
        ServerId(1),
        ServerId(5),
        5001,
        QpApp::Pinger {
            payload: 512,
            interval: SimTime::from_micros(100),
            start_at: SimTime::from_micros(20),
        },
        QpApp::Echo { reply_len: 512 },
    );

    cluster.run_for_millis(10);

    let bytes = cluster.rdma(dst).total_goodput_bytes();
    println!(
        "bulk transfer: {:.2} Gb/s goodput over 10 ms",
        bytes as f64 * 8.0 / 0.010 / 1e9
    );

    let mut pingmesh = Pingmesh::new();
    for rtt in cluster.take_rdma_rtts() {
        pingmesh.record(Scope::IntraPodset, ProbeResult::Rtt(rtt));
    }
    println!("{}", pingmesh.render());

    let mut p = Percentiles::new();
    let _ = &mut p;
    println!(
        "fleet counters: {} switch pauses, {} lossless drops (must be 0)",
        cluster.total_switch_pause_tx(),
        cluster.lossless_drops()
    );
    assert_eq!(cluster.lossless_drops(), 0, "PFC must prevent loss");
}
