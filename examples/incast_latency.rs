//! Reproduce Figure 6: RDMA vs TCP tail latency for a latency-sensitive
//! incast service.
//!
//! Half the fleet runs the service over kernel TCP, half over RoCEv2 —
//! same fabric, same query/response fan-out workload. The paper measured
//! p99 ≈ 90 µs for RDMA vs ≈ 700 µs for TCP (with multi-ms spikes), and
//! RDMA's p99.9 below TCP's p99, because RDMA removes both the kernel
//! stack and congestion drops.
//!
//! ```sh
//! cargo run --release --example incast_latency
//! ```

use rocescale::core::scenarios::latency;
use rocescale::sim::SimTime;

fn main() {
    let r = latency::run(
        SimTime::from_millis(80),
        4,
        16 * 1024,
        SimTime::from_millis(2),
    );
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>11} {:>10}",
        "stack", "samples", "p50(us)", "p99(us)", "p99.9(us)", "max(us)"
    );
    for (name, s) in [("RDMA", r.rdma), ("TCP", r.tcp)] {
        println!(
            "{:<6} {:>8} {:>10.1} {:>10.1} {:>11.1} {:>10.1}",
            name, s.samples, s.p50_us, s.p99_us, s.p999_us, s.max_us
        );
    }
    println!("\nlossless drops: {} (must be 0)", r.lossless_drops);
    println!(
        "tail ratio: TCP p99 / RDMA p99 = {:.1}x (paper: ~7.8x); RDMA p99.9 < TCP p99: {}",
        r.tcp.p99_us / r.rdma.p99_us,
        r.rdma.p999_us < r.tcp.p99_us
    );
}
