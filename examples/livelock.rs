//! Reproduce §4.1: the RDMA transport livelock.
//!
//! Two servers, one switch, and a deterministic 1-in-256 drop filter
//! (every packet whose IP ID ends in 0xff). The vendor's go-back-0 loss
//! recovery delivers **zero** application goodput while the wire runs at
//! line rate; the paper's go-back-N fix restores it — for SEND, WRITE,
//! and READ alike.
//!
//! ```sh
//! cargo run --release --example livelock
//! ```

use rocescale::core::scenarios::livelock::{self, Workload};
use rocescale::sim::SimTime;
use rocescale::transport::LossRecovery;

fn main() {
    let dur = SimTime::from_millis(10);
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>12} {:>10}",
        "verb", "recovery", "goodput(Gb/s)", "wire(Gb/s)", "msgs done", "drops"
    );
    for workload in [Workload::Send, Workload::Write, Workload::Read] {
        for recovery in [LossRecovery::GoBack0, LossRecovery::GoBackN] {
            let r = livelock::run(recovery, workload, dur);
            println!(
                "{:<8} {:>10} {:>14.2} {:>12.2} {:>12} {:>10}",
                format!("{workload:?}"),
                format!("{recovery:?}"),
                r.goodput_gbps,
                r.wire_gbps,
                r.messages_done,
                r.filter_drops
            );
        }
    }
    println!();
    println!("go-back-0: the link is fully utilized yet the application makes no progress —");
    println!("\"the sender will restart from the first packet, again and again\" (§4.1).");
}
