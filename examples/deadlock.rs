//! Reproduce Figure 4 / §4.2: the PFC deadlock ("yes, it happened!").
//!
//! The exact four-switch Clos fragment of the paper: two dead servers
//! leave *incomplete ARP entries* (IP→MAC alive for 4 hours, MAC→port
//! expired after 5 minutes), the ToRs flood their lossless packets, flood
//! copies park on paused fabric ports, and the pause-wait cycle
//! T1→La→T0→Lb→T1 freezes the fabric permanently. The fix — dropping
//! lossless packets on incomplete ARP entries — removes the flood and the
//! cycle never forms.
//!
//! ```sh
//! cargo run --release --example deadlock
//! ```

use rocescale::core::scenarios::deadlock;
use rocescale::sim::SimTime;

fn main() {
    let dur = SimTime::from_millis(40);
    for fix in [false, true] {
        let r = deadlock::run(fix, dur);
        println!(
            "fix {:<5} | deadlocked switches: {:?}",
            r.fix_enabled, r.deadlocked_switches
        );
        println!(
            "          | live traffic in final 10 ms: {:.1} MB, pause frames: {}, fix drops: {}",
            r.tail_goodput_bytes as f64 / 1e6,
            r.pauses,
            r.fix_drops
        );
    }
    println!();
    println!("without the fix, the cyclic buffer dependency wedges all four switches and even");
    println!("the flow to the live server S5 stops — \"it does not go away even if we restart");
    println!("all the servers.\" With the fix, S5 keeps its full rate.");
}
