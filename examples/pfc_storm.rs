//! Reproduce Figure 5 / Figure 9 / §4.3: the NIC PFC pause frame storm.
//!
//! At t = 8 ms one NIC's receive pipeline dies and it starts pausing its
//! ToR continuously. Without watchdogs the pauses propagate ToR → Leaf →
//! ToR and block innocent server pairs; with the paper's two
//! complementary watchdogs (NIC micro-controller + switch port guard) the
//! storm is contained and every victim pair keeps its throughput.
//!
//! ```sh
//! cargo run --release --example pfc_storm
//! ```

use rocescale::core::scenarios::storm;
use rocescale::sim::SimTime;

fn main() {
    let dur = SimTime::from_millis(40);
    for watchdogs in [false, true] {
        let r = storm::run(watchdogs, dur);
        println!(
            "watchdogs {:<5} | healthy victim pairs {}/{} | victim pause frames {} | \
             nic wd fired: {} | switch wd fired: {}",
            r.watchdogs,
            r.healthy_pairs,
            r.total_pairs,
            r.victim_pause_rx,
            r.nic_watchdog_fired,
            r.switch_watchdog_fired
        );
    }
    println!();
    println!("availability over time (Figure 9(a) shape), storm starts at 20% of the run:");
    for watchdogs in [false, true] {
        let series = storm::availability_series(watchdogs, dur, 10);
        let cells: Vec<String> = series
            .iter()
            .map(|(_, a)| format!("{:>4.0}%", a * 100.0))
            .collect();
        println!("  watchdogs {:<5} {}", watchdogs, cells.join(" "));
    }
}
