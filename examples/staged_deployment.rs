//! §6.1 — the paper's step-by-step onboarding, replayed.
//!
//! "In the third step, we enabled RDMA in production networks at ToR
//! level only. In the fourth step, we enabled PFC at the Podset level …
//! In the last step, we enabled PFC up to the Spine switches."
//!
//! The same cross-rack incast workload runs at each stage; where PFC is
//! not yet enabled, RDMA traffic rides lossy classes and congestion
//! sheds packets (go-back-N recovers, at a goodput cost). Only the full
//! rollout is loss-free end to end — and the config monitor shows which
//! devices deviate from the end-state configuration at each stage.
//!
//! ```sh
//! cargo run --release --example staged_deployment
//! ```

use rocescale::core::{ClusterBuilder, DeploymentStage, FabricProfile, TransportProfile};
use rocescale::monitor::config::{diff, RdmaConfig};
use rocescale::nic::QpApp;
use rocescale::switch::DropReason;

fn main() {
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>14}",
        "stage", "goodput(Gb/s)", "lossy drops", "ll drops", "pauses"
    );
    for stage in [
        DeploymentStage::TorOnly,
        DeploymentStage::Podset,
        DeploymentStage::Spine,
    ] {
        let mut c = ClusterBuilder::two_tier(2, 4)
            .fabric(FabricProfile::paper_default().stage(stage))
            .transport(TransportProfile::paper_default().dcqcn(false))
            .seed(13)
            .build();
        let rack0 = c.servers_under(0, 0);
        let rack1 = c.servers_under(0, 1);
        for (i, s) in rack0.iter().enumerate() {
            c.connect_qp(
                *s,
                rack1[0],
                (4500 + i) as u16,
                QpApp::Saturate {
                    msg_len: 1 << 20,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
        c.run_for_millis(8);
        println!(
            "{:<10} {:>14.2} {:>12} {:>12} {:>14}",
            format!("{stage:?}"),
            c.rdma(rack1[0]).total_goodput_bytes() as f64 * 8.0 / 0.008 / 1e9,
            c.total_drops_of(DropReason::LossyOverflow),
            c.lossless_drops(),
            c.total_switch_pause_tx(),
        );
    }

    println!();
    println!("config monitor view during the Podset stage (spines not yet lossless):");
    let desired = RdmaConfig::paper_recommended();
    let mut spine_running = desired.clone();
    spine_running.lossless_classes = vec![];
    for dev in diff("spine17", &desired, &spine_running) {
        println!(
            "  {}: {} desired {} but running {}",
            dev.device, dev.field, dev.desired, dev.running
        );
    }
}
