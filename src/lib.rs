//! # rocescale
//!
//! A Rust reproduction of **"RDMA over Commodity Ethernet at Scale"**
//! (Guo et al., Microsoft, SIGCOMM 2016): RoCEv2 transport, DSCP-based
//! PFC, DCQCN congestion control, and every safety mechanism the paper
//! describes — go-back-N loss recovery, deadlock avoidance via lossless
//! drop on incomplete ARP entries, the NIC/switch PFC-storm watchdogs and
//! slow-receiver mitigations — running over a deterministic packet-level
//! datacenter network simulator.
//!
//! This umbrella crate re-exports the workspace crates under stable names;
//! see `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction results.
//!
//! ```no_run
//! use rocescale::core::{ClusterBuilder, FabricProfile, PfcMode};
//!
//! // Two racks of four servers under one ToR pair, DSCP-based PFC,
//! // DCQCN on, go-back-N loss recovery: the paper's recommended config.
//! let mut cluster = ClusterBuilder::two_tier(2, 4)
//!     .fabric(FabricProfile::paper_default().pfc_mode(PfcMode::Dscp))
//!     .build();
//! cluster.run_for_millis(10);
//! ```

pub use rocescale_cc as cc;
pub use rocescale_core as core;
pub use rocescale_dcqcn as dcqcn;
pub use rocescale_monitor as monitor;
pub use rocescale_nic as nic;
pub use rocescale_packet as packet;
pub use rocescale_sim as sim;
pub use rocescale_switch as switch;
pub use rocescale_tcp as tcp;
pub use rocescale_topology as topology;
pub use rocescale_transport as transport;
