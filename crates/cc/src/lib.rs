//! Pluggable congestion control: the sender/receiver/marking roles behind
//! the paper's DCQCN deployment, abstracted into a sans-IO trait layer.
//!
//! §7 of the paper frames DCQCN as one point in a design space — it is
//! explicitly contrasted with delay-based TIMELY — and the companion
//! choice of go-back-N loss recovery is challenged by IRN ("Revisiting
//! Network Support for RDMA", Mittal et al.). This crate makes the
//! congestion-control half of that space pluggable:
//!
//! * **Sender role** ([`CongestionControl`] / [`SenderCc`]): consumes
//!   typed [`CcSignal`]s (CNP arrival, an RTT sample, bytes sent, the
//!   periodic tick) and exposes the pacing rate. Three implementations:
//!   DCQCN's reaction point ([`DcqcnSender`], wrapping
//!   [`rocescale_dcqcn::RpState`]), a TIMELY-style delay-gradient
//!   controller ([`TimelyState`]), and a fixed-rate/off controller
//!   ([`FixedRate`]).
//! * **Receiver role** ([`ReceiverCc`]): decides when a congestion
//!   notification packet must be sent back. DCQCN's notification point is
//!   the only non-trivial implementation; it runs regardless of the
//!   sender's controller (non-DCQCN senders simply ignore CNPs), which
//!   keeps the receive-side event stream identical across ablations.
//! * **Marking role**: the switch-side congestion point — re-exported
//!   [`CpParams`]/[`CpState`] ECN marking, unchanged.
//!
//! Everything is time-as-argument pure logic in the style of the dcqcn
//! state machines: the NIC adapter owns the clocks, feeds signals, and
//! applies the returned [`CcAction`]s. Determinism argument: controllers
//! never read wall clocks or draw randomness; a signal sequence maps to
//! exactly one action sequence, so enum dispatch through [`SenderCc`]
//! adds no nondeterminism — and with [`CcKind::Dcqcn`] selected, the
//! signal plumbing reduces to the exact pre-refactor RP/NP call sequence,
//! which is what keeps the paper-default golden dispatch digest
//! unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rocescale_dcqcn::{CpParams, CpState};
use rocescale_dcqcn::{NpParams, NpState, RpParams, RpState};

/// Which congestion-control algorithm a sender runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcKind {
    /// DCQCN (ECN-based; the paper's deployment).
    Dcqcn,
    /// TIMELY-style delay-gradient control (RTT-based; §7's contrast).
    Timely,
    /// No congestion control: fixed pacing at line rate.
    Off,
}

impl CcKind {
    /// Short lowercase name, used in telemetry instrument names and trace
    /// events.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Dcqcn => "dcqcn",
            CcKind::Timely => "timely",
            CcKind::Off => "off",
        }
    }
}

/// A typed input event to the sender-side controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcSignal {
    /// A congestion notification packet arrived for this QP.
    Cnp,
    /// A cumulative ACK carried a fresh RTT sample (send→ACK delay of the
    /// newest acknowledged packet, as measured by the transport endpoint).
    AckRtt {
        /// The measured round-trip time, picoseconds.
        rtt_ps: u64,
    },
    /// The NIC handed `bytes` of this QP's data to the wire.
    BytesSent {
        /// Wire bytes sent.
        bytes: u64,
    },
    /// The periodic controller tick fired (see [`CcParams::tick_period_ps`]).
    Tick,
}

/// A typed action returned by the sender-side controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcAction {
    /// The pacing rate moved; the adapter should record it.
    RateChange {
        /// The new pacing rate, bits/second.
        rate_bps: f64,
        /// What moved it (`"cnp"`, `"rtt-low"`, `"rtt-high"`,
        /// `"gradient-rise"`, `"gradient-fall"`).
        cause: &'static str,
    },
}

/// The sans-IO sender-side congestion-control role: the NIC feeds
/// [`CcSignal`]s with the current time and paces each QP at
/// [`rate_bps`](CongestionControl::rate_bps).
pub trait CongestionControl {
    /// Which algorithm this is.
    fn kind(&self) -> CcKind;
    /// The rate the NIC should currently pace this QP at, b/s.
    fn rate_bps(&self) -> f64;
    /// Feed one signal; returns an action when the controller wants the
    /// adapter to record a state change.
    fn on_signal(&mut self, sig: CcSignal, now_ps: u64) -> Option<CcAction>;
    /// Times the pacing rate actually moved.
    fn rate_changes(&self) -> u64;
}

/// Sender-role configuration: which controller to run, with its knobs.
#[derive(Debug, Clone, PartialEq)]
pub enum CcParams {
    /// DCQCN reaction point.
    Dcqcn(RpParams),
    /// TIMELY-style delay-gradient controller.
    Timely(TimelyParams),
    /// Fixed pacing at line rate (congestion control off).
    Off,
}

impl CcParams {
    /// Default parameters of `kind` for a given line rate.
    pub fn for_line_rate(kind: CcKind, line_rate_bps: u64) -> CcParams {
        match kind {
            CcKind::Dcqcn => CcParams::Dcqcn(RpParams::for_line_rate(line_rate_bps)),
            CcKind::Timely => CcParams::Timely(TimelyParams::for_line_rate(line_rate_bps)),
            CcKind::Off => CcParams::Off,
        }
    }

    /// Which algorithm these parameters select.
    pub fn kind(&self) -> CcKind {
        match self {
            CcParams::Dcqcn(_) => CcKind::Dcqcn,
            CcParams::Timely(_) => CcKind::Timely,
            CcParams::Off => CcKind::Off,
        }
    }

    /// Period of the controller's periodic [`CcSignal::Tick`], if it
    /// needs one (DCQCN's alpha/increase timers; TIMELY and fixed-rate
    /// are purely event-driven).
    pub fn tick_period_ps(&self) -> Option<u64> {
        match self {
            CcParams::Dcqcn(p) => Some(p.alpha_timer_ps),
            CcParams::Timely(_) | CcParams::Off => None,
        }
    }
}

/// DCQCN's reaction point as a [`CongestionControl`] implementation: a
/// thin adapter over [`RpState`] that maps [`CcSignal`]s onto the exact
/// `on_cnp` / `on_bytes_sent` / `on_alpha_timer` + `on_increase_timer`
/// call sequence the NIC used before the trait layer existed.
#[derive(Debug, Clone)]
pub struct DcqcnSender {
    rp: RpState,
}

impl DcqcnSender {
    /// A fresh reaction point at line rate.
    pub fn new(params: RpParams) -> DcqcnSender {
        DcqcnSender {
            rp: RpState::new(params),
        }
    }

    /// The wrapped RP state (alpha, counters).
    pub fn rp(&self) -> &RpState {
        &self.rp
    }
}

impl CongestionControl for DcqcnSender {
    fn kind(&self) -> CcKind {
        CcKind::Dcqcn
    }

    fn rate_bps(&self) -> f64 {
        self.rp.rate_bps()
    }

    fn on_signal(&mut self, sig: CcSignal, _now_ps: u64) -> Option<CcAction> {
        match sig {
            CcSignal::Cnp => {
                let before = self.rp.rate_bps();
                self.rp.on_cnp();
                let after = self.rp.rate_bps();
                (after != before).then_some(CcAction::RateChange {
                    rate_bps: after,
                    cause: "cnp",
                })
            }
            CcSignal::BytesSent { bytes } => {
                self.rp.on_bytes_sent(bytes);
                None
            }
            CcSignal::Tick => {
                self.rp.on_alpha_timer();
                self.rp.on_increase_timer();
                None
            }
            // DCQCN is ECN-driven; delay samples carry no information.
            CcSignal::AckRtt { .. } => None,
        }
    }

    fn rate_changes(&self) -> u64 {
        self.rp.rate_changes()
    }
}

/// TIMELY-style controller parameters (Mittal et al., SIGCOMM 2015).
/// Values are tuned for this simulator's 40 GbE fabrics, not copied from
/// the paper's 10 GbE testbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelyParams {
    /// Line rate and rate cap, b/s.
    pub line_rate_bps: f64,
    /// Rate floor, b/s.
    pub min_rate_bps: f64,
    /// EWMA weight on the newest RTT difference (TIMELY's α).
    pub ewma_alpha: f64,
    /// Multiplicative decrease factor (TIMELY's β).
    pub beta: f64,
    /// Additive increase step δ, b/s.
    pub add_bps: f64,
    /// RTT below which the controller always additively increases.
    pub t_low_ps: u64,
    /// RTT above which the controller always multiplicatively decreases.
    pub t_high_ps: u64,
    /// Gradient normalization: the fabric's propagation-only RTT.
    pub min_rtt_ps: u64,
    /// Consecutive negative-gradient updates before hyper increase (N).
    pub hai_after: u32,
    /// Minimum interval between rate updates (≈ one RTT; samples between
    /// updates still refresh the gradient EWMA).
    pub update_every_ps: u64,
}

impl TimelyParams {
    /// Defaults for a given line rate.
    pub fn for_line_rate(line_rate_bps: u64) -> TimelyParams {
        TimelyParams {
            line_rate_bps: line_rate_bps as f64,
            min_rate_bps: 10e6,
            ewma_alpha: 0.46,
            beta: 0.8,
            add_bps: 40e6,
            t_low_ps: 12_000_000,  // 12 µs
            t_high_ps: 48_000_000, // 48 µs
            min_rtt_ps: 4_000_000, // 4 µs
            hai_after: 5,
            update_every_ps: 20_000_000, // 20 µs ≈ a congested RTT
        }
    }
}

/// TIMELY-style delay-gradient sender state: rate cuts on rising RTT,
/// additive (then hyper) increase on falling RTT, with hard `t_low` /
/// `t_high` guard bands.
#[derive(Debug, Clone)]
pub struct TimelyState {
    params: TimelyParams,
    rate_bps: f64,
    prev_rtt_ps: Option<u64>,
    /// EWMA of consecutive RTT differences, picoseconds.
    rtt_diff_ps: f64,
    neg_gradient_streak: u32,
    last_update_ps: u64,
    samples: u64,
    rate_changes: u64,
}

impl TimelyState {
    /// A fresh controller at line rate.
    pub fn new(params: TimelyParams) -> TimelyState {
        TimelyState {
            rate_bps: params.line_rate_bps,
            params,
            prev_rtt_ps: None,
            rtt_diff_ps: 0.0,
            neg_gradient_streak: 0,
            last_update_ps: 0,
            samples: 0,
            rate_changes: 0,
        }
    }

    /// RTT samples consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The smoothed RTT gradient, normalized by `min_rtt` (positive =
    /// queues building).
    pub fn normalized_gradient(&self) -> f64 {
        self.rtt_diff_ps / self.params.min_rtt_ps as f64
    }

    fn on_rtt(&mut self, rtt_ps: u64, now_ps: u64) -> Option<CcAction> {
        self.samples += 1;
        // The first sample only seeds the gradient.
        let prev = self.prev_rtt_ps.replace(rtt_ps)?;
        let a = self.params.ewma_alpha;
        self.rtt_diff_ps = (1.0 - a) * self.rtt_diff_ps + a * (rtt_ps as f64 - prev as f64);
        if now_ps.saturating_sub(self.last_update_ps) < self.params.update_every_ps {
            return None; // at most one rate move per (congested) RTT
        }
        self.last_update_ps = now_ps;
        let p = self.params;
        let old = self.rate_bps;
        let cause = if rtt_ps < p.t_low_ps {
            // Far below target delay: increase regardless of gradient.
            self.rate_bps = (self.rate_bps + p.add_bps).min(p.line_rate_bps);
            "rtt-low"
        } else if rtt_ps > p.t_high_ps {
            // Far above: multiplicative decrease proportional to overshoot.
            let f = 1.0 - p.beta * (1.0 - p.t_high_ps as f64 / rtt_ps as f64);
            self.rate_bps = (self.rate_bps * f).max(p.min_rate_bps);
            self.neg_gradient_streak = 0;
            "rtt-high"
        } else {
            let grad = self.normalized_gradient();
            if grad <= 0.0 {
                self.neg_gradient_streak += 1;
                let n = if self.neg_gradient_streak >= p.hai_after {
                    5.0 // hyper increase
                } else {
                    1.0
                };
                self.rate_bps = (self.rate_bps + n * p.add_bps).min(p.line_rate_bps);
                "gradient-fall"
            } else {
                self.neg_gradient_streak = 0;
                let f = 1.0 - p.beta * grad.min(1.0);
                self.rate_bps = (self.rate_bps * f).max(p.min_rate_bps);
                "gradient-rise"
            }
        };
        if self.rate_bps != old {
            self.rate_changes += 1;
            Some(CcAction::RateChange {
                rate_bps: self.rate_bps,
                cause,
            })
        } else {
            None
        }
    }
}

impl CongestionControl for TimelyState {
    fn kind(&self) -> CcKind {
        CcKind::Timely
    }

    fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn on_signal(&mut self, sig: CcSignal, now_ps: u64) -> Option<CcAction> {
        match sig {
            CcSignal::AckRtt { rtt_ps } => self.on_rtt(rtt_ps, now_ps),
            // TIMELY is delay-driven; CNPs, byte counts and ticks carry no
            // information it uses.
            CcSignal::Cnp | CcSignal::BytesSent { .. } | CcSignal::Tick => None,
        }
    }

    fn rate_changes(&self) -> u64 {
        self.rate_changes
    }
}

/// The null controller: a constant pacing rate (line rate = congestion
/// control off). Ignores every signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedRate {
    rate_bps: f64,
}

impl FixedRate {
    /// Pace at `rate_bps` forever.
    pub fn new(rate_bps: f64) -> FixedRate {
        FixedRate { rate_bps }
    }
}

impl CongestionControl for FixedRate {
    fn kind(&self) -> CcKind {
        CcKind::Off
    }

    fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn on_signal(&mut self, _sig: CcSignal, _now_ps: u64) -> Option<CcAction> {
        None
    }

    fn rate_changes(&self) -> u64 {
        0
    }
}

/// Enum dispatch over the sender-role implementations. The NIC stores one
/// of these per QP — static dispatch keeps determinism auditable and the
/// per-packet cost of the paper-default path identical to the concrete
/// `RpState` it replaced.
#[derive(Debug, Clone)]
pub enum SenderCc {
    /// DCQCN reaction point.
    Dcqcn(DcqcnSender),
    /// TIMELY-style delay-gradient controller.
    Timely(TimelyState),
    /// Fixed-rate/off controller.
    Off(FixedRate),
}

impl SenderCc {
    /// Build the sender role from its parameters; `line_rate_bps` backs
    /// the fixed-rate/off controller.
    pub fn new(params: &CcParams, line_rate_bps: u64) -> SenderCc {
        match params {
            CcParams::Dcqcn(p) => SenderCc::Dcqcn(DcqcnSender::new(*p)),
            CcParams::Timely(p) => SenderCc::Timely(TimelyState::new(*p)),
            CcParams::Off => SenderCc::Off(FixedRate::new(line_rate_bps as f64)),
        }
    }
}

impl CongestionControl for SenderCc {
    fn kind(&self) -> CcKind {
        match self {
            SenderCc::Dcqcn(c) => c.kind(),
            SenderCc::Timely(c) => c.kind(),
            SenderCc::Off(c) => c.kind(),
        }
    }

    fn rate_bps(&self) -> f64 {
        match self {
            SenderCc::Dcqcn(c) => c.rate_bps(),
            SenderCc::Timely(c) => c.rate_bps(),
            SenderCc::Off(c) => c.rate_bps(),
        }
    }

    fn on_signal(&mut self, sig: CcSignal, now_ps: u64) -> Option<CcAction> {
        match self {
            SenderCc::Dcqcn(c) => c.on_signal(sig, now_ps),
            SenderCc::Timely(c) => c.on_signal(sig, now_ps),
            SenderCc::Off(c) => c.on_signal(sig, now_ps),
        }
    }

    fn rate_changes(&self) -> u64 {
        match self {
            SenderCc::Dcqcn(c) => c.rate_changes(),
            SenderCc::Timely(c) => c.rate_changes(),
            SenderCc::Off(c) => c.rate_changes(),
        }
    }
}

/// The receiver (notification) role: decides when a congestion
/// notification packet must travel back to the sender.
#[derive(Debug, Clone)]
pub enum ReceiverCc {
    /// DCQCN's notification point: one CNP per flow per
    /// [`NpParams::min_cnp_interval_ps`] on CE-marked arrivals.
    DcqcnNp(NpState),
    /// Never notifies (delay-based and off senders need no CNPs).
    Null,
}

impl ReceiverCc {
    /// A DCQCN notification point.
    pub fn dcqcn(params: NpParams) -> ReceiverCc {
        ReceiverCc::DcqcnNp(NpState::new(params))
    }

    /// A CE-marked packet arrived at `now_ps`; should a CNP be sent?
    pub fn on_ce_packet(&mut self, now_ps: u64) -> bool {
        match self {
            ReceiverCc::DcqcnNp(np) => np.on_ce_packet(now_ps),
            ReceiverCc::Null => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: u64 = 40_000_000_000;

    fn timely() -> TimelyState {
        TimelyState::new(TimelyParams::for_line_rate(LINE))
    }

    /// Feed a sample every update interval (advancing the shared clock so
    /// consecutive batches stay ordered) so each one may move the rate.
    fn feed_at(s: &mut TimelyState, now: &mut u64, rtts_us: &[u64]) {
        let step = s.params.update_every_ps;
        for &us in rtts_us {
            *now += step;
            s.on_signal(
                CcSignal::AckRtt {
                    rtt_ps: us * 1_000_000,
                },
                *now,
            );
        }
    }

    fn feed(s: &mut TimelyState, rtts_us: &[u64]) {
        let mut now = 0;
        feed_at(s, &mut now, rtts_us);
    }

    #[test]
    fn timely_cuts_rate_on_rising_rtt() {
        let mut s = timely();
        feed(&mut s, &[15, 20, 26, 33, 41]); // rising inside the band
        assert!(
            s.rate_bps() < 40e9,
            "rising RTT must cut the rate: {}",
            s.rate_bps()
        );
        assert!(s.rate_changes() > 0);
        assert!(s.normalized_gradient() > 0.0);
    }

    #[test]
    fn timely_additively_increases_on_falling_rtt() {
        let mut s = timely();
        let mut now = 0;
        // Rise first so there is headroom below line rate…
        feed_at(&mut s, &mut now, &[15, 20, 26, 33, 41, 45]);
        let cut = s.rate_bps();
        assert!(cut < 40e9);
        // …then fall: gradient goes negative, additive increase resumes.
        feed_at(&mut s, &mut now, &[40, 34, 28, 22, 16]);
        assert!(
            s.rate_bps() > cut,
            "falling RTT must recover: {} vs {}",
            s.rate_bps(),
            cut
        );
        // Each negative-gradient step adds at least δ.
        assert!(s.rate_bps() >= cut + TimelyParams::for_line_rate(LINE).add_bps);
    }

    #[test]
    fn timely_t_low_always_increases_t_high_always_cuts() {
        let mut s = timely();
        let mut now = 0;
        feed_at(&mut s, &mut now, &[20, 30, 40, 45]); // leave line rate
        let r = s.rate_bps();
        // Below t_low: additive increase regardless of gradient.
        feed_at(&mut s, &mut now, &[5, 5]);
        assert!(s.rate_bps() > r);
        let r = s.rate_bps();
        // Way above t_high: multiplicative brake.
        feed_at(&mut s, &mut now, &[200]);
        assert!(s.rate_bps() < r * 0.5, "t_high must brake hard");
    }

    #[test]
    fn timely_respects_floor_and_cap() {
        let mut s = timely();
        feed(&mut s, &[500; 200]);
        assert!(s.rate_bps() >= 10e6, "floor: {}", s.rate_bps());
        let mut s = timely();
        feed(&mut s, &[5; 200]);
        assert!(s.rate_bps() <= 40e9, "cap: {}", s.rate_bps());
    }

    #[test]
    fn timely_rate_updates_are_paced() {
        let mut s = timely();
        // Two samples inside one update interval: only the first may move
        // the rate (and the very first sample only seeds the gradient).
        s.on_signal(CcSignal::AckRtt { rtt_ps: 30_000_000 }, 1);
        s.on_signal(CcSignal::AckRtt { rtt_ps: 45_000_000 }, 2);
        assert_eq!(s.rate_bps(), 40e9, "no update before the interval");
        assert_eq!(s.samples(), 2, "samples still refresh the gradient");
    }

    #[test]
    fn dcqcn_sender_matches_raw_rp_state() {
        // The trait adapter must reproduce the concrete RP call sequence
        // bit-for-bit — this is the digest-neutrality argument in unit
        // test form.
        let params = RpParams::for_line_rate(LINE);
        let mut raw = RpState::new(params);
        let mut cc = SenderCc::new(&CcParams::Dcqcn(params), LINE);
        let mut acted = 0;
        for step in 0..2000u64 {
            if step % 97 == 0 {
                raw.on_cnp();
                if cc.on_signal(CcSignal::Cnp, step).is_some() {
                    acted += 1;
                }
            }
            raw.on_bytes_sent(64 * 1024);
            cc.on_signal(CcSignal::BytesSent { bytes: 64 * 1024 }, step);
            if step % 5 == 0 {
                raw.on_alpha_timer();
                raw.on_increase_timer();
                cc.on_signal(CcSignal::Tick, step);
            }
            assert_eq!(cc.rate_bps(), raw.rate_bps(), "diverged at step {step}");
        }
        assert_eq!(cc.rate_changes(), raw.rate_changes());
        assert!(acted > 0, "CNP cuts must surface as actions");
        assert_eq!(cc.kind(), CcKind::Dcqcn);
    }

    #[test]
    fn fixed_rate_ignores_everything() {
        let mut cc = SenderCc::new(&CcParams::Off, LINE);
        assert_eq!(cc.rate_bps(), 40e9);
        for sig in [
            CcSignal::Cnp,
            CcSignal::AckRtt { rtt_ps: 1_000_000 },
            CcSignal::BytesSent { bytes: 1 << 20 },
            CcSignal::Tick,
        ] {
            assert_eq!(cc.on_signal(sig, 123), None);
        }
        assert_eq!(cc.rate_bps(), 40e9);
        assert_eq!(cc.rate_changes(), 0);
        assert_eq!(cc.kind(), CcKind::Off);
    }

    #[test]
    fn params_tick_only_for_dcqcn() {
        assert_eq!(
            CcParams::for_line_rate(CcKind::Dcqcn, LINE).tick_period_ps(),
            Some(55_000_000)
        );
        assert_eq!(
            CcParams::for_line_rate(CcKind::Timely, LINE).tick_period_ps(),
            None
        );
        assert_eq!(CcParams::Off.tick_period_ps(), None);
        for k in [CcKind::Dcqcn, CcKind::Timely, CcKind::Off] {
            assert_eq!(CcParams::for_line_rate(k, LINE).kind(), k);
        }
    }

    #[test]
    fn receiver_role_rate_limits_or_stays_silent() {
        let mut np = ReceiverCc::dcqcn(NpParams::default());
        assert!(np.on_ce_packet(0));
        assert!(!np.on_ce_packet(10_000_000));
        assert!(np.on_ce_packet(50_000_000));
        let mut null = ReceiverCc::Null;
        assert!(!null.on_ce_packet(0));
        assert!(!null.on_ce_packet(50_000_000));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(CcKind::Dcqcn.name(), "dcqcn");
        assert_eq!(CcKind::Timely.name(), "timely");
        assert_eq!(CcKind::Off.name(), "off");
    }
}
