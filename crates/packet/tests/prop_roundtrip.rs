//! Randomized property tests: every codec must round-trip arbitrary field
//! values (masked to their wire widths), and wire sizes must be monotone
//! in payload. Driven by the workspace's in-tree deterministic `SimRng`
//! (seeded per test), so failures replay exactly.

use rocescale_packet::{
    Aeth, AethCode, ArpOp, ArpPacket, Bth, BthOpcode, EcnCodepoint, EthMeta, EtherType,
    EthernetHeader, Ipv4Header, Ipv4Meta, MacAddr, Packet, PacketKind, PauseFrame, PfcPauseFrame,
    Priority, RoceOpcode, RocePacket, TcpFlags, TcpSegment, UdpHeader, VlanTag,
};
use rocescale_sim::SimRng;

const CASES: u32 = 256;

fn rand_mac(rng: &mut SimRng) -> MacAddr {
    let mut b = [0u8; 6];
    for v in &mut b {
        *v = rng.next_u32() as u8;
    }
    MacAddr(b)
}

#[test]
fn ethernet_roundtrip() {
    let mut rng = SimRng::from_seed(0xE7E7_0001);
    for _ in 0..CASES {
        let h = EthernetHeader {
            dst: rand_mac(&mut rng),
            src: rand_mac(&mut rng),
            ethertype: EtherType::from_raw(rng.next_u32() as u16),
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, n) = EthernetHeader::decode(&buf).unwrap();
        assert_eq!(n, EthernetHeader::WIRE_LEN);
        assert_eq!(back, h);
    }
}

#[test]
fn vlan_roundtrip() {
    let mut rng = SimRng::from_seed(0xE7E7_0002);
    for _ in 0..CASES {
        let t = VlanTag::new(
            rng.gen_below(8) as u8,
            rng.gen_bool(0.5),
            rng.gen_below(4096) as u16,
            EtherType::Ipv4,
        );
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let (back, _) = VlanTag::decode(&buf).unwrap();
        assert_eq!(back, t);
    }
}

#[test]
fn ipv4_roundtrip() {
    let mut rng = SimRng::from_seed(0xE7E7_0003);
    for _ in 0..CASES {
        let h = Ipv4Header {
            dscp: rng.gen_below(64) as u8,
            ecn: rng.gen_below(4) as u8,
            total_len: rng.gen_range(20..1500) as u16,
            id: rng.next_u32() as u16,
            ttl: rng.gen_range(1..255) as u8,
            protocol: if rng.gen_bool(0.5) { 6 } else { 17 },
            src: rng.next_u32(),
            dst: rng.next_u32(),
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, n) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(n, 20);
        assert_eq!(back, h);
    }
}

/// Flipping any single bit of the IPv4 header must break the checksum
/// (the decoder either errors or — if the flip hits the checksum field
/// itself — still errors). Sweeps every bit position with random fields.
#[test]
fn ipv4_checksum_catches_any_single_bit_flip() {
    let mut rng = SimRng::from_seed(0xE7E7_0004);
    for bit in 0usize..160 {
        for _ in 0..4 {
            let h = Ipv4Header {
                dscp: 26,
                ecn: 1,
                total_len: 100,
                id: rng.next_u32() as u16,
                ttl: 64,
                protocol: 17,
                src: rng.next_u32(),
                dst: rng.next_u32(),
            };
            let mut buf = Vec::new();
            h.encode(&mut buf);
            buf[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Ipv4Header::decode(&buf).is_err(),
                "bit flip {bit} undetected"
            );
        }
    }
}

#[test]
fn udp_roundtrip() {
    let mut rng = SimRng::from_seed(0xE7E7_0005);
    for _ in 0..CASES {
        let h = UdpHeader {
            src_port: rng.next_u32() as u16,
            dst_port: rng.next_u32() as u16,
            len: rng.next_u32() as u16,
            checksum: 0,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, _) = UdpHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
    }
}

#[test]
fn bth_roundtrip() {
    const OPS: [BthOpcode; 15] = [
        BthOpcode::SendFirst,
        BthOpcode::SendMiddle,
        BthOpcode::SendLast,
        BthOpcode::SendOnly,
        BthOpcode::RdmaWriteFirst,
        BthOpcode::RdmaWriteMiddle,
        BthOpcode::RdmaWriteLast,
        BthOpcode::RdmaWriteOnly,
        BthOpcode::RdmaReadRequest,
        BthOpcode::RdmaReadResponseFirst,
        BthOpcode::RdmaReadResponseMiddle,
        BthOpcode::RdmaReadResponseLast,
        BthOpcode::RdmaReadResponseOnly,
        BthOpcode::Acknowledge,
        BthOpcode::Cnp,
    ];
    let mut rng = SimRng::from_seed(0xE7E7_0006);
    for _ in 0..CASES {
        let h = Bth {
            opcode: OPS[rng.gen_index(OPS.len())],
            se: rng.gen_bool(0.5),
            migreq: rng.gen_bool(0.5),
            pad: rng.gen_below(4) as u8,
            pkey: rng.next_u32() as u16,
            dest_qp: rng.gen_below(1 << 24) as u32,
            ack_req: rng.gen_bool(0.5),
            psn: rng.gen_below(1 << 24) as u32,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, _) = Bth::decode(&buf).unwrap();
        assert_eq!(back, h);
    }
}

#[test]
fn aeth_roundtrip() {
    let mut rng = SimRng::from_seed(0xE7E7_0007);
    for _ in 0..CASES {
        let msn = rng.gen_below(1 << 24) as u32;
        let nak_code = rng.gen_below(32) as u8;
        for code in [AethCode::Ack, AethCode::RnrNak, AethCode::Nak(nak_code)] {
            let h = Aeth { code, msn };
            let mut buf = Vec::new();
            h.encode(&mut buf);
            let (back, _) = Aeth::decode(&buf).unwrap();
            assert_eq!(back, h);
        }
    }
}

#[test]
fn pfc_roundtrip() {
    let mut rng = SimRng::from_seed(0xE7E7_0008);
    for _ in 0..CASES {
        let mut durations = [0u16; 8];
        for d in &mut durations {
            *d = rng.next_u32() as u16;
        }
        let f = PfcPauseFrame {
            class_enable: rng.next_u32() as u8,
            durations,
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (back, _) = PfcPauseFrame::decode(&buf).unwrap();
        assert_eq!(back, f);
    }
}

#[test]
fn arp_roundtrip() {
    let mut rng = SimRng::from_seed(0xE7E7_0009);
    for _ in 0..CASES {
        let p = ArpPacket {
            op: if rng.gen_bool(0.5) {
                ArpOp::Request
            } else {
                ArpOp::Reply
            },
            sender_mac: rand_mac(&mut rng),
            sender_ip: rng.next_u32(),
            target_mac: rand_mac(&mut rng),
            target_ip: rng.next_u32(),
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let (back, _) = ArpPacket::decode(&buf).unwrap();
        assert_eq!(back, p);
    }
}

/// wire_size is payload + a fixed overhead for every data opcode and
/// message position, and at least 64 for everything.
#[test]
fn wire_size_is_affine_in_payload() {
    const OPS: [RoceOpcode; 3] = [
        RoceOpcode::Send,
        RoceOpcode::Write,
        RoceOpcode::ReadResponse,
    ];
    let mut rng = SimRng::from_seed(0xE7E7_000A);
    for _ in 0..CASES {
        let payload = rng.gen_range(64..4096) as u32;
        let first = rng.gen_bool(0.5);
        let last = rng.gen_bool(0.5);
        let op = OPS[rng.gen_index(OPS.len())];
        let mk = |payload| {
            Packet::new(
                0,
                EthMeta {
                    src: MacAddr::from_id(1),
                    dst: MacAddr::from_id(2),
                    vlan: None,
                },
                Some(Ipv4Meta {
                    src: 1,
                    dst: 2,
                    dscp: 26,
                    ecn: EcnCodepoint::Ect,
                    id: 0,
                    ttl: 64,
                }),
                PacketKind::Roce(RocePacket {
                    opcode: op,
                    dest_qp: 0,
                    src_qp: 0,
                    psn: 0,
                    payload,
                    is_first: first,
                    is_last: last,
                    udp_src: 1,
                }),
                0,
            )
        };
        let a = mk(payload).wire_size();
        let b = mk(payload + 100).wire_size();
        assert_eq!(b - a, 100);
        assert!(a >= 64);
    }
}

/// The wire size cached on `Packet` at construction must equal the
/// recomputed header arithmetic for arbitrary packet kinds — including
/// payloads small enough to hit the 64-byte minimum-frame clamp — and
/// with and without a VLAN tag.
#[test]
fn cached_wire_size_matches_recomputation() {
    const OPS: [RoceOpcode; 7] = [
        RoceOpcode::Send,
        RoceOpcode::Write,
        RoceOpcode::ReadRequest,
        RoceOpcode::ReadResponse,
        RoceOpcode::Ack,
        RoceOpcode::Nak,
        RoceOpcode::Cnp,
    ];
    let mut rng = SimRng::from_seed(0xE7E7_000B);
    for case in 0..CASES {
        let vlan = if rng.gen_bool(0.5) {
            Some((rng.gen_below(8) as u8, rng.gen_below(4096) as u16))
        } else {
            None
        };
        let eth = EthMeta {
            src: rand_mac(&mut rng),
            dst: rand_mac(&mut rng),
            vlan,
        };
        let ip = Some(Ipv4Meta {
            src: rng.next_u32(),
            dst: rng.next_u32(),
            dscp: rng.gen_below(64) as u8,
            ecn: EcnCodepoint::Ect,
            id: rng.next_u32() as u16,
            ttl: 64,
        });
        // Bias payloads toward tiny values so the 64-byte clamp is
        // exercised often, not just occasionally.
        let payload = if rng.gen_bool(0.5) {
            rng.gen_below(16) as u32
        } else {
            rng.gen_below(4096) as u32
        };
        let kind = match case % 5 {
            0 => PacketKind::Roce(RocePacket {
                opcode: OPS[rng.gen_index(OPS.len())],
                dest_qp: rng.gen_below(1 << 24) as u32,
                src_qp: rng.gen_below(1 << 24) as u32,
                psn: rng.gen_below(1 << 24) as u32,
                payload,
                is_first: rng.gen_bool(0.5),
                is_last: rng.gen_bool(0.5),
                udp_src: rng.next_u32() as u16,
            }),
            1 => PacketKind::Pfc(PauseFrame::pause(
                Priority::new(rng.gen_below(8) as u8),
                rng.next_u32() as u16,
            )),
            2 => PacketKind::Arp {
                request: rng.gen_bool(0.5),
                target_ip: rng.next_u32(),
            },
            3 => PacketKind::Tcp(TcpSegment {
                src_port: rng.next_u32() as u16,
                dst_port: rng.next_u32() as u16,
                seq: rng.next_u64(),
                ack: rng.next_u64(),
                flags: TcpFlags::default(),
                payload,
                ece: rng.gen_bool(0.5),
            }),
            _ => PacketKind::Raw {
                label: rng.next_u32() as u16,
                size: rng.gen_below(2048) as u32, // includes sizes < 64
            },
        };
        let ip = if matches!(kind, PacketKind::Roce(_) | PacketKind::Tcp(_)) {
            ip
        } else {
            None
        };
        let pkt = Packet::new(case as u64, eth, ip, kind, 0);
        assert_eq!(
            pkt.wire_size(),
            Packet::compute_wire_size(&pkt.eth, &pkt.kind),
            "cached wire size deviates from reference arithmetic: {pkt:?}"
        );
        assert!(pkt.wire_size_is_fresh());
        assert!(pkt.wire_size() >= 64, "minimum frame clamp violated");
    }
}
