//! Property tests: every codec must round-trip arbitrary field values
//! (masked to their wire widths), and wire sizes must be monotone in
//! payload.

use proptest::prelude::*;
use rocescale_packet::{
    Aeth, AethCode, ArpOp, ArpPacket, Bth, BthOpcode, EthMeta, EthernetHeader, EtherType,
    Ipv4Header, MacAddr, Packet, PacketKind, PfcPauseFrame, RoceOpcode, RocePacket, UdpHeader,
    VlanTag, EcnCodepoint, Ipv4Meta,
};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), et in any::<u16>()) {
        let h = EthernetHeader { dst, src, ethertype: EtherType::from_raw(et) };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, n) = EthernetHeader::decode(&buf).unwrap();
        prop_assert_eq!(n, EthernetHeader::WIRE_LEN);
        prop_assert_eq!(back, h);
    }

    #[test]
    fn vlan_roundtrip(pcp in 0u8..8, dei in any::<bool>(), vid in 0u16..4096) {
        let t = VlanTag::new(pcp, dei, vid, EtherType::Ipv4);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let (back, _) = VlanTag::decode(&buf).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn ipv4_roundtrip(
        dscp in 0u8..64, ecn in 0u8..4, len in 20u16..1500, id in any::<u16>(),
        ttl in 1u8..255, proto in prop::sample::select(vec![6u8, 17]),
        src in any::<u32>(), dst in any::<u32>(),
    ) {
        let h = Ipv4Header { dscp, ecn, total_len: len, id, ttl, protocol: proto, src, dst };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, n) = Ipv4Header::decode(&buf).unwrap();
        prop_assert_eq!(n, 20);
        prop_assert_eq!(back, h);
    }

    /// Flipping any single bit of the IPv4 header must break the checksum
    /// (the decoder either errors or — if the flip hits the checksum field
    /// itself — still errors).
    #[test]
    fn ipv4_checksum_catches_any_single_bit_flip(
        id in any::<u16>(), src in any::<u32>(), dst in any::<u32>(),
        bit in 0usize..160,
    ) {
        let h = Ipv4Header {
            dscp: 26, ecn: 1, total_len: 100, id, ttl: 64, protocol: 17, src, dst,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(Ipv4Header::decode(&buf).is_err());
    }

    #[test]
    fn udp_roundtrip(sp in any::<u16>(), dp in any::<u16>(), len in any::<u16>()) {
        let h = UdpHeader { src_port: sp, dst_port: dp, len, checksum: 0 };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, _) = UdpHeader::decode(&buf).unwrap();
        prop_assert_eq!(back, h);
    }

    #[test]
    fn bth_roundtrip(
        op in prop::sample::select(vec![
            BthOpcode::SendFirst, BthOpcode::SendMiddle, BthOpcode::SendLast,
            BthOpcode::SendOnly, BthOpcode::RdmaWriteFirst, BthOpcode::RdmaWriteMiddle,
            BthOpcode::RdmaWriteLast, BthOpcode::RdmaWriteOnly, BthOpcode::RdmaReadRequest,
            BthOpcode::RdmaReadResponseFirst, BthOpcode::RdmaReadResponseMiddle,
            BthOpcode::RdmaReadResponseLast, BthOpcode::RdmaReadResponseOnly,
            BthOpcode::Acknowledge, BthOpcode::Cnp,
        ]),
        se in any::<bool>(), mig in any::<bool>(), pad in 0u8..4,
        pkey in any::<u16>(), qp in 0u32..(1 << 24), ar in any::<bool>(),
        psn in 0u32..(1 << 24),
    ) {
        let h = Bth {
            opcode: op, se, migreq: mig, pad, pkey, dest_qp: qp, ack_req: ar, psn,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, _) = Bth::decode(&buf).unwrap();
        prop_assert_eq!(back, h);
    }

    #[test]
    fn aeth_roundtrip(msn in 0u32..(1 << 24), nak_code in 0u8..32) {
        for code in [AethCode::Ack, AethCode::RnrNak, AethCode::Nak(nak_code)] {
            let h = Aeth { code, msn };
            let mut buf = Vec::new();
            h.encode(&mut buf);
            let (back, _) = Aeth::decode(&buf).unwrap();
            prop_assert_eq!(back, h);
        }
    }

    #[test]
    fn pfc_roundtrip(cev in any::<u8>(), durations in any::<[u16; 8]>()) {
        let f = PfcPauseFrame { class_enable: cev, durations };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (back, _) = PfcPauseFrame::decode(&buf).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn arp_roundtrip(
        req in any::<bool>(), smac in arb_mac(), sip in any::<u32>(),
        tmac in arb_mac(), tip in any::<u32>(),
    ) {
        let p = ArpPacket {
            op: if req { ArpOp::Request } else { ArpOp::Reply },
            sender_mac: smac, sender_ip: sip, target_mac: tmac, target_ip: tip,
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let (back, _) = ArpPacket::decode(&buf).unwrap();
        prop_assert_eq!(back, p);
    }

    /// wire_size is payload + a fixed overhead for every data opcode and
    /// message position, and at least 64 for everything.
    #[test]
    fn wire_size_is_affine_in_payload(
        payload in 64u32..4096,
        first in any::<bool>(), last in any::<bool>(),
        op in prop::sample::select(vec![RoceOpcode::Send, RoceOpcode::Write, RoceOpcode::ReadResponse]),
    ) {
        let mk = |payload| Packet {
            id: 0,
            eth: EthMeta { src: MacAddr::from_id(1), dst: MacAddr::from_id(2), vlan: None },
            ip: Some(Ipv4Meta {
                src: 1, dst: 2, dscp: 26, ecn: EcnCodepoint::Ect, id: 0, ttl: 64,
            }),
            kind: PacketKind::Roce(RocePacket {
                opcode: op, dest_qp: 0, src_qp: 0, psn: 0, payload,
                is_first: first, is_last: last, udp_src: 1,
            }),
            created_ps: 0,
        };
        let a = mk(payload).wire_size();
        let b = mk(payload + 100).wire_size();
        prop_assert_eq!(b - a, 100);
        prop_assert!(a >= 64);
    }
}
