//! Wire formats and the in-simulator packet model for `rocescale`.
//!
//! This crate has two halves:
//!
//! * **Wire formats** ([`wire`]): byte-exact encoders/decoders for every
//!   header the paper touches — Ethernet, 802.1Q VLAN tags, IPv4 (with the
//!   DSCP and ECN fields that carry packet priority and congestion marks),
//!   UDP, the RoCEv2 Base Transport Header and its ACK/RDMA extensions,
//!   the 802.1Qbb PFC pause frame, and ARP. Figure 3 of the paper is a
//!   diagram of exactly these layouts; the codecs here reproduce it bit
//!   for bit and are exercised by round-trip and property tests.
//!
//! * **Simulation model** ([`model`]): the compact in-memory [`Packet`]
//!   representation the discrete-event simulator moves around. The model
//!   carries parsed header metadata (MACs, IPs, DSCP, ECN, BTH fields …)
//!   rather than raw bytes, but its [`Packet::wire_size`] is computed from
//!   the real encodings so that serialization delays, buffer occupancy and
//!   the paper's 1086-byte frame arithmetic are exact.
//!
//! The crate is `#![forbid(unsafe_code)]`, allocation-light, and has no
//! knowledge of simulated time: timestamps that appear in a few payload
//! types are plain `u64` picosecond values owned by the caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod wire;

pub use model::{
    EcnCodepoint, EthMeta, FiveTuple, Ipv4Meta, L4Meta, Packet, PacketKind, PauseFrame, Priority,
    RoceOpcode, RocePacket, TcpFlags, TcpSegment,
};
pub use wire::{
    arp::{ArpOp, ArpPacket},
    bth::{Aeth, AethCode, Bth, BthOpcode, Reth},
    ethernet::{EtherType, EthernetHeader, MacAddr},
    ipv4::Ipv4Header,
    pfc::PfcPauseFrame,
    udp::UdpHeader,
    vlan::VlanTag,
};

/// The UDP destination port reserved for RoCEv2 (§2 of the paper: "The
/// destination UDP port is always set to 4791, while the source UDP port is
/// randomly chosen for each queue pair").
pub const ROCEV2_UDP_PORT: u16 = 4791;

/// Default payload bytes carried per RoCEv2 data packet; the resulting
/// untagged frame is the paper's 1086 bytes (§5.4).
pub const ROCE_PAYLOAD_MTU: u32 = 1024;

/// Errors produced by the wire-format decoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed part of the header.
    Truncated {
        /// Header family that failed to decode.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A field has a value the decoder cannot interpret.
    BadField {
        /// Header family that failed to decode.
        what: &'static str,
        /// Field name.
        field: &'static str,
        /// Observed raw value.
        value: u64,
    },
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated { what, need, have } => {
                write!(f, "{what}: truncated (need {need} bytes, have {have})")
            }
            DecodeError::BadField { what, field, value } => {
                write!(f, "{what}: bad field {field} = {value:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}
