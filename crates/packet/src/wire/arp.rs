//! ARP (RFC 826) for IPv4-over-Ethernet.
//!
//! ARP matters to the paper in an unexpected way: the *disparate timeouts*
//! of the switch ARP table (≈4 h) and MAC table (≈5 min) produce
//! "incomplete" entries — IP→MAC known, MAC→port unknown — which make the
//! switch flood lossless packets, which is the root cause of the §4.2
//! deadlock.

use crate::wire::buf::BufMut;

use crate::DecodeError;

use super::ethernet::MacAddr;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// An Ethernet/IPv4 ARP packet (28 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol (IPv4) address.
    pub sender_ip: u32,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol (IPv4) address.
    pub target_ip: u32,
}

impl ArpPacket {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 28;

    /// Append the packet to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(1); // htype = Ethernet
        buf.put_u16(0x0800); // ptype = IPv4
        buf.put_u8(6); // hlen
        buf.put_u8(4); // plen
        buf.put_u16(match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        });
        buf.put_slice(&self.sender_mac.0);
        buf.put_u32(self.sender_ip);
        buf.put_slice(&self.target_mac.0);
        buf.put_u32(self.target_ip);
    }

    /// Decode from the front of `buf`, returning the packet and bytes
    /// consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("arp", buf, Self::WIRE_LEN)?;
        let htype = u16::from_be_bytes([buf[0], buf[1]]);
        let ptype = u16::from_be_bytes([buf[2], buf[3]]);
        if htype != 1 || ptype != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(DecodeError::BadField {
                what: "arp",
                field: "htype/ptype/hlen/plen",
                value: ((htype as u64) << 16) | ptype as u64,
            });
        }
        let op = match u16::from_be_bytes([buf[6], buf[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => {
                return Err(DecodeError::BadField {
                    what: "arp",
                    field: "op",
                    value: other as u64,
                })
            }
        };
        let mut sender_mac = [0u8; 6];
        sender_mac.copy_from_slice(&buf[8..14]);
        let sender_ip = u32::from_be_bytes(buf[14..18].try_into().unwrap());
        let mut target_mac = [0u8; 6];
        target_mac.copy_from_slice(&buf[18..24]);
        let target_ip = u32::from_be_bytes(buf[24..28].try_into().unwrap());
        Ok((
            ArpPacket {
                op,
                sender_mac: MacAddr(sender_mac),
                sender_ip,
                target_mac: MacAddr(target_mac),
                target_ip,
            },
            Self::WIRE_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::from_id(12),
            sender_ip: 0x0a000102,
            target_mac: MacAddr::from_id(13),
            target_ip: 0x0a000103,
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), 28);
        let (back, n) = ArpPacket::decode(&buf).unwrap();
        assert_eq!(n, 28);
        assert_eq!(back, p);
    }

    #[test]
    fn bad_op_rejected() {
        let p = ArpPacket {
            op: ArpOp::Request,
            sender_mac: MacAddr::from_id(1),
            sender_ip: 1,
            target_mac: MacAddr::default(),
            target_ip: 2,
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        buf[7] = 9;
        assert!(ArpPacket::decode(&buf).is_err());
    }
}
