//! RoCEv2 / InfiniBand transport headers: the 12-byte Base Transport Header
//! (BTH), the RDMA Extended Transport Header (RETH) used by WRITE and READ,
//! and the ACK Extended Transport Header (AETH) used by ACK/NAK.
//!
//! Only the Reliable Connected (RC) service relevant to the paper is
//! modelled. The AETH syndrome encodes ACK vs NAK — the NAK(i) of §4.1's
//! livelock analysis is `AethCode::NakPsnSequenceError` carried here.

use crate::wire::buf::BufMut;

use crate::DecodeError;

/// RC-service BTH opcodes (IBTA spec table 38, RoCEv2 annex for CNP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum BthOpcode {
    SendFirst = 0x00,
    SendMiddle = 0x01,
    SendLast = 0x02,
    SendOnly = 0x04,
    RdmaWriteFirst = 0x06,
    RdmaWriteMiddle = 0x07,
    RdmaWriteLast = 0x08,
    RdmaWriteOnly = 0x0a,
    RdmaReadRequest = 0x0c,
    RdmaReadResponseFirst = 0x0d,
    RdmaReadResponseMiddle = 0x0e,
    RdmaReadResponseLast = 0x0f,
    RdmaReadResponseOnly = 0x10,
    Acknowledge = 0x11,
    /// RoCEv2 Congestion Notification Packet (DCQCN's NP -> RP signal).
    Cnp = 0x81,
}

impl BthOpcode {
    /// Parse from the raw opcode byte.
    pub fn from_raw(v: u8) -> Result<BthOpcode, DecodeError> {
        use BthOpcode::*;
        Ok(match v {
            0x00 => SendFirst,
            0x01 => SendMiddle,
            0x02 => SendLast,
            0x04 => SendOnly,
            0x06 => RdmaWriteFirst,
            0x07 => RdmaWriteMiddle,
            0x08 => RdmaWriteLast,
            0x0a => RdmaWriteOnly,
            0x0c => RdmaReadRequest,
            0x0d => RdmaReadResponseFirst,
            0x0e => RdmaReadResponseMiddle,
            0x0f => RdmaReadResponseLast,
            0x10 => RdmaReadResponseOnly,
            0x11 => Acknowledge,
            0x81 => Cnp,
            other => {
                return Err(DecodeError::BadField {
                    what: "bth",
                    field: "opcode",
                    value: other as u64,
                })
            }
        })
    }

    /// True for opcodes that carry a RETH (first packet of WRITE, and READ
    /// requests).
    pub fn has_reth(self) -> bool {
        matches!(
            self,
            BthOpcode::RdmaWriteFirst | BthOpcode::RdmaWriteOnly | BthOpcode::RdmaReadRequest
        )
    }

    /// True for opcodes that carry an AETH (ACK and READ responses except
    /// middle).
    pub fn has_aeth(self) -> bool {
        matches!(
            self,
            BthOpcode::Acknowledge
                | BthOpcode::RdmaReadResponseFirst
                | BthOpcode::RdmaReadResponseLast
                | BthOpcode::RdmaReadResponseOnly
        )
    }
}

/// The 12-byte Base Transport Header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bth {
    /// Operation code.
    pub opcode: BthOpcode,
    /// Solicited event flag.
    pub se: bool,
    /// Migration request flag.
    pub migreq: bool,
    /// Pad count (bytes of padding in the payload), 2 bits.
    pub pad: u8,
    /// Partition key.
    pub pkey: u16,
    /// Destination queue pair number, 24 bits.
    pub dest_qp: u32,
    /// ACK-request flag.
    pub ack_req: bool,
    /// Packet sequence number, 24 bits.
    pub psn: u32,
}

impl Bth {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 12;

    /// PSNs are 24-bit and wrap; this is the modulus.
    pub const PSN_MODULUS: u32 = 1 << 24;

    /// Append the header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.opcode as u8);
        // SE(1) | M(1) | Pad(2) | TVer(4), transport version 0.
        buf.put_u8(((self.se as u8) << 7) | ((self.migreq as u8) << 6) | ((self.pad & 0x3) << 4));
        buf.put_u16(self.pkey);
        let qp = self.dest_qp & 0x00ff_ffff;
        buf.put_u32(qp); // top byte reserved = 0
        let psn = self.psn & 0x00ff_ffff;
        buf.put_u32(((self.ack_req as u32) << 31) | psn);
    }

    /// Decode from the front of `buf`, returning the header and bytes
    /// consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("bth", buf, Self::WIRE_LEN)?;
        let opcode = BthOpcode::from_raw(buf[0])?;
        let flags = buf[1];
        if flags & 0x0f != 0 {
            return Err(DecodeError::BadField {
                what: "bth",
                field: "tver",
                value: (flags & 0x0f) as u64,
            });
        }
        let w2 = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]);
        Ok((
            Bth {
                opcode,
                se: flags & 0x80 != 0,
                migreq: flags & 0x40 != 0,
                pad: (flags >> 4) & 0x3,
                pkey: u16::from_be_bytes([buf[2], buf[3]]),
                dest_qp: u32::from_be_bytes([0, buf[5], buf[6], buf[7]]),
                ack_req: w2 & 0x8000_0000 != 0,
                psn: w2 & 0x00ff_ffff,
            },
            Self::WIRE_LEN,
        ))
    }
}

/// RDMA Extended Transport Header (16 bytes) — virtual address, remote key,
/// and DMA length for WRITE first/only and READ requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reth {
    /// Remote virtual address.
    pub va: u64,
    /// Remote memory key.
    pub rkey: u32,
    /// DMA length in bytes.
    pub dma_len: u32,
}

impl Reth {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 16;

    /// Append the header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.va);
        buf.put_u32(self.rkey);
        buf.put_u32(self.dma_len);
    }

    /// Decode from the front of `buf`, returning the header and bytes
    /// consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("reth", buf, Self::WIRE_LEN)?;
        Ok((
            Reth {
                va: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
                rkey: u32::from_be_bytes(buf[8..12].try_into().unwrap()),
                dma_len: u32::from_be_bytes(buf[12..16].try_into().unwrap()),
            },
            Self::WIRE_LEN,
        ))
    }
}

/// Decoded AETH syndrome meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AethCode {
    /// Positive acknowledgement; the payload is the credit count.
    Ack,
    /// Receiver-not-ready NAK; the payload is the RNR timer code.
    RnrNak,
    /// NAK. Payload 0 = PSN sequence error — the NAK(i) of §4.1.
    Nak(u8),
}

/// ACK Extended Transport Header (4 bytes): syndrome + 24-bit message
/// sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aeth {
    /// ACK/NAK discriminator and detail.
    pub code: AethCode,
    /// Message sequence number, 24 bits.
    pub msn: u32,
}

impl Aeth {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 4;

    /// AETH for a PSN-sequence-error NAK.
    pub fn nak_sequence_error(msn: u32) -> Aeth {
        Aeth {
            code: AethCode::Nak(0),
            msn,
        }
    }

    /// Append the header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let syndrome: u8 = match self.code {
            // 000xxxxx = ACK (xxxxx = credits, we send 31 = unlimited)
            AethCode::Ack => 0b000_11111,
            // 001xxxxx = RNR NAK
            AethCode::RnrNak => 0b001_00000,
            // 011xxxxx = NAK, xxxxx = code
            AethCode::Nak(c) => 0b011_00000 | (c & 0x1f),
        };
        buf.put_u32(((syndrome as u32) << 24) | (self.msn & 0x00ff_ffff));
    }

    /// Decode from the front of `buf`, returning the header and bytes
    /// consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("aeth", buf, Self::WIRE_LEN)?;
        let w = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let syndrome = (w >> 24) as u8;
        let code = match syndrome >> 5 {
            0b000 => AethCode::Ack,
            0b001 => AethCode::RnrNak,
            0b011 => AethCode::Nak(syndrome & 0x1f),
            other => {
                return Err(DecodeError::BadField {
                    what: "aeth",
                    field: "syndrome",
                    value: other as u64,
                })
            }
        };
        Ok((
            Aeth {
                code,
                msn: w & 0x00ff_ffff,
            },
            Self::WIRE_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bth_roundtrip() {
        let h = Bth {
            opcode: BthOpcode::SendMiddle,
            se: true,
            migreq: false,
            pad: 2,
            pkey: 0xffff,
            dest_qp: 0x00ab_cdef,
            ack_req: true,
            psn: 0x00fe_dcba,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), 12);
        let (back, n) = Bth::decode(&buf).unwrap();
        assert_eq!(n, 12);
        assert_eq!(back, h);
    }

    #[test]
    fn bth_masks_24bit_fields() {
        let h = Bth {
            opcode: BthOpcode::Acknowledge,
            se: false,
            migreq: false,
            pad: 0,
            pkey: 0,
            dest_qp: 0xff00_0001,
            ack_req: false,
            psn: 0xff00_0002,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, _) = Bth::decode(&buf).unwrap();
        assert_eq!(back.dest_qp, 0x0000_0001);
        assert_eq!(back.psn, 0x0000_0002);
    }

    #[test]
    fn reth_roundtrip() {
        let h = Reth {
            va: 0xdead_beef_0000_1000,
            rkey: 42,
            dma_len: 4 << 20,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, n) = Reth::decode(&buf).unwrap();
        assert_eq!(n, 16);
        assert_eq!(back, h);
    }

    #[test]
    fn aeth_ack_and_nak() {
        for code in [
            AethCode::Ack,
            AethCode::RnrNak,
            AethCode::Nak(0),
            AethCode::Nak(3),
        ] {
            let h = Aeth { code, msn: 77 };
            let mut buf = Vec::new();
            h.encode(&mut buf);
            let (back, n) = Aeth::decode(&buf).unwrap();
            assert_eq!(n, 4);
            assert_eq!(back.msn, 77);
            assert_eq!(back.code, code);
        }
    }

    #[test]
    fn opcode_extension_headers() {
        assert!(BthOpcode::RdmaWriteFirst.has_reth());
        assert!(BthOpcode::RdmaReadRequest.has_reth());
        assert!(!BthOpcode::SendOnly.has_reth());
        assert!(BthOpcode::Acknowledge.has_aeth());
        assert!(!BthOpcode::RdmaReadResponseMiddle.has_aeth());
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(BthOpcode::from_raw(0x55).is_err());
    }
}
