//! Ethernet II framing: MAC addresses and the 14-byte Ethernet header.

use crate::wire::buf::BufMut;

use crate::DecodeError;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The 802.3x/802.1Qbb MAC-control multicast destination
    /// `01:80:c2:00:00:01` used by pause frames.
    pub const PAUSE_MULTICAST: MacAddr = MacAddr([0x01, 0x80, 0xc2, 0x00, 0x00, 0x01]);

    /// Returns true for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Deterministically derives a locally-administered unicast MAC from a
    /// small integer id — handy for building simulated fleets.
    pub fn from_id(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl core::fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Display::fmt(self, f)
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// Recognised EtherType values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// 802.1Q VLAN tag (0x8100).
    VlanTagged,
    /// MAC control (0x8808) — PFC pause frames.
    MacControl,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The raw 16-bit value.
    pub fn raw(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::VlanTagged => 0x8100,
            EtherType::MacControl => 0x8808,
            EtherType::Other(v) => v,
        }
    }

    /// Parse from the raw 16-bit value.
    pub fn from_raw(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::VlanTagged,
            0x8808 => EtherType::MacControl,
            other => EtherType::Other(other),
        }
    }
}

/// The 14-byte Ethernet II header (destination, source, EtherType).
///
/// A following 802.1Q tag, when present, is handled by
/// [`crate::wire::vlan::VlanTag`]; this header's `ethertype` is then
/// `EtherType::VlanTagged`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the next header.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 14;

    /// Length of the trailing frame check sequence every Ethernet frame
    /// carries on the wire.
    pub const FCS_LEN: usize = 4;

    /// Append the header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype.raw());
    }

    /// Decode from the front of `buf`, returning the header and the bytes
    /// consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("ethernet", buf, Self::WIRE_LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_raw(u16::from_be_bytes([buf[12], buf[13]]));
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            Self::WIRE_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EthernetHeader {
            dst: MacAddr::from_id(7),
            src: MacAddr::from_id(9),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), EthernetHeader::WIRE_LEN);
        let (back, used) = EthernetHeader::decode(&buf).unwrap();
        assert_eq!(used, 14);
        assert_eq!(back, h);
    }

    #[test]
    fn truncated_is_error() {
        assert!(matches!(
            EthernetHeader::decode(&[0u8; 13]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::PAUSE_MULTICAST.is_multicast());
        assert!(!MacAddr::from_id(3).is_multicast());
    }

    #[test]
    fn ethertype_raw_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x8100, 0x8808, 0x86dd, 0x1234] {
            assert_eq!(EtherType::from_raw(v).raw(), v);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(MacAddr::PAUSE_MULTICAST.to_string(), "01:80:c2:00:00:01");
    }
}
