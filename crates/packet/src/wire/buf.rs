//! Minimal in-tree replacement for the `bytes` crate's `BufMut`, covering
//! exactly what the header codecs need: appending big-endian integers and
//! raw slices to a growable buffer. Keeping it in-tree lets the workspace
//! build hermetically (`cargo build --offline`) with no registry access.

/// A byte sink the wire codecs encode into. All integer writes are
/// big-endian (network byte order), matching the `bytes::BufMut` methods
/// the codecs were written against.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Append a raw slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v);
    }
    fn put_u16(&mut self, v: u16) {
        (**self).put_u16(v);
    }
    fn put_u32(&mut self, v: u32) {
        (**self).put_u32(v);
    }
    fn put_u64(&mut self, v: u64) {
        (**self).put_u64(v);
    }
    fn put_slice(&mut self, s: &[u8]) {
        (**self).put_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_big_endian_and_appended() {
        let mut b: Vec<u8> = vec![0xaa];
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        b.put_slice(&[0xfe, 0xff]);
        assert_eq!(
            b,
            vec![
                0xaa, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                0x0e, 0x0f, 0xfe, 0xff
            ]
        );
    }
}
