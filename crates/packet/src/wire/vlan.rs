//! 802.1Q VLAN tag — the 4-byte tag whose PCP field carries packet priority
//! in *VLAN-based* PFC (Figure 3(a) of the paper).
//!
//! The paper's central §3 observation is that this tag couples two things
//! that should be independent: the 3-bit PCP (priority) and the 12-bit VID
//! (VLAN membership). DSCP-based PFC moves the priority into the IP header
//! so that the tag — and switch trunk mode — can be dropped entirely.

use crate::wire::buf::BufMut;

use crate::DecodeError;

use super::ethernet::EtherType;

/// A parsed 802.1Q tag: TPID (implicitly 0x8100), PCP, DEI, VID, plus the
/// EtherType of the encapsulated payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VlanTag {
    /// Priority Code Point, 3 bits — the field VLAN-based PFC keys on.
    pub pcp: u8,
    /// Drop Eligible Indicator, 1 bit.
    pub dei: bool,
    /// VLAN identifier, 12 bits.
    pub vid: u16,
    /// EtherType of the header following the tag.
    pub inner_ethertype: EtherType,
}

impl VlanTag {
    /// Encoded length in bytes (TCI + inner EtherType; the 0x8100 TPID is
    /// the preceding Ethernet header's EtherType).
    pub const WIRE_LEN: usize = 4;

    /// Construct a tag, masking fields to their wire widths.
    pub fn new(pcp: u8, dei: bool, vid: u16, inner_ethertype: EtherType) -> VlanTag {
        VlanTag {
            pcp: pcp & 0x7,
            dei,
            vid: vid & 0x0fff,
            inner_ethertype,
        }
    }

    /// Append the tag (TCI + inner EtherType) to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let tci: u16 =
            ((self.pcp as u16 & 0x7) << 13) | ((self.dei as u16) << 12) | (self.vid & 0x0fff);
        buf.put_u16(tci);
        buf.put_u16(self.inner_ethertype.raw());
    }

    /// Decode from the front of `buf` (positioned just after the 0x8100
    /// TPID), returning the tag and bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("vlan", buf, Self::WIRE_LEN)?;
        let tci = u16::from_be_bytes([buf[0], buf[1]]);
        let inner = EtherType::from_raw(u16::from_be_bytes([buf[2], buf[3]]));
        Ok((
            VlanTag {
                pcp: (tci >> 13) as u8,
                dei: (tci >> 12) & 1 == 1,
                vid: tci & 0x0fff,
                inner_ethertype: inner,
            },
            Self::WIRE_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_pcp() {
        for pcp in 0..8u8 {
            let tag = VlanTag::new(pcp, pcp % 2 == 0, 100 + pcp as u16, EtherType::Ipv4);
            let mut buf = Vec::new();
            tag.encode(&mut buf);
            assert_eq!(buf.len(), VlanTag::WIRE_LEN);
            let (back, used) = VlanTag::decode(&buf).unwrap();
            assert_eq!(used, 4);
            assert_eq!(back, tag);
        }
    }

    #[test]
    fn field_masking() {
        let tag = VlanTag::new(0xff, false, 0xffff, EtherType::Ipv4);
        assert_eq!(tag.pcp, 7);
        assert_eq!(tag.vid, 0x0fff);
    }

    #[test]
    fn truncated() {
        assert!(VlanTag::decode(&[0u8; 3]).is_err());
    }
}
