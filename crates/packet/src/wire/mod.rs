//! Byte-exact header codecs.
//!
//! Every codec follows the same shape: a plain struct of parsed fields, a
//! `WIRE_LEN` (or `wire_len()` for variable-length headers), `encode` into a
//! `BufMut`, and `decode` from a byte slice returning
//! `Result<(Self, usize), DecodeError>` where the `usize` is bytes consumed.
//! Network byte order throughout.

pub mod arp;
pub mod bth;
pub mod buf;
pub mod ethernet;
pub mod ipv4;
pub mod pfc;
pub mod udp;
pub mod vlan;

pub(crate) fn need(what: &'static str, buf: &[u8], need: usize) -> Result<(), crate::DecodeError> {
    if buf.len() < need {
        Err(crate::DecodeError::Truncated {
            what,
            need,
            have: buf.len(),
        })
    } else {
        Ok(())
    }
}
