//! UDP header. RoCEv2 encapsulates the RDMA transport in UDP so that ECMP's
//! standard five-tuple hashing can spread queue pairs over multiple paths:
//! the destination port is fixed at 4791 and the *source* port is chosen
//! randomly per queue pair (§2).

use crate::wire::buf::BufMut;

use crate::DecodeError;

/// The 8-byte UDP header. The checksum is carried but not validated by the
/// decoder (RoCEv2 relies on its own ICRC end-to-end; a zero UDP checksum
/// is legal for IPv4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port — per-QP random value for path diversity.
    pub src_port: u16,
    /// Destination port — 4791 for RoCEv2.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub len: u16,
    /// Optional checksum (0 = none).
    pub checksum: u16,
}

impl UdpHeader {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 8;

    /// Append the header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.len);
        buf.put_u16(self.checksum);
    }

    /// Decode from the front of `buf`, returning the header and bytes
    /// consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("udp", buf, Self::WIRE_LEN)?;
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                len: u16::from_be_bytes([buf[4], buf[5]]),
                checksum: u16::from_be_bytes([buf[6], buf[7]]),
            },
            Self::WIRE_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ROCEV2_UDP_PORT;

    #[test]
    fn roundtrip() {
        let h = UdpHeader {
            src_port: 49152,
            dst_port: ROCEV2_UDP_PORT,
            len: 1052,
            checksum: 0,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, used) = UdpHeader::decode(&buf).unwrap();
        assert_eq!(used, 8);
        assert_eq!(back, h);
    }

    #[test]
    fn truncated() {
        assert!(UdpHeader::decode(&[0u8; 7]).is_err());
    }
}
