//! IPv4 header with first-class DSCP and ECN fields.
//!
//! DSCP is where *DSCP-based* PFC (Figure 3(b)) carries packet priority, and
//! the two ECN bits are how DCQCN's congestion points mark packets. The
//! paper's NICs also generate the 16-bit IP ID *sequentially*, which is what
//! made the §4.1 livelock drop filter ("least significant byte of IP ID
//! equals 0xff") a deterministic 1/256.

use crate::wire::buf::BufMut;

use crate::DecodeError;

/// The 20-byte (option-less) IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated Services Code Point (6 bits) — carries the packet
    /// priority under DSCP-based PFC.
    pub dscp: u8,
    /// Explicit Congestion Notification (2 bits): 0 = Not-ECT, 1/2 = ECT,
    /// 3 = CE (congestion experienced).
    pub ecn: u8,
    /// Total length: header + payload, in bytes.
    pub total_len: u16,
    /// Identification — sequential per sender in the paper's NICs.
    pub id: u16,
    /// Time to live.
    pub ttl: u8,
    /// Next protocol (17 = UDP, 6 = TCP).
    pub protocol: u8,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
}

/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;

impl Ipv4Header {
    /// Encoded length in bytes (no options).
    pub const WIRE_LEN: usize = 20;

    /// ECN codepoint value for "congestion experienced".
    pub const ECN_CE: u8 = 0b11;
    /// ECN codepoint value for "ECT(0)" — ECN-capable transport.
    pub const ECN_ECT0: u8 = 0b10;

    /// Append the header (with a correct checksum) to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut raw = [0u8; Self::WIRE_LEN];
        raw[0] = 0x45; // version 4, IHL 5
        raw[1] = (self.dscp << 2) | (self.ecn & 0x3);
        raw[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        raw[4..6].copy_from_slice(&self.id.to_be_bytes());
        // flags+fragment offset = 0 (DF not modelled)
        raw[8] = self.ttl;
        raw[9] = self.protocol;
        raw[12..16].copy_from_slice(&self.src.to_be_bytes());
        raw[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = checksum(&raw);
        raw[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&raw);
    }

    /// Decode from the front of `buf`, verifying version, IHL, and
    /// checksum; returns the header and bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("ipv4", buf, Self::WIRE_LEN)?;
        if buf[0] != 0x45 {
            return Err(DecodeError::BadField {
                what: "ipv4",
                field: "version/ihl",
                value: buf[0] as u64,
            });
        }
        let mut raw = [0u8; Self::WIRE_LEN];
        raw.copy_from_slice(&buf[..Self::WIRE_LEN]);
        if checksum(&{
            let mut z = raw;
            z[10] = 0;
            z[11] = 0;
            z
        }) != u16::from_be_bytes([raw[10], raw[11]])
        {
            return Err(DecodeError::BadField {
                what: "ipv4",
                field: "checksum",
                value: u16::from_be_bytes([raw[10], raw[11]]) as u64,
            });
        }
        Ok((
            Ipv4Header {
                dscp: raw[1] >> 2,
                ecn: raw[1] & 0x3,
                total_len: u16::from_be_bytes([raw[2], raw[3]]),
                id: u16::from_be_bytes([raw[4], raw[5]]),
                ttl: raw[8],
                protocol: raw[9],
                src: u32::from_be_bytes([raw[12], raw[13], raw[14], raw[15]]),
                dst: u32::from_be_bytes([raw[16], raw[17], raw[18], raw[19]]),
            },
            Self::WIRE_LEN,
        ))
    }
}

/// RFC 1071 Internet checksum over `data` (checksum field must be zeroed).
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            dscp: 26,
            ecn: Ipv4Header::ECN_ECT0,
            total_len: 1072,
            id: 0x1fe,
            ttl: 64,
            protocol: PROTO_UDP,
            src: 0x0a000001,
            dst: 0x0a000002,
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), 20);
        let (back, used) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(used, 20);
        assert_eq!(back, h);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        buf[15] ^= 0x40;
        assert!(matches!(
            Ipv4Header::decode(&buf),
            Err(DecodeError::BadField {
                field: "checksum",
                ..
            })
        ));
    }

    #[test]
    fn rejects_options() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        buf[0] = 0x46; // IHL 6 => options present
        assert!(Ipv4Header::decode(&buf).is_err());
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 discussion: verifying our fold behaviour.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn dscp_ecn_packing() {
        let mut h = sample();
        h.dscp = 0x3f;
        h.ecn = 0x3;
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf[1], 0xff);
        let (back, _) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(back.dscp, 0x3f);
        assert_eq!(back.ecn, 0x3);
    }
}
