//! 802.1Qbb Priority-based Flow Control pause frame.
//!
//! The paper's key observation enabling DSCP-based PFC (§3) is visible right
//! here in the layout: the pause frame is a plain layer-2 MAC control frame
//! and *never carries a VLAN tag*; only data packets did. The frame holds a
//! per-priority enable vector and eight pause durations measured in quanta
//! of 512 bit times. A duration of zero resumes transmission (XON).

use crate::wire::buf::BufMut;

use crate::DecodeError;

use super::ethernet::{EtherType, EthernetHeader, MacAddr};

/// A decoded PFC pause frame (MAC control opcode 0x0101).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcPauseFrame {
    /// Bit *i* set means the `durations[i]` field applies to priority *i*.
    pub class_enable: u8,
    /// Pause time per priority, in quanta of 512 bit times. Zero = resume.
    pub durations: [u16; 8],
}

impl PfcPauseFrame {
    /// MAC control opcode for priority-based flow control.
    pub const OPCODE: u16 = 0x0101;

    /// Encoded length of the MAC-control PDU (opcode + class-enable vector
    /// + 8 durations), excluding the Ethernet header and frame padding.
    pub const WIRE_LEN: usize = 2 + 2 + 16;

    /// Minimum Ethernet frame length on the wire (excluding FCS); pause
    /// frames are padded up to this.
    pub const MIN_FRAME_LEN: usize = 60;

    /// A frame that pauses exactly `priority` for `quanta` quanta.
    pub fn pause_one(priority: u8, quanta: u16) -> PfcPauseFrame {
        let mut durations = [0u16; 8];
        durations[priority as usize & 7] = quanta;
        PfcPauseFrame {
            class_enable: 1 << (priority & 7),
            durations,
        }
    }

    /// A frame that resumes (XON) exactly `priority`.
    pub fn resume_one(priority: u8) -> PfcPauseFrame {
        PfcPauseFrame {
            class_enable: 1 << (priority & 7),
            durations: [0u16; 8],
        }
    }

    /// True if this frame resumes (all enabled durations are zero).
    pub fn is_resume(&self) -> bool {
        self.durations
            .iter()
            .enumerate()
            .all(|(i, &d)| self.class_enable & (1 << i) == 0 || d == 0)
    }

    /// Append the MAC-control PDU to `buf` (without Ethernet header or
    /// padding).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(Self::OPCODE);
        buf.put_u16(self.class_enable as u16);
        for d in self.durations {
            buf.put_u16(d);
        }
    }

    /// Encode a complete wire frame: Ethernet header to the PFC multicast
    /// address, the PDU, and zero padding to the minimum frame size.
    pub fn encode_frame<B: BufMut>(&self, src: MacAddr, buf: &mut B) {
        let eth = EthernetHeader {
            dst: MacAddr::PAUSE_MULTICAST,
            src,
            ethertype: EtherType::MacControl,
        };
        eth.encode(buf);
        self.encode(buf);
        let written = EthernetHeader::WIRE_LEN + Self::WIRE_LEN;
        for _ in written..Self::MIN_FRAME_LEN {
            buf.put_u8(0);
        }
    }

    /// Decode the MAC-control PDU from the front of `buf` (positioned just
    /// after the Ethernet header), returning the frame and bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        super::need("pfc", buf, Self::WIRE_LEN)?;
        let opcode = u16::from_be_bytes([buf[0], buf[1]]);
        if opcode != Self::OPCODE {
            return Err(DecodeError::BadField {
                what: "pfc",
                field: "opcode",
                value: opcode as u64,
            });
        }
        let cev = u16::from_be_bytes([buf[2], buf[3]]);
        if cev > 0xff {
            return Err(DecodeError::BadField {
                what: "pfc",
                field: "class_enable",
                value: cev as u64,
            });
        }
        let mut durations = [0u16; 8];
        for (i, d) in durations.iter_mut().enumerate() {
            *d = u16::from_be_bytes([buf[4 + 2 * i], buf[5 + 2 * i]]);
        }
        Ok((
            PfcPauseFrame {
                class_enable: cev as u8,
                durations,
            },
            Self::WIRE_LEN,
        ))
    }

    /// Convert a quanta count to picoseconds at a given link rate.
    /// One quantum is 512 bit times.
    pub fn quanta_to_ps(quanta: u16, link_bps: u64) -> u64 {
        // 512 bits / rate(b/s) seconds = 512e12 / rate ps; u128 to avoid
        // overflow at the maximum 0xffff-quanta duration.
        ((quanta as u128) * 512 * 1_000_000_000_000 / link_bps as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = PfcPauseFrame {
            class_enable: 0b0000_1010,
            durations: [0, 0xffff, 0, 100, 0, 0, 0, 0],
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), PfcPauseFrame::WIRE_LEN);
        let (back, used) = PfcPauseFrame::decode(&buf).unwrap();
        assert_eq!(used, PfcPauseFrame::WIRE_LEN);
        assert_eq!(back, f);
    }

    #[test]
    fn full_frame_is_min_length_and_untagged() {
        let mut buf = Vec::new();
        PfcPauseFrame::pause_one(3, 0xffff).encode_frame(MacAddr::from_id(1), &mut buf);
        assert_eq!(buf.len(), PfcPauseFrame::MIN_FRAME_LEN);
        let (eth, n) = EthernetHeader::decode(&buf).unwrap();
        // The defining property behind DSCP-based PFC: no VLAN tag here.
        assert_eq!(eth.ethertype, EtherType::MacControl);
        assert_eq!(eth.dst, MacAddr::PAUSE_MULTICAST);
        let (pdu, _) = PfcPauseFrame::decode(&buf[n..]).unwrap();
        assert_eq!(pdu.durations[3], 0xffff);
    }

    #[test]
    fn resume_detection() {
        assert!(PfcPauseFrame::resume_one(5).is_resume());
        assert!(!PfcPauseFrame::pause_one(5, 1).is_resume());
        // A nonzero duration on a *disabled* class does not matter.
        let f = PfcPauseFrame {
            class_enable: 0b1,
            durations: [0, 999, 0, 0, 0, 0, 0, 0],
        };
        assert!(f.is_resume());
    }

    #[test]
    fn bad_opcode_rejected() {
        let mut buf = Vec::new();
        PfcPauseFrame::pause_one(0, 1).encode(&mut buf);
        buf[1] = 0x02;
        assert!(matches!(
            PfcPauseFrame::decode(&buf),
            Err(DecodeError::BadField {
                field: "opcode",
                ..
            })
        ));
    }

    #[test]
    fn quanta_math_40g() {
        // One quantum at 40 Gb/s = 512/40e9 s = 12.8 ns = 12800 ps.
        assert_eq!(PfcPauseFrame::quanta_to_ps(1, 40_000_000_000), 12_800);
        assert_eq!(
            PfcPauseFrame::quanta_to_ps(0xffff, 40_000_000_000),
            65_535 * 12_800
        );
    }
}
