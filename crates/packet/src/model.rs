//! The in-memory packet representation moved around by the simulator.
//!
//! Simulated packets carry *parsed* header metadata rather than raw bytes —
//! the event loop never serializes — but every size calculation defers to
//! the real wire encodings in [`crate::wire`], so buffer occupancy, pause
//! thresholds and serialization delays are byte-exact. The paper's RoCEv2
//! frame arithmetic (1024-byte payload → 1086-byte frame, §5.4) is enforced
//! by a unit test below.

use crate::wire::bth::{Aeth, Bth, Reth};
use crate::wire::ethernet::{EthernetHeader, MacAddr};
use crate::wire::ipv4::Ipv4Header;
use crate::wire::pfc::PfcPauseFrame;
use crate::wire::udp::UdpHeader;
use crate::wire::vlan::VlanTag;

/// A PFC priority class, 0–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(u8);

impl Priority {
    /// Number of PFC priority classes.
    pub const COUNT: usize = 8;

    /// Construct, clamping to 0–7.
    pub const fn new(p: u8) -> Priority {
        Priority(if p > 7 { 7 } else { p })
    }

    /// The raw class index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw class value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Iterate over all eight priorities.
    pub fn all() -> impl Iterator<Item = Priority> {
        (0..8).map(Priority)
    }
}

impl core::fmt::Display for Priority {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// ECN codepoint carried in the IP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EcnCodepoint {
    /// Not ECN-capable.
    #[default]
    NotEct,
    /// ECN-capable transport.
    Ect,
    /// Congestion experienced — set by a DCQCN congestion point.
    Ce,
}

/// Ethernet-level metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthMeta {
    /// Source MAC.
    pub src: MacAddr,
    /// Destination MAC.
    pub dst: MacAddr,
    /// 802.1Q tag, present only under VLAN-based PFC: (PCP, VID).
    pub vlan: Option<(u8, u16)>,
}

/// IPv4-level metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Meta {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// DSCP — carries priority under DSCP-based PFC.
    pub dscp: u8,
    /// ECN codepoint.
    pub ecn: EcnCodepoint,
    /// IP identification; sequential per sender, which makes §4.1's
    /// "drop if low byte == 0xff" filter exactly 1/256.
    pub id: u16,
    /// Time to live.
    pub ttl: u8,
}

/// The five-tuple ECMP hashes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source IP.
    pub src_ip: u32,
    /// Destination IP.
    pub dst_ip: u32,
    /// IP protocol.
    pub protocol: u8,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
}

/// Transport-level port metadata for kinds that have it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L4Meta {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

/// Simplified RoCEv2 transport opcode for the simulator.
///
/// First/Middle/Last/Only are collapsed: the segmenter tags each data
/// packet with its position via `is_first`/`is_last` on [`RocePacket`], and
/// [`RocePacket::bth_opcode`] recovers the exact wire opcode, so sizes stay
/// correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoceOpcode {
    /// SEND data packet.
    Send,
    /// RDMA WRITE data packet.
    Write,
    /// RDMA READ request (no payload, carries RETH with requested length).
    ReadRequest,
    /// RDMA READ response data packet.
    ReadResponse,
    /// Positive acknowledgement; `psn` is the highest PSN acknowledged.
    Ack,
    /// Negative acknowledgement (PSN sequence error); `psn` is the PSN the
    /// receiver expected — the NAK(i) of §4.1.
    Nak,
    /// DCQCN Congestion Notification Packet (NP → RP).
    Cnp,
}

impl RoceOpcode {
    /// Does this opcode carry message payload?
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            RoceOpcode::Send | RoceOpcode::Write | RoceOpcode::ReadResponse
        )
    }

    /// Is this a control/acknowledgement packet?
    pub fn is_control(self) -> bool {
        !self.carries_data() && self != RoceOpcode::ReadRequest
    }
}

/// A RoCEv2 packet in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RocePacket {
    /// Opcode.
    pub opcode: RoceOpcode,
    /// Destination queue pair number.
    pub dest_qp: u32,
    /// Source queue pair number (so the receiver can address replies; real
    /// RC QPs learn this at connection setup).
    pub src_qp: u32,
    /// Packet sequence number (24-bit space).
    pub psn: u32,
    /// Payload bytes carried (0 for control packets). For `ReadRequest`
    /// this is the *requested* length instead.
    pub payload: u32,
    /// First packet of its message.
    pub is_first: bool,
    /// Last packet of its message.
    pub is_last: bool,
    /// Random-per-QP UDP source port (ECMP path selector).
    pub udp_src: u16,
}

impl RocePacket {
    /// The exact BTH opcode this simulator packet corresponds to on the
    /// wire; used for header-size accounting.
    pub fn bth_opcode(&self) -> crate::wire::bth::BthOpcode {
        use crate::wire::bth::BthOpcode as Op;
        match self.opcode {
            RoceOpcode::Send => match (self.is_first, self.is_last) {
                (true, true) => Op::SendOnly,
                (true, false) => Op::SendFirst,
                (false, false) => Op::SendMiddle,
                (false, true) => Op::SendLast,
            },
            RoceOpcode::Write => match (self.is_first, self.is_last) {
                (true, true) => Op::RdmaWriteOnly,
                (true, false) => Op::RdmaWriteFirst,
                (false, false) => Op::RdmaWriteMiddle,
                (false, true) => Op::RdmaWriteLast,
            },
            RoceOpcode::ReadRequest => Op::RdmaReadRequest,
            RoceOpcode::ReadResponse => match (self.is_first, self.is_last) {
                (true, true) => Op::RdmaReadResponseOnly,
                (true, false) => Op::RdmaReadResponseFirst,
                (false, false) => Op::RdmaReadResponseMiddle,
                (false, true) => Op::RdmaReadResponseLast,
            },
            RoceOpcode::Ack | RoceOpcode::Nak => Op::Acknowledge,
            RoceOpcode::Cnp => Op::Cnp,
        }
    }
}

/// A PFC pause frame in the simulator (the parsed form of
/// [`crate::wire::pfc::PfcPauseFrame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseFrame {
    /// Bit *i* set = `durations[i]` applies to priority *i*.
    pub class_enable: u8,
    /// Pause durations in 512-bit-time quanta; zero resumes.
    pub durations: [u16; 8],
}

impl PauseFrame {
    /// Pause a single priority.
    pub fn pause(priority: Priority, quanta: u16) -> PauseFrame {
        let w = PfcPauseFrame::pause_one(priority.value(), quanta);
        PauseFrame {
            class_enable: w.class_enable,
            durations: w.durations,
        }
    }

    /// Resume (XON) a single priority.
    pub fn resume(priority: Priority) -> PauseFrame {
        let w = PfcPauseFrame::resume_one(priority.value());
        PauseFrame {
            class_enable: w.class_enable,
            durations: w.durations,
        }
    }

    /// Iterate `(priority, quanta)` for enabled classes.
    pub fn entries(&self) -> impl Iterator<Item = (Priority, u16)> + '_ {
        (0..8u8)
            .filter(|i| self.class_enable & (1 << i) != 0)
            .map(|i| (Priority::new(i), self.durations[i as usize]))
    }
}

/// TCP flags subset used by the baseline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// PSH — used by the simulator to mark message boundaries in the
    /// byte stream.
    pub psh: bool,
}

/// A TCP segment in the simulator. Sequence numbers are absolute `u64`
/// byte offsets (wrap-free), a standard simulator simplification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// First payload byte offset.
    pub seq: u64,
    /// Cumulative acknowledgement offset.
    pub ack: u64,
    /// Flags.
    pub flags: TcpFlags,
    /// Payload bytes carried.
    pub payload: u32,
    /// ECN echo (receiver -> sender congestion feedback).
    pub ece: bool,
}

/// What a simulated packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// RoCEv2 transport packet.
    Roce(RocePacket),
    /// 802.1Qbb PFC pause frame (a link-local MAC control frame).
    Pfc(PauseFrame),
    /// ARP request/reply (flooded when the MAC is unknown).
    Arp {
        /// True for requests.
        request: bool,
        /// IP being resolved / announced.
        target_ip: u32,
    },
    /// Baseline TCP segment.
    Tcp(TcpSegment),
    /// An untagged raw frame (e.g. the PXE boot traffic of §3), identified
    /// by an application label; `size` bytes on the wire including FCS.
    Raw {
        /// Caller-defined label.
        label: u16,
        /// Total frame size in bytes.
        size: u32,
    },
}

/// A packet in flight in the simulator.
///
/// Construct with [`Packet::new`]: the wire size is computed once from
/// the real header encodings and cached (`wire`), because the switch
/// pipeline consults it several times per hop (admission, queue byte
/// accounting, DWRR deficits, serialization delay). The field is private
/// so no construction path can skip the computation; nothing that exists
/// post-construction mutates a size-affecting field (VLAN presence and
/// the packet body are fixed at creation — forwarding only rewrites
/// MACs, TTL, and ECN bits).
/// `repr(C)` pins the declared field order so the hot header fields —
/// the id (tracing, arena free-list link, digest detail), the cached
/// wire size (admission, byte accounting, DWRR deficits, serialization
/// delay), the creation timestamp (latency accounting), and the IP
/// header whose DSCP/ECN bits the switch pipeline classifies on — share
/// the packet's first cache line in the world's dense arena slab,
/// instead of wherever layout optimization scatters them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Packet {
    /// Unique id for tracing.
    pub id: u64,
    /// Simulation timestamp (picoseconds) when the packet was created by
    /// its original sender; used for end-to-end latency accounting.
    pub created_ps: u64,
    /// Cached [`Packet::compute_wire_size`] of `eth`/`kind`, filled at
    /// construction.
    wire: u32,
    /// IP metadata (absent for pause frames, ARP, raw L2) — carries the
    /// DSCP byte that priority classification reads per hop.
    pub ip: Option<Ipv4Meta>,
    /// Ethernet metadata.
    pub eth: EthMeta,
    /// The packet body.
    pub kind: PacketKind,
}

impl Packet {
    /// Construct a packet, computing and caching its wire size.
    pub fn new(
        id: u64,
        eth: EthMeta,
        ip: Option<Ipv4Meta>,
        kind: PacketKind,
        created_ps: u64,
    ) -> Packet {
        let wire = Packet::compute_wire_size(&eth, &kind);
        Packet {
            id,
            eth,
            ip,
            kind,
            created_ps,
            wire,
        }
    }

    /// The total size of this packet on the wire, in bytes, including the
    /// Ethernet header, any VLAN tag, and the FCS — cached at
    /// construction; a property test pins it against
    /// [`Packet::compute_wire_size`].
    #[inline]
    pub fn wire_size(&self) -> u32 {
        self.wire
    }

    /// Recompute the wire size from the real header encodings. The
    /// reference arithmetic behind the cached [`Packet::wire_size`].
    pub fn compute_wire_size(meta: &EthMeta, kind: &PacketKind) -> u32 {
        let eth = EthernetHeader::WIRE_LEN as u32 + EthernetHeader::FCS_LEN as u32;
        let vlan = if meta.vlan.is_some() {
            VlanTag::WIRE_LEN as u32
        } else {
            0
        };
        match kind {
            PacketKind::Roce(r) => {
                let op = r.bth_opcode();
                let mut n = eth
                    + vlan
                    + Ipv4Header::WIRE_LEN as u32
                    + UdpHeader::WIRE_LEN as u32
                    + Bth::WIRE_LEN as u32
                    + 4; // ICRC
                if op.has_reth() {
                    n += Reth::WIRE_LEN as u32;
                }
                if op.has_aeth() {
                    n += Aeth::WIRE_LEN as u32;
                }
                if r.opcode.carries_data() {
                    n += r.payload;
                }
                n.max(64)
            }
            PacketKind::Pfc(_) => (PfcPauseFrame::MIN_FRAME_LEN + EthernetHeader::FCS_LEN) as u32,
            PacketKind::Arp { .. } => 64,
            PacketKind::Tcp(t) => {
                (eth + vlan + Ipv4Header::WIRE_LEN as u32 + 20 + t.payload).max(64)
            }
            PacketKind::Raw { size, .. } => (*size).max(64),
        }
    }

    /// Debug-assert the cached wire size still matches the reference
    /// arithmetic (used by property tests; free in release builds).
    pub fn wire_size_is_fresh(&self) -> bool {
        self.wire == Packet::compute_wire_size(&self.eth, &self.kind)
    }

    /// The ECMP five-tuple, if this packet has one.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        let ip = self.ip?;
        match &self.kind {
            PacketKind::Roce(r) => Some(FiveTuple {
                src_ip: ip.src,
                dst_ip: ip.dst,
                protocol: crate::wire::ipv4::PROTO_UDP,
                src_port: r.udp_src,
                dst_port: crate::ROCEV2_UDP_PORT,
            }),
            PacketKind::Tcp(t) => Some(FiveTuple {
                src_ip: ip.src,
                dst_ip: ip.dst,
                protocol: crate::wire::ipv4::PROTO_TCP,
                src_port: t.src_port,
                dst_port: t.dst_port,
            }),
            _ => None,
        }
    }

    /// Is this a PFC pause frame? Pause frames are link-local control
    /// traffic: never forwarded, never buffered against a priority group,
    /// and never themselves subject to pausing.
    pub fn is_pause(&self) -> bool {
        matches!(self.kind, PacketKind::Pfc(_))
    }

    /// The packet priority under VLAN-based classification (PCP bits), if
    /// tagged.
    pub fn pcp_priority(&self) -> Option<Priority> {
        self.eth.vlan.map(|(pcp, _)| Priority::new(pcp))
    }

    /// The packet priority under DSCP-based classification via the given
    /// DSCP→priority map, if the packet has an IP header.
    pub fn dscp_priority(&self, map: &dyn Fn(u8) -> Priority) -> Option<Priority> {
        self.ip.map(|ip| map(ip.dscp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roce_pkt(
        payload: u32,
        vlan: Option<(u8, u16)>,
        opcode: RoceOpcode,
        is_first: bool,
        is_last: bool,
    ) -> Packet {
        Packet::new(
            1,
            EthMeta {
                src: MacAddr::from_id(1),
                dst: MacAddr::from_id(2),
                vlan,
            },
            Some(Ipv4Meta {
                src: 1,
                dst: 2,
                dscp: 26,
                ecn: EcnCodepoint::Ect,
                id: 0,
                ttl: 64,
            }),
            PacketKind::Roce(RocePacket {
                opcode,
                dest_qp: 1,
                src_qp: 2,
                psn: 0,
                payload,
                is_first,
                is_last,
                udp_src: 50000,
            }),
            0,
        )
    }

    fn roce_data(payload: u32, vlan: Option<(u8, u16)>) -> Packet {
        roce_pkt(payload, vlan, RoceOpcode::Send, false, false)
    }

    /// §5.4: "The RDMA frame size is 1086 bytes with 1024 bytes as
    /// payload" — an untagged (DSCP-based PFC) SEND middle packet.
    #[test]
    fn paper_frame_size_1086() {
        assert_eq!(roce_data(1024, None).wire_size(), 1086);
    }

    #[test]
    fn vlan_tag_adds_four_bytes() {
        assert_eq!(roce_data(1024, Some((3, 100))).wire_size(), 1090);
    }

    #[test]
    fn ack_packet_size() {
        let p = roce_pkt(0, None, RoceOpcode::Ack, true, true);
        // 14+20+8+12+4(AETH)+4(ICRC)+4(FCS) = 66
        assert_eq!(p.wire_size(), 66);
    }

    #[test]
    fn small_frames_padded_to_64() {
        let p = roce_pkt(0, None, RoceOpcode::Cnp, false, false);
        assert_eq!(p.wire_size(), 64);
        let pause = Packet::new(
            p.id,
            p.eth,
            None,
            PacketKind::Pfc(PauseFrame::pause(Priority::new(3), 0xffff)),
            p.created_ps,
        );
        assert_eq!(pause.wire_size(), 64);
        assert!(pause.is_pause());
    }

    #[test]
    fn write_first_carries_reth() {
        let p = roce_pkt(1024, None, RoceOpcode::Write, true, false);
        assert_eq!(p.wire_size(), 1086 + 16);
    }

    #[test]
    fn cached_wire_size_matches_reference() {
        for p in [
            roce_data(1024, None),
            roce_data(0, Some((3, 100))),
            roce_pkt(0, None, RoceOpcode::Ack, true, true),
        ] {
            assert!(p.wire_size_is_fresh());
            assert_eq!(p.wire_size(), Packet::compute_wire_size(&p.eth, &p.kind));
        }
    }

    #[test]
    fn five_tuple_stability_per_qp() {
        let p = roce_data(1024, None);
        let t = p.five_tuple().unwrap();
        assert_eq!(t.dst_port, crate::ROCEV2_UDP_PORT);
        assert_eq!(t.src_port, 50000);
        // Same QP -> same tuple -> same ECMP path (paper §2).
        assert_eq!(p.five_tuple(), roce_data(512, None).five_tuple());
    }

    #[test]
    fn pause_entries() {
        let f = PauseFrame::pause(Priority::new(3), 7);
        let e: Vec<_> = f.entries().collect();
        assert_eq!(e, vec![(Priority::new(3), 7)]);
        assert!(PauseFrame::resume(Priority::new(3))
            .entries()
            .all(|(_, q)| q == 0));
    }

    #[test]
    fn priority_clamps() {
        assert_eq!(Priority::new(9).value(), 7);
        assert_eq!(Priority::all().count(), 8);
    }

    #[test]
    fn bth_opcode_positions() {
        use crate::wire::bth::BthOpcode;
        let mut r = RocePacket {
            opcode: RoceOpcode::Send,
            dest_qp: 0,
            src_qp: 0,
            psn: 0,
            payload: 0,
            is_first: true,
            is_last: true,
            udp_src: 0,
        };
        assert_eq!(r.bth_opcode(), BthOpcode::SendOnly);
        r.is_last = false;
        assert_eq!(r.bth_opcode(), BthOpcode::SendFirst);
        r.is_first = false;
        assert_eq!(r.bth_opcode(), BthOpcode::SendMiddle);
        r.is_last = true;
        assert_eq!(r.bth_opcode(), BthOpcode::SendLast);
    }
}
