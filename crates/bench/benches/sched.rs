//! Event-engine benches: the timer wheel against the reference binary
//! heap, from microbenchmark churn up to full-fabric Clos incasts. Both
//! engines dispatch the identical `(time, seq)` stream, so every pair of
//! lines below is the same work — only the queue differs.

use rocescale_bench::harness::{
    bench, bench_elements, section, write_json_artifact_with, Measurement,
};
use rocescale_core::{Cluster, ClusterBuilder, ServerId};
use rocescale_monitor::{profile_json, Json, MetricsHub};
use rocescale_nic::QpApp;
use rocescale_sim::sched::EventQueue;
use rocescale_sim::{DigestMode, DispatchMode, EngineKind, ProfileMode, SimRng, SimTime};
use rocescale_topology::ClosSpec;

const ENGINES: [EngineKind; 2] = [EngineKind::Wheel, EngineKind::BinaryHeap];

/// Steady-state churn: the queue holds `depth` pending events while each
/// iteration pops the front and pushes a replacement at a random near
/// future — the hold-then-replace pattern every in-flight packet induces.
fn sched_churn(out: &mut Vec<Measurement>) {
    section("sched_churn");
    for depth in [1_000usize, 100_000] {
        for engine in ENGINES {
            let mut q: EventQueue<u64> = EventQueue::new(engine);
            let mut rng = SimRng::from_seed(42);
            let mut now = 0u64;
            for v in 0..depth as u64 {
                q.push(SimTime(rng.gen_below(1 << 24)), v);
            }
            out.push(bench(&format!("churn_depth_{depth}/{engine:?}"), || {
                let (t, v) = q.pop().unwrap();
                now = t.as_ps();
                // Near-future replacement: within ~16 µs, like a
                // serialization delay or a DCQCN timer.
                q.push(SimTime(now + 1 + rng.gen_below(1 << 24)), v);
                v
            }));
        }
    }
}

/// Dense same-tick bursts: 512 events at one timestamp, drained in FIFO
/// order — the pattern of a switch fanning one arrival out to its ports,
/// and the worst case for the wheel's per-slot ready heap.
fn sched_dense_bursts(out: &mut Vec<Measurement>) {
    section("sched_dense_bursts");
    const BURST: u64 = 512;
    for engine in ENGINES {
        let mut t = 0u64;
        out.push(bench_elements(
            &format!("same_tick_burst_512/{engine:?}"),
            BURST,
            || {
                let mut q: EventQueue<u64> = EventQueue::new(engine);
                t += 4_096; // a new tick each iteration
                for v in 0..BURST {
                    q.push(SimTime(t), v);
                }
                let mut last = 0;
                while let Some((_, v)) = q.pop() {
                    last = v;
                }
                last
            },
        ));
    }
}

/// A `fan_in`:1 incast onto server 0 of the given fabric.
fn build_incast(spec: ClosSpec, fan_in: usize, engine: EngineKind, digest: DigestMode) -> Cluster {
    build_incast_full(
        spec,
        fan_in,
        engine,
        digest,
        MetricsHub::disabled(),
        ProfileMode::Off,
    )
}

/// [`build_incast`] with an explicit telemetry hub and profiler mode —
/// the `fast_tele` arms and the dispatch-breakdown capture use this.
fn build_incast_full(
    spec: ClosSpec,
    fan_in: usize,
    engine: EngineKind,
    digest: DigestMode,
    hub: MetricsHub,
    profile: ProfileMode,
) -> Cluster {
    let mut cl = ClusterBuilder::new(spec)
        .seed(11)
        .engine(engine)
        .digest(digest)
        .telemetry(hub)
        .profile(profile)
        .build();
    for i in 1..=fan_in {
        cl.connect_qp(
            ServerId(i),
            ServerId(0),
            5000 + i as u16,
            QpApp::Saturate {
                msg_len: 64 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    cl
}

/// Full-fabric Clos incasts at four sizes: a rack, a pod, and two
/// podset fabrics. Event count (and thus pending-event depth) grows
/// with fabric size; the wheel must stay at parity or better throughout.
fn sched_clos_incast(out: &mut Vec<Measurement>, profiles: &mut Vec<(String, Json)>) {
    section("sched_clos_incast");
    let fabrics: [(&str, ClosSpec, usize); 4] = [
        ("rack_8", ClosSpec::uniform_40g(1, 1, 1, 1, 8), 7),
        ("pod_2x8", ClosSpec::uniform_40g(1, 2, 2, 2, 8), 7),
        ("podset_2x2x4", ClosSpec::uniform_40g(2, 2, 2, 4, 4), 7),
        ("podset_4x4x8", ClosSpec::uniform_40g(4, 4, 4, 8, 8), 7),
    ];
    let window = SimTime::from_micros(200);
    for (name, spec, fan_in) in fabrics {
        let events = {
            let mut cl = build_incast(spec, fan_in, EngineKind::Wheel, DigestMode::On);
            cl.run_until(window);
            cl.world.events_processed()
        };
        for engine in ENGINES {
            out.push(bench_elements(
                &format!("incast_{name}/{engine:?}"),
                events,
                || {
                    let mut cl = build_incast(spec, fan_in, engine, DigestMode::On);
                    cl.run_until(window);
                    cl.world.events_processed()
                },
            ));
        }
        // The pre-batching dispatch loop: same events one at a time. The
        // gap to the plain Wheel line above is the same-tick coalescing
        // win, measured drift-free within one process run.
        out.push(bench_elements(
            &format!("incast_{name}/Wheel+single_step"),
            events,
            || {
                let mut cl = build_incast(spec, fan_in, EngineKind::Wheel, DigestMode::On);
                cl.world.set_dispatch_mode(DispatchMode::SingleStep);
                cl.run_until(window);
                cl.world.events_processed()
            },
        ));
        // The dispatch-digest opt-out (fleet/bench fast path): same event
        // stream, no per-event FNV fold.
        out.push(bench_elements(
            &format!("incast_{name}/Wheel+digest_off"),
            events,
            || {
                let mut cl = build_incast(spec, fan_in, EngineKind::Wheel, DigestMode::Off);
                cl.run_until(window);
                cl.world.events_processed()
            },
        ));
        // Telemetry enabled through the lock-free fast path: the same
        // incast with every switch/NIC instrument live. The gap between
        // this line and the plain Wheel line is the whole telemetry tax.
        out.push(bench_elements(
            &format!("incast_{name}/Wheel+fast_tele"),
            events,
            || {
                let mut cl = build_incast_full(
                    spec,
                    fan_in,
                    EngineKind::Wheel,
                    DigestMode::On,
                    MetricsHub::enabled(),
                    ProfileMode::Off,
                );
                cl.run_until(window);
                cl.world.events_processed()
            },
        ));
        // One profiled run per fabric (outside the timed loops): the
        // per-event-kind dispatch breakdown recorded into the artifact.
        let mut cl = build_incast_full(
            spec,
            fan_in,
            EngineKind::Wheel,
            DigestMode::On,
            MetricsHub::enabled(),
            ProfileMode::On,
        );
        cl.run_until(window);
        let p = cl.world.event_profile();
        println!(
            "incast_{name} dispatch profile: {} events, {} ns handler time",
            p.total_events(),
            p.total_nanos()
        );
        profiles.push((format!("incast_{name}"), profile_json(&p)));
    }
}

fn main() {
    let json_out = rocescale_bench::ScenarioCli::parse()
        .unwrap_or_else(|e| {
            eprintln!("sched: {e}");
            std::process::exit(2);
        })
        .json_out;
    let mut results = Vec::new();
    let mut profiles = Vec::new();
    sched_churn(&mut results);
    sched_dense_bursts(&mut results);
    sched_clos_incast(&mut results, &mut profiles);
    if let Some(path) = json_out {
        let profile_obj = Json::Obj(profiles);
        write_json_artifact_with(&path, "sched", &results, vec![("profiles", profile_obj)]);
    }
}
