//! Ablation benches for the design choices DESIGN.md calls out. Each
//! compares the arms of a paper mechanism on a short simulation; the
//! *relative* wall-clock (which tracks simulated event volume) and the
//! printed counters are the signal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocescale_core::scenarios::{livelock, pfc_basics, slow_receiver};
use rocescale_sim::SimTime;
use rocescale_transport::LossRecovery;

/// Go-back-0 vs go-back-N under deterministic loss (§4.1): the livelock
/// arm does strictly more wasted work per unit of goodput.
fn ablate_loss_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("loss_recovery");
    g.sample_size(10);
    for rec in [LossRecovery::GoBack0, LossRecovery::GoBackN] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rec:?}")),
            &rec,
            |b, rec| {
                b.iter(|| {
                    livelock::run(*rec, livelock::Workload::Send, SimTime::from_millis(2))
                        .goodput_gbps
                })
            },
        );
    }
    g.finish();
}

/// PFC on vs off under incast (Figure 2): pauses vs drops.
fn ablate_pfc(c: &mut Criterion) {
    let mut g = c.benchmark_group("pfc");
    g.sample_size(10);
    for pfc in [true, false] {
        g.bench_with_input(BenchmarkId::from_parameter(pfc), &pfc, |b, pfc| {
            b.iter(|| pfc_basics::run(*pfc, 4, SimTime::from_millis(2)).goodput_gbps)
        });
    }
    g.finish();
}

/// NIC page size (§4.4): 4 KB pages thrash the MTT, which also costs
/// simulation work (stall events).
fn ablate_page_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("mtt_page_size");
    g.sample_size(10);
    for pages in [slow_receiver::PageSize::Small, slow_receiver::PageSize::Large] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{pages:?}")),
            &pages,
            |b, pages| {
                b.iter(|| slow_receiver::run(*pages, true, SimTime::from_millis(2)).goodput_gbps)
            },
        );
    }
    g.finish();
}

criterion_group!(benches, ablate_loss_recovery, ablate_pfc, ablate_page_size);
criterion_main!(benches);
