//! Ablation benches for the design choices DESIGN.md calls out. Each
//! compares the arms of a paper mechanism on a short simulation; the
//! *relative* wall-clock (which tracks simulated event volume) and the
//! printed counters are the signal.

use rocescale_bench::harness::{bench, section};
use rocescale_core::scenarios::{livelock, pfc_basics, slow_receiver};
use rocescale_sim::SimTime;
use rocescale_transport::LossRecovery;

/// Go-back-0 vs go-back-N under deterministic loss (§4.1): the livelock
/// arm does strictly more wasted work per unit of goodput.
fn ablate_loss_recovery() {
    section("loss_recovery");
    for rec in [LossRecovery::GoBack0, LossRecovery::GoBackN] {
        bench(&format!("loss_recovery/{rec:?}"), || {
            livelock::run(rec, livelock::Workload::Send, SimTime::from_millis(2)).goodput_gbps
        });
    }
}

/// PFC on vs off under incast (Figure 2): pauses vs drops.
fn ablate_pfc() {
    section("pfc");
    for pfc in [true, false] {
        bench(&format!("pfc/{pfc}"), || {
            pfc_basics::run(pfc, 4, SimTime::from_millis(2)).goodput_gbps
        });
    }
}

/// NIC page size (§4.4): 4 KB pages thrash the MTT, which also costs
/// simulation work (stall events).
fn ablate_page_size() {
    section("mtt_page_size");
    for pages in [
        slow_receiver::PageSize::Small,
        slow_receiver::PageSize::Large,
    ] {
        bench(&format!("mtt_page_size/{pages:?}"), || {
            slow_receiver::run(pages, true, SimTime::from_millis(2)).goodput_gbps
        });
    }
}

fn main() {
    ablate_loss_recovery();
    ablate_pfc();
    ablate_page_size();
}
