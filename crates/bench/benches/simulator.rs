//! Wall-clock benches of the simulator itself: how fast the substrate
//! that regenerates the paper's figures runs. The headline metric is
//! simulated events per wall-clock second on a representative cluster.

use rocescale_bench::harness::{bench, bench_elements, section};
use rocescale_core::{Cluster, ClusterBuilder, ServerId};
use rocescale_dcqcn::{RpParams, RpState};
use rocescale_nic::QpApp;
use rocescale_packet::{Bth, BthOpcode, EtherType, EthernetHeader, Ipv4Header, MacAddr};
use rocescale_sim::{EngineKind, SimTime};

/// A 2-rack cluster with a 3:1 incast onto server 0.
fn build_incast(engine: EngineKind) -> Cluster {
    let mut cl = ClusterBuilder::two_tier(2, 4)
        .seed(5)
        .engine(engine)
        .build();
    for i in 1..4usize {
        cl.connect_qp(
            ServerId(i),
            ServerId(0),
            5000 + i as u16,
            QpApp::Saturate {
                msg_len: 256 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    cl
}

/// End-to-end event throughput: the incast running 1 ms of simulated
/// time, on both event engines.
fn bench_event_loop() {
    section("event_loop");
    // Count events once so the throughput number is meaningful (both
    // engines dispatch the identical event stream).
    let events = {
        let mut cl = build_incast(EngineKind::Wheel);
        cl.run_until(SimTime::from_millis(1));
        cl.world.events_processed()
    };
    for engine in [EngineKind::Wheel, EngineKind::BinaryHeap] {
        bench_elements(&format!("incast_1ms/{engine:?}"), events, || {
            let mut cl = build_incast(engine);
            cl.run_until(SimTime::from_millis(1));
            cl.world.events_processed()
        });
    }
}

/// Wire-format codec costs (the packet crate's hot paths).
fn bench_codecs() {
    section("codecs");
    let eth = EthernetHeader {
        dst: MacAddr::from_id(1),
        src: MacAddr::from_id(2),
        ethertype: EtherType::Ipv4,
    };
    let ip = Ipv4Header {
        dscp: 26,
        ecn: 1,
        total_len: 1072,
        id: 77,
        ttl: 64,
        protocol: 17,
        src: 0x0a000001,
        dst: 0x0a000002,
    };
    let bth = Bth {
        opcode: BthOpcode::SendMiddle,
        se: false,
        migreq: false,
        pad: 0,
        pkey: 0xffff,
        dest_qp: 77,
        ack_req: false,
        psn: 1234,
    };
    bench("encode_eth_ip_bth", || {
        let mut buf = Vec::with_capacity(64);
        eth.encode(&mut buf);
        ip.encode(&mut buf);
        bth.encode(&mut buf);
        buf
    });
    let mut wire = Vec::new();
    eth.encode(&mut wire);
    ip.encode(&mut wire);
    bth.encode(&mut wire);
    bench("decode_eth_ip_bth", || {
        let (e, n1) = EthernetHeader::decode(&wire).unwrap();
        let (i, n2) = Ipv4Header::decode(&wire[n1..]).unwrap();
        let (t, _) = Bth::decode(&wire[n1 + n2..]).unwrap();
        (e, i, t)
    });
}

/// DCQCN reaction-point update cost (runs per packet/timer on every QP).
fn bench_dcqcn() {
    section("dcqcn");
    let mut rp = RpState::new(RpParams::for_line_rate(40_000_000_000));
    bench("dcqcn_rp_cycle", || {
        rp.on_cnp();
        rp.on_bytes_sent(1086);
        rp.on_increase_timer();
        rp.on_alpha_timer();
        rp.rate_bps()
    });
}

fn main() {
    bench_event_loop();
    bench_codecs();
    bench_dcqcn();
}
