//! Criterion benches of the simulator itself: how fast the substrate
//! that regenerates the paper's figures runs. The headline metric is
//! simulated events per wall-clock second on a representative cluster.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rocescale_core::{ClusterBuilder, ServerId};
use rocescale_dcqcn::{RpParams, RpState};
use rocescale_nic::QpApp;
use rocescale_packet::{Bth, BthOpcode, EthernetHeader, EtherType, Ipv4Header, MacAddr};
use rocescale_sim::SimTime;

/// End-to-end event throughput: a 2-rack cluster with an incast running
/// 1 ms of simulated time.
fn bench_event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_loop");
    g.sample_size(20);
    let build = || {
        let mut cl = ClusterBuilder::two_tier(2, 4).seed(5).build();
        for i in 1..4usize {
            cl.connect_qp(
                ServerId(i),
                ServerId(0),
                5000 + i as u16,
                QpApp::Saturate {
                    msg_len: 256 * 1024,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
        cl
    };
    // Count events once so the throughput number is meaningful.
    let events = {
        let mut cl = build();
        cl.run_until(SimTime::from_millis(1));
        cl.world.events_processed()
    };
    g.throughput(Throughput::Elements(events));
    g.bench_function("incast_1ms", |b| {
        b.iter_batched(
            build,
            |mut cl| {
                cl.run_until(SimTime::from_millis(1));
                cl.world.events_processed()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Wire-format codec costs (the packet crate's hot paths).
fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codecs");
    let eth = EthernetHeader {
        dst: MacAddr::from_id(1),
        src: MacAddr::from_id(2),
        ethertype: EtherType::Ipv4,
    };
    let ip = Ipv4Header {
        dscp: 26,
        ecn: 1,
        total_len: 1072,
        id: 77,
        ttl: 64,
        protocol: 17,
        src: 0x0a000001,
        dst: 0x0a000002,
    };
    let bth = Bth {
        opcode: BthOpcode::SendMiddle,
        se: false,
        migreq: false,
        pad: 0,
        pkey: 0xffff,
        dest_qp: 77,
        ack_req: false,
        psn: 1234,
    };
    g.bench_function("encode_eth_ip_bth", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(64);
            eth.encode(&mut buf);
            ip.encode(&mut buf);
            bth.encode(&mut buf);
            buf
        })
    });
    let mut wire = Vec::new();
    eth.encode(&mut wire);
    ip.encode(&mut wire);
    bth.encode(&mut wire);
    g.bench_function("decode_eth_ip_bth", |b| {
        b.iter(|| {
            let (e, n1) = EthernetHeader::decode(&wire).unwrap();
            let (i, n2) = Ipv4Header::decode(&wire[n1..]).unwrap();
            let (t, _) = Bth::decode(&wire[n1 + n2..]).unwrap();
            (e, i, t)
        })
    });
    g.finish();
}

/// DCQCN reaction-point update cost (runs per packet/timer on every QP).
fn bench_dcqcn(c: &mut Criterion) {
    c.bench_function("dcqcn_rp_cycle", |b| {
        let mut rp = RpState::new(RpParams::for_line_rate(40_000_000_000));
        b.iter(|| {
            rp.on_cnp();
            rp.on_bytes_sent(1086);
            rp.on_increase_timer();
            rp.on_alpha_timer();
            rp.rate_bps()
        })
    });
}

criterion_group!(benches, bench_event_loop, bench_codecs, bench_dcqcn);
criterion_main!(benches);
