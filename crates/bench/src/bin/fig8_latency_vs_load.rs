//! Figure 8 / §5.4 — RDMA latency before vs during the saturating stress,
//! and TCP's isolation in its own queue.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::latency::LatencySummary;
use rocescale_core::scenarios::load_latency;
use rocescale_sim::SimTime;

fn latency_row(label: &str, s: &LatencySummary) -> Vec<Cell> {
    vec![
        Cell::s(label),
        Cell::U64(s.samples as u64),
        Cell::f1(s.p50_us),
        Cell::f1(s.p99_us),
        Cell::f1(s.p999_us),
        Cell::f1(s.max_us),
    ]
}

struct Fig8;

impl ScenarioReport for Fig8 {
    fn id(&self) -> &str {
        "FIG-8 (§5.4)"
    }
    fn title(&self) -> &str {
        "latency under saturating load"
    }
    fn claim(&self) -> &str {
        "once the stress starts, RDMA p99 jumps 50→400 µs and p99.9 80→800 µs — queues \
         and pauses, not losses; TCP's p99 in its own switch queue does not change"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let r = load_latency::run(SimTime::from_millis(10), SimTime::from_millis(30));
        let mut t = Table::new(
            "latency",
            &[
                "series",
                "samples",
                "p50(us)",
                "p99(us)",
                "p99.9(us)",
                "max(us)",
            ],
        );
        t.row(latency_row("RDMA idle", &r.rdma_idle));
        t.row(latency_row("RDMA under load", &r.rdma_loaded));
        t.row(latency_row("TCP idle", &r.tcp_idle));
        t.row(latency_row("TCP under load", &r.tcp_loaded));
        let mut rep = Report::new();
        rep.table(t);
        rep.scalar("lossless_drops", Cell::U64(r.lossless_drops));
        rep.scalar(
            "rdma_p99_jump",
            Cell::f1(r.rdma_loaded.p99_us / r.rdma_idle.p99_us),
        );
        rep.scalar(
            "rdma_p999_jump",
            Cell::f1(r.rdma_loaded.p999_us / r.rdma_idle.p999_us),
        );
        rep.scalar(
            "tcp_p99_ratio",
            Cell::f2(r.tcp_loaded.p99_us / r.tcp_idle.p99_us),
        );
        rep
    }
}

fn main() {
    main_for(&Fig8)
}
