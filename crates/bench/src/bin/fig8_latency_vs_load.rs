//! Figure 8 / §5.4 — RDMA latency before vs during the saturating stress,
//! and TCP's isolation in its own queue.

use rocescale_bench::{header, latency_header, latency_row};
use rocescale_core::scenarios::load_latency;
use rocescale_sim::SimTime;

fn main() {
    header(
        "FIG-8 (§5.4)",
        "once the stress starts, RDMA p99 jumps 50→400 µs and p99.9 80→800 µs — queues \
         and pauses, not losses; TCP's p99 in its own switch queue does not change",
    );
    let r = load_latency::run(SimTime::from_millis(10), SimTime::from_millis(30));
    println!("{}", latency_header());
    println!("{}", latency_row("RDMA idle", &r.rdma_idle));
    println!("{}", latency_row("RDMA under load", &r.rdma_loaded));
    println!("{}", latency_row("TCP idle", &r.tcp_idle));
    println!("{}", latency_row("TCP under load", &r.tcp_loaded));
    println!();
    println!(
        "lossless drops: {} | RDMA p99 jump: {:.1}x | RDMA p99.9 jump: {:.1}x | TCP p99 ratio: {:.2}x",
        r.lossless_drops,
        r.rdma_loaded.p99_us / r.rdma_idle.p99_us,
        r.rdma_loaded.p999_us / r.rdma_idle.p999_us,
        r.tcp_loaded.p99_us / r.tcp_idle.p99_us,
    );
}
