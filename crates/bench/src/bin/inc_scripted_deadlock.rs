//! Thin wrapper: the implementation lives in `rocescale_bench::suite`.

fn main() {
    rocescale_bench::main_for(&rocescale_bench::suite::IncScriptedDeadlock);
}
