//! §4.1 — RDMA transport livelock: go-back-0 vs go-back-N under a
//! deterministic 1/256 drop, for SEND / WRITE / READ.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::livelock::{self, Workload};
use rocescale_sim::SimTime;
use rocescale_transport::LossRecovery;

struct ExpLivelock;

impl ScenarioReport for ExpLivelock {
    fn id(&self) -> &str {
        "EXP-LIVELOCK (§4.1)"
    }
    fn title(&self) -> &str {
        "go-back-0 livelock vs go-back-N"
    }
    fn claim(&self) -> &str {
        "goodput 0 with go-back-0 at 1/256 deterministic drop while the link runs at \
         line rate; go-back-N restores goodput"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(20);
        let mut t = Table::new(
            "arms",
            &[
                "verb",
                "recovery",
                "goodput(Gb/s)",
                "wire(Gb/s)",
                "msgs",
                "drops",
            ],
        );
        for workload in [Workload::Send, Workload::Write, Workload::Read] {
            for recovery in [LossRecovery::GoBack0, LossRecovery::GoBackN] {
                let r = livelock::run(recovery, workload, dur);
                t.row(vec![
                    Cell::s(format!("{workload:?}")),
                    Cell::s(format!("{recovery:?}")),
                    Cell::f2(r.goodput_gbps),
                    Cell::f2(r.wire_gbps),
                    Cell::U64(r.messages_done),
                    Cell::U64(r.filter_drops),
                ]);
            }
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

fn main() {
    main_for(&ExpLivelock)
}
