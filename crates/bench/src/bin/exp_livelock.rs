//! §4.1 — RDMA transport livelock: go-back-0 vs go-back-N under a
//! deterministic 1/256 drop, for SEND / WRITE / READ.

use rocescale_bench::header;
use rocescale_core::scenarios::livelock::{self, Workload};
use rocescale_sim::SimTime;
use rocescale_transport::LossRecovery;

fn main() {
    header(
        "EXP-LIVELOCK (§4.1)",
        "goodput 0 with go-back-0 at 1/256 deterministic drop while the link runs at \
         line rate; go-back-N restores goodput",
    );
    let dur = SimTime::from_millis(20);
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>10} {:>8}",
        "verb", "recovery", "goodput(Gb/s)", "wire(Gb/s)", "msgs", "drops"
    );
    for workload in [Workload::Send, Workload::Write, Workload::Read] {
        for recovery in [LossRecovery::GoBack0, LossRecovery::GoBackN] {
            let r = livelock::run(recovery, workload, dur);
            println!(
                "{:<8} {:>10} {:>14.2} {:>12.2} {:>10} {:>8}",
                format!("{workload:?}"),
                format!("{recovery:?}"),
                r.goodput_gbps,
                r.wire_gbps,
                r.messages_done,
                r.filter_drops
            );
        }
    }
}
