//! Figure 5 / §4.3 — one malfunctioning NIC's pause storm vs the two
//! watchdogs.

use rocescale_bench::header;
use rocescale_core::scenarios::storm;
use rocescale_sim::SimTime;

fn main() {
    header(
        "FIG-5 (§4.3)",
        "a single malfunctioning NIC may block the entire network from transmitting; \
         complementary NIC-side and switch-side watchdogs contain it",
    );
    let dur = SimTime::from_millis(40);
    println!(
        "{:<10} {:>14} {:>16} {:>8} {:>10}",
        "watchdogs", "healthy pairs", "victim pauses", "nic wd", "switch wd"
    );
    for watchdogs in [false, true] {
        let r = storm::run(watchdogs, dur);
        println!(
            "{:<10} {:>10}/{:<3} {:>16} {:>8} {:>10}",
            r.watchdogs,
            r.healthy_pairs,
            r.total_pairs,
            r.victim_pause_rx,
            r.nic_watchdog_fired,
            r.switch_watchdog_fired
        );
    }
}
