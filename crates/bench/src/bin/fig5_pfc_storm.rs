//! Figure 5 / §4.3 — one malfunctioning NIC's pause storm vs the two
//! watchdogs.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::storm;
use rocescale_sim::SimTime;

struct Fig5;

impl ScenarioReport for Fig5 {
    fn id(&self) -> &str {
        "FIG-5 (§4.3)"
    }
    fn title(&self) -> &str {
        "NIC pause storm vs the watchdogs"
    }
    fn claim(&self) -> &str {
        "a single malfunctioning NIC may block the entire network from transmitting; \
         complementary NIC-side and switch-side watchdogs contain it"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(40);
        let mut t = Table::new(
            "arms",
            &[
                "watchdogs",
                "healthy pairs",
                "total pairs",
                "victim pauses",
                "nic wd",
                "switch wd",
            ],
        );
        for watchdogs in [false, true] {
            let r = storm::run(watchdogs, dur);
            t.row(vec![
                Cell::Bool(r.watchdogs),
                Cell::U64(r.healthy_pairs as u64),
                Cell::U64(r.total_pairs as u64),
                Cell::U64(r.victim_pause_rx),
                Cell::Bool(r.nic_watchdog_fired),
                Cell::Bool(r.switch_watchdog_fired),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

fn main() {
    main_for(&Fig5)
}
