//! Figure 2 — PFC mechanics: lossless classes pause, lossy classes drop.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::pfc_basics;
use rocescale_sim::SimTime;

struct Fig2;

impl ScenarioReport for Fig2 {
    fn id(&self) -> &str {
        "FIG-2 (§2)"
    }
    fn title(&self) -> &str {
        "PFC mechanics: pause vs drop"
    }
    fn claim(&self) -> &str {
        "PFC prevents buffer overflow by pausing the upstream sender (XOFF/XON); \
         without it, the same incast drops packets"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(10);
        let mut t = Table::new(
            "arms",
            &["pfc", "pauses", "resumes", "drops", "goodput(Gb/s)"],
        );
        for pfc in [true, false] {
            let r = pfc_basics::run(pfc, 4, dur);
            t.row(vec![
                Cell::Bool(r.pfc),
                Cell::U64(r.pauses),
                Cell::U64(r.resumes),
                Cell::U64(r.drops),
                Cell::f2(r.goodput_gbps),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

fn main() {
    main_for(&Fig2)
}
