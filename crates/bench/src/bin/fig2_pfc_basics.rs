//! Figure 2 — PFC mechanics: lossless classes pause, lossy classes drop.

use rocescale_bench::header;
use rocescale_core::scenarios::pfc_basics;
use rocescale_sim::SimTime;

fn main() {
    header(
        "FIG-2 (§2)",
        "PFC prevents buffer overflow by pausing the upstream sender (XOFF/XON); \
         without it, the same incast drops packets",
    );
    let dur = SimTime::from_millis(10);
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>14}",
        "pfc", "pauses", "resumes", "drops", "goodput(Gb/s)"
    );
    for pfc in [true, false] {
        let r = pfc_basics::run(pfc, 4, dur);
        println!(
            "{:<6} {:>8} {:>8} {:>8} {:>14.2}",
            r.pfc, r.pauses, r.resumes, r.drops, r.goodput_gbps
        );
    }
}
