//! §1 — kernel TCP CPU cost at 40 Gb/s vs RDMA's near-zero.

use rocescale_bench::header;
use rocescale_core::scenarios::cpu;
use rocescale_sim::SimTime;

fn main() {
    header(
        "EXP-CPU (§1)",
        "sending at 40 Gb/s over 8 TCP connections costs 6% of a 32-core server; \
         receiving costs 12%; RDMA does the same work at ≈0% CPU",
    );
    let r = cpu::run(SimTime::from_millis(60));
    println!(
        "{:<8} {:>16} {:>12} {:>12}",
        "stack", "throughput(Gb/s)", "tx cpu(%)", "rx cpu(%)"
    );
    println!(
        "{:<8} {:>16.1} {:>12.2} {:>12.2}",
        "TCP", r.tcp_gbps, r.tcp_tx_cpu_pct, r.tcp_rx_cpu_pct
    );
    println!(
        "{:<8} {:>16.1} {:>12.2} {:>12.2}",
        "RDMA", r.rdma_gbps, r.rdma_cpu_pct, r.rdma_cpu_pct
    );
    println!();
    println!(
        "normalized to 40 Gb/s: TCP tx {:.1}%, rx {:.1}% (paper: 6% / 12%)",
        r.tcp_tx_cpu_pct * 40.0 / r.tcp_gbps,
        r.tcp_rx_cpu_pct * 40.0 / r.tcp_gbps
    );
}
