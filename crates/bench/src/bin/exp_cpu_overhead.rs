//! §1 — kernel TCP CPU cost at 40 Gb/s vs RDMA's near-zero.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::cpu;
use rocescale_sim::SimTime;

struct ExpCpu;

impl ScenarioReport for ExpCpu {
    fn id(&self) -> &str {
        "EXP-CPU (§1)"
    }
    fn title(&self) -> &str {
        "kernel TCP CPU cost vs RDMA"
    }
    fn claim(&self) -> &str {
        "sending at 40 Gb/s over 8 TCP connections costs 6% of a 32-core server; \
         receiving costs 12%; RDMA does the same work at ≈0% CPU"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let r = cpu::run(SimTime::from_millis(60));
        let mut t = Table::new(
            "stacks",
            &["stack", "throughput(Gb/s)", "tx cpu(%)", "rx cpu(%)"],
        );
        t.row(vec![
            Cell::s("TCP"),
            Cell::f1(r.tcp_gbps),
            Cell::f2(r.tcp_tx_cpu_pct),
            Cell::f2(r.tcp_rx_cpu_pct),
        ]);
        t.row(vec![
            Cell::s("RDMA"),
            Cell::f1(r.rdma_gbps),
            Cell::f2(r.rdma_cpu_pct),
            Cell::f2(r.rdma_cpu_pct),
        ]);
        let mut rep = Report::new();
        rep.table(t);
        rep.scalar(
            "tcp_tx_cpu_pct_at_40g",
            Cell::f1(r.tcp_tx_cpu_pct * 40.0 / r.tcp_gbps),
        );
        rep.scalar(
            "tcp_rx_cpu_pct_at_40g",
            Cell::f1(r.tcp_rx_cpu_pct * 40.0 / r.tcp_gbps),
        );
        rep.note("normalized to 40 Gb/s (paper: 6% tx / 12% rx)");
        rep
    }
}

fn main() {
    main_for(&ExpCpu)
}
