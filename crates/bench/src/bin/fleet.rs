//! Run the full experiment suite — every figure and section experiment —
//! in one invocation, spread across worker threads.
//!
//! ```text
//! fleet [--jobs N] [--only SUBSTR] [--json] [--json-out PATH]
//!       [--trace-out PATH] [--bench-out PATH] [scenario flags…]
//! ```
//!
//! * `--jobs N` — worker threads (default: available parallelism).
//! * `--only SUBSTR` — run only scenarios whose id contains `SUBSTR`
//!   (case-insensitive), e.g. `--only fleet-scale` or `--only §4.2`.
//! * `--json` — emit one JSON document `{"scenarios": [...]}`, each
//!   element the same schema the standalone binaries emit with `--json`
//!   (validated by `json_check`).
//! * `--json-out PATH` — also write that document to a file.
//! * `--bench-out PATH` — time the selection at `--jobs 1` and at
//!   `--jobs N`, check the outputs are byte-identical, and write a JSON
//!   artifact (e.g. `BENCH_fleet.json`) with the headline numbers.
//! * anything else (e.g. `--full-scale`, `--no-pfc`) is forwarded to
//!   every scenario.
//!
//! `--trace-out` is forwarded when the selection is exactly one
//! scenario (the usual `--only` case); with several scenarios racing to
//! stream into one file the lines would interleave garbage, so the
//! fleet drops the flag with a warning instead.
//!
//! Output on stdout is a pure function of the job list — worker count
//! only changes wall-clock time, which goes to stderr.

use std::time::Instant;

use rocescale_bench::fleet::{matching_indices, run_selected, suite_json};
use rocescale_bench::harness::ScenarioCli;
use rocescale_bench::CliArgs;
use rocescale_monitor::Json;

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("fleet: {msg}");
    }
    eprintln!(
        "usage: fleet [--jobs N] [--only SUBSTR] [--json] [--json-out PATH] \
         [--trace-out PATH] [--bench-out PATH] [scenario flags...]"
    );
    std::process::exit(2);
}

/// Pull `--only SUBSTR` out of the forwarded flag list (it addresses the
/// fleet, not the scenarios).
fn take_only(flags: &mut Vec<String>) -> Option<String> {
    let i = flags.iter().position(|f| f == "--only")?;
    if i + 1 >= flags.len() {
        usage("--only needs a scenario-id substring");
    }
    let v = flags.remove(i + 1);
    flags.remove(i);
    Some(v)
}

fn main() {
    let cli = match ScenarioCli::parse() {
        Ok(cli) => cli,
        Err(msg) => usage(&msg),
    };
    if cli.has("--help") || cli.has("-h") {
        usage("");
    }
    let jobs = cli.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let mut flags = cli.flags.clone();
    let only = take_only(&mut flags);
    let indices = match &only {
        Some(needle) => {
            let m = matching_indices(needle);
            if m.is_empty() {
                usage(&format!("--only {needle:?} matches no scenario id"));
            }
            m
        }
        None => (0..rocescale_bench::suite::all().len()).collect(),
    };
    let trace_out = match (&cli.trace_out, indices.len()) {
        (Some(path), 1) => Some(path.clone()),
        (Some(_), n) => {
            eprintln!(
                "fleet: --trace-out needs a single scenario ({n} selected); \
                 narrow with --only. Ignoring."
            );
            None
        }
        (None, _) => None,
    };
    // The per-scenario view: the output flags the fleet owns must not
    // also fire inside every worker.
    let args = CliArgs {
        json: cli.json,
        json_out: None,
        trace_out,
        flags,
    };

    if let Some(path) = &cli.bench_out {
        bench_mode(&args, jobs, path, &indices);
        return;
    }

    let t0 = Instant::now();
    let outcomes = run_selected(&args, jobs, &indices);
    let secs = t0.elapsed().as_secs_f64();
    if let Some(path) = &cli.json_out {
        let doc = suite_json(&outcomes).render() + "\n";
        std::fs::write(path, doc).unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if cli.json {
        println!("{}", suite_json(&outcomes).render());
    } else {
        for (i, o) in outcomes.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", o.text);
        }
    }
    eprintln!(
        "fleet: {} scenarios on {} worker(s) in {:.2}s",
        outcomes.len(),
        jobs,
        secs
    );
}

/// Time the selection serially and at `jobs` workers, insist the
/// rendered output is byte-identical, and write the headline artifact.
fn bench_mode(cli: &CliArgs, jobs: usize, path: &str, indices: &[usize]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Byte-identity requires deterministic reports: scenarios that
    // measure their own wall-clock (inc_fleet_scale's per-shard split)
    // suppress those fields under this flag.
    let mut cli = cli.clone();
    cli.flags.push("--deterministic".to_string());
    let cli = &cli;

    eprintln!("fleet bench: {} scenario(s) at --jobs 1 ...", indices.len());
    let t0 = Instant::now();
    let serial = run_selected(cli, 1, indices);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "fleet bench: {} scenario(s) at --jobs {jobs} ...",
        indices.len()
    );
    let t1 = Instant::now();
    let parallel = run_selected(cli, jobs, indices);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    let a = suite_json(&serial).render();
    let b = suite_json(&parallel).render();
    assert_eq!(
        a, b,
        "fleet output must be byte-identical across worker counts"
    );

    let doc = Json::obj(vec![
        ("bench", Json::Str("fleet".to_string())),
        ("cores", Json::U64(cores as u64)),
        ("jobs", Json::U64(jobs as u64)),
        ("scenarios", Json::U64(serial.len() as u64)),
        ("serial_ms", Json::F64(serial_ms)),
        ("parallel_ms", Json::F64(parallel_ms)),
        ("speedup", Json::F64(serial_ms / parallel_ms)),
        ("identical_output", Json::Bool(true)),
    ]);
    std::fs::write(path, doc.render() + "\n").expect("write fleet bench artifact");
    eprintln!(
        "fleet bench: serial {serial_ms:.0} ms, --jobs {jobs} {parallel_ms:.0} ms \
         (speedup {:.2}x on {cores} core(s)); wrote {path}",
        serial_ms / parallel_ms
    );
}
