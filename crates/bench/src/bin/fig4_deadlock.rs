//! Figure 4 / §4.2 — PFC + Ethernet flooding deadlock, and the
//! drop-on-incomplete-ARP fix.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::deadlock;
use rocescale_sim::SimTime;

struct Fig4;

impl ScenarioReport for Fig4 {
    fn id(&self) -> &str {
        "FIG-4 (§4.2)"
    }
    fn title(&self) -> &str {
        "flooding deadlock and the incomplete-ARP fix"
    }
    fn claim(&self) -> &str {
        "incomplete ARP entries make ToRs flood lossless packets; flood copies parked \
         on paused fabric ports close a cyclic buffer dependency and the fabric wedges \
         permanently; dropping lossless packets on incomplete ARP prevents it"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(40);
        let mut t = Table::new(
            "arms",
            &[
                "fix",
                "deadlocked switches",
                "tail MB (live)",
                "pauses",
                "fix drops",
            ],
        );
        let mut rep = Report::new();
        for fix in [false, true] {
            let r = deadlock::run(fix, dur);
            t.row(vec![
                Cell::Bool(r.fix_enabled),
                Cell::s(format!("{:?}", r.deadlocked_switches)),
                Cell::f1(r.tail_goodput_bytes as f64 / 1e6),
                Cell::U64(r.pauses),
                Cell::U64(r.fix_drops),
            ]);
            match r.wait_cycle {
                Some(c) => rep.note(format!("fix={fix}: pause-wait cycle: {}", c.join(" -> "))),
                None => rep.note(format!("fix={fix}: pause-wait graph: acyclic")),
            }
        }
        rep.table(t);
        rep
    }
}

fn main() {
    main_for(&Fig4)
}
