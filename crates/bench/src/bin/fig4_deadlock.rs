//! Figure 4 / §4.2 — PFC + Ethernet flooding deadlock, and the
//! drop-on-incomplete-ARP fix.

use rocescale_bench::header;
use rocescale_core::scenarios::deadlock;
use rocescale_sim::SimTime;

fn main() {
    header(
        "FIG-4 (§4.2)",
        "incomplete ARP entries make ToRs flood lossless packets; flood copies parked \
         on paused fabric ports close a cyclic buffer dependency and the fabric wedges \
         permanently; dropping lossless packets on incomplete ARP prevents it",
    );
    let dur = SimTime::from_millis(40);
    println!(
        "{:<6} {:>28} {:>16} {:>8} {:>10}",
        "fix", "deadlocked switches", "tail MB (live)", "pauses", "fix drops"
    );
    for fix in [false, true] {
        let r = deadlock::run(fix, dur);
        println!(
            "{:<6} {:>28} {:>16.1} {:>8} {:>10}",
            r.fix_enabled,
            format!("{:?}", r.deadlocked_switches),
            r.tail_goodput_bytes as f64 / 1e6,
            r.pauses,
            r.fix_drops
        );
        match r.wait_cycle {
            Some(c) => println!("       pause-wait cycle: {}", c.join(" -> ")),
            None => println!("       pause-wait graph: acyclic"),
        }
    }
}
