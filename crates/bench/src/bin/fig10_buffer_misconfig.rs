//! Figure 10 / §6.2 — the α = 1/64 dynamic-buffer misconfiguration
//! incident, swept across α values.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::buffer_misconfig;
use rocescale_sim::SimTime;

struct Fig10;

impl ScenarioReport for Fig10 {
    fn id(&self) -> &str {
        "FIG-10 (§6.2)"
    }
    fn title(&self) -> &str {
        "the α = 1/64 buffer misconfiguration incident"
    }
    fn claim(&self) -> &str {
        "a new ToR type shipped α = 1/64 instead of the fleet's 1/16; chatty incast \
         then triggered pause storms (up to 60k pauses / 5 min) and latency spikes; \
         tuning α back fixed it — and config monitoring should have caught it"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(25);
        let mut t = Table::new(
            "alpha sweep",
            &[
                "alpha",
                "tor pauses",
                "server pauses",
                "p50(us)",
                "p99(us)",
                "cfg-deviations",
            ],
        );
        for alpha in [1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0] {
            let r = buffer_misconfig::run(alpha, dur);
            t.row(vec![
                Cell::s(format!("1/{:.0}", 1.0 / alpha)),
                Cell::U64(r.tor_pauses),
                Cell::U64(r.server_pause_rx),
                Cell::f1(r.latency.p50_us),
                Cell::f1(r.latency.p99_us),
                Cell::U64(r.config_deviations as u64),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        let mut series = Table::new(
            "pause frames per window, Figure 10(b) form (cumulative at window end)",
            &["alpha", "t(ms)", "pauses"],
        );
        for alpha in [1.0 / 64.0, 1.0 / 16.0] {
            let s = buffer_misconfig::pause_series(alpha, dur, 5);
            for (t_ps, v) in s.points() {
                series.row(vec![
                    Cell::s(format!("1/{:.0}", 1.0 / alpha)),
                    Cell::U64(*t_ps / 1_000_000_000),
                    Cell::F64 { v: *v, prec: 0 },
                ]);
            }
        }
        rep.table(series);
        rep
    }
}

fn main() {
    main_for(&Fig10)
}
