//! Figure 10 / §6.2 — the α = 1/64 dynamic-buffer misconfiguration
//! incident, swept across α values.

use rocescale_bench::header;
use rocescale_core::scenarios::buffer_misconfig;
use rocescale_sim::SimTime;

fn main() {
    header(
        "FIG-10 (§6.2)",
        "a new ToR type shipped α = 1/64 instead of the fleet's 1/16; chatty incast \
         then triggered pause storms (up to 60k pauses / 5 min) and latency spikes; \
         tuning α back fixed it — and config monitoring should have caught it",
    );
    let dur = SimTime::from_millis(25);
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>10} {:>12}",
        "alpha", "tor pauses", "server pauses", "p50(us)", "p99(us)", "cfg-deviations"
    );
    for alpha in [1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0] {
        let r = buffer_misconfig::run(alpha, dur);
        println!(
            "1/{:<8.0} {:>12} {:>14} {:>10.1} {:>10.1} {:>12}",
            1.0 / alpha,
            r.tor_pauses,
            r.server_pause_rx,
            r.latency.p50_us,
            r.latency.p99_us,
            r.config_deviations
        );
    }
    println!();
    println!("pause frames per window, Figure 10(b) form (cumulative at window end):");
    for alpha in [1.0 / 64.0, 1.0 / 16.0] {
        let s = buffer_misconfig::pause_series(alpha, dur, 5);
        let cells: Vec<String> = s
            .points()
            .iter()
            .map(|(t, v)| format!("{:>4.0}@{}ms", v, t / 1_000_000_000))
            .collect();
        println!("  α=1/{:<3.0} {}", 1.0 / alpha, cells.join(" "));
    }
}
