//! §4.4 — the slow-receiver symptom: MTT thrash turns the *server* into a
//! pause source; 2 MB pages and dynamic buffer sharing mitigate.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::slow_receiver::{self, PageSize};
use rocescale_sim::SimTime;

struct ExpSlowReceiver;

impl ScenarioReport for ExpSlowReceiver {
    fn id(&self) -> &str {
        "EXP-SLOW-RECEIVER (§4.4)"
    }
    fn title(&self) -> &str {
        "MTT thrash makes the server a pause source"
    }
    fn claim(&self) -> &str {
        "MTT misses stall the NIC receive pipeline; the buffer crosses XOFF and the \
         server pauses its ToR; 2 MB pages cut the misses, dynamic switch buffers \
         absorb the churn instead of propagating it"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(15);
        let mut t = Table::new(
            "arms",
            &[
                "pages",
                "dynamic",
                "server pauses",
                "upstream pauses",
                "goodput(Gb/s)",
                "MTT miss(%)",
            ],
        );
        for pages in [PageSize::Small, PageSize::Large] {
            for dynamic in [true, false] {
                let r = slow_receiver::run(pages, dynamic, dur);
                t.row(vec![
                    Cell::s(format!("{pages:?}")),
                    Cell::Bool(r.dynamic_buffers),
                    Cell::U64(r.server_pause_tx),
                    Cell::U64(r.upstream_pause_tx),
                    Cell::f2(r.goodput_gbps),
                    Cell::f1(r.mtt_miss_ratio * 100.0),
                ]);
            }
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

fn main() {
    main_for(&ExpSlowReceiver)
}
