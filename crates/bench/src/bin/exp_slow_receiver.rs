//! §4.4 — the slow-receiver symptom: MTT thrash turns the *server* into a
//! pause source; 2 MB pages and dynamic buffer sharing mitigate.

use rocescale_bench::header;
use rocescale_core::scenarios::slow_receiver::{self, PageSize};
use rocescale_sim::SimTime;

fn main() {
    header(
        "EXP-SLOW-RECEIVER (§4.4)",
        "MTT misses stall the NIC receive pipeline; the buffer crosses XOFF and the \
         server pauses its ToR; 2 MB pages cut the misses, dynamic switch buffers \
         absorb the churn instead of propagating it",
    );
    let dur = SimTime::from_millis(15);
    println!(
        "{:<8} {:>9} {:>14} {:>16} {:>14} {:>10}",
        "pages", "dynamic", "server pauses", "upstream pauses", "goodput(Gb/s)", "MTT miss%"
    );
    for pages in [PageSize::Small, PageSize::Large] {
        for dynamic in [true, false] {
            let r = slow_receiver::run(pages, dynamic, dur);
            println!(
                "{:<8} {:>9} {:>14} {:>16} {:>14.2} {:>9.1}%",
                format!("{pages:?}"),
                r.dynamic_buffers,
                r.server_pause_tx,
                r.upstream_pause_tx,
                r.goodput_gbps,
                r.mtt_miss_ratio * 100.0
            );
        }
    }
}
