//! §8.1 (future work) — per-packet routing vs per-flow ECMP for RDMA.

use rocescale_bench::header;
use rocescale_core::scenarios::spray;
use rocescale_sim::SimTime;

fn main() {
    header(
        "EXP-PER-PACKET-ROUTING (§8.1)",
        "\"there are MPTCP and per-packet routing for better network utilization. How to \
         make these designs work for RDMA in the lossless network context will be an \
         interesting challenge\" — here is the challenge, quantified on a two-path \
         diamond with a 5 m vs 300 m skew",
    );
    let dur = SimTime::from_millis(10);
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>8} {:>8}",
        "routing", "goodput(Gb/s)", "wire(Gb/s)", "out-of-seq", "naks", "drops"
    );
    for spraying in [false, true] {
        let r = spray::run(spraying, dur);
        println!(
            "{:<10} {:>14.2} {:>12.2} {:>12} {:>8} {:>8}",
            if spraying { "per-packet" } else { "per-flow" },
            r.goodput_gbps,
            r.wire_gbps,
            r.out_of_seq,
            r.naks,
            r.drops
        );
    }
    println!();
    println!("per-packet spraying loses nothing in the fabric, yet go-back-N treats the");
    println!("reordering as loss — the transport, not the network, is the blocker.");
}
