//! §8.1 (future work) — per-packet routing vs per-flow ECMP for RDMA.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::spray;
use rocescale_sim::SimTime;

struct ExpSpray;

impl ScenarioReport for ExpSpray {
    fn id(&self) -> &str {
        "EXP-PER-PACKET-ROUTING (§8.1)"
    }
    fn title(&self) -> &str {
        "per-packet routing vs per-flow ECMP"
    }
    fn claim(&self) -> &str {
        "\"there are MPTCP and per-packet routing for better network utilization. How to \
         make these designs work for RDMA in the lossless network context will be an \
         interesting challenge\" — here is the challenge, quantified on a two-path \
         diamond with a 5 m vs 300 m skew"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(10);
        let mut t = Table::new(
            "arms",
            &[
                "routing",
                "goodput(Gb/s)",
                "wire(Gb/s)",
                "out-of-seq",
                "naks",
                "drops",
            ],
        );
        for spraying in [false, true] {
            let r = spray::run(spraying, dur);
            t.row(vec![
                Cell::s(if spraying { "per-packet" } else { "per-flow" }),
                Cell::f2(r.goodput_gbps),
                Cell::f2(r.wire_gbps),
                Cell::U64(r.out_of_seq),
                Cell::U64(r.naks),
                Cell::U64(r.drops),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep.note(
            "per-packet spraying loses nothing in the fabric, yet go-back-N treats the \
             reordering as loss — the transport, not the network, is the blocker.",
        );
        rep
    }
}

fn main() {
    main_for(&ExpSpray)
}
