//! §2 ablation — "Though DCQCN helps reduce the number of PFC pause
//! frames, it is PFC that protects packets from being dropped as the
//! last defense."

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::dcqcn_ablation;
use rocescale_sim::SimTime;

struct ExpDcqcn;

impl ScenarioReport for ExpDcqcn {
    fn id(&self) -> &str {
        "EXP-DCQCN (§2)"
    }
    fn title(&self) -> &str {
        "DCQCN off vs on: PFC is the last defense"
    }
    fn claim(&self) -> &str {
        "DCQCN keeps switch queues short so PFC rarely fires; with it off the same \
         incast is still loss-free — PFC is the last defense — but pauses constantly"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(15);
        let mut t = Table::new(
            "arms",
            &[
                "dcqcn",
                "pauses",
                "ecn marks",
                "cnps",
                "goodput(Gb/s)",
                "peak queue(KB)",
                "ll drops",
            ],
        );
        for dcqcn in [false, true] {
            let r = dcqcn_ablation::run(dcqcn, 4, dur);
            t.row(vec![
                Cell::Bool(r.dcqcn),
                Cell::U64(r.pauses),
                Cell::U64(r.ecn_marked),
                Cell::U64(r.cnps),
                Cell::f2(r.goodput_gbps),
                Cell::f1(r.peak_queue_bytes as f64 / 1024.0),
                Cell::U64(r.lossless_drops),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

fn main() {
    main_for(&ExpDcqcn)
}
