//! §2 ablation — "Though DCQCN helps reduce the number of PFC pause
//! frames, it is PFC that protects packets from being dropped as the
//! last defense."

use rocescale_bench::header;
use rocescale_core::scenarios::dcqcn_ablation;
use rocescale_sim::SimTime;

fn main() {
    header(
        "EXP-DCQCN (§2)",
        "DCQCN keeps switch queues short so PFC rarely fires; with it off the same \
         incast is still loss-free — PFC is the last defense — but pauses constantly",
    );
    let dur = SimTime::from_millis(15);
    println!(
        "{:<7} {:>8} {:>10} {:>8} {:>14} {:>16} {:>10}",
        "dcqcn", "pauses", "ecn marks", "cnps", "goodput(Gb/s)", "peak queue(KB)", "ll drops"
    );
    for dcqcn in [false, true] {
        let r = dcqcn_ablation::run(dcqcn, 4, dur);
        println!(
            "{:<7} {:>8} {:>10} {:>8} {:>14.2} {:>16.1} {:>10}",
            r.dcqcn,
            r.pauses,
            r.ecn_marked,
            r.cnps,
            r.goodput_gbps,
            r.peak_queue_bytes as f64 / 1024.0,
            r.lossless_drops
        );
    }
}
