//! Paper-scale sharded fleet (§6). Flags: `--shards N`, `--serial`.

fn main() {
    rocescale_bench::main_for(&rocescale_bench::suite::IncFleetScale);
}
