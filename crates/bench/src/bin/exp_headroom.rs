//! §2 — PFC headroom sweep: the gray-period formula validated by
//! violation on 300 m cables.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::headroom;
use rocescale_sim::SimTime;

struct ExpHeadroom;

impl ScenarioReport for ExpHeadroom {
    fn id(&self) -> &str {
        "EXP-HEADROOM (§2)"
    }
    fn title(&self) -> &str {
        "PFC headroom sweep"
    }
    fn claim(&self) -> &str {
        "headroom absorbs the packets in flight during the XOFF 'gray period' — sized \
         from MTU, PFC reaction time, and propagation delay (300 m worst case); \
         undersize it and the lossless guarantee breaks"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(6);
        let mut t = Table::new("sweep", &["fraction", "headroom(B)", "ll drops", "pauses"]);
        for fraction in [0.1, 0.25, 0.5, 0.75, 1.0, 1.5] {
            let r = headroom::run(fraction, dur);
            t.row(vec![
                Cell::s(format!("{:.2}x", r.fraction)),
                Cell::U64(r.headroom_bytes),
                Cell::U64(r.lossless_drops),
                Cell::U64(r.pauses),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

fn main() {
    main_for(&ExpHeadroom)
}
