//! §2 — PFC headroom sweep: the gray-period formula validated by
//! violation on 300 m cables.

use rocescale_bench::header;
use rocescale_core::scenarios::headroom;
use rocescale_sim::SimTime;

fn main() {
    header(
        "EXP-HEADROOM (§2)",
        "headroom absorbs the packets in flight during the XOFF 'gray period' — sized \
         from MTU, PFC reaction time, and propagation delay (300 m worst case); \
         undersize it and the lossless guarantee breaks",
    );
    let dur = SimTime::from_millis(6);
    println!(
        "{:<10} {:>14} {:>12} {:>8}",
        "fraction", "headroom(B)", "ll drops", "pauses"
    );
    for fraction in [0.1, 0.25, 0.5, 0.75, 1.0, 1.5] {
        let r = headroom::run(fraction, dur);
        println!(
            "{:<10} {:>14} {:>12} {:>8}",
            format!("{:.2}x", r.fraction),
            r.headroom_bytes,
            r.lossless_drops,
            r.pauses
        );
    }
}
