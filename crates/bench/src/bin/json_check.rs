//! Schema validator for `--json` experiment output: reads one JSON
//! document from stdin, parses it with the in-tree strict parser, and
//! checks the report schema (`id`/`title`/`paper`/`tables`/`scalars`/
//! `notes`, with each table carrying `name`/`columns`/`rows` and every
//! row as wide as its column list). A fleet document —
//! `{"scenarios": [<report>, ...]}` from `fleet --json` — is also
//! accepted: every element is validated against the report schema and
//! scenario ids must be unique. Exits non-zero with a message on any
//! violation — the CI smoke gate for the JSON export path.

use std::io::Read;

use rocescale_monitor::{json, Json};

fn fail(msg: &str) -> ! {
    eprintln!("json_check: {msg}");
    std::process::exit(1);
}

/// Validate one report document; returns (id, tables, rows) for the
/// summary line.
fn check_report(doc: &Json, ctx: &str) -> (String, usize, usize) {
    for key in ["id", "title", "paper", "tables", "scalars", "notes"] {
        if doc.get(key).is_none() {
            fail(&format!("{ctx}missing top-level key {key:?}"));
        }
    }
    for key in ["id", "title", "paper"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            fail(&format!("{ctx}{key:?} must be a string"));
        }
    }
    let Some(tables) = doc.get("tables").and_then(Json::as_arr) else {
        fail(&format!("{ctx}\"tables\" must be an array"));
    };
    for (i, t) in tables.iter().enumerate() {
        let Some(cols) = t.get("columns").and_then(Json::as_arr) else {
            fail(&format!("{ctx}table {i}: \"columns\" must be an array"));
        };
        if t.get("name").and_then(Json::as_str).is_none() {
            fail(&format!("{ctx}table {i}: \"name\" must be a string"));
        }
        let Some(rows) = t.get("rows").and_then(Json::as_arr) else {
            fail(&format!("{ctx}table {i}: \"rows\" must be an array"));
        };
        for (j, row) in rows.iter().enumerate() {
            let Some(cells) = row.as_arr() else {
                fail(&format!("{ctx}table {i} row {j}: not an array"));
            };
            if cells.len() != cols.len() {
                fail(&format!(
                    "{ctx}table {i} row {j}: {} cells for {} columns",
                    cells.len(),
                    cols.len()
                ));
            }
        }
    }
    if doc.get("notes").and_then(Json::as_arr).is_none() {
        fail(&format!("{ctx}\"notes\" must be an array"));
    }
    let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
    let rows = tables
        .iter()
        .map(|t| t.get("rows").and_then(Json::as_arr).map_or(0, |r| r.len()))
        .sum::<usize>();
    (id, tables.len(), rows)
}

fn main() {
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
    let doc = match json::parse(&input) {
        Ok(d) => d,
        Err(e) => fail(&format!("parse error at byte {}: {}", e.at, e.msg)),
    };
    if let Some(scenarios) = doc.get("scenarios") {
        // Fleet document: an array of report documents.
        let Some(scenarios) = scenarios.as_arr() else {
            fail("\"scenarios\" must be an array");
        };
        if scenarios.is_empty() {
            fail("\"scenarios\" is empty");
        }
        let mut ids = Vec::new();
        let (mut tables, mut rows) = (0, 0);
        for (i, s) in scenarios.iter().enumerate() {
            let (id, t, r) = check_report(s, &format!("scenario {i}: "));
            if ids.contains(&id) {
                fail(&format!("scenario {i}: duplicate id {id:?}"));
            }
            ids.push(id);
            tables += t;
            rows += r;
        }
        println!(
            "json_check: ok — fleet: {} scenario(s), {tables} table(s), {rows} row(s)",
            scenarios.len()
        );
    } else {
        let (id, tables, rows) = check_report(&doc, "");
        println!("json_check: ok — {id}: {tables} table(s), {rows} row(s)");
    }
}
