//! Bench-regression diff: compares a freshly generated bench artifact
//! against the committed baseline and emits GitHub warning annotations
//! for anything outside tolerance. **Warn-only by design** — shared CI
//! runners are too noisy for a hard perf gate, so the exit code is
//! always 0; drift shows up as `::warning::` lines on the run instead
//! of a red build.
//!
//! Usage: `bench_diff <baseline.json> <fresh.json> [--tolerance-pct N]`
//!
//! Two artifact shapes are understood:
//!
//! * **sched** — `{"bench":"sched","results":[{name, ns_per_iter, ...}]}`:
//!   measurements are matched by `name` and `ns_per_iter` compared.
//! * **fleet** — `{"bench":"fleet", serial_ms, parallel_ms, ...}`: a flat
//!   document; the numeric wall-clock fields are compared by key.
//!
//! Arms present on only one side are reported (a renamed or new arm is
//! itself worth a look) but never fail the run.

use rocescale_monitor::{json, Json};

/// Default relative tolerance, percent. Bench numbers on shared runners
/// jitter ±20% routinely; anything inside that band is noise.
const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

fn read_doc(path: &str) -> Option<Json> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("::warning::bench_diff: cannot read {path}: {e}");
            return None;
        }
    };
    match json::parse(&text) {
        Ok(d) => Some(d),
        Err(e) => {
            println!(
                "::warning::bench_diff: {path}: parse error at byte {}: {}",
                e.at, e.msg
            );
            None
        }
    }
}

fn as_f64(j: &Json) -> Option<f64> {
    match j {
        Json::F64(v) => Some(*v),
        Json::U64(v) => Some(*v as f64),
        Json::I64(v) => Some(*v as f64),
        _ => None,
    }
}

/// `(label, value)` pairs to compare, extracted per artifact shape.
fn comparable_series(doc: &Json) -> Vec<(String, f64)> {
    if let Some(results) = doc.get("results").and_then(Json::as_arr) {
        // sched shape: one (name, ns_per_iter) per measurement.
        return results
            .iter()
            .filter_map(|m| {
                let name = m.get("name")?.as_str()?.to_string();
                let ns = m.get("ns_per_iter").and_then(as_f64)?;
                Some((name, ns))
            })
            .collect();
    }
    // fleet shape: flat numeric wall-clock fields.
    ["serial_ms", "parallel_ms"]
        .iter()
        .filter_map(|key| {
            let v = doc.get(key).and_then(as_f64)?;
            Some((key.to_string(), v))
        })
        .collect()
}

/// Per-kind handler-nanos series from a sched artifact's `profiles` key:
/// one `(fabric.kind.nanos, value)` pair per dispatch kind per fabric.
/// Absent (old artifacts, fleet shape) yields an empty series — the
/// profiles diff is additive and warn-only like everything else here.
fn profile_series(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(Json::Obj(fabrics)) = doc.get("profiles") else {
        return out;
    };
    for (fabric, prof) in fabrics {
        let Json::Obj(entries) = prof else { continue };
        for (kind, entry) in entries {
            if let Some(nanos) = entry.get("nanos").and_then(as_f64) {
                out.push((format!("profiles.{fabric}.{kind}.nanos"), nanos));
            }
        }
    }
    out
}

/// Diff one baseline/fresh pair; returns the number of warnings emitted.
fn diff(baseline_path: &str, fresh_path: &str, tolerance_pct: f64) -> usize {
    let (Some(base), Some(fresh)) = (read_doc(baseline_path), read_doc(fresh_path)) else {
        return 1; // read_doc already warned
    };
    let mut warnings = compare_series(
        &comparable_series(&base),
        &comparable_series(&fresh),
        tolerance_pct,
        baseline_path,
        fresh_path,
    );
    // Per-kind dispatch-profile nanos (sched artifacts only). Skipped
    // unless both sides carry a `profiles` key, so old baselines don't
    // drown the run in "new arm" warnings.
    let base_prof = profile_series(&base);
    let fresh_prof = profile_series(&fresh);
    if !base_prof.is_empty() && !fresh_prof.is_empty() {
        warnings += compare_series(
            &base_prof,
            &fresh_prof,
            tolerance_pct,
            baseline_path,
            fresh_path,
        );
    } else if base_prof.is_empty() != fresh_prof.is_empty() {
        println!("bench_diff: profiles key present on one side only — profile diff skipped");
    }
    warnings
}

/// Compare matched `(label, value)` series, warning outside tolerance;
/// returns the number of warnings emitted.
fn compare_series(
    base_series: &[(String, f64)],
    fresh_series: &[(String, f64)],
    tolerance_pct: f64,
    baseline_path: &str,
    fresh_path: &str,
) -> usize {
    let mut warnings = 0;
    for (name, base_val) in base_series {
        let Some((_, fresh_val)) = fresh_series.iter().find(|(n, _)| n == name) else {
            println!(
                "::warning::bench_diff: {name} present in {baseline_path} but missing \
                 from {fresh_path}"
            );
            warnings += 1;
            continue;
        };
        if *base_val <= 0.0 {
            continue;
        }
        let delta_pct = (fresh_val - base_val) / base_val * 100.0;
        let direction = if delta_pct > 0.0 { "slower" } else { "faster" };
        if delta_pct.abs() > tolerance_pct {
            println!(
                "::warning::bench_diff: {name}: {fresh_val:.1} vs baseline {base_val:.1} \
                 ({:+.1}% — {direction}, tolerance ±{tolerance_pct:.0}%)",
                delta_pct
            );
            warnings += 1;
        } else {
            println!("bench_diff: {name}: {fresh_val:.1} vs {base_val:.1} ({delta_pct:+.1}%) ok");
        }
    }
    for (name, _) in fresh_series {
        if !base_series.iter().any(|(n, _)| n == name) {
            println!(
                "::warning::bench_diff: {name} is new in {fresh_path} (no committed baseline)"
            );
            warnings += 1;
        }
    }
    warnings
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance_pct = DEFAULT_TOLERANCE_PCT;
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance-pct" {
            tolerance_pct = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_TOLERANCE_PCT);
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    if paths.len() != 2 {
        println!(
            "::warning::bench_diff: usage: bench_diff <baseline.json> <fresh.json> \
             [--tolerance-pct N]"
        );
        return; // warn-only: never a red build
    }
    let warnings = diff(&paths[0], &paths[1], tolerance_pct);
    if warnings == 0 {
        println!(
            "bench_diff: {} vs {}: all within tolerance",
            paths[0], paths[1]
        );
    } else {
        println!(
            "bench_diff: {} vs {}: {warnings} warning(s) — informational only",
            paths[0], paths[1]
        );
    }
    // Exit 0 unconditionally: this is a tripwire, not a gate.
}
