//! Offline trace analysis: read a `--trace-out` JSONL export from any
//! scenario binary and render queue-depth heatmaps, pause-propagation
//! timelines and CC rate trajectories as the standard report tables.
//!
//! ```text
//! trace_analyze TRACE.jsonl [--json] [--json-out PATH]
//! ```
//!
//! The output is a normal scenario report (id `TRACE`), so `--json`
//! emits the same schema every experiment binary does and pipes
//! straight into `json_check`.

use rocescale_bench::harness::ScenarioCli;
use rocescale_bench::TraceDoc;

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("trace_analyze: {msg}");
    }
    eprintln!("usage: trace_analyze TRACE.jsonl [--json] [--json-out PATH]");
    std::process::exit(2);
}

fn main() {
    let cli = match ScenarioCli::parse() {
        Ok(cli) => cli,
        Err(msg) => usage(&msg),
    };
    let [path] = cli.flags.as_slice() else {
        usage("expected exactly one trace file argument");
    };
    let doc = TraceDoc::load(path).unwrap_or_else(|e| usage(&e));
    rocescale_bench::main_for(&doc);
}
