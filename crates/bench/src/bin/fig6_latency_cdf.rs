//! Figure 6 / §5.4 — RDMA vs TCP end-to-end latency for the
//! latency-sensitive incast service.

use rocescale_bench::{header, latency_header, latency_row};
use rocescale_core::scenarios::latency;
use rocescale_sim::SimTime;

fn main() {
    header(
        "FIG-6 (§5.4)",
        "p99: RDMA ≈ 90 µs vs TCP ≈ 700 µs (TCP spikes to several ms); RDMA's p99.9 \
         (≈200 µs) is below TCP's p99 — same fabric, same incast workload",
    );
    let r = latency::run(
        SimTime::from_millis(80),
        4,
        16 * 1024,
        SimTime::from_millis(2),
    );
    println!("{}", latency_header());
    println!("{}", latency_row("RDMA", &r.rdma));
    println!("{}", latency_row("TCP", &r.tcp));
    println!();
    // The figure itself is a CDF; print its key quantiles.
    use rocescale_monitor::Percentiles;
    let mut rdma = Percentiles::from_samples(&r.rdma_samples_ps);
    let mut tcp = Percentiles::from_samples(&r.tcp_samples_ps);
    println!("{:>10} {:>12} {:>12}", "CDF", "RDMA (us)", "TCP (us)");
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999] {
        let us = |v: Option<u64>| v.map_or(0.0, |v| v as f64 / 1e6);
        println!(
            "{:>9.1}% {:>12.1} {:>12.1}",
            q * 100.0,
            us(rdma.quantile(q)),
            us(tcp.quantile(q))
        );
    }
    println!();
    println!(
        "lossless drops: {}  |  TCP p99 / RDMA p99 = {:.1}x  |  RDMA p99.9 < TCP p99: {}",
        r.lossless_drops,
        r.tcp.p99_us / r.rdma.p99_us,
        r.rdma.p999_us < r.tcp.p99_us
    );
}
