//! Figure 6 / §5.4 — RDMA vs TCP end-to-end latency for the
//! latency-sensitive incast service.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::latency::{self, LatencySummary};
use rocescale_monitor::Percentiles;
use rocescale_sim::SimTime;

fn latency_row(label: &str, s: &LatencySummary) -> Vec<Cell> {
    vec![
        Cell::s(label),
        Cell::U64(s.samples as u64),
        Cell::f1(s.p50_us),
        Cell::f1(s.p99_us),
        Cell::f1(s.p999_us),
        Cell::f1(s.max_us),
    ]
}

struct Fig6;

impl ScenarioReport for Fig6 {
    fn id(&self) -> &str {
        "FIG-6 (§5.4)"
    }
    fn title(&self) -> &str {
        "RDMA vs TCP latency CDF"
    }
    fn claim(&self) -> &str {
        "p99: RDMA ≈ 90 µs vs TCP ≈ 700 µs (TCP spikes to several ms); RDMA's p99.9 \
         (≈200 µs) is below TCP's p99 — same fabric, same incast workload"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let r = latency::run(
            SimTime::from_millis(80),
            4,
            16 * 1024,
            SimTime::from_millis(2),
        );
        let mut t = Table::new(
            "latency",
            &[
                "series",
                "samples",
                "p50(us)",
                "p99(us)",
                "p99.9(us)",
                "max(us)",
            ],
        );
        t.row(latency_row("RDMA", &r.rdma));
        t.row(latency_row("TCP", &r.tcp));

        // The figure itself is a CDF; tabulate its key quantiles.
        let mut rdma = Percentiles::from_samples(&r.rdma_samples_ps);
        let mut tcp = Percentiles::from_samples(&r.tcp_samples_ps);
        let mut cdf = Table::new("cdf", &["quantile", "RDMA (us)", "TCP (us)"]);
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999] {
            let us = |v: Option<u64>| v.map_or(0.0, |v| v as f64 / 1e6);
            cdf.row(vec![
                Cell::s(format!("{:.1}%", q * 100.0)),
                Cell::f1(us(rdma.quantile(q))),
                Cell::f1(us(tcp.quantile(q))),
            ]);
        }

        let mut rep = Report::new();
        rep.table(t);
        rep.table(cdf);
        rep.scalar("lossless_drops", Cell::U64(r.lossless_drops));
        rep.scalar(
            "tcp_p99_over_rdma_p99",
            Cell::f1(r.tcp.p99_us / r.rdma.p99_us),
        );
        rep.scalar(
            "rdma_p999_below_tcp_p99",
            Cell::Bool(r.rdma.p999_us < r.tcp.p99_us),
        );
        rep
    }
}

fn main() {
    main_for(&Fig6)
}
