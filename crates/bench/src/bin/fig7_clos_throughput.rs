//! Figure 7 / §5.4 — aggregate RDMA throughput under the two-podset
//! ToR-pair stress: the ECMP ≈ 60% ceiling with zero drops.
//!
//! Pass `--full-scale` for the larger fabric (slower), `--no-pfc` for the
//! sensitivity arm showing the ceiling is ECMP, not PFC.

use rocescale_bench::header;
use rocescale_core::scenarios::throughput;
use rocescale_sim::SimTime;
use rocescale_topology::ClosSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full-scale");
    let no_pfc_arm = args.iter().any(|a| a == "--no-pfc");
    header(
        "FIG-7 (§5.4)",
        "two-podset ToR-pair stress: 3.0 Tb/s of 5.12 Tb/s (60%); \"not a single packet \
         was dropped\"; the 60% ceiling is ECMP hash collision, not PFC or HOL blocking",
    );
    // Default: the paper's oversubscription ratios with ≈24 flows per
    // Leaf–Spine link (the paper's 3074/128 ratio). --full-scale doubles
    // the QP fan-out.
    let (spec, servers, qps, warmup, dur) = if full {
        (
            throughput::scaled_spec(),
            8,
            8,
            SimTime::from_millis(20),
            SimTime::from_millis(60),
        )
    } else {
        (
            throughput::scaled_spec(),
            8,
            4,
            SimTime::from_millis(20),
            SimTime::from_millis(50),
        )
    };
    let _ = ClosSpec::uniform_40g; // small-spec alternative kept for reference
    println!(
        "fabric: {} podsets × ({} ToRs, {} leaves) × {} spines, {} servers/ToR; \
         oversub ToR {:.1}:1, Leaf {:.2}:1",
        spec.pods,
        spec.tors_per_pod,
        spec.leaves_per_pod,
        spec.spines,
        spec.servers_per_tor,
        spec.tor_oversubscription(),
        spec.leaf_oversubscription(),
    );
    println!(
        "{:<6} {:>12} {:>16} {:>16} {:>12} {:>8} {:>8}",
        "pfc", "connections", "aggregate(Gb/s)", "capacity(Gb/s)", "utilization", "drops", "pauses"
    );
    let arms: &[bool] = if no_pfc_arm { &[true, false] } else { &[true] };
    for &pfc in arms {
        let r = throughput::run(spec, servers, qps, warmup, dur, pfc);
        println!(
            "{:<6} {:>12} {:>16.1} {:>16.1} {:>11.1}% {:>8} {:>8}",
            pfc,
            r.connections,
            r.aggregate_gbps,
            r.bottleneck_capacity_gbps,
            r.utilization * 100.0,
            r.drops,
            r.pauses
        );
    }
    println!();
    println!("analytical ECMP collision model (fraction of bottleneck links carrying ≥1 flow):");
    for flows_per_link in [1usize, 4, 24] {
        let links = 16;
        let u = throughput::ecmp_collision_utilization(links, links * flows_per_link, 42);
        println!(
            "  {flows_per_link:>3} flows/link → {:.0}% links used",
            u * 100.0
        );
    }
}
