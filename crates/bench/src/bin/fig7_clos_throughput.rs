//! Figure 7 / §5.4 — aggregate RDMA throughput under the two-podset
//! ToR-pair stress: the ECMP ≈ 60% ceiling with zero drops.
//!
//! Pass `--full-scale` for the larger fabric (slower), `--no-pfc` for the
//! sensitivity arm showing the ceiling is ECMP, not PFC.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::throughput;
use rocescale_sim::SimTime;

struct Fig7;

impl ScenarioReport for Fig7 {
    fn id(&self) -> &str {
        "FIG-7 (§5.4)"
    }
    fn title(&self) -> &str {
        "Clos aggregate throughput, ECMP ceiling"
    }
    fn claim(&self) -> &str {
        "two-podset ToR-pair stress: 3.0 Tb/s of 5.12 Tb/s (60%); \"not a single packet \
         was dropped\"; the 60% ceiling is ECMP hash collision, not PFC or HOL blocking"
    }
    fn run(&self, args: &CliArgs) -> Report {
        let full = args.has("--full-scale");
        let no_pfc_arm = args.has("--no-pfc");
        // Default: the paper's oversubscription ratios with ≈24 flows per
        // Leaf–Spine link (the paper's 3074/128 ratio). --full-scale
        // doubles the QP fan-out.
        let (spec, servers, qps, warmup, dur) = if full {
            (
                throughput::scaled_spec(),
                8,
                8,
                SimTime::from_millis(20),
                SimTime::from_millis(60),
            )
        } else {
            (
                throughput::scaled_spec(),
                8,
                4,
                SimTime::from_millis(20),
                SimTime::from_millis(50),
            )
        };
        let mut rep = Report::new();
        rep.note(format!(
            "fabric: {} podsets × ({} ToRs, {} leaves) × {} spines, {} servers/ToR; \
             oversub ToR {:.1}:1, Leaf {:.2}:1",
            spec.pods,
            spec.tors_per_pod,
            spec.leaves_per_pod,
            spec.spines,
            spec.servers_per_tor,
            spec.tor_oversubscription(),
            spec.leaf_oversubscription(),
        ));
        let mut t = Table::new(
            "arms",
            &[
                "pfc",
                "connections",
                "aggregate(Gb/s)",
                "capacity(Gb/s)",
                "utilization(%)",
                "drops",
                "pauses",
            ],
        );
        let arms: &[bool] = if no_pfc_arm { &[true, false] } else { &[true] };
        for &pfc in arms {
            let r = throughput::run(spec, servers, qps, warmup, dur, pfc);
            t.row(vec![
                Cell::Bool(pfc),
                Cell::U64(r.connections as u64),
                Cell::f1(r.aggregate_gbps),
                Cell::f1(r.bottleneck_capacity_gbps),
                Cell::f1(r.utilization * 100.0),
                Cell::U64(r.drops),
                Cell::U64(r.pauses),
            ]);
        }
        rep.table(t);
        let mut ecmp = Table::new(
            "analytical ECMP collision model (fraction of bottleneck links carrying ≥1 flow)",
            &["flows/link", "links used(%)"],
        );
        for flows_per_link in [1usize, 4, 24] {
            let links = 16;
            let u = throughput::ecmp_collision_utilization(links, links * flows_per_link, 42);
            ecmp.row(vec![
                Cell::U64(flows_per_link as u64),
                Cell::F64 {
                    v: u * 100.0,
                    prec: 0,
                },
            ]);
        }
        rep.table(ecmp);
        rep
    }
}

fn main() {
    main_for(&Fig7)
}
