//! Figure 3 / §3 — DSCP-based vs VLAN-based PFC: equal protection,
//! but VLAN trunk mode breaks PXE boot.

use rocescale_bench::header;
use rocescale_core::scenarios::dscp_vlan;
use rocescale_core::PfcMode;
use rocescale_sim::SimTime;

fn main() {
    header(
        "FIG-3 (§3)",
        "both PFC flavours protect RDMA identically (the pause frame has no VLAN tag); \
         VLAN-based PFC's trunk-mode server ports break untagged PXE-boot traffic",
    );
    let dur = SimTime::from_millis(8);
    println!(
        "{:<6} {:>14} {:>10} {:>8} | {:>14} {:>14}",
        "mode", "rdma(Gb/s)", "ll-drops", "pauses", "pxe delivered", "pxe dropped"
    );
    for mode in [PfcMode::Dscp, PfcMode::Vlan] {
        let r = dscp_vlan::run(mode, dur);
        let (pxe_ok, pxe_drop) = dscp_vlan::run_pxe(mode, 20);
        println!(
            "{:<6} {:>14.2} {:>10} {:>8} | {:>14} {:>14}",
            format!("{mode:?}"),
            r.rdma_goodput_gbps,
            r.lossless_drops,
            r.pauses,
            pxe_ok,
            pxe_drop
        );
    }
}
