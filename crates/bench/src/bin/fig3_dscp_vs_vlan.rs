//! Figure 3 / §3 — DSCP-based vs VLAN-based PFC: equal protection,
//! but VLAN trunk mode breaks PXE boot.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::dscp_vlan;
use rocescale_core::PfcMode;
use rocescale_sim::SimTime;

struct Fig3;

impl ScenarioReport for Fig3 {
    fn id(&self) -> &str {
        "FIG-3 (§3)"
    }
    fn title(&self) -> &str {
        "DSCP-based vs VLAN-based PFC"
    }
    fn claim(&self) -> &str {
        "both PFC flavours protect RDMA identically (the pause frame has no VLAN tag); \
         VLAN-based PFC's trunk-mode server ports break untagged PXE-boot traffic"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(8);
        let mut t = Table::new(
            "arms",
            &[
                "mode",
                "rdma(Gb/s)",
                "ll-drops",
                "pauses",
                "pxe delivered",
                "pxe dropped",
            ],
        );
        for mode in [PfcMode::Dscp, PfcMode::Vlan] {
            let r = dscp_vlan::run(mode, dur);
            let (pxe_ok, pxe_drop) = dscp_vlan::run_pxe(mode, 20);
            t.row(vec![
                Cell::s(format!("{mode:?}")),
                Cell::f2(r.rdma_goodput_gbps),
                Cell::U64(r.lossless_drops),
                Cell::U64(r.pauses),
                Cell::U64(pxe_ok),
                Cell::U64(pxe_drop),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

fn main() {
    main_for(&Fig3)
}
