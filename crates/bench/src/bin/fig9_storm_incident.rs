//! Figure 9 / §6.2 — the NIC PFC storm *incident*: server availability
//! collapses while one F-state server sprays pause frames; the watchdogs
//! end the class of incident.

use rocescale_bench::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
use rocescale_core::scenarios::storm;
use rocescale_sim::SimTime;

struct Fig9;

impl ScenarioReport for Fig9 {
    fn id(&self) -> &str {
        "FIG-9 (§6.2)"
    }
    fn title(&self) -> &str {
        "the pause-storm incident: availability collapse"
    }
    fn claim(&self) -> &str {
        "one unresponsive server emitting >2000 pauses/s made half the customer's \
         servers unhealthy; after deploying the watchdogs such incidents stopped"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(40);
        let mut rep = Report::new();
        rep.note("victim-pair availability per 4 ms window (storm starts at 8 ms)");
        let mut avail = Table::new("availability", &["watchdogs", "t(ms)", "available(%)"]);
        for watchdogs in [false, true] {
            for (t, a) in storm::availability_series(watchdogs, dur, 10) {
                avail.row(vec![
                    Cell::Bool(watchdogs),
                    Cell::U64(t.as_millis()),
                    Cell::F64 {
                        v: a * 100.0,
                        prec: 0,
                    },
                ]);
            }
        }
        rep.table(avail);
        let mut pauses = Table::new(
            "pause frames received by servers (Figure 9(b) analogue)",
            &["watchdogs", "victim pause rx"],
        );
        for watchdogs in [false, true] {
            let r = storm::run(watchdogs, dur);
            pauses.row(vec![Cell::Bool(watchdogs), Cell::U64(r.victim_pause_rx)]);
        }
        rep.table(pauses);
        rep
    }
}

fn main() {
    main_for(&Fig9)
}
