//! Figure 9 / §6.2 — the NIC PFC storm *incident*: server availability
//! collapses while one F-state server sprays pause frames; the watchdogs
//! end the class of incident.

use rocescale_bench::header;
use rocescale_core::scenarios::storm;
use rocescale_sim::SimTime;

fn main() {
    header(
        "FIG-9 (§6.2)",
        "one unresponsive server emitting >2000 pauses/s made half the customer's \
         servers unhealthy; after deploying the watchdogs such incidents stopped",
    );
    let dur = SimTime::from_millis(40);
    println!("victim-pair availability per 4 ms window (storm starts at 8 ms):");
    for watchdogs in [false, true] {
        let series = storm::availability_series(watchdogs, dur, 10);
        let cells: Vec<String> = series
            .iter()
            .map(|(t, a)| format!("{:>3.0}%@{}ms", a * 100.0, t.as_millis()))
            .collect();
        println!("  watchdogs {:<5}: {}", watchdogs, cells.join(" "));
    }
    println!();
    println!("pause frames received by servers (Figure 9(b) analogue):");
    for watchdogs in [false, true] {
        let r = storm::run(watchdogs, dur);
        println!("  watchdogs {:<5}: {}", watchdogs, r.victim_pause_rx);
    }
}
