//! Declarative experiment reports: one [`ScenarioReport`] per binary,
//! rendered either as the classic aligned-column tables or — with
//! `--json` — as machine-readable JSON built on `rocescale_monitor::Json`
//! (no external serialization dependency).
//!
//! The JSON schema every binary emits:
//!
//! ```json
//! {
//!   "id": "FIG-2 (§2)",
//!   "title": "PFC mechanics",
//!   "paper": "<the claim being reproduced>",
//!   "tables": [{"name": "...", "columns": ["..."], "rows": [["..."]]}],
//!   "scalars": {"...": 0},
//!   "notes": ["..."]
//! }
//! ```

use rocescale_monitor::Json;

/// One table value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float rendered with `prec` decimal places in table mode.
    F64 {
        /// The value.
        v: f64,
        /// Decimal places for the text renderer.
        prec: usize,
    },
    /// Free-form text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Cell {
    /// Float with 2 decimal places (the common case).
    pub fn f2(v: f64) -> Cell {
        Cell::F64 { v, prec: 2 }
    }

    /// Float with 1 decimal place.
    pub fn f1(v: f64) -> Cell {
        Cell::F64 { v, prec: 1 }
    }

    /// Text cell from anything displayable.
    pub fn s(v: impl ToString) -> Cell {
        Cell::Str(v.to_string())
    }

    fn text(&self) -> String {
        match self {
            Cell::U64(v) => v.to_string(),
            Cell::I64(v) => v.to_string(),
            Cell::F64 { v, prec } => format!("{v:.prec$}"),
            Cell::Str(s) => s.clone(),
            Cell::Bool(b) => b.to_string(),
        }
    }

    fn json(&self) -> Json {
        match self {
            Cell::U64(v) => Json::U64(*v),
            Cell::I64(v) => Json::I64(*v),
            Cell::F64 { v, .. } => Json::F64(*v),
            Cell::Str(s) => Json::Str(s.clone()),
            Cell::Bool(b) => Json::Bool(*b),
        }
    }
}

/// A named table: column headers plus rows of cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table name (shown above the table; `""` suppresses the caption).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// A table with the given caption and column headers.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in table {:?}",
            self.name
        );
        self.rows.push(cells);
    }

    fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.text().len());
            }
        }
        let mut out = String::new();
        if !self.name.is_empty() {
            out.push_str(&format!("{}:\n", self.name));
        }
        let fmt_line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<w$}", c, w = widths[i])
                    } else {
                        format!("{:>w$}", c, w = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_line(&self.columns));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| c.text()).collect();
            out.push_str(&fmt_line(&cells));
            out.push('\n');
        }
        out
    }
}

/// Everything a scenario run produced.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Result tables in display order.
    pub tables: Vec<Table>,
    /// Named scalar results (ratios, totals, booleans).
    pub scalars: Vec<(String, Cell)>,
    /// Free-form commentary lines.
    pub notes: Vec<String>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Append a table.
    pub fn table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Record a named scalar.
    pub fn scalar(&mut self, name: impl Into<String>, v: Cell) {
        self.scalars.push((name.into(), v));
    }

    /// Append a commentary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }
}

/// The argument view a scenario receives: the shared flags that affect
/// a single run, parsed by [`crate::harness::ScenarioCli`] (the one
/// place flag syntax lives).
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// `--json`: emit the JSON form instead of tables.
    pub json: bool,
    /// `--json-out PATH`: also write the JSON form to this file.
    pub json_out: Option<String>,
    /// `--trace-out PATH`: scenarios that support trace export stream
    /// their structured JSONL trace here (see `DESIGN.md` §Trace).
    pub trace_out: Option<String>,
    /// All other arguments, for scenario-specific flags.
    pub flags: Vec<String>,
}

impl CliArgs {
    /// Parse from the process arguments; exits with a usage message on
    /// a malformed shared flag.
    pub fn parse() -> CliArgs {
        match crate::harness::ScenarioCli::parse() {
            Ok(cli) => cli.to_args(),
            Err(msg) => {
                eprintln!("usage: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Is a scenario-specific flag present?
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The token following a scenario-specific flag, if any
    /// (`--shards 4` → `value("--shards") == Some("4")`).
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.flags
            .iter()
            .position(|f| f == flag)
            .and_then(|i| self.flags.get(i + 1))
            .map(|s| s.as_str())
    }
}

/// A declarative experiment: identity, the paper claim it reproduces,
/// and a run function producing a [`Report`].
pub trait ScenarioReport {
    /// Short id, e.g. `"FIG-2 (§2)"`.
    fn id(&self) -> &str;
    /// One-line human title.
    fn title(&self) -> &str;
    /// The paper claim being reproduced.
    fn claim(&self) -> &str;
    /// Run the experiment.
    fn run(&self, args: &CliArgs) -> Report;
}

/// Render a report as the JSON schema documented at module level.
pub fn to_json(s: &dyn ScenarioReport, r: &Report) -> Json {
    let tables = r
        .tables
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("name", Json::Str(t.name.clone())),
                (
                    "columns",
                    Json::Arr(t.columns.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
                (
                    "rows",
                    Json::Arr(
                        t.rows
                            .iter()
                            .map(|row| Json::Arr(row.iter().map(|c| c.json()).collect()))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let scalars = r
        .scalars
        .iter()
        .map(|(k, v)| (k.clone(), v.json()))
        .collect();
    Json::obj(vec![
        ("id", Json::Str(s.id().to_string())),
        ("title", Json::Str(s.title().to_string())),
        ("paper", Json::Str(s.claim().to_string())),
        ("tables", Json::Arr(tables)),
        ("scalars", Json::Obj(scalars)),
        (
            "notes",
            Json::Arr(r.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
    ])
}

/// Render a report as the classic text form.
pub fn to_text(s: &dyn ScenarioReport, r: &Report) -> String {
    let mut out = String::new();
    out.push_str("================================================================\n");
    out.push_str(&format!("{} — {}\n", s.id(), s.title()));
    out.push_str(&format!("paper: {}\n", s.claim()));
    out.push_str("================================================================\n");
    for t in &r.tables {
        out.push('\n');
        out.push_str(&t.render_text());
    }
    if !r.scalars.is_empty() {
        out.push('\n');
        for (k, v) in &r.scalars {
            out.push_str(&format!("{k}: {}\n", v.text()));
        }
    }
    if !r.notes.is_empty() {
        out.push('\n');
        for n in &r.notes {
            out.push_str(&format!("{n}\n"));
        }
    }
    out
}

/// The shared `main`: parse args, run, print text or JSON, and honor
/// `--json-out` (the JSON document is written to the file regardless of
/// which form stdout gets).
pub fn main_for(s: &dyn ScenarioReport) {
    let args = CliArgs::parse();
    let report = s.run(&args);
    if let Some(path) = &args.json_out {
        let doc = to_json(s, &report).render() + "\n";
        std::fs::write(path, doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
    if args.json {
        println!("{}", to_json(s, &report).render());
    } else {
        print!("{}", to_text(s, &report));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl ScenarioReport for Fake {
        fn id(&self) -> &str {
            "FIG-0"
        }
        fn title(&self) -> &str {
            "fake"
        }
        fn claim(&self) -> &str {
            "claims"
        }
        fn run(&self, _args: &CliArgs) -> Report {
            let mut r = Report::new();
            let mut t = Table::new("arms", &["arm", "goodput"]);
            t.row(vec![Cell::s("a"), Cell::f2(1.5)]);
            t.row(vec![Cell::s("b"), Cell::U64(3)]);
            r.table(t);
            r.scalar("ratio", Cell::f1(2.0));
            r.note("hello");
            r
        }
    }

    #[test]
    fn json_form_matches_schema() {
        let rep = Fake.run(&CliArgs::default());
        let j = to_json(&Fake, &rep);
        let parsed = rocescale_monitor::json::parse(&j.render()).unwrap();
        for key in ["id", "title", "paper", "tables", "scalars", "notes"] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        let tables = parsed.get("tables").unwrap().as_arr().unwrap();
        assert_eq!(tables.len(), 1);
        let t0 = &tables[0];
        assert_eq!(t0.get("columns").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(t0.get("rows").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn text_form_aligns_columns() {
        let rep = Fake.run(&CliArgs::default());
        let text = to_text(&Fake, &rep);
        assert!(text.contains("FIG-0 — fake"));
        assert!(text.contains("arm"));
        assert!(text.contains("1.50"));
        assert!(text.contains("ratio: 2.0"));
        assert!(text.contains("hello"));
    }

    #[test]
    fn flag_values_parse_positionally() {
        let args = CliArgs {
            flags: vec!["--shards".into(), "4".into(), "--serial".into()],
            ..CliArgs::default()
        };
        assert_eq!(args.value("--shards"), Some("4"));
        assert_eq!(args.value("--serial"), None, "no token follows");
        assert_eq!(args.value("--absent"), None);
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec![Cell::U64(1)]);
        }));
        assert!(res.is_err());
    }
}
