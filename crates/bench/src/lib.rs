//! Experiment harness shared by the `fig*`/`exp*` binaries.
//!
//! Every evaluation figure of the paper has a binary in `src/bin/` that
//! regenerates it (see `DESIGN.md` §4 for the index). Each binary is a
//! declarative [`ScenarioReport`] spec; [`main_for`] renders it either as
//! aligned text tables (easy to diff against `EXPERIMENTS.md`) or, with
//! `--json`, as machine-readable JSON. The scenario implementations live
//! in [`suite`], and [`fleet`] runs the whole suite — or a declarative
//! sweep — across worker threads with deterministic output.
//!
//! Flags are parsed once, by [`harness::ScenarioCli`]; scenarios that
//! support `--trace-out` stream a structured JSONL trace which the
//! `trace_analyze` binary ([`analyze`]) folds back into paper-figure
//! tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod fleet;
pub mod harness;
pub mod report;
pub mod suite;

pub use analyze::TraceDoc;
pub use fleet::{run_indexed, FleetOutcome};
pub use harness::ScenarioCli;
pub use report::{main_for, Cell, CliArgs, Report, ScenarioReport, Table};
