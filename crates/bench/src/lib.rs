//! Experiment harness shared by the `fig*`/`exp*` binaries.
//!
//! Every evaluation figure of the paper has a binary in `src/bin/` that
//! regenerates it (see `DESIGN.md` §4 for the index); this library holds
//! the shared table-rendering helpers so their output is uniform and easy
//! to diff against `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rocescale_core::scenarios::latency::LatencySummary;

pub mod harness;

/// Print the standard experiment header.
pub fn header(id: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

/// Render a latency summary row.
pub fn latency_row(label: &str, s: &LatencySummary) -> String {
    format!(
        "{:<18} {:>8} {:>10.1} {:>10.1} {:>11.1} {:>10.1}",
        label, s.samples, s.p50_us, s.p99_us, s.p999_us, s.max_us
    )
}

/// The latency table header matching [`latency_row`].
pub fn latency_header() -> String {
    format!(
        "{:<18} {:>8} {:>10} {:>10} {:>11} {:>10}",
        "series", "samples", "p50(us)", "p99(us)", "p99.9(us)", "max(us)"
    )
}
