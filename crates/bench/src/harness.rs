//! A minimal in-tree wall-clock benchmark harness (the workspace builds
//! hermetically, so no external bench framework). Methodology: warm up,
//! size an iteration batch to a target measurement window, take several
//! timed batches, and report the *best* batch (least scheduler noise) —
//! the same shape `cargo bench`-style harnesses use, without the
//! statistics machinery a CI smoke comparison doesn't need.

use std::hint::black_box;
use std::time::Instant;

use rocescale_monitor::Json;

use crate::report::CliArgs;

/// The one command line every experiment binary shares.
///
/// Twenty-one thin `src/bin/*` wrappers and the fleet runner all accept the
/// same flags; before this parser each binary (and the fleet) re-parsed
/// its own subset by hand, so a new flag (`--trace-out`) meant touching
/// every copy. `ScenarioCli` is the single place flags are defined:
///
/// * `--json` — emit the JSON report instead of text tables.
/// * `--json-out PATH` — additionally write the JSON report to a file.
/// * `--trace-out PATH` — stream the scenario's structured trace
///   (JSONL; see `rocescale_monitor::sink`) to a file for
///   `trace_analyze`.
/// * `--jobs N` — worker threads (fleet only; scenarios ignore it).
/// * `--bench-out PATH` — fleet benchmark artifact (fleet only).
/// * anything else lands in `flags` for scenario-specific switches
///   (`--full-scale`, `--no-pfc`, …).
#[derive(Debug, Clone, Default)]
pub struct ScenarioCli {
    /// `--json`: emit the JSON report on stdout.
    pub json: bool,
    /// `--json-out PATH`: also write the JSON report to this file.
    pub json_out: Option<String>,
    /// `--trace-out PATH`: stream the structured JSONL trace here.
    pub trace_out: Option<String>,
    /// `--jobs N`: worker threads (consumed by the fleet runner).
    pub jobs: Option<usize>,
    /// `--bench-out PATH`: fleet self-benchmark artifact path.
    pub bench_out: Option<String>,
    /// Everything else, for scenario-specific flags.
    pub flags: Vec<String>,
}

impl ScenarioCli {
    /// Parse the process arguments; `Err` carries a usage message.
    pub fn parse() -> Result<ScenarioCli, String> {
        ScenarioCli::from_args(std::env::args().skip(1))
    }

    /// Parse from any argument source (tests, the fleet's forwarding).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Result<ScenarioCli, String> {
        let mut cli = ScenarioCli::default();
        let mut args = args.into_iter();
        let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cli.json = true,
                "--json-out" => cli.json_out = Some(value("--json-out", &mut args)?),
                "--trace-out" => cli.trace_out = Some(value("--trace-out", &mut args)?),
                "--bench-out" => cli.bench_out = Some(value("--bench-out", &mut args)?),
                "--jobs" => {
                    let v = value("--jobs", &mut args)?;
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => cli.jobs = Some(n),
                        _ => return Err(format!("--jobs needs a positive integer, got {v:?}")),
                    }
                }
                _ => cli.flags.push(a),
            }
        }
        Ok(cli)
    }

    /// Is a scenario-specific flag present?
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The per-scenario argument view ([`CliArgs`]) of this command
    /// line: what a [`crate::report::ScenarioReport`] receives. The
    /// fleet-only knobs (`--jobs`, `--bench-out`) do not forward.
    pub fn to_args(&self) -> CliArgs {
        CliArgs {
            json: self.json,
            json_out: self.json_out.clone(),
            trace_out: self.trace_out.clone(),
            flags: self.flags.clone(),
        }
    }
}

/// Target wall-clock per timed batch, in nanoseconds (50 ms).
const BATCH_TARGET_NS: u128 = 50_000_000;
/// Timed batches per benchmark; the best is reported.
const BATCHES: usize = 5;

/// One benchmark's result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name as printed.
    pub name: String,
    /// Best-batch nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per timed batch.
    pub iters_per_batch: u64,
    /// Optional throughput denominator: "elements" processed per
    /// iteration (e.g. simulated events), for an elements/sec figure.
    pub elements_per_iter: Option<u64>,
}

impl Measurement {
    /// Elements per wall-clock second, if an element count was attached.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements_per_iter
            .map(|e| e as f64 * 1e9 / self.ns_per_iter)
    }

    /// JSON form for `--json-out` bench artifacts.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("ns_per_iter", Json::F64(self.ns_per_iter)),
            ("iters_per_batch", Json::U64(self.iters_per_batch)),
        ];
        if let Some(r) = self.elements_per_sec() {
            pairs.push(("elements_per_sec", Json::F64(r)));
        }
        Json::obj(pairs)
    }

    /// Render one aligned report line.
    pub fn render(&self) -> String {
        let rate = match self.elements_per_sec() {
            Some(r) => format!("  {:>12.0} elem/s", r),
            None => String::new(),
        };
        format!(
            "{:<44} {:>14.1} ns/iter  ({} iters/batch){}",
            self.name, self.ns_per_iter, self.iters_per_batch, rate
        )
    }
}

/// Benchmark a closure: returns the best-of-[`BATCHES`] per-iteration
/// time. The closure's result is passed through [`black_box`] so the
/// optimizer cannot delete the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    bench_impl(name, None, &mut f)
}

/// Like [`bench`], attaching an elements-per-iteration count so the
/// report includes throughput (e.g. simulated events per second).
pub fn bench_elements<T>(name: &str, elements: u64, mut f: impl FnMut() -> T) -> Measurement {
    bench_impl(name, Some(elements), &mut f)
}

fn bench_impl<T>(name: &str, elements: Option<u64>, f: &mut dyn FnMut() -> T) -> Measurement {
    // Warm up and size the batch from a single timed call (min 1 µs so
    // the division below stays sane for sub-nanosecond bodies).
    let t0 = Instant::now();
    black_box(f());
    let once_ns = t0.elapsed().as_nanos().max(1_000);
    let iters = ((BATCH_TARGET_NS / once_ns) as u64).clamp(1, 100_000_000);

    let mut best_ns = u128::MAX;
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best_ns = best_ns.min(t.elapsed().as_nanos());
    }
    let m = Measurement {
        name: name.to_string(),
        ns_per_iter: best_ns as f64 / iters as f64,
        iters_per_batch: iters,
        elements_per_iter: elements,
    };
    println!("{}", m.render());
    m
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Write a set of measurements as a JSON artifact (e.g.
/// `BENCH_sched.json`): `{"bench": name, "results": [...]}`.
pub fn write_json_artifact(path: &str, bench_name: &str, results: &[Measurement]) {
    write_json_artifact_with(path, bench_name, results, Vec::new());
}

/// Like [`write_json_artifact`], with extra top-level keys appended
/// after `results` (e.g. the sched bench's dispatch-profile breakdown).
pub fn write_json_artifact_with(
    path: &str,
    bench_name: &str,
    results: &[Measurement],
    extra: Vec<(&str, Json)>,
) {
    let mut pairs = vec![
        ("bench", Json::Str(bench_name.to_string())),
        (
            "results",
            Json::Arr(results.iter().map(|m| m.to_json()).collect()),
        ),
    ];
    pairs.extend(extra);
    let doc = Json::obj(pairs);
    std::fs::write(path, doc.render() + "\n").expect("write bench artifact");
    println!("\nwrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = bench("spin", || (0..100u64).sum::<u64>());
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters_per_batch >= 1);
        assert_eq!(m.elements_per_sec(), None);
    }

    #[test]
    fn scenario_cli_parses_every_shared_flag() {
        let argv = [
            "--json",
            "--json-out",
            "out.json",
            "--trace-out",
            "trace.jsonl",
            "--jobs",
            "4",
            "--bench-out",
            "bench.json",
            "--full-scale",
        ];
        let cli = ScenarioCli::from_args(argv.iter().map(|s| s.to_string())).unwrap();
        assert!(cli.json);
        assert_eq!(cli.json_out.as_deref(), Some("out.json"));
        assert_eq!(cli.trace_out.as_deref(), Some("trace.jsonl"));
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.bench_out.as_deref(), Some("bench.json"));
        assert!(cli.has("--full-scale"));
        assert!(!cli.has("--no-pfc"));

        let args = cli.to_args();
        assert!(args.json);
        assert_eq!(args.trace_out.as_deref(), Some("trace.jsonl"));
        assert!(args.has("--full-scale"));
    }

    #[test]
    fn scenario_cli_rejects_missing_or_bad_values() {
        let err =
            |argv: &[&str]| ScenarioCli::from_args(argv.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["--trace-out"]).contains("--trace-out"));
        assert!(err(&["--json-out"]).contains("--json-out"));
        assert!(err(&["--jobs", "zero"]).contains("--jobs"));
        assert!(err(&["--jobs", "0"]).contains("--jobs"));
    }

    #[test]
    fn elements_rate_scales() {
        let m = Measurement {
            name: "x".into(),
            ns_per_iter: 1000.0,
            iters_per_batch: 1,
            elements_per_iter: Some(10),
        };
        assert_eq!(m.elements_per_sec(), Some(10e6));
        assert!(m.render().contains("elem/s"));
    }
}
