//! Multi-core fleet executor: run independent simulation jobs across
//! worker threads with output identical to a serial run.
//!
//! Every experiment in this repo is a deterministic single-threaded
//! simulation, so a suite of N scenarios — or a [`SweepSpec`] grid of
//! configuration cells — is embarrassingly parallel. [`run_indexed`] is
//! the one primitive: a work queue of `count` jobs drained by `workers`
//! scoped threads ([`std::thread::scope`], no extra dependencies), with
//! results slotted back by job index. Determinism argument:
//!
//! 1. each job is a pure function of its index (every simulation builds
//!    its own `World`, RNG seeded from the job spec — nothing shared);
//! 2. workers only *race for indices*, never for results — each result
//!    lands in its own pre-allocated slot;
//! 3. consumers read the slots in index order.
//!
//! Hence `--jobs 1` and `--jobs 16` produce byte-identical reports; the
//! thread count changes wall-clock time and nothing else. The fleet
//! binary and the determinism tests pin exactly that.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rocescale_core::{SweepJob, SweepSpec};

use crate::report::{to_json, to_text, CliArgs, ScenarioReport};
use crate::suite;
use rocescale_monitor::Json;

/// Run `count` jobs on `workers` threads; `f(i)` computes job `i`.
///
/// Results come back in index order regardless of which worker ran which
/// job or in what order they finished. `workers` is clamped to
/// `1..=count`. Panics in a job propagate once all workers have joined.
pub fn run_indexed<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, count);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = f(i);
                slots.lock().unwrap()[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed by a worker"))
        .collect()
}

/// Enumerate a sweep and run every job across `workers` threads,
/// returning `(job, f(&job))` pairs in the sweep's canonical order.
pub fn run_sweep<T, F>(spec: &SweepSpec, workers: usize, f: F) -> Vec<(SweepJob, T)>
where
    T: Send,
    F: Fn(&SweepJob) -> T + Sync,
{
    let jobs = spec.jobs();
    let results = run_indexed(jobs.len(), workers, |i| f(&jobs[i]));
    jobs.into_iter().zip(results).collect()
}

/// One scenario's rendered output from a fleet run.
pub struct FleetOutcome {
    /// Position in [`suite::all`] order.
    pub index: usize,
    /// Scenario id, e.g. `"FIG-2 (§2)"`.
    pub id: String,
    /// Classic text rendering of the report.
    pub text: String,
    /// JSON rendering of the report (same schema as `--json` on the
    /// standalone binary).
    pub json: Json,
}

/// Run the full scenario suite (every entry of [`suite::all`]) on
/// `workers` threads.
///
/// `args` is forwarded to every scenario (so e.g. `--full-scale` reaches
/// FIG-7). Outcomes come back in [`suite::all`] order.
pub fn run_suite(args: &CliArgs, workers: usize) -> Vec<FleetOutcome> {
    let all: Vec<usize> = (0..suite::all().len()).collect();
    run_selected(args, workers, &all)
}

/// Indices into [`suite::all`] whose scenario id contains `needle`,
/// case-insensitively — the `--only` selector of the fleet binary.
pub fn matching_indices(needle: &str) -> Vec<usize> {
    let needle = needle.to_lowercase();
    suite::all()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.id().to_lowercase().contains(&needle))
        .map(|(i, _)| i)
        .collect()
}

/// Run a subset of the suite, given by indices into [`suite::all`], on
/// `workers` threads. Outcomes come back in the order of `indices`.
pub fn run_selected(args: &CliArgs, workers: usize, indices: &[usize]) -> Vec<FleetOutcome> {
    let scenarios = suite::all();
    run_indexed(indices.len(), workers, |k| {
        let i = indices[k];
        let s: &dyn ScenarioReport = scenarios[i];
        let report = s.run(args);
        FleetOutcome {
            index: i,
            id: s.id().to_string(),
            text: to_text(s, &report),
            json: to_json(s, &report),
        }
    })
}

/// Assemble fleet outcomes into the one-document JSON form:
/// `{"scenarios": [<report>, ...]}` in suite order.
pub fn suite_json(outcomes: &[FleetOutcome]) -> Json {
    Json::obj(vec![(
        "scenarios",
        Json::Arr(outcomes.iter().map(|o| o.json.clone()).collect()),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 7, 64] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_indexed(100, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn sweep_jobs_pair_with_results() {
        use rocescale_core::{SweepAxis, SweepSpec};
        let spec = SweepSpec::new()
            .axis(
                SweepAxis::new("pfc")
                    .variant("on", |p| p.fabric = p.fabric.clone().pfc(true))
                    .variant("off", |p| p.fabric = p.fabric.clone().pfc(false)),
            )
            .replicates(2);
        let out = run_sweep(&spec, 3, |job| job.labels.join(","));
        assert_eq!(out.len(), 4);
        for (i, (job, rendered)) in out.iter().enumerate() {
            assert_eq!(job.index, i);
            assert_eq!(*rendered, job.labels.join(","));
        }
    }
}
