//! The full experiment suite: every paper figure/section scenario as a
//! public [`ScenarioReport`], plus the [`all`] registry the fleet runner
//! iterates.
//!
//! Each scenario also has a thin binary in `src/bin/` (the classic
//! one-figure-at-a-time workflow); the implementations live here so the
//! `fleet` binary — and tests — can run any subset in-process.

use rocescale_core::scenarios::latency::LatencySummary;
use rocescale_core::scenarios::{
    buffer_misconfig, cc_ablation, cpu, dcqcn_ablation, deadlock, dscp_vlan, fleet_scale, headroom,
    incident, latency, livelock, load_latency, pfc_basics, slow_receiver, spray, storm, throughput,
};
use rocescale_core::{CcKind, InstrumentationProfile, PfcMode};
use rocescale_monitor::Percentiles;
use rocescale_sim::{EpochPacing, SimTime};

use crate::report::{Cell, CliArgs, Report, ScenarioReport, Table};

/// Observation profile for one scenario arm: a JSONL sink streaming to
/// `--trace-out`'s path when given, the paper default otherwise. The
/// scenarios that honor the flag attach it to their headline arm and
/// note the export in the report; `trace_analyze` reads the file back.
fn trace_instr(args: &CliArgs) -> InstrumentationProfile {
    match &args.trace_out {
        Some(path) => InstrumentationProfile::paper_default()
            .trace_jsonl(path)
            .unwrap_or_else(|e| {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            }),
        None => InstrumentationProfile::paper_default(),
    }
}

/// The report note recording where a traced arm streamed to.
fn trace_note(rep: &mut Report, args: &CliArgs, arm: &str) {
    if let Some(path) = &args.trace_out {
        rep.note(format!(
            "trace: streamed the {arm} arm's JSONL records to {path}"
        ));
    }
}

/// Every scenario in suite order: figures 2–10, the section
/// experiments, then the scripted incident replays. This is the fleet's
/// canonical enumeration; job indices — and therefore output order —
/// follow it.
pub fn all() -> &'static [&'static (dyn ScenarioReport + Sync)] {
    &[
        &Fig2PfcBasics,
        &Fig3DscpVsVlan,
        &Fig4Deadlock,
        &Fig5PfcStorm,
        &Fig6LatencyCdf,
        &Fig7ClosThroughput,
        &Fig8LatencyVsLoad,
        &Fig9StormIncident,
        &Fig10BufferMisconfig,
        &ExpLivelock,
        &ExpSlowReceiver,
        &ExpCpuOverhead,
        &ExpDcqcnAblation,
        &ExpHeadroom,
        &ExpPerPacketRouting,
        &ExpCcAblation,
        &IncScriptedDeadlock,
        &IncReroute,
        &IncCascadeStorm,
        &IncDeadRemembered,
        &IncFleetScale,
    ]
}

fn latency_row(label: &str, s: &LatencySummary) -> Vec<Cell> {
    vec![
        Cell::s(label),
        Cell::U64(s.samples as u64),
        Cell::f1(s.p50_us),
        Cell::f1(s.p99_us),
        Cell::f1(s.p999_us),
        Cell::f1(s.max_us),
    ]
}

/// Figure 2 — PFC mechanics: lossless classes pause, lossy classes drop.
pub struct Fig2PfcBasics;

impl ScenarioReport for Fig2PfcBasics {
    fn id(&self) -> &str {
        "FIG-2 (§2)"
    }
    fn title(&self) -> &str {
        "PFC mechanics: pause vs drop"
    }
    fn claim(&self) -> &str {
        "PFC prevents buffer overflow by pausing the upstream sender (XOFF/XON); \
         without it, the same incast drops packets"
    }
    fn run(&self, args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(10);
        let mut t = Table::new(
            "arms",
            &["pfc", "pauses", "resumes", "drops", "goodput(Gb/s)"],
        );
        for pfc in [true, false] {
            // `--trace-out` captures the lossless (paper) arm.
            let r = if pfc {
                pfc_basics::run_traced(pfc, 4, dur, trace_instr(args))
            } else {
                pfc_basics::run(pfc, 4, dur)
            };
            t.row(vec![
                Cell::Bool(r.pfc),
                Cell::U64(r.pauses),
                Cell::U64(r.resumes),
                Cell::U64(r.drops),
                Cell::f2(r.goodput_gbps),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        trace_note(&mut rep, args, "pfc=true");
        rep
    }
}

/// Figure 3 / §3 — DSCP-based vs VLAN-based PFC: equal protection,
/// but VLAN trunk mode breaks PXE boot.
pub struct Fig3DscpVsVlan;

impl ScenarioReport for Fig3DscpVsVlan {
    fn id(&self) -> &str {
        "FIG-3 (§3)"
    }
    fn title(&self) -> &str {
        "DSCP-based vs VLAN-based PFC"
    }
    fn claim(&self) -> &str {
        "both PFC flavours protect RDMA identically (the pause frame has no VLAN tag); \
         VLAN-based PFC's trunk-mode server ports break untagged PXE-boot traffic"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(8);
        let mut t = Table::new(
            "arms",
            &[
                "mode",
                "rdma(Gb/s)",
                "ll-drops",
                "pauses",
                "pxe delivered",
                "pxe dropped",
            ],
        );
        for mode in [PfcMode::Dscp, PfcMode::Vlan] {
            let r = dscp_vlan::run(mode, dur);
            let (pxe_ok, pxe_drop) = dscp_vlan::run_pxe(mode, 20);
            t.row(vec![
                Cell::s(format!("{mode:?}")),
                Cell::f2(r.rdma_goodput_gbps),
                Cell::U64(r.lossless_drops),
                Cell::U64(r.pauses),
                Cell::U64(pxe_ok),
                Cell::U64(pxe_drop),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

/// Figure 4 / §4.2 — PFC + Ethernet flooding deadlock, and the
/// drop-on-incomplete-ARP fix.
pub struct Fig4Deadlock;

impl ScenarioReport for Fig4Deadlock {
    fn id(&self) -> &str {
        "FIG-4 (§4.2)"
    }
    fn title(&self) -> &str {
        "flooding deadlock and the incomplete-ARP fix"
    }
    fn claim(&self) -> &str {
        "incomplete ARP entries make ToRs flood lossless packets; flood copies parked \
         on paused fabric ports close a cyclic buffer dependency and the fabric wedges \
         permanently; dropping lossless packets on incomplete ARP prevents it"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(40);
        let mut t = Table::new(
            "arms",
            &[
                "fix",
                "deadlocked switches",
                "tail MB (live)",
                "pauses",
                "fix drops",
            ],
        );
        let mut rep = Report::new();
        for fix in [false, true] {
            let r = deadlock::run(fix, dur);
            t.row(vec![
                Cell::Bool(r.fix_enabled),
                Cell::s(format!("{:?}", r.deadlocked_switches)),
                Cell::f1(r.tail_goodput_bytes as f64 / 1e6),
                Cell::U64(r.pauses),
                Cell::U64(r.fix_drops),
            ]);
            match r.wait_cycle {
                Some(c) => rep.note(format!("fix={fix}: pause-wait cycle: {}", c.join(" -> "))),
                None => rep.note(format!("fix={fix}: pause-wait graph: acyclic")),
            }
        }
        rep.table(t);
        rep
    }
}

/// Figure 5 / §4.3 — one malfunctioning NIC's pause storm vs the two
/// watchdogs.
pub struct Fig5PfcStorm;

impl ScenarioReport for Fig5PfcStorm {
    fn id(&self) -> &str {
        "FIG-5 (§4.3)"
    }
    fn title(&self) -> &str {
        "NIC pause storm vs the watchdogs"
    }
    fn claim(&self) -> &str {
        "a single malfunctioning NIC may block the entire network from transmitting; \
         complementary NIC-side and switch-side watchdogs contain it"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(40);
        let mut t = Table::new(
            "arms",
            &[
                "watchdogs",
                "healthy pairs",
                "total pairs",
                "victim pauses",
                "nic wd",
                "switch wd",
            ],
        );
        for watchdogs in [false, true] {
            let r = storm::run(watchdogs, dur);
            t.row(vec![
                Cell::Bool(r.watchdogs),
                Cell::U64(r.healthy_pairs as u64),
                Cell::U64(r.total_pairs as u64),
                Cell::U64(r.victim_pause_rx),
                Cell::Bool(r.nic_watchdog_fired),
                Cell::Bool(r.switch_watchdog_fired),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

/// Figure 6 / §5.4 — RDMA vs TCP end-to-end latency for the
/// latency-sensitive incast service.
pub struct Fig6LatencyCdf;

impl ScenarioReport for Fig6LatencyCdf {
    fn id(&self) -> &str {
        "FIG-6 (§5.4)"
    }
    fn title(&self) -> &str {
        "RDMA vs TCP latency CDF"
    }
    fn claim(&self) -> &str {
        "p99: RDMA ≈ 90 µs vs TCP ≈ 700 µs (TCP spikes to several ms); RDMA's p99.9 \
         (≈200 µs) is below TCP's p99 — same fabric, same incast workload"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let r = latency::run(
            SimTime::from_millis(80),
            4,
            16 * 1024,
            SimTime::from_millis(2),
        );
        let mut t = Table::new(
            "latency",
            &[
                "series",
                "samples",
                "p50(us)",
                "p99(us)",
                "p99.9(us)",
                "max(us)",
            ],
        );
        t.row(latency_row("RDMA", &r.rdma));
        t.row(latency_row("TCP", &r.tcp));

        // The figure itself is a CDF; tabulate its key quantiles.
        let mut rdma = Percentiles::from_samples(&r.rdma_samples_ps);
        let mut tcp = Percentiles::from_samples(&r.tcp_samples_ps);
        let mut cdf = Table::new("cdf", &["quantile", "RDMA (us)", "TCP (us)"]);
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999] {
            let us = |v: Option<u64>| v.map_or(0.0, |v| v as f64 / 1e6);
            cdf.row(vec![
                Cell::s(format!("{:.1}%", q * 100.0)),
                Cell::f1(us(rdma.quantile(q))),
                Cell::f1(us(tcp.quantile(q))),
            ]);
        }

        let mut rep = Report::new();
        rep.table(t);
        rep.table(cdf);
        rep.scalar("lossless_drops", Cell::U64(r.lossless_drops));
        rep.scalar(
            "tcp_p99_over_rdma_p99",
            Cell::f1(r.tcp.p99_us / r.rdma.p99_us),
        );
        rep.scalar(
            "rdma_p999_below_tcp_p99",
            Cell::Bool(r.rdma.p999_us < r.tcp.p99_us),
        );
        rep
    }
}

/// Figure 7 / §5.4 — aggregate RDMA throughput under the two-podset
/// ToR-pair stress: the ECMP ≈ 60% ceiling with zero drops.
///
/// Pass `--full-scale` for the larger fabric (slower), `--no-pfc` for the
/// sensitivity arm showing the ceiling is ECMP, not PFC.
pub struct Fig7ClosThroughput;

impl ScenarioReport for Fig7ClosThroughput {
    fn id(&self) -> &str {
        "FIG-7 (§5.4)"
    }
    fn title(&self) -> &str {
        "Clos aggregate throughput, ECMP ceiling"
    }
    fn claim(&self) -> &str {
        "two-podset ToR-pair stress: 3.0 Tb/s of 5.12 Tb/s (60%); \"not a single packet \
         was dropped\"; the 60% ceiling is ECMP hash collision, not PFC or HOL blocking"
    }
    fn run(&self, args: &CliArgs) -> Report {
        let full = args.has("--full-scale");
        let no_pfc_arm = args.has("--no-pfc");
        // Default: the paper's oversubscription ratios with ≈24 flows per
        // Leaf–Spine link (the paper's 3074/128 ratio). --full-scale
        // doubles the QP fan-out.
        let (spec, servers, qps, warmup, dur) = if full {
            (
                throughput::scaled_spec(),
                8,
                8,
                SimTime::from_millis(20),
                SimTime::from_millis(60),
            )
        } else {
            (
                throughput::scaled_spec(),
                8,
                4,
                SimTime::from_millis(20),
                SimTime::from_millis(50),
            )
        };
        let mut rep = Report::new();
        rep.note(format!(
            "fabric: {} podsets × ({} ToRs, {} leaves) × {} spines, {} servers/ToR; \
             oversub ToR {:.1}:1, Leaf {:.2}:1",
            spec.pods,
            spec.tors_per_pod,
            spec.leaves_per_pod,
            spec.spines,
            spec.servers_per_tor,
            spec.tor_oversubscription(),
            spec.leaf_oversubscription(),
        ));
        let mut t = Table::new(
            "arms",
            &[
                "pfc",
                "connections",
                "aggregate(Gb/s)",
                "capacity(Gb/s)",
                "utilization(%)",
                "drops",
                "pauses",
            ],
        );
        let arms: &[bool] = if no_pfc_arm { &[true, false] } else { &[true] };
        for &pfc in arms {
            let r = throughput::run(spec, servers, qps, warmup, dur, pfc);
            t.row(vec![
                Cell::Bool(pfc),
                Cell::U64(r.connections as u64),
                Cell::f1(r.aggregate_gbps),
                Cell::f1(r.bottleneck_capacity_gbps),
                Cell::f1(r.utilization * 100.0),
                Cell::U64(r.drops),
                Cell::U64(r.pauses),
            ]);
        }
        rep.table(t);
        let mut ecmp = Table::new(
            "analytical ECMP collision model (fraction of bottleneck links carrying ≥1 flow)",
            &["flows/link", "links used(%)"],
        );
        for flows_per_link in [1usize, 4, 24] {
            let links = 16;
            let u = throughput::ecmp_collision_utilization(links, links * flows_per_link, 42);
            ecmp.row(vec![
                Cell::U64(flows_per_link as u64),
                Cell::F64 {
                    v: u * 100.0,
                    prec: 0,
                },
            ]);
        }
        rep.table(ecmp);
        rep
    }
}

/// Figure 8 / §5.4 — RDMA latency before vs during the saturating
/// stress, and TCP's isolation in its own queue.
pub struct Fig8LatencyVsLoad;

impl ScenarioReport for Fig8LatencyVsLoad {
    fn id(&self) -> &str {
        "FIG-8 (§5.4)"
    }
    fn title(&self) -> &str {
        "latency under saturating load"
    }
    fn claim(&self) -> &str {
        "once the stress starts, RDMA p99 jumps 50→400 µs and p99.9 80→800 µs — queues \
         and pauses, not losses; TCP's p99 in its own switch queue does not change"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let r = load_latency::run(SimTime::from_millis(10), SimTime::from_millis(30));
        let mut t = Table::new(
            "latency",
            &[
                "series",
                "samples",
                "p50(us)",
                "p99(us)",
                "p99.9(us)",
                "max(us)",
            ],
        );
        t.row(latency_row("RDMA idle", &r.rdma_idle));
        t.row(latency_row("RDMA under load", &r.rdma_loaded));
        t.row(latency_row("TCP idle", &r.tcp_idle));
        t.row(latency_row("TCP under load", &r.tcp_loaded));
        let mut rep = Report::new();
        rep.table(t);
        rep.scalar("lossless_drops", Cell::U64(r.lossless_drops));
        rep.scalar(
            "rdma_p99_jump",
            Cell::f1(r.rdma_loaded.p99_us / r.rdma_idle.p99_us),
        );
        rep.scalar(
            "rdma_p999_jump",
            Cell::f1(r.rdma_loaded.p999_us / r.rdma_idle.p999_us),
        );
        rep.scalar(
            "tcp_p99_ratio",
            Cell::f2(r.tcp_loaded.p99_us / r.tcp_idle.p99_us),
        );
        rep
    }
}

/// Figure 9 / §6.2 — the NIC PFC storm *incident*: server availability
/// collapses while one F-state server sprays pause frames; the watchdogs
/// end the class of incident.
pub struct Fig9StormIncident;

impl ScenarioReport for Fig9StormIncident {
    fn id(&self) -> &str {
        "FIG-9 (§6.2)"
    }
    fn title(&self) -> &str {
        "the pause-storm incident: availability collapse"
    }
    fn claim(&self) -> &str {
        "one unresponsive server emitting >2000 pauses/s made half the customer's \
         servers unhealthy; after deploying the watchdogs such incidents stopped"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(40);
        let mut rep = Report::new();
        rep.note("victim-pair availability per 4 ms window (storm starts at 8 ms)");
        let mut avail = Table::new("availability", &["watchdogs", "t(ms)", "available(%)"]);
        for watchdogs in [false, true] {
            for (t, a) in storm::availability_series(watchdogs, dur, 10) {
                avail.row(vec![
                    Cell::Bool(watchdogs),
                    Cell::U64(t.as_millis()),
                    Cell::F64 {
                        v: a * 100.0,
                        prec: 0,
                    },
                ]);
            }
        }
        rep.table(avail);
        let mut pauses = Table::new(
            "pause frames received by servers (Figure 9(b) analogue)",
            &["watchdogs", "victim pause rx"],
        );
        for watchdogs in [false, true] {
            let r = storm::run(watchdogs, dur);
            pauses.row(vec![Cell::Bool(watchdogs), Cell::U64(r.victim_pause_rx)]);
        }
        rep.table(pauses);
        rep
    }
}

/// Figure 10 / §6.2 — the α = 1/64 dynamic-buffer misconfiguration
/// incident, swept across α values.
pub struct Fig10BufferMisconfig;

impl ScenarioReport for Fig10BufferMisconfig {
    fn id(&self) -> &str {
        "FIG-10 (§6.2)"
    }
    fn title(&self) -> &str {
        "the α = 1/64 buffer misconfiguration incident"
    }
    fn claim(&self) -> &str {
        "a new ToR type shipped α = 1/64 instead of the fleet's 1/16; chatty incast \
         then triggered pause storms (up to 60k pauses / 5 min) and latency spikes; \
         tuning α back fixed it — and config monitoring should have caught it"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(25);
        let mut t = Table::new(
            "alpha sweep",
            &[
                "alpha",
                "tor pauses",
                "server pauses",
                "p50(us)",
                "p99(us)",
                "cfg-deviations",
            ],
        );
        for alpha in [1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0] {
            let r = buffer_misconfig::run(alpha, dur);
            t.row(vec![
                Cell::s(format!("1/{:.0}", 1.0 / alpha)),
                Cell::U64(r.tor_pauses),
                Cell::U64(r.server_pause_rx),
                Cell::f1(r.latency.p50_us),
                Cell::f1(r.latency.p99_us),
                Cell::U64(r.config_deviations as u64),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        let mut series = Table::new(
            "pause frames per window, Figure 10(b) form (cumulative at window end)",
            &["alpha", "t(ms)", "pauses"],
        );
        for alpha in [1.0 / 64.0, 1.0 / 16.0] {
            let s = buffer_misconfig::pause_series(alpha, dur, 5);
            for (t_ps, v) in s.points() {
                series.row(vec![
                    Cell::s(format!("1/{:.0}", 1.0 / alpha)),
                    Cell::U64(*t_ps / 1_000_000_000),
                    Cell::F64 { v: *v, prec: 0 },
                ]);
            }
        }
        rep.table(series);
        rep
    }
}

/// §4.1 — RDMA transport livelock: go-back-0 vs go-back-N vs IRN-style
/// selective repeat under a deterministic 1/256 drop, for SEND / WRITE /
/// READ.
pub struct ExpLivelock;

impl ScenarioReport for ExpLivelock {
    fn id(&self) -> &str {
        "EXP-LIVELOCK (§4.1)"
    }
    fn title(&self) -> &str {
        "go-back-0 livelock vs go-back-N vs selective repeat"
    }
    fn claim(&self) -> &str {
        "goodput 0 with go-back-0 at 1/256 deterministic drop while the link runs at \
         line rate; go-back-N restores goodput; selective repeat restores it while \
         retransmitting only the dropped packets"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        use livelock::Workload;
        use rocescale_transport::LossRecovery;
        let dur = SimTime::from_millis(20);
        let mut t = Table::new(
            "arms",
            &[
                "verb",
                "recovery",
                "goodput(Gb/s)",
                "wire(Gb/s)",
                "msgs",
                "drops",
                "retx(MB)",
            ],
        );
        for workload in [Workload::Send, Workload::Write, Workload::Read] {
            for recovery in [
                LossRecovery::GoBack0,
                LossRecovery::GoBackN,
                LossRecovery::SelectiveRepeat,
            ] {
                let r = livelock::run(recovery, workload, dur);
                t.row(vec![
                    Cell::s(format!("{workload:?}")),
                    Cell::s(format!("{recovery:?}")),
                    Cell::f2(r.goodput_gbps),
                    Cell::f2(r.wire_gbps),
                    Cell::U64(r.messages_done),
                    Cell::U64(r.filter_drops),
                    Cell::f2(r.retx_bytes as f64 / 1e6),
                ]);
            }
        }
        let mut rep = Report::new();
        rep.table(t);
        rep.note(
            "go-back-N resends the whole window tail on every drop; selective repeat \
             resends only the holes, so its retx volume tracks the 1/256 drop rate.",
        );
        rep
    }
}

/// §4.4 — the slow-receiver symptom: MTT thrash turns the *server* into
/// a pause source; 2 MB pages and dynamic buffer sharing mitigate.
pub struct ExpSlowReceiver;

impl ScenarioReport for ExpSlowReceiver {
    fn id(&self) -> &str {
        "EXP-SLOW-RECEIVER (§4.4)"
    }
    fn title(&self) -> &str {
        "MTT thrash makes the server a pause source"
    }
    fn claim(&self) -> &str {
        "MTT misses stall the NIC receive pipeline; the buffer crosses XOFF and the \
         server pauses its ToR; 2 MB pages cut the misses, dynamic switch buffers \
         absorb the churn instead of propagating it"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        use slow_receiver::PageSize;
        let dur = SimTime::from_millis(15);
        let mut t = Table::new(
            "arms",
            &[
                "pages",
                "dynamic",
                "server pauses",
                "upstream pauses",
                "goodput(Gb/s)",
                "MTT miss(%)",
            ],
        );
        for pages in [PageSize::Small, PageSize::Large] {
            for dynamic in [true, false] {
                let r = slow_receiver::run(pages, dynamic, dur);
                t.row(vec![
                    Cell::s(format!("{pages:?}")),
                    Cell::Bool(r.dynamic_buffers),
                    Cell::U64(r.server_pause_tx),
                    Cell::U64(r.upstream_pause_tx),
                    Cell::f2(r.goodput_gbps),
                    Cell::f1(r.mtt_miss_ratio * 100.0),
                ]);
            }
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

/// §1 — kernel TCP CPU cost at 40 Gb/s vs RDMA's near-zero.
pub struct ExpCpuOverhead;

impl ScenarioReport for ExpCpuOverhead {
    fn id(&self) -> &str {
        "EXP-CPU (§1)"
    }
    fn title(&self) -> &str {
        "kernel TCP CPU cost vs RDMA"
    }
    fn claim(&self) -> &str {
        "sending at 40 Gb/s over 8 TCP connections costs 6% of a 32-core server; \
         receiving costs 12%; RDMA does the same work at ≈0% CPU"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let r = cpu::run(SimTime::from_millis(60));
        let mut t = Table::new(
            "stacks",
            &["stack", "throughput(Gb/s)", "tx cpu(%)", "rx cpu(%)"],
        );
        t.row(vec![
            Cell::s("TCP"),
            Cell::f1(r.tcp_gbps),
            Cell::f2(r.tcp_tx_cpu_pct),
            Cell::f2(r.tcp_rx_cpu_pct),
        ]);
        t.row(vec![
            Cell::s("RDMA"),
            Cell::f1(r.rdma_gbps),
            Cell::f2(r.rdma_cpu_pct),
            Cell::f2(r.rdma_cpu_pct),
        ]);
        let mut rep = Report::new();
        rep.table(t);
        rep.scalar(
            "tcp_tx_cpu_pct_at_40g",
            Cell::f1(r.tcp_tx_cpu_pct * 40.0 / r.tcp_gbps),
        );
        rep.scalar(
            "tcp_rx_cpu_pct_at_40g",
            Cell::f1(r.tcp_rx_cpu_pct * 40.0 / r.tcp_gbps),
        );
        rep.note("normalized to 40 Gb/s (paper: 6% tx / 12% rx)");
        rep
    }
}

/// §2 ablation — "Though DCQCN helps reduce the number of PFC pause
/// frames, it is PFC that protects packets from being dropped as the
/// last defense."
pub struct ExpDcqcnAblation;

impl ScenarioReport for ExpDcqcnAblation {
    fn id(&self) -> &str {
        "EXP-DCQCN (§2)"
    }
    fn title(&self) -> &str {
        "DCQCN off vs on: PFC is the last defense"
    }
    fn claim(&self) -> &str {
        "DCQCN keeps switch queues short so PFC rarely fires; with it off the same \
         incast is still loss-free — PFC is the last defense — but pauses constantly"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(15);
        let mut t = Table::new(
            "arms",
            &[
                "dcqcn",
                "pauses",
                "ecn marks",
                "cnps",
                "goodput(Gb/s)",
                "peak queue(KB)",
                "ll drops",
            ],
        );
        for dcqcn in [false, true] {
            let r = dcqcn_ablation::run(dcqcn, 4, dur);
            t.row(vec![
                Cell::Bool(r.dcqcn),
                Cell::U64(r.pauses),
                Cell::U64(r.ecn_marked),
                Cell::U64(r.cnps),
                Cell::f2(r.goodput_gbps),
                Cell::f1(r.peak_queue_bytes as f64 / 1024.0),
                Cell::U64(r.lossless_drops),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

/// §2 — PFC headroom sweep: the gray-period formula validated by
/// violation on 300 m cables.
pub struct ExpHeadroom;

impl ScenarioReport for ExpHeadroom {
    fn id(&self) -> &str {
        "EXP-HEADROOM (§2)"
    }
    fn title(&self) -> &str {
        "PFC headroom sweep"
    }
    fn claim(&self) -> &str {
        "headroom absorbs the packets in flight during the XOFF 'gray period' — sized \
         from MTU, PFC reaction time, and propagation delay (300 m worst case); \
         undersize it and the lossless guarantee breaks"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(6);
        let mut t = Table::new("sweep", &["fraction", "headroom(B)", "ll drops", "pauses"]);
        for fraction in [0.1, 0.25, 0.5, 0.75, 1.0, 1.5] {
            let r = headroom::run(fraction, dur);
            t.row(vec![
                Cell::s(format!("{:.2}x", r.fraction)),
                Cell::U64(r.headroom_bytes),
                Cell::U64(r.lossless_drops),
                Cell::U64(r.pauses),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

/// §8.1 (future work) — per-packet routing vs per-flow ECMP for RDMA.
pub struct ExpPerPacketRouting;

impl ScenarioReport for ExpPerPacketRouting {
    fn id(&self) -> &str {
        "EXP-PER-PACKET-ROUTING (§8.1)"
    }
    fn title(&self) -> &str {
        "per-packet routing vs per-flow ECMP"
    }
    fn claim(&self) -> &str {
        "\"there are MPTCP and per-packet routing for better network utilization. How to \
         make these designs work for RDMA in the lossless network context will be an \
         interesting challenge\" — here is the challenge, quantified on a two-path \
         diamond with a 5 m vs 300 m skew"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(10);
        let mut t = Table::new(
            "arms",
            &[
                "routing",
                "goodput(Gb/s)",
                "wire(Gb/s)",
                "out-of-seq",
                "naks",
                "drops",
            ],
        );
        for spraying in [false, true] {
            let r = spray::run(spraying, dur);
            t.row(vec![
                Cell::s(if spraying { "per-packet" } else { "per-flow" }),
                Cell::f2(r.goodput_gbps),
                Cell::f2(r.wire_gbps),
                Cell::U64(r.out_of_seq),
                Cell::U64(r.naks),
                Cell::U64(r.drops),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep.note(
            "per-packet spraying loses nothing in the fabric, yet go-back-N treats the \
             reordering as loss — the transport, not the network, is the blocker.",
        );
        rep
    }
}

/// §7 contrast on the pluggable CC layer — DCQCN vs a TIMELY-style
/// delay-gradient controller vs no end-to-end control, same incast.
pub struct ExpCcAblation;

impl ScenarioReport for ExpCcAblation {
    fn id(&self) -> &str {
        "EXP-CC (§7)"
    }
    fn title(&self) -> &str {
        "congestion control ablation: DCQCN vs TIMELY vs off"
    }
    fn claim(&self) -> &str {
        "either controller — ECN-driven DCQCN or delay-driven TIMELY — keeps the \
         incast queue short and collapses pause generation; with both off PFC alone \
         stays loss-free but pauses constantly"
    }
    fn run(&self, args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(15);
        let mut t = Table::new(
            "arms",
            &[
                "cc",
                "pauses",
                "ecn marks",
                "cnps",
                "goodput(Gb/s)",
                "peak queue(KB)",
                "ll drops",
            ],
        );
        for cc in [CcKind::Off, CcKind::Dcqcn, CcKind::Timely] {
            // `--trace-out` captures the paper's deployed controller.
            let r = if cc == CcKind::Dcqcn {
                cc_ablation::run_traced(cc, 4, dur, trace_instr(args))
            } else {
                cc_ablation::run(cc, 4, dur)
            };
            t.row(vec![
                Cell::s(r.cc.name()),
                Cell::U64(r.pauses),
                Cell::U64(r.ecn_marked),
                Cell::U64(r.cnps),
                Cell::f2(r.goodput_gbps),
                Cell::f1(r.peak_queue_bytes as f64 / 1024.0),
                Cell::U64(r.lossless_drops),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep.note(
            "CNPs are generated by the NP state machine regardless of the sender's \
             controller; TIMELY ignores them and reacts to RTT inflation instead.",
        );
        trace_note(&mut rep, args, "cc=dcqcn");
        rep
    }
}

/// §4.2 incident replay — the deadlock formed *live* by a scripted MAC
/// eviction, watched by the in-fabric detector; then the same script
/// with the fix on.
pub struct IncScriptedDeadlock;

impl ScenarioReport for IncScriptedDeadlock {
    fn id(&self) -> &str {
        "INC-DEADLOCK (§4.2)"
    }
    fn title(&self) -> &str {
        "incident replay: scripted MAC eviction forms a live deadlock"
    }
    fn claim(&self) -> &str {
        "evicting a dead server's MAC entry mid-run (ARP surviving) recreates the \
         §4.2 deadlock while traffic flows: the live detector reports the wait cycle \
         mid-run; with drop-on-incomplete-ARP the same script stays cycle-free"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let dur = SimTime::from_millis(40);
        let mut t = Table::new(
            "arms",
            &[
                "fix",
                "first cycle(ms)",
                "cycle epochs",
                "epochs",
                "verdict",
                "fix drops",
                "tail MB (live)",
            ],
        );
        let mut rep = Report::new();
        for fix in [false, true] {
            let r = deadlock::run_scripted(fix, dur);
            t.row(vec![
                Cell::Bool(r.fix_enabled),
                match r.first_cycle_at {
                    Some(at) => Cell::f1(at.as_ps() as f64 / 1e9),
                    None => Cell::s("-"),
                },
                Cell::U64(r.cycle_epochs),
                Cell::U64(r.epochs),
                Cell::s(format!("{:?}", r.deadlocked_switches)),
                Cell::U64(r.fix_drops),
                Cell::f1(r.tail_goodput_bytes as f64 / 1e6),
            ]);
            rep.scalar(format!("digest_fix_{fix}"), Cell::U64(r.digest));
            rep.scalar(format!("events_fix_{fix}"), Cell::U64(r.events));
        }
        rep.note(format!("evictions fire at 4 ms on both ToRs; run = {dur}"));
        rep.table(t);
        rep
    }
}

/// Mid-incast reroute incident: one real flow-cache flush, a miss storm,
/// and the incast survives.
pub struct IncReroute;

impl ScenarioReport for IncReroute {
    fn id(&self) -> &str {
        "INC-REROUTE (§5)"
    }
    fn title(&self) -> &str {
        "incident replay: mid-incast reroute and the flow-cache miss storm"
    }
    fn claim(&self) -> &str {
        "opening the route table mid-incast flushes the hot flow-decision cache \
         exactly once; live flows re-resolve (a miss storm) and the incast survives \
         the path change"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let r = incident::run_reroute(SimTime::from_millis(10));
        let mut t = Table::new(
            "reroute",
            &[
                "invalidations",
                "hits",
                "misses before",
                "misses after",
                "tail MB",
            ],
        );
        t.row(vec![
            Cell::U64(r.invalidations),
            Cell::U64(r.hits),
            Cell::U64(r.misses_before),
            Cell::U64(r.misses_after),
            Cell::f1(r.tail_goodput_bytes as f64 / 1e6),
        ]);
        let mut rep = Report::new();
        rep.scalar("digest", Cell::U64(r.digest));
        rep.scalar("events", Cell::U64(r.events));
        rep.table(t);
        rep
    }
}

/// Cascading pause storm incident with a scripted stop.
pub struct IncCascadeStorm;

impl ScenarioReport for IncCascadeStorm {
    fn id(&self) -> &str {
        "INC-CASCADE (§4.3)"
    }
    fn title(&self) -> &str {
        "incident replay: cascading pause storm, scripted stop, clean recovery"
    }
    fn claim(&self) -> &str {
        "two staggered NIC pause storms cascade backpressure up the fabric without \
         losing a packet; stopping the storms restores goodput; the live deadlock \
         detector stays silent — a pause storm is a tree, not a cycle"
    }
    fn run(&self, args: &CliArgs) -> Report {
        let r = incident::run_cascade_traced(SimTime::from_millis(12), trace_instr(args));
        let mut t = Table::new(
            "cascade",
            &[
                "storm pauses",
                "storm rx drops",
                "MB during",
                "MB after",
                "cycle epochs",
                "ll drops",
            ],
        );
        t.row(vec![
            Cell::U64(r.storm_pauses),
            Cell::U64(r.storm_dropped),
            Cell::f1(r.goodput_during as f64 / 1e6),
            Cell::f1(r.goodput_after as f64 / 1e6),
            Cell::U64(r.cycle_epochs),
            Cell::U64(r.lossless_drops),
        ]);
        let mut rep = Report::new();
        rep.scalar("digest", Cell::U64(r.digest));
        rep.scalar("events", Cell::U64(r.events));
        rep.note(format!("detector ran {} epochs", r.epochs));
        rep.table(t);
        trace_note(&mut rep, args, "cascade");
        rep
    }
}

/// Dead-but-remembered server incident (§4.2 precondition) with
/// resurrection.
pub struct IncDeadRemembered;

impl ScenarioReport for IncDeadRemembered {
    fn id(&self) -> &str {
        "INC-DEAD-SERVER (§4.2)"
    }
    fn title(&self) -> &str {
        "incident replay: dead-but-remembered server, then resurrection"
    }
    fn claim(&self) -> &str {
        "a mid-run MAC eviction leaves a server dead-but-remembered: with the fix on, \
         lossless traffic to it is dropped at the ToR (no flood, no cycle) and \
         goodput resumes the moment the entry is re-learned"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        let r = incident::run_dead_remembered(SimTime::from_millis(10));
        let mut t = Table::new(
            "dead server",
            &[
                "arp drops before",
                "arp drops total",
                "MB before",
                "MB dead",
                "MB resumed",
                "cycle epochs",
            ],
        );
        t.row(vec![
            Cell::U64(r.arp_drops_before),
            Cell::U64(r.arp_drops_total),
            Cell::f1(r.goodput_before_death as f64 / 1e6),
            Cell::f1(r.goodput_while_dead as f64 / 1e6),
            Cell::f1(r.goodput_after_resurrect as f64 / 1e6),
            Cell::U64(r.cycle_epochs),
        ]);
        let mut rep = Report::new();
        rep.scalar("digest", Cell::U64(r.digest));
        rep.scalar("events", Cell::U64(r.events));
        rep.table(t);
        rep
    }
}

/// Paper-scale fleet (§6): a 4096-host Clos (by default) on sharded
/// execution. Scenario-specific flags: `--shards N` (worker shards,
/// default 2), `--serial` (run exchange epochs on one thread — the
/// differential mode; the digest scalar must not change, which is what
/// the CI sharded-digest smoke asserts), `--dense` (dense grid pacing
/// instead of adaptive epoch skipping — same digest again),
/// `--tors-per-pod N` / `--servers-per-tor N` (fabric shape; `40`/`320`
/// is the 102 400-host deployment class of §6), and `--dur-us N` (run
/// horizon, default 600 µs — long enough for the burst workload to
/// drain and the quiet tail to exercise epoch skipping).
pub struct IncFleetScale;

impl ScenarioReport for IncFleetScale {
    fn id(&self) -> &str {
        "INC-FLEET-SCALE (§6)"
    }
    fn title(&self) -> &str {
        "paper-scale fleet: 4096 hosts on sharded execution"
    }
    fn claim(&self) -> &str {
        "the deployments of §6 span whole podsets; per-pod worker shards behind a \
         conservative cross-shard exchange advance a 4096-host Clos deterministically — \
         byte-identical digest whether epochs run serially or threaded"
    }
    fn run(&self, args: &CliArgs) -> Report {
        let uint = |flag: &str, default: u32| -> u32 {
            match args.value(flag) {
                Some(v) => v.parse().ok().filter(|n| *n >= 1).unwrap_or_else(|| {
                    eprintln!("{flag} needs a positive integer, got {v:?}");
                    std::process::exit(2);
                }),
                None => default,
            }
        };
        let shards = uint("--shards", 2);
        let tors_per_pod = uint("--tors-per-pod", 8);
        let servers_per_tor = uint("--servers-per-tor", 64);
        let dur_us = uint("--dur-us", 600);
        let serial = args.has("--serial");
        let pacing = if args.has("--dense") {
            EpochPacing::Dense
        } else {
            EpochPacing::Adaptive
        };
        // Wall-clock fields are real measurements, hence nondeterministic;
        // the fleet's --bench-out byte-identity check forwards
        // --deterministic to drop them.
        let walls = !args.has("--deterministic");
        let r = fleet_scale::run_spec(
            fleet_scale::spec_with(tors_per_pod, servers_per_tor),
            shards,
            !serial,
            pacing,
            SimTime::from_micros(dur_us as u64),
        );
        let mut t = Table::new(
            "per-shard engine load",
            &["shard", "events", "wheel max", "slab slots", "slab live"],
        );
        for (s, l) in r.per_shard.iter().enumerate() {
            t.row(vec![
                Cell::U64(s as u64),
                Cell::U64(l.events),
                Cell::U64(l.wheel_max_occupancy),
                Cell::U64(l.slab_capacity as u64),
                Cell::U64(l.slab_live as u64),
            ]);
        }
        let mut rep = Report::new();
        rep.scalar("digest", Cell::U64(r.digest));
        rep.scalar("events", Cell::U64(r.events));
        rep.scalar("hosts", Cell::U64(r.hosts as u64));
        rep.scalar("switches", Cell::U64(r.switches as u64));
        rep.scalar("shards", Cell::U64(r.shards as u64));
        rep.scalar("exchange_epochs", Cell::U64(r.epochs));
        rep.scalar("epochs_skipped", Cell::U64(r.epochs_skipped));
        rep.scalar("boundary_msgs", Cell::U64(r.boundary_messages));
        rep.scalar("lookahead_us", Cell::f2(r.lookahead_ps as f64 / 1e6));
        rep.scalar("goodput_mb", Cell::f2(r.goodput_bytes as f64 / 1e6));
        rep.scalar("lossless_drops", Cell::U64(r.lossless_drops));
        rep.scalar("flow_cache_hit_rate", Cell::f2(r.flow_cache_hit_rate()));
        rep.scalar("slab_mb", Cell::f2(r.slab_bytes as f64 / 1e6));
        rep.table(t);
        if walls {
            rep.scalar("wall_imbalance", Cell::f2(r.wall_imbalance()));
            let mut w = Table::new("per-shard wall-clock (measured)", &["shard", "wall ms"]);
            for (s, l) in r.per_shard.iter().enumerate() {
                w.row(vec![
                    Cell::U64(s as u64),
                    Cell::f2(l.wall_nanos as f64 / 1e6),
                ]);
            }
            rep.table(w);
        }
        rep.note(format!(
            "{} hosts, {} switches, {} shard(s), epochs {} ({} executed + {} skipped \
             of a {}-window dense grid): {}",
            r.hosts,
            r.switches,
            r.shards,
            if serial { "serial" } else { "threaded" },
            r.epochs,
            r.epochs_skipped,
            r.dense_epochs(),
            "raise --tors-per-pod/--servers-per-tor for the 100k-host deployment class"
        ));
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_twenty_one_scenarios() {
        let suite = all();
        assert_eq!(suite.len(), 21);
        let ids: Vec<&str> = suite.iter().map(|s| s.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "scenario ids must be unique");
        assert_eq!(ids[0], "FIG-2 (§2)");
        assert_eq!(ids[14], "EXP-PER-PACKET-ROUTING (§8.1)");
        assert_eq!(ids[15], "EXP-CC (§7)");
        assert_eq!(ids[16], "INC-DEADLOCK (§4.2)");
        assert_eq!(ids[19], "INC-DEAD-SERVER (§4.2)");
        assert_eq!(ids[20], "INC-FLEET-SCALE (§6)");
    }
}
