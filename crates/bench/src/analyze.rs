//! Trace analysis: fold an exported JSONL trace back into paper-figure
//! tables through the standard [`Report`] renderer.
//!
//! The export path (`--trace-out` on a scenario binary) streams four
//! record classes — flight events, per-packet hops, per-epoch queue
//! samples, CC rate points (see `rocescale_monitor::sink`). This module
//! is the read side: [`TraceDoc`] loads any such file and renders
//!
//! * a **record census** (what the trace contains),
//! * a **queue-depth heatmap** — switch × time-window max backlog, the
//!   Figure 10 time axis,
//! * a **pause-propagation timeline** — `pause_tx`/`pause_rx`/
//!   `resume_tx` counts per window, the Figure 9(b) shape,
//! * **CC rate trajectories** — the per-QP DCQCN/TIMELY rate curve.
//!
//! [`TraceDoc`] implements [`ScenarioReport`], so the `trace_analyze`
//! binary gets `--json` output (and `json_check` validation) for free
//! from the same machinery every experiment binary uses.

use std::collections::{BTreeMap, BTreeSet};

use rocescale_monitor::ParsedRecord;

use crate::report::{Cell, CliArgs, Report, ScenarioReport, Table};

/// Time windows trajectories are folded into: enough resolution to see
/// a storm start and stop, few enough columns to render as text.
const WINDOWS: u64 = 10;

/// Picosecond span of the trace and the window width derived from it.
#[derive(Debug, Clone, Copy)]
struct TimeAxis {
    t0: u64,
    width_ps: u64,
}

impl TimeAxis {
    fn from_records(records: &[ParsedRecord]) -> TimeAxis {
        let t0 = records.iter().map(|r| r.t_ps).min().unwrap_or(0);
        let t1 = records.iter().map(|r| r.t_ps).max().unwrap_or(0);
        TimeAxis {
            t0,
            width_ps: ((t1 - t0) / WINDOWS).max(1),
        }
    }

    fn window(&self, t_ps: u64) -> u64 {
        ((t_ps - self.t0) / self.width_ps).min(WINDOWS - 1)
    }

    /// Window start in microseconds (the row/column label unit).
    fn label_us(&self, w: u64) -> f64 {
        (self.t0 + w * self.width_ps) as f64 / 1e6
    }
}

fn census(records: &[ParsedRecord]) -> Table {
    let mut kinds: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for r in records {
        let e = kinds.entry(&r.kind).or_insert((0, u64::MAX, 0));
        e.0 += 1;
        e.1 = e.1.min(r.t_ps);
        e.2 = e.2.max(r.t_ps);
    }
    let mut t = Table::new("record census", &["kind", "count", "first(us)", "last(us)"]);
    for (kind, (count, first, last)) in kinds {
        t.row(vec![
            Cell::s(kind),
            Cell::U64(count),
            Cell::f1(first as f64 / 1e6),
            Cell::f1(last as f64 / 1e6),
        ]);
    }
    t
}

fn queue_heatmap(records: &[ParsedRecord], axis: TimeAxis) -> Option<Table> {
    // switch scope -> per-window max backlog (bytes).
    let mut rows: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for r in records.iter().filter(|r| r.kind == "queue") {
        let cells = rows
            .entry(&r.scope)
            .or_insert_with(|| vec![0; WINDOWS as usize]);
        let w = axis.window(r.t_ps) as usize;
        cells[w] = cells[w].max(r.u64_field("backlog_bytes").unwrap_or(0));
    }
    if rows.is_empty() {
        return None;
    }
    let mut labels = vec!["switch".to_string()];
    labels.extend((0..WINDOWS).map(|w| format!("{:.0}us", axis.label_us(w))));
    let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("queue-depth heatmap (max lossless backlog, KB)", &refs);
    for (scope, cells) in rows {
        let mut row = vec![Cell::s(scope)];
        row.extend(cells.iter().map(|b| Cell::f1(*b as f64 / 1024.0)));
        t.row(row);
    }
    Some(t)
}

fn pause_timeline(records: &[ParsedRecord], axis: TimeAxis) -> Option<Table> {
    const KINDS: [&str; 3] = ["pause_tx", "pause_rx", "resume_tx"];
    // window -> [pause_tx, pause_rx, resume_tx], plus the scopes active.
    let mut windows: BTreeMap<u64, ([u64; 3], BTreeSet<&str>)> = BTreeMap::new();
    for r in records {
        let Some(k) = KINDS.iter().position(|k| *k == r.kind) else {
            continue;
        };
        let e = windows.entry(axis.window(r.t_ps)).or_default();
        e.0[k] += 1;
        e.1.insert(&r.scope);
    }
    if windows.is_empty() {
        return None;
    }
    let mut t = Table::new(
        "pause propagation (frames per window; scopes = devices pausing or paused)",
        &["t(us)", "pause_tx", "pause_rx", "resume_tx", "scopes"],
    );
    for (w, (counts, scopes)) in windows {
        t.row(vec![
            Cell::f1(axis.label_us(w)),
            Cell::U64(counts[0]),
            Cell::U64(counts[1]),
            Cell::U64(counts[2]),
            Cell::U64(scopes.len() as u64),
        ]);
    }
    Some(t)
}

fn rate_trajectories(records: &[ParsedRecord], axis: TimeAxis) -> Option<Table> {
    // (nic scope, qp) -> window -> last rate point in that window.
    let mut series: BTreeMap<(&str, u64), BTreeMap<u64, &ParsedRecord>> = BTreeMap::new();
    for r in records.iter().filter(|r| r.kind == "cc_rate") {
        let qp = r.u64_field("qp").unwrap_or(0);
        series
            .entry((&r.scope, qp))
            .or_default()
            .insert(axis.window(r.t_ps), r);
    }
    if series.is_empty() {
        return None;
    }
    let mut t = Table::new(
        "cc rate trajectories (last rate point per window)",
        &["nic", "qp", "cc", "t(us)", "rate(Mb/s)", "cause"],
    );
    for ((scope, qp), windows) in series {
        for (w, r) in windows {
            t.row(vec![
                Cell::s(scope),
                Cell::U64(qp),
                Cell::s(r.str_field("cc").unwrap_or("?")),
                Cell::f1(axis.label_us(w)),
                Cell::U64(r.u64_field("rate_mbps").unwrap_or(0)),
                Cell::s(r.str_field("cause").unwrap_or("?")),
            ]);
        }
    }
    Some(t)
}

/// Analyze a parsed trace into the full report: census plus whichever
/// trajectory tables the trace's record classes support. Absent classes
/// (filtered at export, or a scenario that never pauses) are called out
/// in notes instead of rendering empty tables.
pub fn analyze(records: &[ParsedRecord]) -> Report {
    let mut rep = Report::new();
    if records.is_empty() {
        rep.note("trace is empty: nothing was exported");
        return rep;
    }
    let axis = TimeAxis::from_records(records);
    rep.table(census(records));
    match queue_heatmap(records, axis) {
        Some(t) => rep.table(t),
        None => rep.note("no queue samples in this trace (hops-only filter, or no epochs ran)"),
    }
    match pause_timeline(records, axis) {
        Some(t) => rep.table(t),
        None => rep.note("no pause/resume events in this trace (nothing hit XOFF)"),
    }
    match rate_trajectories(records, axis) {
        Some(t) => rep.table(t),
        None => rep.note("no cc_rate points in this trace (congestion control off or idle)"),
    }

    let hop_bytes: u64 = records
        .iter()
        .filter(|r| r.kind == "hop")
        .filter_map(|r| r.u64_field("bytes"))
        .sum();
    let peak_queue = records
        .iter()
        .filter_map(|r| match r.kind.as_str() {
            "hop" => r.u64_field("queue_bytes"),
            "queue" => r.u64_field("max_port_bytes"),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    rep.scalar("records", Cell::U64(records.len() as u64));
    rep.scalar("span_us", Cell::f1((axis.width_ps * WINDOWS) as f64 / 1e6));
    rep.scalar("hop_bytes", Cell::U64(hop_bytes));
    rep.scalar("peak_queue_kb", Cell::f1(peak_queue as f64 / 1024.0));
    rep
}

/// An exported trace as a [`ScenarioReport`]: load a JSONL file, get
/// the analysis rendered through the standard text/JSON machinery.
pub struct TraceDoc {
    title: String,
    records: Vec<ParsedRecord>,
}

impl TraceDoc {
    /// Load and strictly parse an exported trace file.
    pub fn load(path: &str) -> Result<TraceDoc, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Ok(TraceDoc::from_records(
            path,
            rocescale_monitor::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?,
        ))
    }

    /// Wrap already-parsed records (tests, in-process pipelines).
    pub fn from_records(source: &str, records: Vec<ParsedRecord>) -> TraceDoc {
        TraceDoc {
            title: format!("exported trace analysis: {source}"),
            records,
        }
    }

    /// The parsed records, in file order.
    pub fn records(&self) -> &[ParsedRecord] {
        &self.records
    }
}

impl ScenarioReport for TraceDoc {
    fn id(&self) -> &str {
        "TRACE"
    }
    fn title(&self) -> &str {
        &self.title
    }
    fn claim(&self) -> &str {
        "queue-depth heatmaps, pause-propagation timelines and CC rate trajectories \
         recovered offline from a streamed JSONL trace — the paper's time-series \
         evidence, regenerable from any exported run"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        analyze(&self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocescale_monitor::parse_jsonl;

    fn synthetic_trace() -> Vec<ParsedRecord> {
        let mut lines = String::new();
        // Two switches' queue samples over 10 ms, a pause burst in the
        // middle, one NIC's rate curve stepping down then up.
        for w in 0..10u64 {
            let t = w * 1_000_000_000;
            lines += &format!(
                "{{\"t_ps\":{t},\"scope\":\"switch.t0\",\"kind\":\"queue\",\
                 \"backlog_bytes\":{},\"max_port_bytes\":{},\"tx_pkts\":{}}}\n",
                w * 10240,
                w * 5120,
                w * 100
            );
            lines += &format!(
                "{{\"t_ps\":{t},\"scope\":\"switch.t1\",\"kind\":\"queue\",\
                 \"backlog_bytes\":0,\"max_port_bytes\":0,\"tx_pkts\":{w}}}\n"
            );
        }
        for t in [4_100_000_000u64, 4_200_000_000, 4_300_000_000] {
            lines += &format!(
                "{{\"t_ps\":{t},\"scope\":\"switch.t0\",\"kind\":\"pause_tx\",\
                 \"port\":1,\"prio\":3}}\n"
            );
        }
        lines += "{\"t_ps\":4400000000,\"scope\":\"switch.t0\",\"kind\":\"resume_tx\",\
                  \"port\":1,\"prio\":3}\n";
        for (t, rate, cause) in [
            (4_150_000_000u64, 20_000u64, "cnp"),
            (6_000_000_000, 24_000, "increase"),
        ] {
            lines += &format!(
                "{{\"t_ps\":{t},\"scope\":\"nic.s1\",\"kind\":\"cc_rate\",\
                 \"qp\":0,\"rate_mbps\":{rate},\"cc\":\"dcqcn\",\"cause\":\"{cause}\"}}\n"
            );
        }
        lines += "{\"t_ps\":100000000,\"scope\":\"switch.t0\",\"kind\":\"hop\",\"port\":2,\
                  \"prio\":3,\"bytes\":1120,\"src_ip\":1,\"dst_ip\":2,\"queue_bytes\":99999}\n";
        parse_jsonl(&lines).unwrap()
    }

    #[test]
    fn analysis_renders_all_three_trajectory_tables() {
        let rep = analyze(&synthetic_trace());
        let names: Vec<&str> = rep.tables.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names.len(), 4, "census + 3 trajectory tables: {names:?}");
        assert!(names[0].contains("census"));
        assert!(names[1].contains("heatmap"));
        assert!(names[2].contains("pause propagation"));
        assert!(names[3].contains("cc rate"));

        // Heatmap: one row per switch, windows as columns.
        let heat = &rep.tables[1];
        assert_eq!(heat.rows.len(), 2);
        assert_eq!(heat.columns.len() as u64, 1 + WINDOWS);

        // Pause burst lands in one window: 3 XOFF + 1 XON, one scope.
        let pauses = &rep.tables[2];
        assert_eq!(pauses.rows.len(), 1);
        assert_eq!(pauses.rows[0][1], Cell::U64(3));
        assert_eq!(pauses.rows[0][3], Cell::U64(1));
        assert_eq!(pauses.rows[0][4], Cell::U64(1));

        // Rate curve: two windows, last point each.
        let rates = &rep.tables[3];
        assert_eq!(rates.rows.len(), 2);
        assert_eq!(rates.rows[0][4], Cell::U64(20_000));
        assert_eq!(rates.rows[1][5], Cell::Str("increase".into()));

        let peak = rep
            .scalars
            .iter()
            .find(|(k, _)| k == "peak_queue_kb")
            .unwrap();
        assert_eq!(peak.1, Cell::f1(99_999.0 / 1024.0));
    }

    #[test]
    fn absent_classes_become_notes_not_empty_tables() {
        let records = parse_jsonl(
            "{\"t_ps\":1,\"scope\":\"switch.t0\",\"kind\":\"hop\",\"port\":0,\"prio\":3,\
             \"bytes\":64,\"src_ip\":0,\"dst_ip\":0,\"queue_bytes\":64}\n",
        )
        .unwrap();
        let rep = analyze(&records);
        assert_eq!(rep.tables.len(), 1, "census only");
        assert_eq!(rep.notes.len(), 3);
        assert!(rep.notes.iter().any(|n| n.contains("no queue samples")));
    }

    #[test]
    fn empty_trace_is_a_note() {
        let rep = analyze(&[]);
        assert!(rep.tables.is_empty());
        assert_eq!(rep.notes.len(), 1);
    }

    #[test]
    fn trace_doc_is_a_scenario_report() {
        let doc = TraceDoc::from_records("test.jsonl", synthetic_trace());
        assert_eq!(doc.id(), "TRACE");
        assert!(doc.title().contains("test.jsonl"));
        let rep = doc.run(&CliArgs::default());
        let json = crate::report::to_json(&doc, &rep);
        let parsed = rocescale_monitor::json::parse(&json.render()).unwrap();
        for key in ["id", "title", "paper", "tables", "scalars", "notes"] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
    }
}
