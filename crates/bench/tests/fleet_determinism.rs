//! Fleet determinism: a sweep run on 1 worker and on 4 workers must
//! produce byte-identical per-run dispatch digests and byte-identical
//! aggregated JSON. This is the property the whole fleet design rests
//! on — worker count changes wall-clock time and nothing else.

use rocescale_bench::fleet::run_sweep;
use rocescale_bench::report::{to_json, Report, ScenarioReport};
use rocescale_bench::{Cell, CliArgs, Table};
use rocescale_core::{ClusterBuilder, SweepAxis, SweepJob, SweepSpec};
use rocescale_monitor::{merge_reports, Json};
use rocescale_nic::QpApp;

/// The small sweep: PFC on/off × DCQCN on/off × 2 seed replicates = 8
/// independent jobs, each a short single-ToR 5-to-1 incast (heavy
/// enough that the receiver port crosses XOFF, so the PFC axis really
/// changes the event stream).
fn spec() -> SweepSpec {
    SweepSpec::new()
        .axis(
            SweepAxis::new("pfc")
                .variant("on", |p| p.fabric = p.fabric.clone().pfc(true))
                .variant("off", |p| p.fabric = p.fabric.clone().pfc(false)),
        )
        .axis(
            SweepAxis::new("dcqcn")
                .variant("on", |p| p.transport = p.transport.dcqcn(true))
                .variant("off", |p| p.transport = p.transport.dcqcn(false)),
        )
        .replicates(2)
}

/// Identity for a sweep cell's merged report: the axis labels minus the
/// seed (replicates share everything else).
struct CellReport {
    id: String,
}

impl ScenarioReport for CellReport {
    fn id(&self) -> &str {
        &self.id
    }
    fn title(&self) -> &str {
        "sweep cell"
    }
    fn claim(&self) -> &str {
        "fleet determinism fixture"
    }
    fn run(&self, _args: &CliArgs) -> Report {
        unreachable!("reports are built by the job runner")
    }
}

/// Run one sweep job: build the cluster from the job's point, drive a
/// 3-to-1 incast for 1 ms, return (dispatch digest, report JSON).
fn run_job(job: &SweepJob) -> (u64, Json) {
    let mut c = ClusterBuilder::single_tor(6)
        .fabric(job.point.fabric.clone())
        .transport(job.point.transport)
        .faults(job.point.faults.clone())
        .seed(job.point.seed)
        .build();
    let ids = c.all_servers();
    for &src in &ids[1..] {
        c.connect_qp(
            src,
            ids[0],
            5000,
            QpApp::Saturate {
                msg_len: 64 * 1024,
                inflight: 16,
            },
            QpApp::None,
        );
    }
    c.run_for_millis(1);

    let mut t = Table::new("counters", &["goodput(B)", "pauses", "ll-drops"]);
    t.row(vec![
        Cell::U64(c.total_rdma_goodput()),
        Cell::U64(c.total_switch_pause_tx()),
        Cell::U64(c.lossless_drops()),
    ]);
    let mut rep = Report::new();
    rep.table(t);
    rep.scalar("events", Cell::U64(c.world.events_processed()));
    let cell = CellReport {
        id: job.labels[..job.labels.len() - 1].join(","),
    };
    (c.world.dispatch_digest(), to_json(&cell, &rep))
}

/// Render the full fleet output for a given worker count: per-job
/// digests plus the per-cell aggregate (replicates merged min/mean/max).
fn fleet_output(workers: usize) -> (Vec<u64>, String) {
    let results = run_sweep(&spec(), workers, run_job);
    let digests: Vec<u64> = results.iter().map(|(_, (d, _))| *d).collect();
    // Replicates are innermost: chunks of 2 share a grid cell.
    let mut merged = Vec::new();
    for cell in results.chunks(2) {
        let reports: Vec<Json> = cell.iter().map(|(_, (_, j))| j.clone()).collect();
        merged.push(merge_reports(&reports).expect("replicates merge"));
    }
    let doc = Json::obj(vec![("scenarios", Json::Arr(merged))]);
    (digests, doc.render())
}

#[test]
fn jobs_1_and_jobs_4_are_byte_identical() {
    let (d1, json1) = fleet_output(1);
    let (d4, json4) = fleet_output(4);
    assert_eq!(d1, d4, "per-run dispatch digests must not depend on --jobs");
    assert_eq!(json1, json4, "aggregated JSON must be byte-identical");
    assert_eq!(d1.len(), 8);

    // Replicates genuinely differ (different seeds ⇒ different digests),
    // so the equality above is not vacuous.
    assert_ne!(d1[0], d1[1], "seed replicates must differ");
    // Axis variants change the simulation. With DCQCN on, queues stay
    // below XOFF and PFC never fires (the paper's point), so compare the
    // pfc axis in the dcqcn=off cells: index 2 = (on, off, seed 1) vs
    // index 6 = (off, off, seed 1).
    assert_ne!(d1[0], d1[2], "dcqcn on vs off must differ");
    assert_ne!(d1[2], d1[6], "pfc on vs off must differ when PFC fires");
}

#[test]
fn suite_registry_is_fleet_ready() {
    // The fleet runs scenarios by index; the registry must stay stable
    // and Sync (shared across worker threads by reference).
    fn assert_sync<T: Sync + ?Sized>() {}
    assert_sync::<dyn rocescale_bench::ScenarioReport + Sync>();
    assert_eq!(rocescale_bench::suite::all().len(), 21);
}

/// The congestion-control axis (dcqcn / timely / off) must be exactly as
/// worker-count invariant as the hand-built axes above: same digests,
/// same JSON, on 1 worker and on 2.
#[test]
fn cc_ablation_sweep_is_jobs_invariant() {
    let spec = SweepSpec::new().axis(SweepAxis::cc());
    let outputs = |workers: usize| {
        let results = run_sweep(&spec, workers, run_job);
        let digests: Vec<u64> = results.iter().map(|(_, (d, _))| *d).collect();
        let jsons: Vec<String> = results.iter().map(|(_, (_, j))| j.render()).collect();
        (digests, jsons)
    };
    let (d1, j1) = outputs(1);
    let (d2, j2) = outputs(2);
    assert_eq!(d1, d2, "per-run digests must not depend on --jobs");
    assert_eq!(j1, j2, "per-run JSON must be byte-identical");
    assert_eq!(d1.len(), 3, "one job per controller");
    // Each controller really steers the simulation differently.
    assert_ne!(d1[0], d1[2], "dcqcn vs off must differ");
    assert_ne!(d1[1], d1[2], "timely vs off must differ");
    assert_ne!(d1[0], d1[1], "dcqcn vs timely must differ");
}
