//! Property test: in any well-formed Clos spec, the generated up-down
//! routes deliver every server-to-server packet — walked hop by hop over
//! the route *data* (no simulator involved), including loop-freedom and
//! the paper's up-down property (once a path turns downward it never
//! goes up again).

use rocescale_sim::PortId;
use rocescale_topology::{ClosSpec, RouteSpec, Tier, Topology};

/// Longest-prefix match over a node's RouteSpec list.
fn lookup(routes: &[RouteSpec], dst: u32) -> Option<&RouteSpec> {
    let mask = |len: u8| -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    };
    routes
        .iter()
        .filter(|r| {
            let (p, l) = match r {
                RouteSpec::Via { prefix, len, .. } => (*prefix, *len),
                RouteSpec::Connected { prefix, len } => (*prefix, *len),
            };
            dst & mask(l) == p
        })
        .max_by_key(|r| match r {
            RouteSpec::Via { len, .. } => *len,
            RouteSpec::Connected { len, .. } => *len,
        })
}

/// The node on the other end of (`node`, `port`).
fn peer(topo: &Topology, node: usize, port: PortId) -> usize {
    for l in &topo.links {
        if l.a == (node, port) {
            return l.b.0;
        }
        if l.b == (node, port) {
            return l.a.0;
        }
    }
    panic!("route names unconnected port {port:?} on node {node}");
}

fn tier_rank(t: Tier) -> u8 {
    match t {
        Tier::Server => 0,
        Tier::Tor => 1,
        Tier::Leaf => 2,
        Tier::Spine => 3,
    }
}

/// Walk a packet from `src` server to `dst` server through the route
/// tables, trying *every* ECMP member at each hop (exhaustive path
/// enumeration with memo). Asserts delivery, hop bound, and up-down.
fn verify_pair(topo: &Topology, src: usize, dst: usize) -> Result<(), String> {
    let dst_ip = topo.nodes[dst].ip.expect("server");
    // BFS over (node, direction) where direction=down once we left a peak.
    let start = {
        // Server's first hop is its ToR.
        let mut tor = None;
        for l in &topo.links {
            if l.a.0 == src && topo.nodes[l.b.0].tier == Tier::Tor {
                tor = Some(l.b.0);
            }
            if l.b.0 == src && topo.nodes[l.a.0].tier == Tier::Tor {
                tor = Some(l.a.0);
            }
        }
        tor.ok_or("server has no ToR")?
    };
    let mut stack = vec![(start, false, 0u32)];
    let mut seen = std::collections::HashSet::new();
    while let Some((node, went_down, hops)) = stack.pop() {
        if hops > 8 {
            return Err(format!("hop bound exceeded toward {dst_ip:x}"));
        }
        if !seen.insert((node, went_down)) {
            continue;
        }
        match lookup(&topo.routes[node], dst_ip) {
            None => {
                return Err(format!(
                    "{} has no route to {dst_ip:x}",
                    topo.nodes[node].name
                ))
            }
            Some(RouteSpec::Connected { .. }) => {
                // Deliverable iff dst really is attached here.
                let attached = topo.servers_of_tor(node).contains(&dst);
                if !attached {
                    return Err(format!(
                        "{} claims {dst_ip:x} connected but it is not",
                        topo.nodes[node].name
                    ));
                }
                continue; // this branch delivered
            }
            Some(RouteSpec::Via { ports, .. }) => {
                for p in ports {
                    let next = peer(topo, node, *p);
                    let up = tier_rank(topo.nodes[next].tier) > tier_rank(topo.nodes[node].tier);
                    if went_down && up {
                        return Err(format!(
                            "up-down violated: {} -> {}",
                            topo.nodes[node].name, topo.nodes[next].name
                        ));
                    }
                    stack.push((next, went_down || !up, hops + 1));
                }
            }
        }
    }
    Ok(())
}

/// Every server reaches every other server over every ECMP branch,
/// within the hop bound, without ever turning back upward. The previous
/// proptest sampled this space; the parameter ranges are small enough to
/// check exhaustively (72 fabric shapes).
#[test]
fn all_pairs_reachable_up_down() {
    for pods in 1u32..3 {
        for tors in 1u32..4 {
            for leaves in 1u32..3 {
                for planes in 1u32..3 {
                    for servers in 1u32..4 {
                        let spec =
                            ClosSpec::uniform_40g(pods, tors, leaves, leaves * planes, servers);
                        let topo = Topology::clos(&spec);
                        let all = topo.of_tier(Tier::Server);
                        for &a in &all {
                            for &b in &all {
                                if a == b {
                                    continue;
                                }
                                if let Err(e) = verify_pair(&topo, a, b) {
                                    panic!("{} -> {}: {e}", topo.nodes[a].name, topo.nodes[b].name);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The exact paper-scale fabric also passes the reachability walk (one
/// representative cross-podset pair; the full quadratic check above runs
/// on smaller instances).
#[test]
fn paper_scale_cross_podset_reachable() {
    let spec = ClosSpec::uniform_40g(2, 24, 4, 64, 24);
    let topo = Topology::clos(&spec);
    let servers = topo.of_tier(Tier::Server);
    let a = servers[0];
    let b = *servers.last().unwrap();
    verify_pair(&topo, a, b).expect("cross-podset reachability");
    verify_pair(&topo, b, a).expect("reverse direction");
}
