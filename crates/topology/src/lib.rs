//! Clos topology descriptions: the paper's multi-layer network (Figure 1)
//! as data.
//!
//! "Twenty to forty servers connect to a top-of-rack (ToR) switch. Tens of
//! ToRs connect to a layer of Leaf switches. The Leaf switches in turn
//! connect to a layer of tens to hundreds of Spine switches." (§2)
//!
//! This crate is pure description — node inventory, links with cable
//! lengths, addressing, and up-down ECMP routes — consumed by
//! `rocescale-core`, which instantiates the actual switch and host nodes.
//! Keeping it data-only makes topology properties unit-testable without a
//! simulation (port counts, oversubscription ratios, route reachability).
//!
//! Addressing scheme: server *s* under ToR *t* of pod *p* is
//! `10.p.t.(s+1)/24`; the ToR owns the `/24`, pods own `/16`s. Up-down
//! routes follow the paper: packets climb to a common ancestor and come
//! down, with ECMP at every fan-out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rocescale_sim::PortId;

/// Role of a node in the Clos fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// A server (one NIC port).
    Server,
    /// Top-of-rack switch.
    Tor,
    /// Leaf (aggregation) switch.
    Leaf,
    /// Spine (core) switch.
    Spine,
}

/// A node in the topology. Index in [`Topology::nodes`] is its id.
#[derive(Debug, Clone)]
pub struct TopoNode {
    /// Tier.
    pub tier: Tier,
    /// Human-readable name, e.g. `pod0-tor3` or `pod1-tor3-srv17`.
    pub name: String,
    /// Pod index (spines use `u32::MAX`).
    pub pod: u32,
    /// For servers: assigned IPv4 address.
    pub ip: Option<u32>,
}

/// A duplex link between two (node, port) endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoLink {
    /// First endpoint (topology node index, port).
    pub a: (usize, PortId),
    /// Second endpoint.
    pub b: (usize, PortId),
    /// Line rate, b/s.
    pub rate_bps: u64,
    /// Cable length, metres (drives propagation delay and headroom).
    pub meters: u32,
}

/// One route table entry for a switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteSpec {
    /// `prefix/len` reachable via ECMP over these local ports.
    Via {
        /// Network prefix.
        prefix: u32,
        /// Prefix length.
        len: u8,
        /// Equal-cost egress ports.
        ports: Vec<PortId>,
    },
    /// `prefix/len` is this switch's directly connected subnet.
    Connected {
        /// Network prefix.
        prefix: u32,
        /// Prefix length.
        len: u8,
    },
}

/// A complete topology: nodes, links, and per-switch routes.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Nodes; index = id.
    pub nodes: Vec<TopoNode>,
    /// Links.
    pub links: Vec<TopoLink>,
    /// Routes per node id (empty for servers).
    pub routes: Vec<Vec<RouteSpec>>,
}

/// Parameters of a Clos fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosSpec {
    /// Number of pods (podsets).
    pub pods: u32,
    /// ToRs per pod.
    pub tors_per_pod: u32,
    /// Leaves per pod.
    pub leaves_per_pod: u32,
    /// Spine switches. Spines are organized in *planes*: plane *l*
    /// (of `leaves_per_pod` planes) contains `spines / leaves_per_pod`
    /// spines, each connecting to leaf *l* of every pod — the
    /// arrangement that gives the paper's 64 podset uplinks from 4
    /// leaves and 64 spines (16 uplinks per leaf).
    pub spines: u32,
    /// Servers per ToR.
    pub servers_per_tor: u32,
    /// Server↔ToR link rate, b/s.
    pub server_bps: u64,
    /// ToR↔Leaf link rate, b/s.
    pub tor_leaf_bps: u64,
    /// Leaf↔Spine link rate, b/s.
    pub leaf_spine_bps: u64,
    /// Server cable length, metres (paper: ~2 m).
    pub server_m: u32,
    /// ToR↔Leaf cable, metres (paper: 10–20 m).
    pub tor_leaf_m: u32,
    /// Leaf↔Spine cable, metres (paper: 200–300 m).
    pub leaf_spine_m: u32,
}

impl ClosSpec {
    /// All links 40 GbE with the paper's cable lengths.
    pub fn uniform_40g(
        pods: u32,
        tors_per_pod: u32,
        leaves_per_pod: u32,
        spines: u32,
        servers_per_tor: u32,
    ) -> ClosSpec {
        ClosSpec {
            pods,
            tors_per_pod,
            leaves_per_pod,
            spines,
            servers_per_tor,
            server_bps: 40_000_000_000,
            tor_leaf_bps: 40_000_000_000,
            leaf_spine_bps: 40_000_000_000,
            server_m: 2,
            tor_leaf_m: 15,
            leaf_spine_m: 300,
        }
    }

    /// The Figure 7 podset shape scaled by `scale` (scale = 1 gives
    /// 2 pods × (4 leaves, 24 ToRs, 24 servers/ToR) and 64 spines — the
    /// paper's exact experiment; smaller scales preserve the 6:1 ToR and
    /// 3:2 Leaf oversubscription ratios).
    pub fn fig7_podsets(scale: u32) -> ClosSpec {
        let s = scale.max(1);
        ClosSpec::uniform_40g(2, 24 / s, 4u32.div_ceil(s).max(2), 64 / s, 24 / s)
    }

    /// ToR oversubscription: server bandwidth in vs uplink bandwidth out.
    pub fn tor_oversubscription(&self) -> f64 {
        (self.servers_per_tor as u64 * self.server_bps) as f64
            / (self.leaves_per_pod as u64 * self.tor_leaf_bps) as f64
    }

    /// Spines per plane (= spine uplinks per leaf).
    pub fn spines_per_plane(&self) -> u32 {
        self.spines / self.leaves_per_pod
    }

    /// Leaf oversubscription: downlink vs uplink bandwidth.
    pub fn leaf_oversubscription(&self) -> f64 {
        (self.tors_per_pod as u64 * self.tor_leaf_bps) as f64
            / (self.spines_per_plane() as u64 * self.leaf_spine_bps) as f64
    }
}

/// IP of server `s` under ToR `t` in pod `p`.
pub fn server_ip(pod: u32, tor: u32, server: u32) -> u32 {
    0x0a000000 | (pod << 16) | (tor << 8) | (server + 1)
}

/// The `/24` subnet of ToR `t` in pod `p`.
pub fn tor_subnet(pod: u32, tor: u32) -> u32 {
    0x0a000000 | (pod << 16) | (tor << 8)
}

/// The `/16` prefix of pod `p`.
pub fn pod_prefix(pod: u32) -> u32 {
    0x0a000000 | (pod << 16)
}

impl Topology {
    /// Build a Clos fabric from its spec. Panics if `spines` is not a
    /// multiple of `leaves_per_pod` (planes must be uniform).
    pub fn clos(spec: &ClosSpec) -> Topology {
        assert_eq!(
            spec.spines % spec.leaves_per_pod,
            0,
            "spines must divide evenly into {} planes",
            spec.leaves_per_pod
        );
        let spines_per_plane = spec.spines_per_plane() as usize;
        let mut t = Topology {
            nodes: Vec::new(),
            links: Vec::new(),
            routes: Vec::new(),
        };
        let mut tor_ids = vec![vec![0usize; spec.tors_per_pod as usize]; spec.pods as usize];
        let mut leaf_ids = vec![vec![0usize; spec.leaves_per_pod as usize]; spec.pods as usize];
        let mut spine_ids = vec![0usize; spec.spines as usize];
        // Nodes.
        for p in 0..spec.pods {
            for tor in 0..spec.tors_per_pod {
                tor_ids[p as usize][tor as usize] = t.push(TopoNode {
                    tier: Tier::Tor,
                    name: format!("pod{p}-tor{tor}"),
                    pod: p,
                    ip: None,
                });
                for s in 0..spec.servers_per_tor {
                    t.push(TopoNode {
                        tier: Tier::Server,
                        name: format!("pod{p}-tor{tor}-srv{s}"),
                        pod: p,
                        ip: Some(server_ip(p, tor, s)),
                    });
                }
            }
            for l in 0..spec.leaves_per_pod {
                leaf_ids[p as usize][l as usize] = t.push(TopoNode {
                    tier: Tier::Leaf,
                    name: format!("pod{p}-leaf{l}"),
                    pod: p,
                    ip: None,
                });
            }
        }
        for s in 0..spec.spines {
            spine_ids[s as usize] = t.push(TopoNode {
                tier: Tier::Spine,
                name: format!("spine{s}"),
                pod: u32::MAX,
                ip: None,
            });
        }
        // Links. Port conventions:
        //   ToR:   0..servers → servers, then one per leaf.
        //   Leaf:  0..tors → ToRs of the pod, then one per spine.
        //   Spine: pod-major × leaf index.
        for p in 0..spec.pods as usize {
            for (tor, &tor_id) in tor_ids[p].iter().enumerate() {
                for s in 0..spec.servers_per_tor as usize {
                    let srv_id = tor_id + 1 + s;
                    t.links.push(TopoLink {
                        a: (srv_id, PortId(0)),
                        b: (tor_id, PortId(s as u16)),
                        rate_bps: spec.server_bps,
                        meters: spec.server_m,
                    });
                }
                for (l, &leaf_id) in leaf_ids[p].iter().enumerate() {
                    t.links.push(TopoLink {
                        a: (tor_id, PortId((spec.servers_per_tor as usize + l) as u16)),
                        b: (leaf_id, PortId(tor as u16)),
                        rate_bps: spec.tor_leaf_bps,
                        meters: spec.tor_leaf_m,
                    });
                }
            }
            for (l, &leaf_id) in leaf_ids[p].iter().enumerate() {
                // Leaf l connects to the spines of plane l only.
                for k in 0..spines_per_plane {
                    let spine = l * spines_per_plane + k;
                    t.links.push(TopoLink {
                        a: (leaf_id, PortId((spec.tors_per_pod as usize + k) as u16)),
                        b: (spine_ids[spine], PortId(p as u16)),
                        rate_bps: spec.leaf_spine_bps,
                        meters: spec.leaf_spine_m,
                    });
                }
            }
        }
        // Routes (up-down).
        t.routes = vec![Vec::new(); t.nodes.len()];
        for p in 0..spec.pods {
            for tor in 0..spec.tors_per_pod {
                let tor_id = tor_ids[p as usize][tor as usize];
                let uplinks: Vec<PortId> = (0..spec.leaves_per_pod)
                    .map(|l| PortId((spec.servers_per_tor + l) as u16))
                    .collect();
                t.routes[tor_id].push(RouteSpec::Connected {
                    prefix: tor_subnet(p, tor),
                    len: 24,
                });
                // Everything else goes up.
                t.routes[tor_id].push(RouteSpec::Via {
                    prefix: 0x0a000000,
                    len: 8,
                    ports: uplinks,
                });
            }
            for l in 0..spec.leaves_per_pod {
                let leaf_id = leaf_ids[p as usize][l as usize];
                // Down: each ToR subnet of this pod via its ToR port.
                for tor in 0..spec.tors_per_pod {
                    t.routes[leaf_id].push(RouteSpec::Via {
                        prefix: tor_subnet(p, tor),
                        len: 24,
                        ports: vec![PortId(tor as u16)],
                    });
                }
                // Up: everything else via this leaf's spine plane.
                let uplinks: Vec<PortId> = (0..spec.spines_per_plane())
                    .map(|s| PortId((spec.tors_per_pod + s) as u16))
                    .collect();
                t.routes[leaf_id].push(RouteSpec::Via {
                    prefix: 0x0a000000,
                    len: 8,
                    ports: uplinks,
                });
            }
        }
        for s in 0..spec.spines {
            // A spine has exactly one leaf (its plane's) in each pod.
            let spine_id = spine_ids[s as usize];
            for p in 0..spec.pods {
                t.routes[spine_id].push(RouteSpec::Via {
                    prefix: pod_prefix(p),
                    len: 16,
                    ports: vec![PortId(p as u16)],
                });
            }
        }
        t
    }

    fn push(&mut self, n: TopoNode) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Number of pods actually present (max pod index + 1 over
    /// non-spine nodes; 0 for an all-spine or empty topology).
    pub fn pod_count(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.pod != u32::MAX)
            .map(|n| n.pod + 1)
            .max()
            .unwrap_or(0)
    }

    /// Ids of all nodes of a tier.
    pub fn of_tier(&self, tier: Tier) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.tier == tier)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of ports each node needs (max port index + 1 over links).
    pub fn port_count(&self, node: usize) -> u16 {
        let mut max = 0u16;
        for l in &self.links {
            if l.a.0 == node {
                max = max.max(l.a.1 .0 + 1);
            }
            if l.b.0 == node {
                max = max.max(l.b.1 .0 + 1);
            }
        }
        max
    }

    /// The server node ids under a given ToR id, in port order.
    pub fn servers_of_tor(&self, tor: usize) -> Vec<usize> {
        let mut out: Vec<(PortId, usize)> = self
            .links
            .iter()
            .filter_map(|l| {
                if l.a.0 == tor && self.nodes[l.b.0].tier == Tier::Server {
                    Some((l.a.1, l.b.0))
                } else if l.b.0 == tor && self.nodes[l.a.0].tier == Tier::Server {
                    Some((l.b.1, l.a.0))
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out.into_iter().map(|(_, s)| s).collect()
    }

    /// The ToR id a server connects to.
    pub fn tor_of_server(&self, server: usize) -> usize {
        for l in &self.links {
            if l.a.0 == server && self.nodes[l.b.0].tier == Tier::Tor {
                return l.b.0;
            }
            if l.b.0 == server && self.nodes[l.a.0].tier == Tier::Tor {
                return l.a.0;
            }
        }
        panic!("server {server} has no ToR link");
    }
}

/// A pod-granular shard plan over a [`Topology`]: every node is
/// assigned to exactly one shard, and the plan is the *only* input the
/// sharded cluster builder needs — which worlds to build, where each
/// node lives, and which links become cross-shard boundary links.
///
/// Assignment rule:
/// - The effective shard count is `min(requested, pods)` — a pod is
///   never split, so a 1-pod topology collapses to one shard no matter
///   what was requested (this is what lets the golden single-pod fabric
///   re-pin its digest under any `Sharded { shards: N }`).
/// - Pod `p` (and every host/ToR/leaf in it) goes to shard
///   `p * eff / pods` — contiguous pod ranges, sizes differing by at
///   most one pod.
/// - Spines (pod = `u32::MAX`) are *owned*, not replicated: spine
///   ordinal `s` goes to shard `s % eff`, spreading the spine layer's
///   event load round-robin. Leaf↔spine links whose endpoints land on
///   different shards become explicit cross-shard links.
#[derive(Debug, Clone)]
pub struct Partition {
    shard_of: Vec<u32>,
    shards: u32,
}

impl Partition {
    /// The trivial plan: every node on shard 0.
    pub fn single(topo: &Topology) -> Partition {
        Partition {
            shard_of: vec![0; topo.nodes.len()],
            shards: 1,
        }
    }

    /// Pod-granular plan over (at most) `shards` shards; see the type
    /// docs for the assignment rule.
    pub fn pods(topo: &Topology, shards: u32) -> Partition {
        let pods = topo.pod_count();
        let eff = shards.max(1).min(pods.max(1));
        if eff <= 1 {
            return Partition::single(topo);
        }
        let mut spine_ordinal = 0u32;
        let shard_of = topo
            .nodes
            .iter()
            .map(|n| {
                if n.pod == u32::MAX {
                    let s = spine_ordinal % eff;
                    spine_ordinal += 1;
                    s
                } else {
                    // Contiguous pod ranges: pods 0..pods map onto
                    // 0..eff monotonically, never splitting a pod.
                    (n.pod as u64 * eff as u64 / pods as u64) as u32
                }
            })
            .collect();
        Partition {
            shard_of,
            shards: eff,
        }
    }

    /// Effective number of shards (≥ 1).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Shard owning topology node `node`.
    pub fn shard_of(&self, node: usize) -> u32 {
        self.shard_of[node]
    }

    /// Does `link` cross a shard boundary under this plan?
    pub fn is_cross(&self, link: &TopoLink) -> bool {
        self.shard_of[link.a.0] != self.shard_of[link.b.0]
    }

    /// The links that cross shard boundaries (topology order).
    pub fn cross_links<'a>(&'a self, topo: &'a Topology) -> impl Iterator<Item = &'a TopoLink> {
        topo.links.iter().filter(|l| self.is_cross(l))
    }

    /// Dense per-shard renumbering: element `i` is node `i`'s index
    /// within its own shard's world (nodes of a shard keep topology
    /// order). The sharded builder adds nodes in topology order, so
    /// this is exactly the `NodeId` each node receives there.
    pub fn local_index(&self) -> Vec<u32> {
        let mut next = vec![0u32; self.shards as usize];
        self.shard_of
            .iter()
            .map(|&s| {
                let i = next[s as usize];
                next[s as usize] += 1;
                i
            })
            .collect()
    }

    /// Node count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards as usize];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_full_scale_counts() {
        // The paper: "A podset is composed of 4 Leaf switches, 24 ToR
        // switches, and 576 servers … The 4 Leaf switches connect to a
        // total of 64 Spine switches."
        let spec = ClosSpec::uniform_40g(2, 24, 4, 64, 24);
        let t = Topology::clos(&spec);
        assert_eq!(t.of_tier(Tier::Server).len(), 1152);
        assert_eq!(t.of_tier(Tier::Tor).len(), 48);
        assert_eq!(t.of_tier(Tier::Leaf).len(), 8);
        assert_eq!(t.of_tier(Tier::Spine).len(), 64);
        // "The oversubscription ratios at the ToR and the Leaf are 6:1
        // and 3:2, respectively."
        assert!((spec.tor_oversubscription() - 6.0).abs() < 1e-9);
        assert!((spec.leaf_oversubscription() - 1.5).abs() < 1e-9);
        // Aggregate podset↔spine bandwidth = 64 × 4 × ... per paper:
        // 64 uplinks per podset × 40G = 2.56 Tb/s.
        let per_podset_uplinks = 4 * 64;
        assert_eq!(
            per_podset_uplinks as u64 * 40_000_000_000 / 4,
            2_560_000_000_000
        );
    }

    #[test]
    fn addressing_is_unique_and_structured() {
        let t = Topology::clos(&ClosSpec::uniform_40g(2, 3, 2, 4, 5));
        let mut ips: Vec<u32> = t.nodes.iter().filter_map(|n| n.ip).collect();
        let before = ips.len();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), before, "duplicate server IPs");
        assert_eq!(server_ip(1, 2, 0), 0x0a010201);
        assert_eq!(tor_subnet(1, 2), 0x0a010200);
    }

    #[test]
    fn every_link_endpoint_port_is_consistent() {
        let t = Topology::clos(&ClosSpec::uniform_40g(2, 3, 2, 4, 5));
        // No two links share a (node, port) endpoint.
        let mut seen = std::collections::HashSet::new();
        for l in &t.links {
            assert!(seen.insert(l.a), "duplicate endpoint {:?}", l.a);
            assert!(seen.insert(l.b), "duplicate endpoint {:?}", l.b);
        }
    }

    #[test]
    fn tor_routes_cover_own_subnet_and_default_up() {
        let spec = ClosSpec::uniform_40g(1, 2, 2, 2, 3);
        let t = Topology::clos(&spec);
        let tor0 = t.of_tier(Tier::Tor)[0];
        let routes = &t.routes[tor0];
        assert!(routes
            .iter()
            .any(|r| matches!(r, RouteSpec::Connected { len: 24, .. })));
        let up = routes.iter().find_map(|r| match r {
            RouteSpec::Via { len: 8, ports, .. } => Some(ports.len()),
            _ => None,
        });
        assert_eq!(up, Some(2), "default route ECMPs over both leaves");
    }

    #[test]
    fn leaf_uplinks_are_one_plane() {
        let spec = ClosSpec::uniform_40g(2, 2, 2, 4, 2);
        let t = Topology::clos(&spec);
        let leaf0 = t.of_tier(Tier::Leaf)[0];
        let up = t.routes[leaf0].iter().find_map(|r| match r {
            RouteSpec::Via { len: 8, ports, .. } => Some(ports.len()),
            _ => None,
        });
        assert_eq!(up, Some(2), "2 spines per plane");
    }

    #[test]
    fn spine_routes_per_pod() {
        let spec = ClosSpec::uniform_40g(2, 2, 2, 4, 2);
        let t = Topology::clos(&spec);
        let spine0 = t.of_tier(Tier::Spine)[0];
        assert_eq!(t.routes[spine0].len(), 2, "one /16 per pod");
        for r in &t.routes[spine0] {
            match r {
                RouteSpec::Via { len: 16, ports, .. } => assert_eq!(ports.len(), 1),
                other => panic!("unexpected spine route {other:?}"),
            }
        }
    }

    #[test]
    fn server_tor_helpers() {
        let t = Topology::clos(&ClosSpec::uniform_40g(1, 2, 1, 1, 3));
        let tors = t.of_tier(Tier::Tor);
        for tor in tors {
            let servers = t.servers_of_tor(tor);
            assert_eq!(servers.len(), 3);
            for s in servers {
                assert_eq!(t.tor_of_server(s), tor);
            }
        }
    }

    #[test]
    fn partition_is_pod_granular_and_total() {
        let spec = ClosSpec::uniform_40g(4, 2, 2, 4, 3);
        let t = Topology::clos(&spec);
        let p = Partition::pods(&t, 2);
        assert_eq!(p.shards(), 2);
        // Every non-spine node follows its pod; pods 0–1 → shard 0,
        // pods 2–3 → shard 1 (contiguous, never splitting a pod).
        for (i, n) in t.nodes.iter().enumerate() {
            if n.pod != u32::MAX {
                assert_eq!(p.shard_of(i), n.pod * 2 / 4, "node {}", n.name);
            }
        }
        // Spines round-robin across both shards.
        let spines = t.of_tier(Tier::Spine);
        let on_shard1 = spines.iter().filter(|&&s| p.shard_of(s) == 1).count();
        assert_eq!(on_shard1, spines.len() / 2);
        // Sizes cover every node exactly once.
        assert_eq!(p.shard_sizes().iter().sum::<usize>(), t.nodes.len());
    }

    #[test]
    fn partition_collapses_to_pod_count() {
        let t = Topology::clos(&ClosSpec::uniform_40g(2, 2, 2, 4, 3));
        // More shards requested than pods exist: clamp to 2.
        let p = Partition::pods(&t, 16);
        assert_eq!(p.shards(), 2);
        // Single-pod topology collapses to one shard for ANY request —
        // the golden-fabric guarantee.
        let t1 = Topology::clos(&ClosSpec::uniform_40g(1, 4, 2, 4, 3));
        for n in [1, 2, 4, 8] {
            let p = Partition::pods(&t1, n);
            assert_eq!(p.shards(), 1);
            assert_eq!(p.cross_links(&t1).count(), 0);
        }
    }

    #[test]
    fn only_leaf_spine_links_cross() {
        let t = Topology::clos(&ClosSpec::uniform_40g(4, 2, 2, 4, 3));
        let p = Partition::pods(&t, 4);
        assert!(p.cross_links(&t).count() > 0);
        for l in p.cross_links(&t) {
            let tiers = (t.nodes[l.a.0].tier, t.nodes[l.b.0].tier);
            assert!(
                matches!(tiers, (Tier::Leaf, Tier::Spine) | (Tier::Spine, Tier::Leaf)),
                "unexpected cross-shard link {:?}",
                tiers
            );
        }
    }

    #[test]
    fn local_indices_are_dense_per_shard() {
        let t = Topology::clos(&ClosSpec::uniform_40g(4, 2, 2, 4, 3));
        let p = Partition::pods(&t, 3);
        let local = p.local_index();
        let sizes = p.shard_sizes();
        let mut seen: Vec<Vec<bool>> = sizes.iter().map(|&n| vec![false; n]).collect();
        for (node, &l) in local.iter().enumerate() {
            let s = p.shard_of(node) as usize;
            assert!(!seen[s][l as usize], "duplicate local index");
            seen[s][l as usize] = true;
        }
        assert!(seen.iter().flatten().all(|&b| b), "gaps in local indices");
    }

    #[test]
    fn port_counts_match_radix() {
        let spec = ClosSpec::uniform_40g(2, 3, 2, 4, 5);
        let t = Topology::clos(&spec);
        let tor = t.of_tier(Tier::Tor)[0];
        assert_eq!(t.port_count(tor), (5 + 2) as u16);
        let leaf = t.of_tier(Tier::Leaf)[0];
        assert_eq!(t.port_count(leaf), (3 + 4 / 2) as u16);
        let spine = t.of_tier(Tier::Spine)[0];
        assert_eq!(t.port_count(spine), 2, "one port per pod");
        let server = t.of_tier(Tier::Server)[0];
        assert_eq!(t.port_count(server), 1);
    }
}
