//! RoCEv2 Reliable Connected (RC) transport as a pure state machine.
//!
//! This crate implements the RDMA transport protocol the paper's NICs run
//! in firmware: work queues, message segmentation to MTU-sized packets,
//! PSN sequencing, ACK/NAK generation, and — centrally for §4.1 — the
//! **loss recovery scheme**, selectable between:
//!
//! * [`LossRecovery::GoBack0`]: the vendor's original scheme. On a NAK the
//!   *whole message* restarts from its first packet and the receiver
//!   discards partial reassembly. Under the paper's deterministic 1/256
//!   drop filter "one packet of the first 256 packets will be dropped.
//!   Then the sender will restart from the first packet, again and again,
//!   without making any progress" — livelock at full line rate.
//! * [`LossRecovery::GoBackN`]: the fix the paper deployed. Retransmission
//!   resumes from the first dropped packet; previously received packets
//!   are not resent. "Go-back-N is almost as simple as go-back-0, and it
//!   avoids livelock."
//! * [`LossRecovery::SelectiveRepeat`]: the IRN-style scheme ("Revisiting
//!   Network Support for RDMA", Mittal et al.) that the paper's go-back-N
//!   choice is measured against. The responder buffers out-of-order
//!   packets and NAKs each missing PSN exactly once; the requester keeps a
//!   retransmit bitmap and resends only what was lost, so retransmitted
//!   byte volume stays a small constant factor of the drop count instead
//!   of a whole window per loss.
//!
//! A [`QpEndpoint`] contains both halves of one end of a queue pair: the
//! requester (transmit PSN space: SEND/WRITE data, READ requests, READ
//! response streams) and the responder (receive PSN space: in-order
//! delivery, ACK coalescing, NAK arming). The state machine is pure: time
//! enters as arguments, packets leave as [`PacketDesc`] values, and the
//! NIC adapter in `rocescale-nic` does all the I/O — the smoltcp pattern,
//! which lets the livelock dynamics be unit-tested right here with a
//! scripted lossy channel.
//!
//! ## Simplifications (documented deviations from IBTA RC)
//!
//! * PSNs are a 32-bit monotone space instead of 24-bit modular; wrap
//!   handling is out of scope (no experiment sends 2³² packets on one QP).
//! * READ responses are ACKed by the requester like ordinary data and
//!   recovered by the responder's go-back machinery, instead of the
//!   requester re-issuing partial READs. The loss-recovery dynamics under
//!   study are identical.
//! * RNR flows, atomics, and immediate data are not modelled — the paper
//!   does not exercise them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod endpoint;

pub use endpoint::{
    Completion, LossRecovery, PacketDesc, QpConfig, QpEndpoint, QpStats, TransportEvent, Verb, WrId,
};
