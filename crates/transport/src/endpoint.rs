//! The RC queue-pair endpoint state machine.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rocescale_packet::RoceOpcode;

/// Loss recovery scheme (§4.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossRecovery {
    /// Restart the whole message on NAK (the vendor's original scheme;
    /// livelocks under deterministic loss).
    GoBack0,
    /// Resume from the first lost packet (the paper's fix).
    GoBackN,
    /// IRN-style selective repeat (Mittal et al., "Revisiting Network
    /// Support for RDMA"): the responder buffers out-of-order packets and
    /// NAKs each missing PSN exactly once; the requester retransmits only
    /// the NAK'd PSNs, tracked in a retransmit bitmap. RTO still covers
    /// tail loss by re-queuing everything outstanding.
    SelectiveRepeat,
}

/// Work request identifier chosen by the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WrId(pub u64);

/// An RDMA verb posted to the send queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Two-sided send of `len` bytes.
    Send {
        /// Message length in bytes.
        len: u32,
    },
    /// One-sided RDMA write of `len` bytes.
    Write {
        /// Message length in bytes.
        len: u32,
    },
    /// One-sided RDMA read of `len` bytes from the peer.
    Read {
        /// Requested length in bytes.
        len: u32,
    },
}

/// Completion delivered to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// A SEND or WRITE message was fully acknowledged.
    SendDone {
        /// The posting work request.
        wr: WrId,
    },
    /// A READ response message fully arrived.
    ReadDone {
        /// The posting work request.
        wr: WrId,
        /// Bytes read.
        len: u32,
    },
    /// A peer's SEND message fully arrived (receiver side).
    MessageReceived {
        /// Message length in bytes.
        len: u32,
    },
}

/// A notable transport-level state transition, exposed for telemetry.
///
/// Like [`PacketDesc`] control output and [`Completion`]s, these are
/// queued sans-IO: the state machine records them and the NIC adapter
/// drains them (forwarding to the metrics hub's flight recorder), so the
/// transport crate stays free of any monitoring dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportEvent {
    /// The requester rewound its send pointer (go-back-N / go-back-0).
    Rollback {
        /// What triggered it: `"nak"` or `"rto"`.
        cause: &'static str,
        /// PSN the sender rewound to.
        to_psn: u32,
        /// PSNs between the old and new send pointer — the retransmit
        /// volume this rollback commits to.
        pkts: u32,
    },
}

/// A transport packet, as produced by / consumed from the state machine.
/// The NIC adapter adds addressing (QPNs, IPs, UDP source port) when
/// materializing a wire packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketDesc {
    /// Opcode.
    pub opcode: RoceOpcode,
    /// Packet sequence number (32-bit simulator space; see crate docs).
    pub psn: u32,
    /// Payload bytes (requested length for `ReadRequest`).
    pub payload: u32,
    /// First packet of its message.
    pub is_first: bool,
    /// Last packet of its message.
    pub is_last: bool,
    /// Requester asks for an immediate ACK.
    pub ack_req: bool,
}

/// Queue pair configuration, shared by both endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpConfig {
    /// Payload bytes per data packet (the paper uses 1024).
    pub mtu_payload: u32,
    /// Loss recovery scheme.
    pub recovery: LossRecovery,
    /// The responder coalesces ACKs: one per this many in-order data
    /// packets (an ACK is always sent for a message's last packet).
    pub ack_interval: u32,
    /// Retransmission timeout: if packets are outstanding and no
    /// cumulative-ACK progress happens for this long, rewind and resend.
    /// Covers tail loss the NAK mechanism cannot see.
    pub rto_ps: u64,
    /// Send-window cap: at most this many PSNs outstanding
    /// (sent-but-unacknowledged). Real RNICs bound this by their
    /// retransmission state; `u32::MAX` disables the cap.
    pub max_outstanding: u32,
}

impl Default for QpConfig {
    fn default() -> QpConfig {
        QpConfig {
            mtu_payload: 1024,
            recovery: LossRecovery::GoBackN,
            ack_interval: 4,
            rto_ps: 500_000_000, // 500 µs ≈ a few fabric RTTs
            max_outstanding: u32::MAX,
        }
    }
}

/// In-flight PSNs whose send time is tracked for RTT sampling (more
/// outstanding packets than this simply go unsampled).
const RTT_TRACK_CAP: usize = 64;
/// Measured RTT samples buffered until the NIC drains them.
const RTT_OUT_CAP: usize = 16;

/// What a queued transmit message is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxKind {
    Send,
    Write,
    ReadRequest,
    ReadResponse,
}

#[derive(Debug, Clone, Copy)]
struct TxMsg {
    kind: TxKind,
    wr: Option<WrId>,
    len: u32,
    base_psn: u32,
    npkts: u32,
}

/// Counters exposed for monitoring and experiment assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QpStats {
    /// Data packets handed to the NIC (including retransmissions).
    pub data_pkts_tx: u64,
    /// Data payload bytes handed to the NIC (including retransmissions).
    pub data_bytes_tx: u64,
    /// In-order data packets accepted by the responder.
    pub data_pkts_rx: u64,
    /// Application payload bytes of *completed* messages delivered in
    /// order (goodput numerator).
    pub goodput_bytes: u64,
    /// Out-of-sequence packets discarded.
    pub out_of_seq_rx: u64,
    /// Duplicate packets discarded.
    pub duplicate_rx: u64,
    /// NAKs sent by the responder half.
    pub naks_tx: u64,
    /// NAKs received by the requester half.
    pub naks_rx: u64,
    /// ACKs sent.
    pub acks_tx: u64,
    /// Times the requester rewound due to RTO.
    pub rto_rewinds: u64,
    /// Messages fully acknowledged (sender side).
    pub msgs_completed: u64,
    /// Data packets transmitted more than once (subset of
    /// `data_pkts_tx`) — the waste a recovery scheme commits to.
    pub retx_pkts: u64,
    /// Payload bytes of those retransmissions (subset of
    /// `data_bytes_tx`).
    pub retx_bytes: u64,
}

/// One end of an RC queue pair: requester + responder halves.
#[derive(Debug, Clone)]
pub struct QpEndpoint {
    cfg: QpConfig,

    // ---- transmit (requester + READ-response) side ----
    msgs: VecDeque<TxMsg>,
    /// Next PSN to assign to a newly queued message.
    psn_alloc: u32,
    /// Next PSN to transmit (rewinds on NAK/RTO).
    snd_nxt: u32,
    /// Lowest unacknowledged PSN.
    snd_una: u32,
    /// Time of the last cumulative-ACK progress (or last rewind).
    last_progress_ps: u64,
    /// READ work requests awaiting their response message, FIFO.
    pending_reads: VecDeque<(WrId, u32)>,
    /// One past the highest PSN ever handed to the wire — transmissions
    /// below it are retransmissions.
    snd_max: u32,
    /// Selective repeat: NAK'd PSNs awaiting retransmission, in NAK
    /// order…
    retx_queue: VecDeque<u32>,
    /// …and the same PSNs as a membership bitmap, so a PSN is queued at
    /// most once however many signals implicate it.
    retx_bitmap: BTreeSet<u32>,
    /// Send times of in-flight PSNs awaiting an RTT sample. Karn's rule:
    /// a retransmitted PSN is evicted (its ACK would be ambiguous).
    rtt_track: VecDeque<(u32, u64)>,
    /// Measured RTT samples awaiting pickup via [`take_rtt_sample`]
    /// (QpEndpoint::take_rtt_sample), bounded.
    rtt_out: VecDeque<u64>,

    // ---- receive (responder) side ----
    /// Next expected PSN from the peer.
    rcv_nxt: u32,
    /// Whether a NAK may be sent for the current gap.
    nak_armed: bool,
    /// Selective repeat: out-of-order packets buffered until the gap
    /// fills (its key set is the receive-side bitmap).
    rx_buf: BTreeMap<u32, PacketDesc>,
    /// Selective repeat: missing PSNs already NAK'd (each is NAK'd
    /// exactly once; RTO covers a lost NAK), pruned as `rcv_nxt`
    /// advances.
    sr_naked: BTreeSet<u32>,
    /// In-order data packets since the last ACK.
    pkts_since_ack: u32,
    /// PSN of the first packet of the message currently being reassembled
    /// (go-back-0 restarts here).
    cur_msg_base: u32,
    /// Payload bytes reassembled so far of the current incoming message.
    cur_msg_bytes: u64,
    /// Kind of the current incoming message (data vs read response).
    cur_msg_is_read_resp: bool,

    // ---- outputs ----
    ctrl_out: VecDeque<PacketDesc>,
    completions: Vec<Completion>,
    events_out: VecDeque<TransportEvent>,

    /// Counters.
    pub stats: QpStats,
}

impl QpEndpoint {
    /// A fresh endpoint. Both ends of a QP must share the same `cfg`.
    pub fn new(cfg: QpConfig) -> QpEndpoint {
        QpEndpoint {
            cfg,
            msgs: VecDeque::new(),
            psn_alloc: 0,
            snd_nxt: 0,
            snd_una: 0,
            last_progress_ps: 0,
            pending_reads: VecDeque::new(),
            snd_max: 0,
            retx_queue: VecDeque::new(),
            retx_bitmap: BTreeSet::new(),
            rtt_track: VecDeque::new(),
            rtt_out: VecDeque::new(),
            rcv_nxt: 0,
            nak_armed: true,
            rx_buf: BTreeMap::new(),
            sr_naked: BTreeSet::new(),
            pkts_since_ack: 0,
            cur_msg_base: 0,
            cur_msg_bytes: 0,
            cur_msg_is_read_resp: false,
            ctrl_out: VecDeque::new(),
            completions: Vec::new(),
            events_out: VecDeque::new(),
            stats: QpStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &QpConfig {
        &self.cfg
    }

    fn pkts_for(&self, len: u32) -> u32 {
        len.div_ceil(self.cfg.mtu_payload).max(1)
    }

    /// Post a work request to the send queue.
    pub fn post(&mut self, verb: Verb, wr: WrId) {
        let (kind, len, npkts) = match verb {
            Verb::Send { len } => (TxKind::Send, len, self.pkts_for(len)),
            Verb::Write { len } => (TxKind::Write, len, self.pkts_for(len)),
            Verb::Read { len } => (TxKind::ReadRequest, len, 1),
        };
        if kind == TxKind::ReadRequest {
            self.pending_reads.push_back((wr, len));
        }
        self.msgs.push_back(TxMsg {
            kind,
            wr: Some(wr),
            len,
            base_psn: self.psn_alloc,
            npkts,
        });
        self.psn_alloc += npkts;
    }

    /// True if the data path has a packet ready to transmit: a pending
    /// selective-repeat retransmission, or fresh data the send window
    /// allows.
    pub fn has_data_tx(&self) -> bool {
        !self.retx_queue.is_empty() || self.has_fresh_tx()
    }

    fn has_fresh_tx(&self) -> bool {
        self.snd_nxt < self.psn_alloc
            && self.snd_nxt.wrapping_sub(self.snd_una) < self.cfg.max_outstanding
    }

    /// Materialize the wire packet for `psn` from its (un-completed)
    /// message.
    fn desc_for_psn(&self, psn: u32) -> PacketDesc {
        let msg = *self
            .msgs
            .iter()
            .find(|m| psn >= m.base_psn && psn < m.base_psn + m.npkts)
            .expect("psn within an un-completed message");
        let off = psn - msg.base_psn;
        let is_first = off == 0;
        let is_last = off == msg.npkts - 1;
        let payload = match msg.kind {
            TxKind::ReadRequest => msg.len,
            _ => {
                let sent = off * self.cfg.mtu_payload;
                (msg.len - sent).min(self.cfg.mtu_payload)
            }
        };
        let opcode = match msg.kind {
            TxKind::Send => RoceOpcode::Send,
            TxKind::Write => RoceOpcode::Write,
            TxKind::ReadRequest => RoceOpcode::ReadRequest,
            TxKind::ReadResponse => RoceOpcode::ReadResponse,
        };
        PacketDesc {
            opcode,
            psn,
            payload,
            is_first,
            is_last,
            ack_req: is_last,
        }
    }

    /// Transmit-side accounting shared by fresh sends and
    /// retransmissions: byte/packet counters, the retransmission subset,
    /// and the RTT sample book-keeping.
    fn count_data_tx(&mut self, desc: &PacketDesc, now_ps: u64) {
        self.stats.data_pkts_tx += 1;
        let data = desc.opcode.carries_data();
        if data {
            self.stats.data_bytes_tx += desc.payload as u64;
        }
        if desc.psn < self.snd_max {
            self.stats.retx_pkts += 1;
            if data {
                self.stats.retx_bytes += desc.payload as u64;
            }
            // Karn's rule: an ACK covering a retransmitted PSN cannot be
            // attributed to either copy — drop its pending RTT sample.
            if let Some(i) = self.rtt_track.iter().position(|&(p, _)| p == desc.psn) {
                self.rtt_track.remove(i);
            }
        } else {
            self.snd_max = desc.psn + 1;
            if self.rtt_track.len() < RTT_TRACK_CAP {
                self.rtt_track.push_back((desc.psn, now_ps));
            }
        }
    }

    /// Produce the next data packet: a queued selective-repeat
    /// retransmission if one is pending, else fresh data (advancing
    /// `snd_nxt`). `now_ps` seeds the RTO clock on the first outstanding
    /// packet.
    pub fn next_data_tx(&mut self, now_ps: u64) -> Option<PacketDesc> {
        while let Some(psn) = self.retx_queue.pop_front() {
            self.retx_bitmap.remove(&psn);
            if psn < self.snd_una {
                continue; // acknowledged while queued
            }
            let mut desc = self.desc_for_psn(psn);
            // A retransmission plugs a known hole; ask for the ACK that
            // confirms it immediately.
            desc.ack_req = true;
            self.count_data_tx(&desc, now_ps);
            return Some(desc);
        }
        if !self.has_fresh_tx() {
            return None;
        }
        let desc = self.desc_for_psn(self.snd_nxt);
        if self.snd_una == self.snd_nxt {
            // First outstanding packet: start the RTO clock fresh.
            self.last_progress_ps = now_ps;
        }
        self.snd_nxt += 1;
        self.count_data_tx(&desc, now_ps);
        Some(desc)
    }

    /// Pop a pending control packet (ACK/NAK) for transmission.
    pub fn pop_ctrl_tx(&mut self) -> Option<PacketDesc> {
        self.ctrl_out.pop_front()
    }

    /// True if control packets are pending.
    pub fn has_ctrl_tx(&self) -> bool {
        !self.ctrl_out.is_empty()
    }

    /// Drain completions accumulated since the last call.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Pop a telemetry event recorded since the last drain (rollbacks).
    pub fn pop_event(&mut self) -> Option<TransportEvent> {
        self.events_out.pop_front()
    }

    /// Feed an incoming transport packet (data or control) from the peer.
    pub fn on_packet(&mut self, desc: &PacketDesc, now_ps: u64) {
        match desc.opcode {
            RoceOpcode::Ack => self.on_ack(desc.psn, now_ps),
            RoceOpcode::Nak => self.on_nak(desc.psn, now_ps),
            RoceOpcode::Cnp => { /* handled by the NIC's DCQCN RP, not here */ }
            _ => self.on_data(desc),
        }
    }

    // ---- requester half ----

    fn on_ack(&mut self, psn: u32, now_ps: u64) {
        // Cumulative: everything through `psn` is acknowledged. Stale ACKs
        // from before a go-back-0 rewind may reference PSNs we have not
        // (re)sent yet — ignore them.
        if psn >= self.snd_nxt {
            return;
        }
        let new_una = psn + 1;
        if new_una <= self.snd_una {
            return;
        }
        self.snd_una = new_una;
        self.last_progress_ps = now_ps;
        // Harvest an RTT sample from the newest packet this ACK covers
        // (untouched by Karn eviction), and retire the older entries.
        let mut newest_sent = None;
        while let Some(&(p, sent)) = self.rtt_track.front() {
            if p >= self.snd_una {
                break;
            }
            newest_sent = Some(sent);
            self.rtt_track.pop_front();
        }
        if let Some(sent) = newest_sent {
            if self.rtt_out.len() < RTT_OUT_CAP {
                self.rtt_out.push_back(now_ps.saturating_sub(sent));
            }
        }
        // Selective repeat: retransmissions the ACK made moot.
        if !self.retx_queue.is_empty() {
            let una = self.snd_una;
            self.retx_queue.retain(|&p| p >= una);
            self.retx_bitmap.retain(|&p| p >= una);
        }
        self.complete_acked_msgs();
    }

    /// Pop a measured round-trip time (send→cumulative-ACK, picoseconds),
    /// for delay-based congestion control. Samples follow Karn's rule:
    /// retransmitted PSNs never produce one.
    pub fn take_rtt_sample(&mut self) -> Option<u64> {
        self.rtt_out.pop_front()
    }

    fn complete_acked_msgs(&mut self) {
        while let Some(m) = self.msgs.front() {
            if self.snd_una < m.base_psn + m.npkts {
                break;
            }
            let m = self.msgs.pop_front().expect("checked front");
            self.stats.msgs_completed += 1;
            match m.kind {
                TxKind::Send | TxKind::Write => {
                    if let Some(wr) = m.wr {
                        self.completions.push(Completion::SendDone { wr });
                    }
                }
                // READ requests complete when the response arrives, READ
                // responses complete nothing on the responder.
                TxKind::ReadRequest | TxKind::ReadResponse => {}
            }
        }
    }

    fn on_nak(&mut self, psn: u32, now_ps: u64) {
        // Stale NAK (references a PSN we have not re-sent after a rewind).
        if psn >= self.snd_nxt {
            return;
        }
        self.stats.naks_rx += 1;
        let target = match self.cfg.recovery {
            // Selective repeat: no rewind — queue exactly this PSN for
            // retransmission (once, however many NAKs implicate it).
            LossRecovery::SelectiveRepeat => {
                if psn >= self.snd_una && self.retx_bitmap.insert(psn) {
                    self.retx_queue.push_back(psn);
                    self.events_out.push_back(TransportEvent::Rollback {
                        cause: "nak",
                        to_psn: psn,
                        pkts: 1,
                    });
                }
                self.last_progress_ps = now_ps;
                return;
            }
            LossRecovery::GoBackN => psn.max(self.snd_una),
            // Go-back-0: restart the message containing `psn` from its
            // first packet. The responder NAKs the message base and has
            // discarded its partial reassembly, so un-acknowledge the
            // whole message too. A NAK for a PSN inside an already
            // completed message is stale — ignore it rather than rewind
            // into acknowledged space.
            LossRecovery::GoBack0 => {
                let Some(base) = self
                    .msgs
                    .iter()
                    .find(|m| psn >= m.base_psn && psn < m.base_psn + m.npkts)
                    .map(|m| m.base_psn)
                else {
                    return;
                };
                self.snd_una = self.snd_una.min(base);
                base
            }
        };
        if target < self.snd_nxt {
            self.events_out.push_back(TransportEvent::Rollback {
                cause: "nak",
                to_psn: target,
                pkts: self.snd_nxt - target,
            });
            self.snd_nxt = target;
        }
        self.last_progress_ps = now_ps;
    }

    /// RTO check; call periodically. Returns true if a rewind happened
    /// (the caller should restart its transmit pump).
    pub fn check_timeout(&mut self, now_ps: u64) -> bool {
        let outstanding = self.snd_una < self.snd_nxt;
        if !outstanding {
            return false;
        }
        if now_ps.saturating_sub(self.last_progress_ps) < self.cfg.rto_ps {
            return false;
        }
        self.stats.rto_rewinds += 1;
        self.last_progress_ps = now_ps;
        let target = match self.cfg.recovery {
            // Selective repeat: no rewind — requeue everything
            // outstanding (tail loss means the NAK/ACK dialogue stalled,
            // possibly because a NAK itself was lost).
            LossRecovery::SelectiveRepeat => {
                for psn in self.snd_una..self.snd_nxt {
                    if self.retx_bitmap.insert(psn) {
                        self.retx_queue.push_back(psn);
                    }
                }
                self.events_out.push_back(TransportEvent::Rollback {
                    cause: "rto",
                    to_psn: self.snd_una,
                    pkts: self.snd_nxt - self.snd_una,
                });
                return true;
            }
            LossRecovery::GoBackN => self.snd_una,
            LossRecovery::GoBack0 => {
                let base = self
                    .msgs
                    .iter()
                    .find(|m| self.snd_una >= m.base_psn && self.snd_una < m.base_psn + m.npkts)
                    .map(|m| m.base_psn)
                    .unwrap_or(self.snd_una);
                self.snd_una = self.snd_una.min(base);
                base
            }
        };
        self.events_out.push_back(TransportEvent::Rollback {
            cause: "rto",
            to_psn: target,
            pkts: self.snd_nxt.saturating_sub(target),
        });
        self.snd_nxt = target;
        true
    }

    /// Earliest time `check_timeout` could fire, if packets are
    /// outstanding.
    pub fn rto_deadline_ps(&self) -> Option<u64> {
        (self.snd_una < self.snd_nxt).then_some(self.last_progress_ps + self.cfg.rto_ps)
    }

    // ---- responder half ----

    fn on_data(&mut self, desc: &PacketDesc) {
        if self.cfg.recovery == LossRecovery::SelectiveRepeat {
            self.on_data_sr(desc);
        } else if desc.psn == self.rcv_nxt {
            self.accept_in_order(desc);
        } else if desc.psn > self.rcv_nxt {
            // Gap: the expected packet was lost. NAK once per gap; re-arm
            // on progress.
            self.stats.out_of_seq_rx += 1;
            if self.nak_armed {
                self.nak_armed = false;
                let nak_psn = match self.cfg.recovery {
                    LossRecovery::GoBackN => self.rcv_nxt,
                    // Go-back-0: request a whole-message restart and
                    // discard partial reassembly, so the retransmitted
                    // packets are consumed as fresh data (this is what
                    // makes the deterministic 1/256 drop filter lethal).
                    LossRecovery::GoBack0 => {
                        self.rcv_nxt = self.cur_msg_base;
                        self.cur_msg_bytes = 0;
                        self.pkts_since_ack = 0;
                        self.cur_msg_base
                    }
                    LossRecovery::SelectiveRepeat => {
                        unreachable!("selective repeat handled by on_data_sr")
                    }
                };
                self.stats.naks_tx += 1;
                self.ctrl_out.push_back(PacketDesc {
                    opcode: RoceOpcode::Nak,
                    psn: nak_psn,
                    payload: 0,
                    is_first: true,
                    is_last: true,
                    ack_req: false,
                });
            }
        } else {
            // Duplicate from a go-back overlap; drop silently (the
            // cumulative ACK of in-order traffic keeps the sender moving).
            self.stats.duplicate_rx += 1;
        }
    }

    /// Selective-repeat responder: buffer out-of-order arrivals and NAK
    /// every missing PSN exactly once; the retransmission that plugs the
    /// gap drains the buffer through the normal in-order path.
    fn on_data_sr(&mut self, desc: &PacketDesc) {
        if desc.psn == self.rcv_nxt {
            self.accept_in_order(desc);
            // The gap closed: consume everything now consecutive.
            while let Some(d) = self.rx_buf.remove(&self.rcv_nxt) {
                self.accept_in_order(&d);
            }
            // NAK-bitmap entries below the new edge are history.
            while let Some(&p) = self.sr_naked.first() {
                if p >= self.rcv_nxt {
                    break;
                }
                self.sr_naked.remove(&p);
            }
        } else if desc.psn > self.rcv_nxt {
            if self.rx_buf.contains_key(&desc.psn) {
                self.stats.duplicate_rx += 1;
                return;
            }
            self.stats.out_of_seq_rx += 1;
            self.rx_buf.insert(desc.psn, *desc);
            // NAK each PSN this arrival proves missing, exactly once. A
            // lost NAK is covered by the sender's RTO, not repetition.
            for psn in self.rcv_nxt..desc.psn {
                if !self.rx_buf.contains_key(&psn) && self.sr_naked.insert(psn) {
                    self.stats.naks_tx += 1;
                    self.ctrl_out.push_back(PacketDesc {
                        opcode: RoceOpcode::Nak,
                        psn,
                        payload: 0,
                        is_first: true,
                        is_last: true,
                        ack_req: false,
                    });
                }
            }
        } else {
            self.stats.duplicate_rx += 1;
        }
    }

    fn accept_in_order(&mut self, desc: &PacketDesc) {
        self.rcv_nxt += 1;
        self.nak_armed = true;
        self.stats.data_pkts_rx += 1;
        if desc.is_first {
            debug_assert_eq!(
                desc.psn, self.cur_msg_base,
                "a message's first packet arrives exactly at the tracked base"
            );
            self.cur_msg_bytes = 0;
            self.cur_msg_is_read_resp = desc.opcode == RoceOpcode::ReadResponse;
        }
        match desc.opcode {
            RoceOpcode::ReadRequest => {
                // Serve the read: queue a response message on our transmit
                // PSN space.
                self.msgs.push_back(TxMsg {
                    kind: TxKind::ReadResponse,
                    wr: None,
                    len: desc.payload,
                    base_psn: self.psn_alloc,
                    npkts: self.pkts_for(desc.payload),
                });
                self.psn_alloc += self.pkts_for(desc.payload);
            }
            RoceOpcode::Send | RoceOpcode::Write | RoceOpcode::ReadResponse => {
                self.cur_msg_bytes += desc.payload as u64;
                if desc.is_last {
                    self.stats.goodput_bytes += self.cur_msg_bytes;
                    if desc.opcode == RoceOpcode::ReadResponse {
                        if let Some((wr, len)) = self.pending_reads.pop_front() {
                            self.completions.push(Completion::ReadDone { wr, len });
                        }
                    } else if desc.opcode == RoceOpcode::Send {
                        self.completions.push(Completion::MessageReceived {
                            len: self.cur_msg_bytes as u32,
                        });
                    }
                }
            }
            RoceOpcode::Ack | RoceOpcode::Nak | RoceOpcode::Cnp => {
                unreachable!("control handled above")
            }
        }
        // Message boundary: the next message starts at the next expected
        // PSN. Keeping this tracked even before its first packet arrives
        // is what lets go-back-0 NAK the right base when a message's
        // *first* packet is the one lost.
        if desc.is_last {
            self.cur_msg_base = self.rcv_nxt;
        }
        // ACK policy: every `ack_interval` packets, on explicit request,
        // and always at message end.
        self.pkts_since_ack += 1;
        if desc.ack_req || desc.is_last || self.pkts_since_ack >= self.cfg.ack_interval {
            self.emit_ack();
        }
    }

    fn emit_ack(&mut self) {
        self.pkts_since_ack = 0;
        self.stats.acks_tx += 1;
        self.ctrl_out.push_back(PacketDesc {
            opcode: RoceOpcode::Ack,
            psn: self.rcv_nxt - 1,
            payload: 0,
            is_first: true,
            is_last: true,
            ack_req: false,
        });
    }

    /// Goodput numerator: payload bytes of fully received messages.
    pub fn goodput_bytes(&self) -> u64 {
        self.stats.goodput_bytes
    }

    /// Sender-side: messages still queued or in flight.
    pub fn pending_msgs(&self) -> usize {
        self.msgs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB4: u32 = 4 << 20;

    fn pair(recovery: LossRecovery) -> (QpEndpoint, QpEndpoint) {
        let cfg = QpConfig {
            recovery,
            ..QpConfig::default()
        };
        (QpEndpoint::new(cfg), QpEndpoint::new(cfg))
    }

    /// Run a lossy in-order channel between two endpoints until quiescent
    /// or `max_steps`. `drop_nth` drops every nth *transmitted* data
    /// packet (1-based count across the whole run), mimicking the paper's
    /// deterministic IP-ID filter. Returns transmitted data packet count.
    fn run_channel(a: &mut QpEndpoint, b: &mut QpEndpoint, drop_every: u64, max_steps: u64) -> u64 {
        let mut now = 0u64;
        let mut tx_count = 0u64;
        for _ in 0..max_steps {
            now += 1_000_000; // 1 µs per exchange round
            let mut progressed = false;
            // a -> b : one data packet per round (plus all control).
            if let Some(d) = a.next_data_tx(now) {
                tx_count += 1;
                progressed = true;
                if drop_every == 0 || !tx_count.is_multiple_of(drop_every) {
                    b.on_packet(&d, now);
                }
            }
            while let Some(c) = a.pop_ctrl_tx() {
                b.on_packet(&c, now);
                progressed = true;
            }
            // b -> a : control only in these tests.
            while let Some(c) = b.pop_ctrl_tx() {
                a.on_packet(&c, now);
                progressed = true;
            }
            if let Some(d) = b.next_data_tx(now) {
                a.on_packet(&d, now);
                progressed = true;
            }
            if a.check_timeout(now) || b.check_timeout(now) {
                progressed = true;
            }
            // Idle with nothing outstanding ⇒ quiescent. (Outstanding
            // data with nothing to send is *not* quiescent: selective
            // repeat sits idle until its RTO re-queues a lost tail.)
            if !progressed
                && !a.has_data_tx()
                && !b.has_data_tx()
                && a.rto_deadline_ps().is_none()
                && b.rto_deadline_ps().is_none()
            {
                break;
            }
        }
        tx_count
    }

    #[test]
    fn lossless_send_completes() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 10_000 }, WrId(1));
        run_channel(&mut a, &mut b, 0, 100);
        assert_eq!(
            a.take_completions(),
            vec![Completion::SendDone { wr: WrId(1) }]
        );
        let rx = b.take_completions();
        assert_eq!(rx, vec![Completion::MessageReceived { len: 10_000 }]);
        assert_eq!(b.goodput_bytes(), 10_000);
        // 10 packets: 9 full + 1 of 784 bytes.
        assert_eq!(a.stats.data_pkts_tx, 10);
        assert_eq!(b.stats.data_pkts_rx, 10);
        assert_eq!(b.stats.naks_tx, 0);
    }

    #[test]
    fn segmentation_boundaries() {
        let (mut a, _b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 2048 }, WrId(1)); // exactly 2 packets
        a.post(Verb::Send { len: 1 }, WrId(2)); // 1 packet
        a.post(Verb::Send { len: 2049 }, WrId(3)); // 3 packets
        let d0 = a.next_data_tx(0).unwrap();
        assert!(d0.is_first && !d0.is_last && d0.payload == 1024);
        let d1 = a.next_data_tx(0).unwrap();
        assert!(!d1.is_first && d1.is_last && d1.payload == 1024 && d1.ack_req);
        let d2 = a.next_data_tx(0).unwrap();
        assert!(d2.is_first && d2.is_last && d2.payload == 1);
        let d3 = a.next_data_tx(0).unwrap();
        assert!(d3.is_first && !d3.is_last);
        let d4 = a.next_data_tx(0).unwrap();
        assert!(!d4.is_first && !d4.is_last);
        let d5 = a.next_data_tx(0).unwrap();
        assert!(d5.is_last && d5.payload == 1);
        assert_eq!(a.next_data_tx(0), None);
        // PSNs are consecutive across messages.
        assert_eq!(
            [d0.psn, d1.psn, d2.psn, d3.psn, d4.psn, d5.psn],
            [0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn single_loss_recovers_with_goback_n() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 100 * 1024 }, WrId(1)); // 100 packets
        let tx = run_channel(&mut a, &mut b, 50, 10_000); // drop every 50th
        assert_eq!(b.goodput_bytes(), 100 * 1024);
        assert!(a
            .take_completions()
            .contains(&Completion::SendDone { wr: WrId(1) }));
        assert!(b.stats.naks_tx > 0, "losses must trigger NAKs");
        // Go-back-N wastes some transmissions but far fewer than 2x.
        assert!(tx < 250, "tx = {tx}");
    }

    /// §4.1: the livelock experiment. 4 MB messages, every 256th
    /// transmitted packet dropped. Go-back-0 makes zero progress while the
    /// link stays busy; go-back-N completes.
    #[test]
    fn goback0_livelocks_goback_n_does_not() {
        // Go-back-0: transmit 100k packets, complete nothing.
        let (mut a, mut b) = pair(LossRecovery::GoBack0);
        a.post(Verb::Send { len: MB4 }, WrId(1));
        let tx = run_channel(&mut a, &mut b, 256, 100_000);
        assert!(tx >= 90_000, "link stays busy, tx = {tx}");
        assert_eq!(b.goodput_bytes(), 0, "go-back-0 must make no progress");
        assert_eq!(a.stats.msgs_completed, 0);

        // Go-back-N: same loss pattern, message completes.
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: MB4 }, WrId(1));
        let tx = run_channel(&mut a, &mut b, 256, 100_000);
        assert_eq!(b.goodput_bytes(), MB4 as u64);
        // 4096 data packets + modest retransmission overhead.
        assert!(tx < 4096 * 2, "tx = {tx}");
    }

    #[test]
    fn tail_loss_recovered_by_rto() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 4096 }, WrId(1)); // 4 packets
                                                   // Drop the 4th (last) packet: no later packet will reveal the gap.
        let mut now = 0u64;
        for i in 0..4 {
            let d = a.next_data_tx(now).unwrap();
            if i != 3 {
                b.on_packet(&d, now);
            }
            now += 1000;
        }
        while let Some(c) = b.pop_ctrl_tx() {
            a.on_packet(&c, now);
        }
        assert!(a.take_completions().is_empty());
        // Nothing happens until RTO fires.
        now += a.config().rto_ps + 1;
        assert!(a.check_timeout(now));
        assert_eq!(a.stats.rto_rewinds, 1);
        // No ACK ever advanced snd_una (coalescing: fewer than
        // `ack_interval` packets arrived), so the rewind goes back to 0;
        // the receiver discards the three duplicates and accepts PSN 3.
        for expect_psn in 0..4 {
            let d = a.next_data_tx(now).unwrap();
            assert_eq!(d.psn, expect_psn);
            b.on_packet(&d, now);
        }
        assert_eq!(b.stats.duplicate_rx, 3);
        while let Some(c) = b.pop_ctrl_tx() {
            a.on_packet(&c, now);
        }
        assert_eq!(
            a.take_completions(),
            vec![Completion::SendDone { wr: WrId(1) }]
        );
        assert_eq!(b.goodput_bytes(), 4096);
    }

    #[test]
    fn read_roundtrip() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Read { len: 8000 }, WrId(9));
        run_channel(&mut a, &mut b, 0, 200);
        let done = a.take_completions();
        assert_eq!(
            done,
            vec![Completion::ReadDone {
                wr: WrId(9),
                len: 8000
            }]
        );
        assert_eq!(a.goodput_bytes(), 8000, "response bytes land at requester");
        // The responder transmitted the 8 response packets.
        assert_eq!(b.stats.data_pkts_tx, 8);
    }

    #[test]
    fn read_with_loss_recovers() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Read { len: 64 * 1024 }, WrId(9));
        run_channel(&mut a, &mut b, 7, 10_000);
        assert_eq!(
            a.take_completions(),
            vec![Completion::ReadDone {
                wr: WrId(9),
                len: 64 * 1024
            }]
        );
    }

    #[test]
    fn pipelined_messages_complete_in_order() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        for i in 0..10 {
            a.post(Verb::Write { len: 5000 }, WrId(i));
        }
        run_channel(&mut a, &mut b, 0, 1000);
        let wrs: Vec<_> = a
            .take_completions()
            .into_iter()
            .map(|c| match c {
                Completion::SendDone { wr } => wr.0,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(wrs, (0..10).collect::<Vec<_>>());
        assert_eq!(b.goodput_bytes(), 50_000);
    }

    #[test]
    fn duplicates_are_counted_not_delivered() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 3000 }, WrId(1));
        let d0 = a.next_data_tx(0).unwrap();
        b.on_packet(&d0, 0);
        b.on_packet(&d0, 0); // duplicate
        assert_eq!(b.stats.duplicate_rx, 1);
        assert_eq!(b.stats.data_pkts_rx, 1);
    }

    #[test]
    fn nak_not_spammed_for_one_gap() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 20 * 1024 }, WrId(1));
        // Drop packet 0; deliver packets 1..10 — only one NAK for the gap.
        let _lost = a.next_data_tx(0).unwrap();
        for _ in 1..10 {
            let d = a.next_data_tx(0).unwrap();
            b.on_packet(&d, 0);
        }
        assert_eq!(b.stats.naks_tx, 1);
        assert_eq!(b.stats.out_of_seq_rx, 9);
    }

    #[test]
    fn send_window_caps_outstanding() {
        let cfg = QpConfig {
            max_outstanding: 8,
            ..QpConfig::default()
        };
        let mut a = QpEndpoint::new(cfg);
        let mut b = QpEndpoint::new(cfg);
        a.post(Verb::Send { len: 100 * 1024 }, WrId(1)); // 100 packets
                                                         // Unacknowledged, the sender stalls at exactly the window.
        let mut sent = 0;
        while let Some(_d) = a.next_data_tx(0) {
            sent += 1;
        }
        assert_eq!(sent, 8, "window must cap outstanding PSNs");
        assert!(!a.has_data_tx());
        // ACK progress reopens the window, and the transfer completes.
        let mut now = 0u64;
        for _ in 0..10_000 {
            now += 1_000_000;
            if let Some(d) = a.next_data_tx(now) {
                b.on_packet(&d, now);
            }
            while let Some(c) = b.pop_ctrl_tx() {
                a.on_packet(&c, now);
            }
            if a.take_completions()
                .iter()
                .any(|c| matches!(c, Completion::SendDone { .. }))
            {
                break;
            }
            a.check_timeout(now);
        }
        assert_eq!(b.goodput_bytes(), 100 * 1024);
        // Flight never exceeded the window (spot check via stats).
        assert!(a.stats.data_pkts_tx >= 100);
    }

    #[test]
    fn rollback_events_carry_cause_and_volume() {
        // NAK-driven rollback.
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 10 * 1024 }, WrId(1));
        let _lost = a.next_data_tx(0).unwrap(); // PSN 0 dropped
        for _ in 1..4 {
            let d = a.next_data_tx(0).unwrap();
            b.on_packet(&d, 0);
        }
        while let Some(c) = b.pop_ctrl_tx() {
            a.on_packet(&c, 0);
        }
        assert_eq!(
            a.pop_event(),
            Some(TransportEvent::Rollback {
                cause: "nak",
                to_psn: 0,
                pkts: 4
            })
        );
        assert_eq!(a.pop_event(), None);

        // RTO-driven rollback.
        let (mut a, _b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 2048 }, WrId(1));
        a.next_data_tx(0).unwrap();
        a.next_data_tx(0).unwrap();
        assert!(a.check_timeout(a.config().rto_ps + 1));
        assert_eq!(
            a.pop_event(),
            Some(TransportEvent::Rollback {
                cause: "rto",
                to_psn: 0,
                pkts: 2
            })
        );
    }

    /// Property check, exhaustively enumerated (the in-tree idiom):
    /// under selective repeat, a PSN whose first transmission is dropped
    /// is retransmitted exactly once, and every other PSN is transmitted
    /// exactly once.
    #[test]
    fn selective_repeat_retransmits_each_dropped_psn_exactly_once() {
        use std::collections::HashMap;
        let (mut a, mut b) = pair(LossRecovery::SelectiveRepeat);
        a.post(Verb::Send { len: 100 * 1024 }, WrId(1)); // 100 packets
        let drop: std::collections::BTreeSet<u32> = [5, 17, 42, 97].into_iter().collect();
        let mut tx_per_psn: HashMap<u32, u32> = HashMap::new();
        let mut already_dropped = std::collections::BTreeSet::new();
        let mut now = 0u64;
        for _ in 0..10_000 {
            now += 1_000_000;
            let mut progressed = false;
            if let Some(d) = a.next_data_tx(now) {
                progressed = true;
                *tx_per_psn.entry(d.psn).or_insert(0) += 1;
                // Lose only the *first* copy of each marked PSN.
                if !(drop.contains(&d.psn) && already_dropped.insert(d.psn)) {
                    b.on_packet(&d, now);
                }
            }
            while let Some(c) = b.pop_ctrl_tx() {
                a.on_packet(&c, now);
                progressed = true;
            }
            if a.check_timeout(now) {
                progressed = true;
            }
            if !progressed && !a.has_data_tx() && a.rto_deadline_ps().is_none() {
                break;
            }
        }
        assert_eq!(b.goodput_bytes(), 100 * 1024);
        assert!(a
            .take_completions()
            .contains(&Completion::SendDone { wr: WrId(1) }));
        for psn in 0..100u32 {
            let expect = if drop.contains(&psn) { 2 } else { 1 };
            assert_eq!(tx_per_psn[&psn], expect, "psn {psn}");
        }
        assert_eq!(a.stats.retx_pkts, drop.len() as u64);
        assert_eq!(a.stats.retx_bytes, drop.len() as u64 * 1024);
        assert_eq!(b.stats.duplicate_rx, 0, "no spurious retransmissions");
    }

    /// Under the livelock drop pattern (every 256th transmission lost),
    /// selective repeat completes the 4 MB transfer with strictly fewer
    /// retransmitted bytes — and no more total bytes — than go-back-N.
    #[test]
    fn selective_repeat_beats_goback_n_byte_volume() {
        let (mut a_sr, mut b_sr) = pair(LossRecovery::SelectiveRepeat);
        a_sr.post(Verb::Send { len: MB4 }, WrId(1));
        run_channel(&mut a_sr, &mut b_sr, 256, 100_000);
        assert_eq!(b_sr.goodput_bytes(), MB4 as u64, "SR must complete");

        let (mut a_gbn, mut b_gbn) = pair(LossRecovery::GoBackN);
        a_gbn.post(Verb::Send { len: MB4 }, WrId(1));
        run_channel(&mut a_gbn, &mut b_gbn, 256, 100_000);
        assert_eq!(b_gbn.goodput_bytes(), MB4 as u64, "GBN must complete");

        assert!(
            a_sr.stats.retx_bytes < a_gbn.stats.retx_bytes,
            "SR retx {} !< GBN retx {}",
            a_sr.stats.retx_bytes,
            a_gbn.stats.retx_bytes
        );
        assert!(
            a_sr.stats.data_bytes_tx <= a_gbn.stats.data_bytes_tx,
            "SR total {} > GBN total {}",
            a_sr.stats.data_bytes_tx,
            a_gbn.stats.data_bytes_tx
        );
        // ~16 first-pass drops (4096/256) force at least that many
        // retransmissions; go-back-N multiplies them into whole windows.
        assert!(a_sr.stats.retx_pkts >= 16, "{}", a_sr.stats.retx_pkts);
        assert!(a_gbn.stats.retx_pkts > a_sr.stats.retx_pkts);
    }

    #[test]
    fn rtt_samples_harvested_with_karns_rule() {
        // Clean transfer: the cumulative ACK yields one sample, measured
        // from the newest packet it covers.
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 4096 }, WrId(1)); // 4 packets
        let mut now = 1_000_000;
        for _ in 0..4 {
            let d = a.next_data_tx(now).unwrap();
            b.on_packet(&d, now);
            now += 1_000_000;
        }
        while let Some(c) = b.pop_ctrl_tx() {
            a.on_packet(&c, now);
        }
        // Last data packet left at now-1µs; its ACK landed at now.
        assert_eq!(a.take_rtt_sample(), Some(1_000_000));
        assert_eq!(a.take_rtt_sample(), None);

        // Karn's rule: a rewind retransmits the PSNs, so their eventual
        // ACK must produce no sample.
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 2048 }, WrId(1)); // 2 packets
        let _lost = a.next_data_tx(0).unwrap();
        let d1 = a.next_data_tx(1000).unwrap();
        b.on_packet(&d1, 1000); // gap → NAK 0
        while let Some(c) = b.pop_ctrl_tx() {
            a.on_packet(&c, 2000);
        }
        for t in [3000u64, 4000] {
            let d = a.next_data_tx(t).unwrap();
            b.on_packet(&d, t);
        }
        while let Some(c) = b.pop_ctrl_tx() {
            a.on_packet(&c, 5000);
        }
        assert!(a
            .take_completions()
            .contains(&Completion::SendDone { wr: WrId(1) }));
        assert_eq!(a.take_rtt_sample(), None, "retransmitted PSNs are evicted");
    }

    #[test]
    fn goodput_counts_only_complete_messages() {
        let (mut a, mut b) = pair(LossRecovery::GoBackN);
        a.post(Verb::Send { len: 10 * 1024 }, WrId(1));
        for _ in 0..5 {
            let d = a.next_data_tx(0).unwrap();
            b.on_packet(&d, 0);
        }
        assert_eq!(b.goodput_bytes(), 0, "message incomplete");
    }
}
