//! Property tests on the RC transport: under *any* loss pattern, go-back-N
//! eventually delivers every message exactly once and in order; the
//! receiver never delivers out-of-order bytes; go-back-0 either completes
//! or makes zero message progress — never corrupts.

use rocescale_sim::SimRng;
use rocescale_transport::{Completion, LossRecovery, QpConfig, QpEndpoint, Verb, WrId};

/// Drive `a` → `b` over an in-order channel that drops transmissions whose
/// index appears in `drops` (a set of u16s, reused modulo). Returns
/// (completed wrs in order, receiver goodput bytes, transmissions).
fn drive(
    recovery: LossRecovery,
    msgs: &[u32],
    drop_pattern: &[u16],
    max_rounds: u64,
) -> (Vec<u64>, u64, u64) {
    let cfg = QpConfig {
        recovery,
        rto_ps: 50_000_000, // 50 µs
        ..QpConfig::default()
    };
    let mut a = QpEndpoint::new(cfg);
    let mut b = QpEndpoint::new(cfg);
    for (i, len) in msgs.iter().enumerate() {
        a.post(Verb::Send { len: *len }, WrId(i as u64));
    }
    let mut now = 0u64;
    let mut tx_count = 0u64;
    let mut completed = Vec::new();
    for _ in 0..max_rounds {
        now += 1_000_000;
        let mut progressed = false;
        if let Some(d) = a.next_data_tx(now) {
            let dropped =
                !drop_pattern.is_empty() && drop_pattern.contains(&((tx_count % 997) as u16));
            tx_count += 1;
            progressed = true;
            if !dropped {
                b.on_packet(&d, now);
            }
        }
        while let Some(c) = a.pop_ctrl_tx() {
            b.on_packet(&c, now);
            progressed = true;
        }
        while let Some(c) = b.pop_ctrl_tx() {
            a.on_packet(&c, now);
            progressed = true;
        }
        if a.check_timeout(now) {
            progressed = true;
        }
        for c in a.take_completions() {
            if let Completion::SendDone { wr } = c {
                completed.push(wr.0);
            }
        }
        if !progressed && !a.has_data_tx() && completed.len() == msgs.len() {
            break;
        }
    }
    for c in a.take_completions() {
        if let Completion::SendDone { wr } = c {
            completed.push(wr.0);
        }
    }
    (completed, b.goodput_bytes(), tx_count)
}

fn random_vec(rng: &mut SimRng, lo: u64, hi: u64, max_len: u64) -> Vec<u32> {
    let n = rng.gen_range(1..max_len) as usize;
    (0..n).map(|_| rng.gen_range(lo..hi) as u32).collect()
}

fn random_drops(rng: &mut SimRng, max_len: u64) -> Vec<u16> {
    let n = rng.gen_below(max_len) as usize;
    (0..n).map(|_| rng.gen_below(997) as u16).collect()
}

/// Go-back-N liveness and exactly-once: any finite loss pattern, any
/// message mix — all messages complete in posting order and the
/// receiver's goodput equals the posted bytes exactly.
#[test]
fn goback_n_delivers_everything_in_order() {
    let mut rng = SimRng::from_seed(0x7A17_0001);
    for _ in 0..64 {
        let msgs = random_vec(&mut rng, 1, 200_000, 6);
        let drops = random_drops(&mut rng, 150);
        let total: u64 = msgs.iter().map(|m| *m as u64).sum();
        let (completed, goodput, _tx) = drive(LossRecovery::GoBackN, &msgs, &drops, 2_000_000);
        assert_eq!(completed.len(), msgs.len(), "all messages complete");
        assert!(completed.windows(2).all(|w| w[0] < w[1]), "in order");
        assert_eq!(goodput, total, "no bytes lost or duplicated into goodput");
    }
}

/// Loss-free runs are exactly minimal: transmissions = ceil-sum of
/// segments, goodput exact, for both schemes.
#[test]
fn lossless_runs_are_minimal() {
    let mut rng = SimRng::from_seed(0x7A17_0002);
    for _ in 0..64 {
        let msgs = random_vec(&mut rng, 1, 100_000, 5);
        let gb0 = rng.gen_bool(0.5);
        let recovery = if gb0 {
            LossRecovery::GoBack0
        } else {
            LossRecovery::GoBackN
        };
        let expected_pkts: u64 = msgs.iter().map(|m| (m.div_ceil(1024)).max(1) as u64).sum();
        let total: u64 = msgs.iter().map(|m| *m as u64).sum();
        let (completed, goodput, tx) = drive(recovery, &msgs, &[], 1_000_000);
        assert_eq!(completed.len(), msgs.len());
        assert_eq!(goodput, total);
        assert_eq!(tx, expected_pkts, "no spurious retransmissions");
    }
}

/// Go-back-0 under arbitrary loss never corrupts: goodput is always a
/// prefix-sum of whole messages (each message counted at most once).
#[test]
fn goback0_never_corrupts() {
    let mut rng = SimRng::from_seed(0x7A17_0003);
    for _ in 0..64 {
        let msgs = random_vec(&mut rng, 1, 100_000, 4);
        let drops = random_drops(&mut rng, 100);
        let (completed, goodput, _) = drive(LossRecovery::GoBack0, &msgs, &drops, 300_000);
        // The receiver counts each fully received message once;
        // completion order is posting order.
        let mut acc = 0u64;
        let mut valid = vec![0u64];
        for m in &msgs {
            acc += *m as u64;
            valid.push(acc);
        }
        assert!(
            valid.contains(&goodput),
            "goodput {goodput} not a message prefix sum {valid:?}"
        );
        assert!(completed.len() <= msgs.len());
        assert!(completed.windows(2).all(|w| w[0] < w[1]));
    }
}

/// Deterministic regression: the exact §4.1 drop cadence (every 256th)
/// on one 4 MB message — go-back-N completes with bounded overhead.
#[test]
fn goback_n_overhead_bounded_at_1_in_256() {
    let msgs = [4u32 << 20];
    // drop every packet where tx_count % 997 is in a 4-element set ≈ 1/256.
    let drops: Vec<u16> = vec![100, 350, 600, 850];
    let (completed, goodput, tx) = drive(LossRecovery::GoBackN, &msgs, &drops, 2_000_000);
    assert_eq!(completed, vec![0]);
    assert_eq!(goodput, 4 << 20);
    let min_pkts = (4u64 << 20) / 1024;
    assert!(
        tx < min_pkts * 3 / 2,
        "overhead {}% too high",
        (tx - min_pkts) * 100 / min_pkts
    );
}
