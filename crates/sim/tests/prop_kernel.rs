//! Property tests on the event kernel: determinism, conservation, and
//! timing exactness under randomized workloads, driven by the in-tree
//! deterministic `SimRng` so every failure replays from its seed.

use std::any::Any;

use rocescale_packet::{EthMeta, MacAddr, Packet, PacketKind};
use rocescale_sim::{serialization_ps, Ctx, LinkSpec, Node, PortId, SimRng, SimTime, World};

/// Sends a scripted list of (size, gap) frames; records arrivals.
struct Scripted {
    to_send: Vec<(u32, u64)>, // (frame size, extra gap ps before send)
    cursor: usize,
    waiting: bool,
    received: Vec<(u64, u32)>, // (arrival ps, size)
    sent_at: Vec<u64>,
}

impl Scripted {
    fn try_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.waiting || self.cursor >= self.to_send.len() || ctx.port_busy(PortId(0)) {
            return;
        }
        let (size, gap) = self.to_send[self.cursor];
        if gap > 0 {
            self.waiting = true;
            ctx.set_timer(SimTime(gap), 1);
            return;
        }
        self.cursor += 1;
        self.sent_at.push(ctx.now().as_ps());
        let pkt = Packet::new(
            ctx.next_packet_id(),
            EthMeta {
                src: MacAddr::from_id(1),
                dst: MacAddr::from_id(2),
                vlan: None,
            },
            None,
            PacketKind::Raw { label: 0, size },
            ctx.now().as_ps(),
        );
        ctx.transmit(PortId(0), pkt).expect("idle");
    }
}

impl Node for Scripted {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.try_next(ctx);
    }
    fn on_packet(&mut self, _p: PortId, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.received.push((ctx.now().as_ps(), pkt.wire_size()));
    }
    fn on_port_idle(&mut self, _p: PortId, ctx: &mut Ctx<'_>) {
        self.try_next(ctx);
    }
    fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
        // The gap has elapsed; clear it and send.
        self.waiting = false;
        if self.cursor < self.to_send.len() {
            self.to_send[self.cursor].1 = 0;
        }
        self.try_next(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run_script(
    script: &[(u32, u64)],
    rate_bps: u64,
    meters: u32,
) -> (Vec<(u64, u32)>, Vec<u64>, u64) {
    let mut w = World::new(1);
    let a = w.add_node(Box::new(Scripted {
        to_send: script.to_vec(),
        cursor: 0,
        waiting: false,
        received: Vec::new(),
        sent_at: Vec::new(),
    }));
    let b = w.add_node(Box::new(Scripted {
        to_send: vec![],
        cursor: 0,
        waiting: false,
        received: Vec::new(),
        sent_at: Vec::new(),
    }));
    w.connect(
        a,
        PortId(0),
        b,
        PortId(0),
        LinkSpec::with_length(rate_bps, meters),
    );
    assert!(w.run_until_idle(1_000_000));
    let rx = w.node::<Scripted>(b).received.clone();
    let sent = w.node::<Scripted>(a).sent_at.clone();
    (rx, sent, w.events_processed())
}

fn random_script(rng: &mut SimRng, max_len: u64, size_hi: u64, gap_hi: u64) -> Vec<(u32, u64)> {
    let n = rng.gen_range(1..max_len) as usize;
    (0..n)
        .map(|_| {
            let size = rng.gen_range(64..size_hi) as u32;
            let gap = rng.gen_below(gap_hi);
            (size, gap)
        })
        .collect()
}

/// Conservation + FIFO + exact timing: every frame arrives exactly
/// once, in order, at sent + serialization + propagation.
#[test]
fn link_is_a_fifo_pipe_with_exact_timing() {
    let mut rng = SimRng::from_seed(0x5EED_0001);
    const RATES: [u64; 3] = [10_000_000_000, 40_000_000_000, 100_000_000_000];
    for case in 0..128 {
        let script = random_script(&mut rng, 40, 9000, 500_000);
        let rate = RATES[rng.gen_index(RATES.len())];
        let meters = rng.gen_range(1..300) as u32;
        let (rx, sent, _) = run_script(&script, rate, meters);
        assert_eq!(rx.len(), script.len(), "conservation (case {case})");
        let prop_ps = meters as u64 * rocescale_sim::PROPAGATION_PS_PER_METER;
        for (i, ((arr, size), sent_at)) in rx.iter().zip(&sent).enumerate() {
            assert_eq!(*size, script[i].0.max(64), "frame {i} size (FIFO)");
            let expect = sent_at + serialization_ps(*size, rate) + prop_ps;
            assert_eq!(*arr, expect, "frame {i}: exact arrival time (case {case})");
        }
        // Arrivals are non-decreasing.
        assert!(rx.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

/// Determinism: identical scripts give bit-identical traces and event
/// counts.
#[test]
fn replay_is_exact() {
    let mut rng = SimRng::from_seed(0x5EED_0002);
    for _ in 0..64 {
        let script = random_script(&mut rng, 30, 2000, 100_000);
        let a = run_script(&script, 40_000_000_000, 10);
        let b = run_script(&script, 40_000_000_000, 10);
        assert_eq!(a, b);
    }
}

/// Raw frames below the Ethernet minimum are padded to 64 bytes by the
/// wire-size model, and the link timing reflects that.
#[test]
fn runt_frames_padded() {
    let (rx, sent, _) = run_script(&[(1, 0)], 40_000_000_000, 2);
    assert_eq!(rx.len(), 1);
    assert_eq!(rx[0].1, 64);
    let expect = sent[0] + serialization_ps(64, 40_000_000_000) + 2 * 5_000;
    assert_eq!(rx[0].0, expect);
}
