//! In-tree deterministic PRNG: SplitMix64 seeding + xoshiro256**.
//!
//! The simulator previously drew randomness from the external `rand`
//! crate's `SmallRng`. That coupled reproducibility to a registry
//! dependency (hermetic/offline builds broke) and to `rand`'s freedom to
//! change `SmallRng`'s algorithm between versions — which would silently
//! change every seeded scenario. This module pins the generator in-tree:
//! identical seeds give identical runs on every toolchain, forever.
//!
//! The algorithms are the public-domain SplitMix64 (seed expansion) and
//! xoshiro256** 1.0 (Blackman & Vigna), the same pair `rand`'s own
//! `SmallRng` has used on 64-bit targets.

/// A small, fast, deterministic PRNG (xoshiro256**) seeded via SplitMix64.
///
/// Not cryptographically secure — this is simulation randomness, where the
/// only requirements are statistical quality and bit-exact replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// One step of SplitMix64; used to expand a 64-bit seed into the 256-bit
/// xoshiro state so that similar seeds still give uncorrelated streams.
const fn splitmix64(state: u64) -> (u64, u64) {
    let state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (state, z ^ (z >> 31))
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Any seed is fine, including 0.
    pub const fn from_seed(seed: u64) -> SimRng {
        let (st, s0) = splitmix64(seed);
        let (st, s1) = splitmix64(st);
        let (st, s2) = splitmix64(st);
        let (_, s3) = splitmix64(st);
        SimRng {
            s: [s0, s1, s2, s3],
        }
    }

    /// Next raw 64 random bits (xoshiro256** core step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[range.start, range.end)`. Panics if empty.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the distribution is
    /// exactly uniform (no modulo bias).
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        range.start + self.gen_below(span)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Lemire's nearly-divisionless bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)` — convenience for indexing.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256** with state [1,2,3,4]: published reference outputs.
        let mut r = SimRng { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..5).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11520,
                0,
                1509978240,
                1215971899390074240,
                1216172134540287360
            ]
        );
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SimRng::from_seed(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::from_seed(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SimRng::from_seed(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::from_seed(7);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::from_seed(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.gen_range(10..17);
            assert!((10..17).contains(&x));
            seen_lo |= x == 10;
            seen_hi |= x == 16;
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut r = SimRng::from_seed(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_below(8) as usize] += 1;
        }
        for c in counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = SimRng::from_seed(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits} hits for p=0.25");
    }
}
