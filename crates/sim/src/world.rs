//! The event loop: nodes, ports, links, timers, and the scheduler.

use std::any::Any;

use rocescale_packet::Packet;

use crate::arena::PacketArena;
use crate::rng::SimRng;
use crate::sched::{EngineKind, EventQueue, SchedStats};
use crate::time::SimTime;
use crate::{serialization_ps, PROPAGATION_PS_PER_METER};

/// Identifies a node in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies a port on a node. Port numbering is per-node and dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl PortId {
    /// Index form for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Physical characteristics of a duplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Line rate in bits per second (each direction).
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimTime,
}

impl LinkSpec {
    /// A link of `rate_bps` over `meters` of cable at ~5 ns/m.
    pub fn with_length(rate_bps: u64, meters: u32) -> LinkSpec {
        LinkSpec {
            rate_bps,
            propagation: SimTime(meters as u64 * PROPAGATION_PS_PER_METER),
        }
    }

    /// The paper's server↔ToR link: 40 GbE over ~2 m of copper.
    pub fn server_40g() -> LinkSpec {
        LinkSpec::with_length(40_000_000_000, 2)
    }

    /// The paper's ToR↔Leaf link: 40 GbE, 10–20 m.
    pub fn tor_leaf_40g() -> LinkSpec {
        LinkSpec::with_length(40_000_000_000, 15)
    }

    /// The paper's Leaf↔Spine link: 40 GbE, 200–300 m — the distance that
    /// drives PFC headroom sizing (§2).
    pub fn leaf_spine_40g() -> LinkSpec {
        LinkSpec::with_length(40_000_000_000, 300)
    }
}

/// Whether the world folds its FNV-1a dispatch digest on the hot path.
///
/// The digest is the golden-trace hook: with it on, two runs dispatched
/// the same events iff their digests match. Folding costs a few
/// multiplies per event, so throughput-oriented runs (the fleet runner,
/// benches) can opt out — dispatch *order and content* are identical
/// either way; only the fingerprint bookkeeping is skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DigestMode {
    /// Fold every dispatched event into the digest (the default).
    #[default]
    On,
    /// Skip digest folding; [`World::dispatch_digest`] stays at the FNV
    /// offset basis.
    Off,
}

/// Whether the world records per-event-kind dispatch profiles.
///
/// With profiling on, [`World::step`] wall-clocks every handler
/// dispatch and accumulates counts and nanoseconds per event kind
/// (start / arrival / port-idle / timer). Like [`DigestMode`], the
/// profile is pure bookkeeping: dispatch order, simulated results, and
/// the dispatch digest are identical either way. The `Instant` pair per
/// event costs more than digest folding, so it defaults to off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// Wall-clock every dispatch, bucketed by event kind.
    On,
    /// Skip profiling; [`World::event_profile`] returns zeros (the
    /// default).
    #[default]
    Off,
}

/// How the world drives its event loop (see [`World::set_dispatch_mode`]).
///
/// Both modes invoke the exact same handlers in the exact same order and
/// produce byte-identical dispatch digests; batched dispatch only
/// amortizes per-event *overhead* (queue front lookups, node slab
/// lookups, `Ctx` setup, virtual-call fan-out) across runs of
/// same-timestamp events. Single-step is kept as the obviously-correct
/// reference for differential tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Drain and dispatch same-timestamp events as one batch (the
    /// default).
    #[default]
    Batched,
    /// Pop and dispatch one event at a time (the reference path).
    SingleStep,
}

/// Per-event-kind dispatch counts and cumulative handler wall-time,
/// collected by [`World::step`] under [`ProfileMode::On`].
///
/// Index order matches the digest tags: 0 = start, 1 = arrival,
/// 2 = port-idle, 3 = timer (see [`EventProfile::KINDS`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventProfile {
    /// Events dispatched, per kind.
    pub counts: [u64; 4],
    /// Cumulative handler wall-time in nanoseconds, per kind.
    pub nanos: [u64; 4],
    /// Events-per-batch histogram under [`DispatchMode::Batched`]:
    /// bucket *i* counts dispatched batches of `2^i ..= 2^(i+1)-1`
    /// events (the last bucket is open-ended; see
    /// [`EventProfile::BATCH_BUCKETS`]). All zeros under single-step
    /// dispatch or with profiling off — the profiler's direct view of
    /// how much same-tick coalescing actually happens.
    pub batches: [u64; 8],
}

impl EventProfile {
    /// Human-readable names for the four kind buckets, in index order.
    pub const KINDS: [&'static str; 4] = ["start", "arrival", "port_idle", "timer"];

    /// Human-readable batch-size ranges for [`EventProfile::batches`].
    pub const BATCH_BUCKETS: [&'static str; 8] = [
        "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+",
    ];

    /// Total events across all kinds.
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total handler wall-time across all kinds, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Mean handler nanoseconds per event for kind index `k` (0 when no
    /// events of that kind were dispatched).
    pub fn ns_per_event(&self, k: usize) -> f64 {
        if self.counts[k] == 0 {
            0.0
        } else {
            self.nanos[k] as f64 / self.counts[k] as f64
        }
    }

    /// Total batches dispatched (0 under single-step dispatch).
    pub fn total_batches(&self) -> u64 {
        self.batches.iter().sum()
    }

    /// Record one dispatched batch of `n` events.
    pub(crate) fn note_batch(&mut self, n: u64) {
        debug_assert!(n > 0);
        let bucket = (63 - n.leading_zeros()).min(7) as usize;
        self.batches[bucket] += 1;
    }
}

/// Error returned by [`Ctx::transmit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The port is still serializing a previous packet. Wait for
    /// [`Node::on_port_idle`].
    Busy,
    /// No link is attached to this port.
    Unconnected,
}

/// A simulated device: a switch or a host.
///
/// Handlers receive a [`Ctx`] for scheduling; all state lives in the node.
/// The kernel guarantees handlers are invoked in deterministic order.
/// Nodes are `Send` so a sharded run can drive each shard's world from
/// its own worker thread (a node is only ever touched by the thread
/// running its world).
pub trait Node: Any + Send {
    /// Invoked once when the simulation starts, before any other event.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet finished arriving on `port` (store-and-forward: the whole
    /// packet has been received).
    fn on_packet(&mut self, port: PortId, pkt: Packet, ctx: &mut Ctx<'_>);

    /// The port finished serializing the previous transmission and can
    /// accept another [`Ctx::transmit`].
    fn on_port_idle(&mut self, _port: PortId, _ctx: &mut Ctx<'_>) {}

    /// A run of same-timestamp [`Node::on_packet`] deliveries for this
    /// node, in exact event order. The default forwards one by one;
    /// implementations with per-packet-invariant prologue work (see the
    /// switch's arrival sweep) may override, but must fully drain
    /// `arrivals` and keep per-packet semantics and order identical to
    /// repeated `on_packet` calls — batching amortizes overhead, never
    /// changes behavior.
    fn on_packet_batch(&mut self, arrivals: &mut Vec<(PortId, Packet)>, ctx: &mut Ctx<'_>) {
        for (port, pkt) in arrivals.drain(..) {
            self.on_packet(port, pkt, ctx);
        }
    }

    /// A run of same-timestamp [`Node::on_port_idle`] deliveries for
    /// this node, in exact event order. Same contract as
    /// [`Node::on_packet_batch`]: overrides may hoist per-port-invariant
    /// work but must preserve per-event order and semantics exactly.
    fn on_port_idle_batch(&mut self, ports: &[PortId], ctx: &mut Ctx<'_>) {
        for &port in ports {
            self.on_port_idle(port, ctx);
        }
    }

    /// A timer set via [`Ctx::set_timer`] fired. `token` is the caller's
    /// value; stale timers must be filtered by the node itself.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// The world is compacting at quiescence ([`World::compact`]): shed
    /// queue capacity retained from past bursts. Purely a memory
    /// operation — implementations must not change any observable state.
    fn compact(&mut self) {}

    /// Downcast support so experiments can read node-specific state.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The far end of a cross-shard link: a port on a node living in
/// another shard's [`World`]. Boundary traffic addressed to it is
/// collected in the sending world's outbox ([`World::take_outbox`]) and
/// routed by the shard exchange at conservative-lookahead epoch
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemotePort {
    /// Destination shard index (the exchange's world index).
    pub shard: u32,
    /// Node id *within the destination shard's world*.
    pub node: NodeId,
    /// Port on that node.
    pub port: PortId,
}

/// What a port is wired to: a node in this world, or a port in another
/// shard's world (see [`RemotePort`]).
#[derive(Debug, Clone, Copy)]
enum Peer {
    Local(NodeId, PortId),
    Remote(RemotePort),
}

/// A boundary crossing collected from a shard's world during an
/// exchange epoch, delivered into the destination shard at the next
/// epoch barrier. Packets carry their computed arrival time (always at
/// least one cross-shard propagation delay in the future — the
/// conservative-lookahead safety condition); administrative messages
/// carry the time they were issued and apply at the barrier.
#[derive(Debug)]
pub enum BoundaryMsg {
    /// A packet that finished serializing onto a cross-shard link.
    Packet {
        /// Arrival time at the far end (send + serialization +
        /// propagation).
        at: SimTime,
        /// Destination shard/node/port.
        to: RemotePort,
        /// The packet itself.
        pkt: Packet,
    },
    /// Mirror of a local [`Ctx::set_link_up`] on a boundary port: the
    /// far endpoint's administrative state must flip too.
    LinkSet {
        /// Time the flip was issued on the near side.
        at: SimTime,
        /// Far endpoint.
        to: RemotePort,
        /// New administrative state.
        up: bool,
    },
    /// A [`Ctx::wake_peer`] kick crossing the boundary, delivered as an
    /// ordinary port-idle event at the barrier.
    Wake {
        /// Time the kick was issued on the near side.
        at: SimTime,
        /// Far endpoint.
        to: RemotePort,
    },
}

impl BoundaryMsg {
    /// The message's timestamp (arrival time for packets, issue time
    /// for administrative messages) — the exchange's sort key.
    pub fn at(&self) -> SimTime {
        match self {
            BoundaryMsg::Packet { at, .. }
            | BoundaryMsg::LinkSet { at, .. }
            | BoundaryMsg::Wake { at, .. } => *at,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PortState {
    peer: Peer,
    spec: LinkSpec,
    busy_until: SimTime,
    /// Administrative link state. A downed link rejects new transmissions
    /// (and reports as unconnected) on *both* endpoints; packets already
    /// serialized onto the wire still arrive. Flipped by
    /// [`Ctx::set_link_up`] — the fault-script "link flap" primitive.
    up: bool,
}

/// A queued event. `Arrival` carries an index into the world's packet
/// slab rather than a `Box<Packet>`, so the hot path recycles packet
/// storage through a free list instead of allocating per transmission.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    Start {
        node: NodeId,
    },
    Arrival {
        node: NodeId,
        port: PortId,
        slot: u32,
    },
    PortIdle {
        node: NodeId,
        port: PortId,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
}

/// Everything in the world except the nodes themselves; split out so a
/// node handler can hold `&mut` to both itself and the scheduler.
struct WorldCore {
    now: SimTime,
    queue: EventQueue<EventKind>,
    ports: Vec<Vec<Option<PortState>>>,
    rng: SimRng,
    next_packet_id: u64,
    events_processed: u64,
    /// In-flight packet storage, indexed by `EventKind::Arrival::slot` —
    /// a dense arena with an intrusive free list (see [`PacketArena`]).
    packets: PacketArena,
    /// Running FNV-1a fingerprint of the dispatch stream (time, kind,
    /// node, detail per event) — the golden-trace hook: two runs are
    /// event-for-event identical iff their digests match.
    digest: u64,
    /// Hot-path gate for digest folding (see [`DigestMode`]).
    digest_on: bool,
    /// When set, [`WorldCore::push`] stages events here instead of
    /// touching the queue; [`World::dispatch_batch`] flushes the whole
    /// sweep with one [`EventQueue::push_bulk`] call at batch end.
    /// Sequence numbers are assigned at flush in staging order and no
    /// pops occur in between, so the `(time, seq)` stream — and hence
    /// dispatch order and digest — is identical to per-push scheduling.
    staging: bool,
    /// Staged events awaiting the batch-end flush.
    staged: Vec<(SimTime, EventKind)>,
    /// Boundary traffic for the shard exchange: packets that finished
    /// serializing onto cross-shard links, plus administrative
    /// link-state/wake messages addressed to remote ports. Drained by
    /// [`World::take_outbox`] at epoch barriers; always empty in a
    /// single-world (non-sharded) run.
    outbox: Vec<BoundaryMsg>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold `v` into FNV-1a accumulator `h` — the exact byte-wise fold the
/// dispatch digest uses. Exposed so a sharded run can combine per-shard
/// digests in fixed shard order into one global fingerprint (see
/// `ShardedWorld::dispatch_digest`).
pub fn digest_fold(h: u64, v: u64) -> u64 {
    fnv1a(h, v)
}

impl WorldCore {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        if self.staging {
            self.staged.push((time, kind));
        } else {
            self.queue.push(time, kind);
        }
    }

    fn store_packet(&mut self, pkt: Packet) -> u32 {
        self.packets.insert(pkt)
    }

    fn take_packet(&mut self, slot: u32) -> Packet {
        self.packets.remove(slot)
    }
}

/// The simulation world: nodes, links, and the event queue.
pub struct World {
    core: WorldCore,
    nodes: Vec<Box<dyn Node>>,
    started: bool,
    /// Hot-path gate for dispatch profiling (see [`ProfileMode`]).
    profile_on: bool,
    profile: EventProfile,
    /// Hot-path gate for batched dispatch (see [`DispatchMode`]).
    batched: bool,
    /// Reusable drain buffer for [`World::step_batch`] — one batch of
    /// same-timestamp events, in dispatch order.
    batch_buf: Vec<(SimTime, EventKind)>,
    /// Reusable argument buffer for [`Node::on_port_idle_batch`].
    idle_buf: Vec<PortId>,
    /// Reusable argument buffer for [`Node::on_packet_batch`].
    arrival_buf: Vec<(PortId, Packet)>,
}

impl World {
    /// Create an empty world with a deterministic RNG seed, on the
    /// default timer-wheel engine.
    pub fn new(seed: u64) -> World {
        World::new_with_engine(seed, EngineKind::default())
    }

    /// Create an empty world on an explicit event-engine implementation.
    /// Scenario traces are bit-identical across engines; the binary-heap
    /// engine exists for differential tests and benchmarks.
    pub fn new_with_engine(seed: u64, engine: EngineKind) -> World {
        World {
            core: WorldCore {
                now: SimTime::ZERO,
                queue: EventQueue::new(engine),
                ports: Vec::new(),
                rng: SimRng::from_seed(seed),
                next_packet_id: 1,
                events_processed: 0,
                packets: PacketArena::new(),
                digest: FNV_OFFSET,
                digest_on: true,
                staging: false,
                staged: Vec::new(),
                outbox: Vec::new(),
            },
            nodes: Vec::new(),
            started: false,
            profile_on: false,
            profile: EventProfile::default(),
            batched: true,
            batch_buf: Vec::new(),
            idle_buf: Vec::new(),
            arrival_buf: Vec::new(),
        }
    }

    /// Add a node; returns its id. Nodes must be added before [`Self::run_until`].
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.core.ports.push(Vec::new());
        id
    }

    /// Connect `a_port` on node `a` to `b_port` on node `b` with the given
    /// link. Panics if either port is already connected — miswired
    /// topologies are construction bugs, not runtime conditions.
    pub fn connect(
        &mut self,
        a: NodeId,
        a_port: PortId,
        b: NodeId,
        b_port: PortId,
        spec: LinkSpec,
    ) {
        let slot = |ports: &mut Vec<Option<PortState>>, p: PortId| {
            if ports.len() <= p.index() {
                ports.resize(p.index() + 1, None);
            }
            assert!(ports[p.index()].is_none(), "port {p:?} already connected");
            p.index()
        };
        let ia = slot(&mut self.core.ports[a.0 as usize], a_port);
        self.core.ports[a.0 as usize][ia] = Some(PortState {
            peer: Peer::Local(b, b_port),
            spec,
            busy_until: SimTime::ZERO,
            up: true,
        });
        let ib = slot(&mut self.core.ports[b.0 as usize], b_port);
        self.core.ports[b.0 as usize][ib] = Some(PortState {
            peer: Peer::Local(a, a_port),
            spec,
            busy_until: SimTime::ZERO,
            up: true,
        });
    }

    /// Wire `port` on `node` to a port in *another shard's* world. The
    /// local half behaves like an ordinary link (serialization time,
    /// busy state, the port-idle event); packets that finish
    /// serializing are parked in the boundary outbox with their arrival
    /// time instead of being scheduled locally — the shard exchange
    /// routes them at the next epoch barrier. Both worlds must call
    /// this with mirrored [`RemotePort`]s and the same `spec`.
    pub fn connect_remote(&mut self, node: NodeId, port: PortId, spec: LinkSpec, peer: RemotePort) {
        let ports = &mut self.core.ports[node.0 as usize];
        if ports.len() <= port.index() {
            ports.resize(port.index() + 1, None);
        }
        assert!(
            ports[port.index()].is_none(),
            "port {port:?} already connected"
        );
        ports[port.index()] = Some(PortState {
            peer: Peer::Remote(peer),
            spec,
            busy_until: SimTime::ZERO,
            up: true,
        });
    }

    /// Drain the boundary outbox: every cross-shard message issued
    /// since the last drain, in issue order. Called by the shard
    /// exchange at epoch barriers; always empty without remote ports.
    pub fn take_outbox(&mut self) -> Vec<BoundaryMsg> {
        std::mem::take(&mut self.core.outbox)
    }

    /// Smallest propagation delay over this world's cross-shard links —
    /// the world's contribution to the exchange's conservative
    /// lookahead. `None` when no port is remote.
    pub fn min_remote_propagation(&self) -> Option<SimTime> {
        self.core
            .ports
            .iter()
            .flatten()
            .flatten()
            .filter(|s| matches!(s.peer, Peer::Remote(_)))
            .map(|s| s.spec.propagation)
            .min()
    }

    /// Number of cross-shard (boundary) ports in this world.
    pub fn remote_port_count(&self) -> usize {
        self.core
            .ports
            .iter()
            .flatten()
            .flatten()
            .filter(|s| matches!(s.peer, Peer::Remote(_)))
            .count()
    }

    /// Deliver a cross-shard packet: schedule its arrival on `port` of
    /// `node` at `at` (which must not precede this world's clock — the
    /// conservative lookahead guarantees that for exchange traffic).
    pub fn inject_arrival(&mut self, at: SimTime, node: NodeId, port: PortId, pkt: Packet) {
        debug_assert!(at >= self.core.now, "cross-shard arrival in the past");
        let slot = self.core.store_packet(pkt);
        self.core.push(at, EventKind::Arrival { node, port, slot });
    }

    /// Deliver a cross-shard wake: schedule a port-idle event — the
    /// "carrier returned" kick — on `port` of `node` at `at`.
    pub fn inject_port_idle(&mut self, at: SimTime, node: NodeId, port: PortId) {
        debug_assert!(at >= self.core.now, "cross-shard wake in the past");
        self.core.push(at, EventKind::PortIdle { node, port });
    }

    /// Apply the far side of a cross-shard [`Ctx::set_link_up`]: flip
    /// the administrative state of the local half of the boundary link.
    pub fn apply_remote_link(&mut self, node: NodeId, port: PortId, up: bool) {
        if let Some(state) = self.core.ports[node.0 as usize]
            .get_mut(port.index())
            .and_then(|s| s.as_mut())
        {
            state.up = up;
        }
    }

    /// Number of events pending in the queue (idle detection for the
    /// shard exchange).
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Earliest pending event time, or `None` when the queue is empty.
    /// Starts the world's nodes first if they haven't run yet, so the
    /// `Start` events at t = 0 count as work. The adaptive shard
    /// exchange polls this at each barrier to find the next window that
    /// has anything to do.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.ensure_started();
        self.core.queue.peek_time()
    }

    /// Offset this world's packet-id allocator so ids from different
    /// shards never collide (ids are folded into arrival digests, so
    /// collisions would alias distinct packets). Shard `s` uses base
    /// `s << 48`; shard 0's base of 0 keeps its id stream — and hence
    /// its digest — identical to a non-sharded world's. Must be called
    /// before any packet is allocated.
    pub fn set_packet_id_base(&mut self, base: u64) {
        debug_assert_eq!(
            self.core.next_packet_id, 1,
            "packet-id base must be set before any allocation"
        );
        self.core.next_packet_id = base + 1;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Total events dispatched so far (the simulator's own throughput
    /// metric, used by the benches).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Event-engine counters: pushes, dispatches, wheel cascades,
    /// overflow migrations, and peak occupancy.
    pub fn sched_stats(&self) -> SchedStats {
        self.core.queue.stats()
    }

    /// Which engine this world runs on.
    pub fn engine_kind(&self) -> EngineKind {
        self.core.queue.kind()
    }

    /// FNV-1a fingerprint of every event dispatched so far: `(time,
    /// kind, node, detail)` per event. Two runs dispatched the same
    /// events in the same order iff their digests match — the basis of
    /// the golden-trace and engine-equivalence tests. Stays at the FNV
    /// offset basis under [`DigestMode::Off`].
    pub fn dispatch_digest(&self) -> u64 {
        self.core.digest
    }

    /// Switch digest folding on or off. Dispatch order and all simulated
    /// results are unaffected; only the fingerprint bookkeeping changes.
    /// Flip it before running — a mid-run switch leaves a partial digest.
    pub fn set_digest_mode(&mut self, mode: DigestMode) {
        self.core.digest_on = mode == DigestMode::On;
    }

    /// The current digest mode.
    pub fn digest_mode(&self) -> DigestMode {
        if self.core.digest_on {
            DigestMode::On
        } else {
            DigestMode::Off
        }
    }

    /// Switch dispatch profiling on or off. Dispatch order, simulated
    /// results, and the digest are unaffected; only wall-clock
    /// bookkeeping changes. Accumulation continues across a mid-run
    /// switch; use [`Self::reset_event_profile`] for a clean window.
    pub fn set_profile_mode(&mut self, mode: ProfileMode) {
        self.profile_on = mode == ProfileMode::On;
    }

    /// The current profile mode.
    pub fn profile_mode(&self) -> ProfileMode {
        if self.profile_on {
            ProfileMode::On
        } else {
            ProfileMode::Off
        }
    }

    /// Select batched (default) or single-step dispatch. Handler order,
    /// simulated results, and the dispatch digest are identical in both
    /// modes — batching amortizes per-event overhead, nothing else — so
    /// this is a differential-testing knob, not a semantic one.
    pub fn set_dispatch_mode(&mut self, mode: DispatchMode) {
        self.batched = mode == DispatchMode::Batched;
    }

    /// The current dispatch mode.
    pub fn dispatch_mode(&self) -> DispatchMode {
        if self.batched {
            DispatchMode::Batched
        } else {
            DispatchMode::SingleStep
        }
    }

    /// The accumulated dispatch profile (all zeros unless
    /// [`ProfileMode::On`] was set before running).
    pub fn event_profile(&self) -> EventProfile {
        self.profile
    }

    /// Zero the accumulated dispatch profile (e.g. to exclude warmup).
    pub fn reset_event_profile(&mut self) {
        self.profile = EventProfile::default();
    }

    /// Borrow a node, downcast to its concrete type.
    pub fn node<T: Node>(&self, id: NodeId) -> &T {
        self.nodes[id.0 as usize]
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrow a node, downcast to its concrete type.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0 as usize]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Schedule an extra timer for a node from outside the event loop
    /// (e.g. an experiment injecting a fault at a chosen time).
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        self.core.push(at, EventKind::Timer { node, token });
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.core.push(
                    SimTime::ZERO,
                    EventKind::Start {
                        node: NodeId(i as u32),
                    },
                );
            }
        }
    }

    /// Dispatch a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((time, kind)) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.core.now, "time went backwards");
        self.core.now = time;
        self.core.events_processed += 1;
        self.dispatch_event(time, kind);
        true
    }

    /// Dispatch one already-popped event: the shared tail of
    /// [`World::step`] and [`World::dispatch_batch`]'s singleton fast
    /// path (`now`/`events_processed` bookkeeping is the caller's).
    fn dispatch_event(&mut self, time: SimTime, kind: EventKind) {
        let node_id = match kind {
            EventKind::Start { node }
            | EventKind::Arrival { node, .. }
            | EventKind::PortIdle { node, .. }
            | EventKind::Timer { node, .. } => node,
        };
        // Split borrow: the node lives in `self.nodes`, the scheduler in
        // `self.core` — disjoint fields, so the handler can hold `&mut`
        // to both without the old `Option::take`/put double write per
        // event (which cost two stores and a panic branch on the hottest
        // path in the simulator).
        let node: &mut dyn Node = &mut *self.nodes[node_id.0 as usize];
        let mut ctx = Ctx {
            core: &mut self.core,
            node: node_id,
        };
        // Profile bookkeeping stays out of the un-profiled hot path: one
        // branch when off, an `Instant` pair per event when on. The kind
        // index mirrors the digest tags (0..=3).
        let started_at = if self.profile_on {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let kind_idx: usize;
        match kind {
            EventKind::Start { .. } => {
                kind_idx = 0;
                ctx.fold_digest(time, 0, node_id, 0);
                node.on_start(&mut ctx);
            }
            EventKind::Arrival { port, slot, .. } => {
                kind_idx = 1;
                let pkt = ctx.core.take_packet(slot);
                // Digest the packet id, not the slab slot: the slot is
                // an allocator artifact, the id is the semantic event.
                ctx.fold_digest(time, 1, node_id, ((port.0 as u64) << 32) | pkt.id);
                node.on_packet(port, pkt, &mut ctx);
            }
            EventKind::PortIdle { port, .. } => {
                kind_idx = 2;
                ctx.fold_digest(time, 2, node_id, port.0 as u64);
                node.on_port_idle(port, &mut ctx);
            }
            EventKind::Timer { token, .. } => {
                kind_idx = 3;
                ctx.fold_digest(time, 3, node_id, token);
                node.on_timer(token, &mut ctx);
            }
        }
        if let Some(t0) = started_at {
            self.profile.counts[kind_idx] += 1;
            self.profile.nanos[kind_idx] += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Dispatch the next *batch* — every queued event sharing the front
    /// timestamp — and return how many events fired (0 when the queue is
    /// empty). The batch is processed in exact `(time, seq)` order, so
    /// handler invocations are identical to repeated [`World::step`]
    /// calls; what batching buys is amortization: one queue-front drain,
    /// one `Ctx` and node-slab lookup per consecutive same-node run, and
    /// one virtual call per same-(node, kind) run via the
    /// [`Node::on_packet_batch`] / [`Node::on_port_idle_batch`] hooks.
    ///
    /// Events a handler schedules *at the current timestamp* get higher
    /// sequence numbers than everything in the current batch, so they
    /// form the next batch — exactly where single-step dispatch would
    /// place them.
    pub fn step_batch(&mut self) -> usize {
        self.ensure_started();
        self.dispatch_batch(SimTime::MAX, usize::MAX)
    }

    /// [`World::step_batch`] bounded by a deadline and an event budget:
    /// nothing fires past `deadline`, and at most `limit` events fire (a
    /// truncated batch resumes, in order, on the next call).
    fn dispatch_batch(&mut self, deadline: SimTime, limit: usize) -> usize {
        if limit == 0 {
            return 0;
        }
        let Some(front) = self.core.queue.peek_time() else {
            return 0;
        };
        if front > deadline {
            return 0;
        }
        let (time, first) = self.core.queue.pop().expect("peeked front must pop");
        debug_assert!(time >= self.core.now, "time went backwards");
        self.core.now = time;
        self.core.events_processed += 1;
        // Singleton fast path: on sparse stretches most ticks carry one
        // event (see the batch histogram), and the grouping scan plus
        // the buffer round-trips would be pure overhead — dispatch it
        // exactly as `step` would, never touching the batch buffer.
        if limit == 1 || self.core.queue.peek_time() != Some(time) {
            if self.profile_on {
                self.profile.note_batch(1);
            }
            self.dispatch_event(time, first);
            return 1;
        }
        // The buffers are owned fields swapped out for the duration of
        // the dispatch so the node / core / buffer borrows stay disjoint.
        let mut buf = std::mem::take(&mut self.batch_buf);
        buf.clear();
        buf.push((time, first));
        let more = self.core.queue.pop_batch(time, limit - 1, &mut buf);
        let n = more + 1;
        self.core.events_processed += more as u64;
        if self.profile_on {
            self.profile.note_batch(n as u64);
        }
        let mut idles = std::mem::take(&mut self.idle_buf);
        let mut arrivals = std::mem::take(&mut self.arrival_buf);
        let node_of = |kind: &EventKind| match *kind {
            EventKind::Start { node }
            | EventKind::Arrival { node, .. }
            | EventKind::PortIdle { node, .. }
            | EventKind::Timer { node, .. } => node,
        };
        // Stage handler pushes for the duration of the batch: no pops
        // happen until the batch completes, so assigning the seqs at
        // flush time (in staging order, via one bulk insert) yields the
        // exact `(time, seq)` stream the per-push path would — while the
        // engine amortizes slot placement across the whole sweep.
        self.core.staging = true;
        let mut i = 0;
        while i < buf.len() {
            let node_id = node_of(&buf[i].1);
            // Extent of this node's consecutive run within the batch.
            let mut end = i + 1;
            while end < buf.len() && node_of(&buf[end].1) == node_id {
                end += 1;
            }
            let node: &mut dyn Node = &mut *self.nodes[node_id.0 as usize];
            let mut ctx = Ctx {
                core: &mut self.core,
                node: node_id,
            };
            while i < end {
                let started_at = if self.profile_on {
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                // Digest folds happen in dispatch order before each
                // same-kind run's handlers. The fold is a pure
                // accumulation over the popped event stream — handlers
                // never read it — so fold/handler interleaving within a
                // batch cannot change the final digest.
                let (kind_idx, run) = match buf[i].1 {
                    EventKind::Start { .. } => {
                        ctx.fold_digest(time, 0, node_id, 0);
                        node.on_start(&mut ctx);
                        (0, 1)
                    }
                    EventKind::Arrival { port, slot, .. } => {
                        let mut j = i + 1;
                        while j < end && matches!(buf[j].1, EventKind::Arrival { .. }) {
                            j += 1;
                        }
                        let run = j - i;
                        if run == 1 {
                            // Length-1 run: skip the buffer round-trip
                            // (a `Packet` copy each way) and call the
                            // plain handler, as single-step would.
                            let pkt = ctx.core.take_packet(slot);
                            ctx.fold_digest(time, 1, node_id, ((port.0 as u64) << 32) | pkt.id);
                            node.on_packet(port, pkt, &mut ctx);
                        } else {
                            for e in &buf[i..j] {
                                let EventKind::Arrival { port, slot, .. } = e.1 else {
                                    unreachable!("scanned arrival run");
                                };
                                let pkt = ctx.core.take_packet(slot);
                                ctx.fold_digest(time, 1, node_id, ((port.0 as u64) << 32) | pkt.id);
                                arrivals.push((port, pkt));
                            }
                            node.on_packet_batch(&mut arrivals, &mut ctx);
                            debug_assert!(arrivals.is_empty(), "batch hook must drain arrivals");
                            arrivals.clear();
                        }
                        (1, run)
                    }
                    EventKind::PortIdle { port, .. } => {
                        let mut j = i + 1;
                        while j < end && matches!(buf[j].1, EventKind::PortIdle { .. }) {
                            j += 1;
                        }
                        let run = j - i;
                        if run == 1 {
                            ctx.fold_digest(time, 2, node_id, port.0 as u64);
                            node.on_port_idle(port, &mut ctx);
                        } else {
                            for e in &buf[i..j] {
                                let EventKind::PortIdle { port, .. } = e.1 else {
                                    unreachable!("scanned port-idle run");
                                };
                                ctx.fold_digest(time, 2, node_id, port.0 as u64);
                                idles.push(port);
                            }
                            node.on_port_idle_batch(&idles, &mut ctx);
                            idles.clear();
                        }
                        (2, run)
                    }
                    EventKind::Timer { token, .. } => {
                        ctx.fold_digest(time, 3, node_id, token);
                        node.on_timer(token, &mut ctx);
                        (3, 1)
                    }
                };
                if let Some(t0) = started_at {
                    self.profile.counts[kind_idx] += run as u64;
                    self.profile.nanos[kind_idx] += t0.elapsed().as_nanos() as u64;
                }
                i += run;
            }
        }
        self.core.staging = false;
        self.core.queue.push_bulk(&mut self.core.staged);
        self.batch_buf = buf;
        self.idle_buf = idles;
        self.arrival_buf = arrivals;
        n
    }

    /// Shed heap capacity retained from past bursts. The packet slab,
    /// its free list, and every node's internal queues keep their peak
    /// capacity forever otherwise — after an incast burst that is
    /// megabytes of idle `Vec`/`VecDeque` backing storage per world.
    /// Call at quiescence (between experiment phases or after
    /// [`Self::run_until_idle`]); purely a memory operation, observable
    /// state and the dispatch digest are untouched.
    pub fn compact(&mut self) {
        // The arena drops vacant tail slots and rebuilds its free chain
        // over the surviving prefix; in-flight packets (live slots) are
        // preserved wherever they sit.
        self.core.packets.compact();
        self.batch_buf.shrink_to_fit();
        self.idle_buf.shrink_to_fit();
        self.arrival_buf.shrink_to_fit();
        for node in &mut self.nodes {
            node.compact();
        }
    }

    /// Capacity of the in-flight packet slab (memory-bound tests).
    pub fn packet_slab_capacity(&self) -> usize {
        self.core.packets.capacity()
    }

    /// Length of the in-flight packet slab.
    pub fn packet_slab_len(&self) -> usize {
        self.core.packets.len()
    }

    /// Vacant (recyclable) slots in the in-flight packet slab.
    pub fn packet_slab_free(&self) -> usize {
        self.core.packets.free_len()
    }

    /// Run until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        if self.batched {
            while self.dispatch_batch(deadline, usize::MAX) > 0 {}
        } else {
            while let Some(head) = self.core.queue.peek_time() {
                if head > deadline {
                    break;
                }
                self.step();
            }
        }
        if self.core.now < deadline {
            self.core.now = deadline;
        }
    }

    /// Run until no events remain, up to a safety cap of `max_events`.
    /// Returns true if the queue drained (i.e. the network quiesced).
    pub fn run_until_idle(&mut self, max_events: u64) -> bool {
        self.ensure_started();
        if self.batched {
            let mut remaining = max_events;
            while remaining > 0 {
                let cap = remaining.min(usize::MAX as u64) as usize;
                let n = self.dispatch_batch(SimTime::MAX, cap) as u64;
                if n == 0 {
                    return true;
                }
                remaining -= n;
            }
            self.core.queue.is_empty()
        } else {
            for _ in 0..max_events {
                if !self.step() {
                    return true;
                }
            }
            self.core.queue.is_empty()
        }
    }
}

/// Scheduling interface handed to node handlers.
pub struct Ctx<'a> {
    core: &'a mut WorldCore,
    node: NodeId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the node being dispatched.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The world's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    fn fold_digest(&mut self, time: SimTime, tag: u64, node: NodeId, detail: u64) {
        if !self.core.digest_on {
            return;
        }
        let mut h = self.core.digest;
        h = fnv1a(h, time.as_ps());
        h = fnv1a(h, tag);
        h = fnv1a(h, node.0 as u64);
        h = fnv1a(h, detail);
        self.core.digest = h;
    }

    /// Allocate a globally unique packet id.
    pub fn next_packet_id(&mut self) -> u64 {
        let id = self.core.next_packet_id;
        self.core.next_packet_id += 1;
        id
    }

    /// Is `port` connected to a link that is administratively up? A
    /// downed link behaves exactly like a missing one for forwarding
    /// purposes (transmit fails, floods skip it).
    pub fn port_connected(&self, port: PortId) -> bool {
        self.port(port).map(|s| s.up).unwrap_or(false)
    }

    /// Is `port` currently serializing a packet?
    pub fn port_busy(&self, port: PortId) -> bool {
        match self.port(port) {
            Some(p) => p.busy_until > self.core.now,
            None => false,
        }
    }

    /// Line rate of the link on `port`, if connected.
    pub fn port_rate(&self, port: PortId) -> Option<u64> {
        self.port(port).map(|p| p.spec.rate_bps)
    }

    fn port(&self, port: PortId) -> Option<&PortState> {
        self.core.ports[self.node.0 as usize]
            .get(port.index())
            .and_then(|s| s.as_ref())
    }

    /// Begin transmitting `pkt` on `port`. The port stays busy for the
    /// serialization time; the peer's [`Node::on_packet`] fires after
    /// serialization plus propagation, and this node's
    /// [`Node::on_port_idle`] fires when serialization completes.
    pub fn transmit(&mut self, port: PortId, pkt: Packet) -> Result<(), TxError> {
        let now = self.core.now;
        let state = self.core.ports[self.node.0 as usize]
            .get_mut(port.index())
            .and_then(|s| s.as_mut())
            .filter(|s| s.up)
            .ok_or(TxError::Unconnected)?;
        if state.busy_until > now {
            return Err(TxError::Busy);
        }
        let ser = SimTime(serialization_ps(pkt.wire_size(), state.spec.rate_bps));
        let idle_at = now + ser;
        let arrive_at = idle_at + state.spec.propagation;
        state.busy_until = idle_at;
        let peer = state.peer;
        self.core.push(
            idle_at,
            EventKind::PortIdle {
                node: self.node,
                port,
            },
        );
        match peer {
            Peer::Local(peer_node, peer_port) => {
                let slot = self.core.store_packet(pkt);
                self.core.push(
                    arrive_at,
                    EventKind::Arrival {
                        node: peer_node,
                        port: peer_port,
                        slot,
                    },
                );
            }
            // Boundary port: the packet leaves this shard. Park it in
            // the outbox with its arrival time; the exchange injects it
            // into the destination world at the next epoch barrier
            // (arrive_at ≥ now + min cross-shard propagation ≥ the
            // barrier — the conservative-lookahead safety condition).
            Peer::Remote(to) => {
                self.core.outbox.push(BoundaryMsg::Packet {
                    at: arrive_at,
                    to,
                    pkt,
                });
            }
        }
        Ok(())
    }

    /// Fire [`Node::on_timer`] on this node after `delay` with `token`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        let at = self.core.now + delay;
        self.core.push(
            at,
            EventKind::Timer {
                node: self.node,
                token,
            },
        );
    }

    /// Flip the administrative link state of `port` — and of the peer's
    /// mirrored port, so both endpoints agree, as a physical link flap
    /// would make them. Returns `false` (no-op) if the port was never
    /// wired. In-flight packets are unaffected; new transmissions on a
    /// downed link fail with [`TxError::Unconnected`] from either side.
    pub fn set_link_up(&mut self, port: PortId, up: bool) -> bool {
        let Some(state) = self.core.ports[self.node.0 as usize]
            .get_mut(port.index())
            .and_then(|s| s.as_mut())
        else {
            return false;
        };
        state.up = up;
        let peer = state.peer;
        match peer {
            Peer::Local(peer_node, peer_port) => {
                if let Some(peer) = self.core.ports[peer_node.0 as usize]
                    .get_mut(peer_port.index())
                    .and_then(|s| s.as_mut())
                {
                    peer.up = up;
                }
            }
            // The mirrored flip lives in another shard: issue it as an
            // exchange control message, applied at the next barrier.
            Peer::Remote(to) => {
                let at = self.core.now;
                self.core.outbox.push(BoundaryMsg::LinkSet { at, to, up });
            }
        }
        true
    }

    /// Schedule a [`Node::on_port_idle`] for the peer of `port` at the
    /// current time — the "carrier returned" kick after a link comes back
    /// up, letting the far end restart its transmit pump. No-op on an
    /// unwired or downed port.
    pub fn wake_peer(&mut self, port: PortId) {
        let Some(state) = self.port(port).filter(|s| s.up) else {
            return;
        };
        match state.peer {
            Peer::Local(peer_node, peer_port) => {
                self.core.push(
                    self.core.now,
                    EventKind::PortIdle {
                        node: peer_node,
                        port: peer_port,
                    },
                );
            }
            Peer::Remote(to) => {
                let at = self.core.now;
                self.core.outbox.push(BoundaryMsg::Wake { at, to });
            }
        }
    }

    /// Fire [`Node::on_timer`] at absolute time `at` (clamped to now).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        let at = at.max(self.core.now);
        self.core.push(
            at,
            EventKind::Timer {
                node: self.node,
                token,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocescale_packet::{EthMeta, MacAddr, Packet, PacketKind};

    /// A node that sends `count` raw frames back-to-back and records what
    /// it receives.
    struct Chatter {
        to_send: u32,
        sent: u32,
        received: Vec<(SimTime, u64)>,
        timers: Vec<u64>,
    }

    impl Chatter {
        fn new(to_send: u32) -> Chatter {
            Chatter {
                to_send,
                sent: 0,
                received: Vec::new(),
                timers: Vec::new(),
            }
        }

        fn pump(&mut self, ctx: &mut Ctx<'_>) {
            while self.sent < self.to_send {
                let id = ctx.next_packet_id();
                let pkt = Packet::new(
                    id,
                    EthMeta {
                        src: MacAddr::from_id(0),
                        dst: MacAddr::from_id(1),
                        vlan: None,
                    },
                    None,
                    PacketKind::Raw {
                        label: 0,
                        size: 1000,
                    },
                    ctx.now().as_ps(),
                );
                match ctx.transmit(PortId(0), pkt) {
                    Ok(()) => self.sent += 1,
                    Err(TxError::Busy) => break,
                    Err(TxError::Unconnected) => panic!("unconnected"),
                }
            }
        }
    }

    impl Node for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.pump(ctx);
        }
        fn on_packet(&mut self, _port: PortId, pkt: Packet, ctx: &mut Ctx<'_>) {
            self.received.push((ctx.now(), pkt.id));
        }
        fn on_port_idle(&mut self, _port: PortId, ctx: &mut Ctx<'_>) {
            self.pump(ctx);
        }
        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
            self.timers.push(token);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_world_on(engine: EngineKind, count: u32) -> (World, NodeId, NodeId) {
        let mut w = World::new_with_engine(7, engine);
        let a = w.add_node(Box::new(Chatter::new(count)));
        let b = w.add_node(Box::new(Chatter::new(0)));
        w.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkSpec::with_length(10_000_000_000, 100),
        );
        (w, a, b)
    }

    fn two_node_world(count: u32) -> (World, NodeId, NodeId) {
        two_node_world_on(EngineKind::Wheel, count)
    }

    #[test]
    fn engines_dispatch_identically() {
        let run = |engine| {
            let (mut w, a, b) = two_node_world_on(engine, 200);
            w.run_until_idle(100_000);
            (
                w.dispatch_digest(),
                w.events_processed(),
                w.node::<Chatter>(b).received.clone(),
                w.node::<Chatter>(a).sent,
            )
        };
        let wheel = run(EngineKind::Wheel);
        let heap = run(EngineKind::BinaryHeap);
        assert_eq!(wheel, heap, "wheel and heap must be trace-identical");
    }

    #[test]
    fn packet_slab_recycles_slots() {
        let (mut w, _a, _b) = two_node_world(500);
        assert!(w.run_until_idle(100_000));
        // 500 packets flowed but at most a handful were in flight at
        // once, so the slab stayed small instead of growing per packet.
        assert!(
            w.packet_slab_len() < 16,
            "slab grew to {}",
            w.packet_slab_len()
        );
        assert_eq!(w.packet_slab_free(), w.packet_slab_len());
    }

    /// Batched and single-step dispatch must be indistinguishable: same
    /// digest, same event count, same delivered packets — on both
    /// engines. (The full-stack version of this differential runs the
    /// paper incast in `tests/golden_trace.rs`.)
    #[test]
    fn dispatch_modes_are_trace_identical() {
        let run = |engine, mode| {
            let (mut w, a, b) = two_node_world_on(engine, 200);
            w.set_dispatch_mode(mode);
            assert_eq!(w.dispatch_mode(), mode);
            w.run_until_idle(100_000);
            (
                w.dispatch_digest(),
                w.events_processed(),
                w.node::<Chatter>(b).received.clone(),
                w.node::<Chatter>(a).sent,
            )
        };
        for engine in [EngineKind::Wheel, EngineKind::BinaryHeap] {
            assert_eq!(
                run(engine, DispatchMode::Batched),
                run(engine, DispatchMode::SingleStep),
                "{engine:?}"
            );
        }
    }

    /// An event budget that truncates a same-timestamp batch must stop
    /// exactly at the budget and resume in order.
    #[test]
    fn run_until_idle_budget_truncates_batches_exactly() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Chatter::new(0)));
        for token in 0..10u64 {
            w.schedule_timer(SimTime::from_nanos(50), a, token);
        }
        // Budget 4: the Start event plus three same-time timers.
        assert!(!w.run_until_idle(4));
        assert_eq!(w.node::<Chatter>(a).timers, vec![0, 1, 2]);
        assert!(w.run_until_idle(100));
        assert_eq!(w.node::<Chatter>(a).timers, (0..10).collect::<Vec<_>>());
        assert_eq!(w.events_processed(), 11);
    }

    /// With profiling on, the batched path fills the events-per-batch
    /// histogram and per-kind counts stay exact.
    #[test]
    fn profile_batch_histogram_fills_under_batched_dispatch() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Chatter::new(0)));
        w.set_profile_mode(ProfileMode::On);
        for token in 0..20u64 {
            w.schedule_timer(SimTime::from_nanos(50), a, token);
        }
        assert!(w.run_until_idle(1000));
        let p = w.event_profile();
        assert_eq!(p.counts, [1, 0, 0, 20]);
        assert_eq!(p.total_batches(), 2, "one Start batch, one timer batch");
        assert_eq!(p.batches[0], 1, "the lone Start event");
        assert_eq!(p.batches[4], 1, "20 timers land in the 16-31 bucket");
        assert!(p.ns_per_event(3) > 0.0);
        assert_eq!(p.ns_per_event(1), 0.0, "no arrivals dispatched");
    }

    #[test]
    fn digest_off_dispatches_identically() {
        let run = |mode| {
            let (mut w, a, b) = two_node_world(200);
            w.set_digest_mode(mode);
            assert_eq!(w.digest_mode(), mode);
            w.run_until_idle(100_000);
            (
                w.events_processed(),
                w.node::<Chatter>(b).received.clone(),
                w.node::<Chatter>(a).sent,
                w.dispatch_digest(),
            )
        };
        let on = run(DigestMode::On);
        let off = run(DigestMode::Off);
        // Same events, same arrivals, same results — only the
        // fingerprint differs (off stays at the FNV offset basis).
        assert_eq!(on.0, off.0);
        assert_eq!(on.1, off.1);
        assert_eq!(on.2, off.2);
        assert_ne!(on.3, FNV_OFFSET, "on-mode must fold events");
        assert_eq!(off.3, FNV_OFFSET, "off-mode must not fold events");
    }

    #[test]
    fn compact_bounds_slab_memory() {
        let (mut w, _a, _b) = two_node_world(500);
        assert!(w.run_until_idle(100_000));
        let peak = w.packet_slab_capacity();
        assert!(peak > 0);
        w.compact();
        // At quiescence every packet has been consumed, so compaction
        // empties the slab entirely.
        assert_eq!(w.packet_slab_len(), 0);
        assert!(w.packet_slab_capacity() <= peak);
        assert_eq!(w.packet_slab_free(), 0);
        // Compacting must not perturb replay: a compacted world resumed
        // mid-run produces the same trace as an untouched one.
        let traced = |compact_at: Option<SimTime>| {
            let (mut w, _a, b) = two_node_world(300);
            if let Some(t) = compact_at {
                w.run_until(t);
                w.compact();
            }
            w.run_until_idle(100_000);
            (w.dispatch_digest(), w.node::<Chatter>(b).received.clone())
        };
        assert_eq!(traced(None), traced(Some(SimTime::from_micros(50))));
    }

    #[test]
    fn packets_arrive_after_ser_plus_prop() {
        let (mut w, _a, b) = two_node_world(1);
        assert!(w.run_until_idle(1000));
        let rx = &w.node::<Chatter>(b).received;
        assert_eq!(rx.len(), 1);
        // 1000 B at 10 Gb/s = 800 ns; 100 m = 500 ns.
        assert_eq!(rx[0].0, SimTime::from_nanos(1300));
    }

    #[test]
    fn port_serializes_back_to_back() {
        let (mut w, _a, b) = two_node_world(3);
        assert!(w.run_until_idle(1000));
        let rx = &w.node::<Chatter>(b).received;
        assert_eq!(rx.len(), 3);
        // Successive arrivals are exactly one serialization apart.
        assert_eq!((rx[1].0 - rx[0].0).as_nanos(), 800);
        assert_eq!((rx[2].0 - rx[1].0).as_nanos(), 800);
    }

    #[test]
    fn transmit_while_busy_is_rejected() {
        struct Greedy {
            results: Vec<Result<(), TxError>>,
        }
        impl Node for Greedy {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let mk = |id| {
                    Packet::new(
                        id,
                        EthMeta {
                            src: MacAddr::from_id(0),
                            dst: MacAddr::from_id(1),
                            vlan: None,
                        },
                        None,
                        PacketKind::Raw {
                            label: 0,
                            size: 500,
                        },
                        0,
                    )
                };
                self.results.push(ctx.transmit(PortId(0), mk(1)));
                self.results.push(ctx.transmit(PortId(0), mk(2)));
                self.results.push(ctx.transmit(PortId(1), mk(3)));
            }
            fn on_packet(&mut self, _: PortId, _: Packet, _: &mut Ctx<'_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Greedy { results: vec![] }));
        let b = w.add_node(Box::new(Chatter::new(0)));
        w.connect(a, PortId(0), b, PortId(0), LinkSpec::server_40g());
        w.run_until_idle(100);
        let r = &w.node::<Greedy>(a).results;
        assert_eq!(r[0], Ok(()));
        assert_eq!(r[1], Err(TxError::Busy));
        assert_eq!(r[2], Err(TxError::Unconnected));
    }

    #[test]
    fn timers_fire_in_order_with_ties_broken_by_schedule_order() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Chatter::new(0)));
        w.schedule_timer(SimTime::from_nanos(50), a, 2);
        w.schedule_timer(SimTime::from_nanos(50), a, 3);
        w.schedule_timer(SimTime::from_nanos(10), a, 1);
        assert!(w.run_until_idle(100));
        assert_eq!(w.node::<Chatter>(a).timers, vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut w, _a, b) = two_node_world(50);
            w.run_until_idle(10_000);
            w.node::<Chatter>(b).received.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut w, a, b) = two_node_world(1000);
        w.run_until(SimTime::from_micros(10));
        assert_eq!(w.now(), SimTime::from_micros(10));
        let got = w.node::<Chatter>(b).received.len();
        assert!(got > 0 && got < 1000, "partial progress, got {got}");
        // Resuming continues where we left off.
        w.run_until(SimTime::from_millis(1));
        assert_eq!(w.node::<Chatter>(b).received.len(), 1000);
        assert_eq!(w.node::<Chatter>(a).sent, 1000);
    }
}
