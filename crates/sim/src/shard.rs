//! Conservative-lookahead sharded execution: several [`World`]s — one
//! per topology shard — advanced in lock-step epochs with boundary
//! traffic exchanged at epoch barriers.
//!
//! # The conservative exchange
//!
//! Cross-shard links are declared with [`World::connect_remote`]; the
//! smallest propagation delay over all of them is the exchange's
//! **lookahead** `L`. Simulated time is cut into windows aligned to the
//! `L`-grid: each epoch advances every shard from the common horizon
//! `h` to `we = (⌊h/L⌋+1)·L` (clamped to the caller's deadline). A
//! packet that finishes serializing onto a boundary link at time
//! `s ∈ (h, we]` arrives at the far end no earlier than `s + L > we` —
//! strictly beyond the barrier — so delivering the collected messages
//! *before* the next window starts can never schedule into a shard's
//! past. That is the whole safety argument; no rollback, no
//! anti-messages.
//!
//! # Determinism
//!
//! Three properties make sharded runs digest-pinnable:
//!
//! 1. **Barrier totality.** Every shard reaches the barrier before any
//!    boundary message is routed, so the inter-shard schedule is a pure
//!    function of the partition, never of thread timing.
//! 2. **Fixed merge order.** Outboxes are drained in shard order and
//!    messages stamped with a monotone exchange sequence; delivery
//!    sorts by `(time, seq)` — the same tie-break discipline the event
//!    queue itself uses.
//! 3. **Fixed digest fold.** [`ShardedWorld::dispatch_digest`] folds
//!    per-shard digests in shard order with the dispatch digest's own
//!    FNV-1a fold ([`digest_fold`]); a single-shard run degenerates to
//!    the plain world digest, which is how the golden trace re-pins
//!    under `ExecutionProfile::Sharded { shards: 1 }`.
//!
//! Worker threads therefore produce *byte-identical* results to
//! advancing the shards serially ([`ShardedWorld::set_threaded`] is a
//! differential-testing knob, not a semantic one): within an epoch the
//! shards share no state, and everything that crosses the boundary is
//! ordered at the barrier.

use std::time::Instant;

use crate::time::SimTime;
use crate::world::{digest_fold, BoundaryMsg, World};

/// Per-shard packet-id namespace: shard `s` allocates ids from
/// `s << PACKET_ID_SHARD_SHIFT`. Shard 0's base of 0 keeps its id
/// stream identical to a non-sharded world's (load-bearing for the
/// single-shard golden-digest guarantee); 2^48 ids per shard is
/// unreachable in any feasible run.
pub const PACKET_ID_SHARD_SHIFT: u32 = 48;

/// How the exchange paces its epoch cursor across the lookahead grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EpochPacing {
    /// Execute every grid window between the horizon and the deadline,
    /// busy or not. This was the only mode before adaptive skipping
    /// landed; it survives as the differential-testing reference the
    /// skipping property tests compare against.
    Dense,
    /// At each barrier, peek every shard's next event time and the
    /// earliest undelivered boundary message. When neither falls inside
    /// the next window, jump the horizon straight to the start of the
    /// grid window containing the earliest work (or to the deadline if
    /// there is none), counting the windows stepped over in
    /// [`ShardStats::epochs_skipped`].
    ///
    /// Skipping is physics-free by construction: an empty window's
    /// execution only advances per-shard clocks (no events dispatch, no
    /// RNG draws, no digest folds), delivery inside it is vacuous (the
    /// earliest pending message lies beyond the window), and collection
    /// finds empty outboxes. The conservative-lookahead safety argument
    /// is untouched — a boundary message *produced* in a window can only
    /// *land* beyond it, and no window with work is ever skipped.
    #[default]
    Adaptive,
}

/// Exchange bookkeeping snapshot: windows actually executed, windows
/// the adaptive pacer stepped over, and boundary messages carried. For
/// any fixed drive pattern, `epochs_executed + epochs_skipped` equals
/// the epoch count a [`EpochPacing::Dense`] run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Grid windows delivered/advanced/collected.
    pub epochs_executed: u64,
    /// Grid windows the adaptive pacer jumped over without a barrier.
    pub epochs_skipped: u64,
    /// Boundary messages carried across shards.
    pub boundary_messages: u64,
}

/// A set of per-shard [`World`]s advanced in conservative-lookahead
/// epochs with deterministic boundary-message exchange. See the module
/// docs for the safety and determinism arguments.
pub struct ShardedWorld {
    worlds: Vec<World>,
    /// Min propagation over all cross-shard links — the epoch window
    /// grid. `None` when no world has a remote port (independent
    /// shards, or a single shard): epochs then span the whole
    /// `run_until` deadline.
    lookahead: Option<SimTime>,
    /// Common simulated time every shard has reached.
    horizon: SimTime,
    /// Collected boundary messages not yet delivered, sorted by
    /// `(time, exchange seq)`.
    pending: Vec<(SimTime, u64, BoundaryMsg)>,
    /// Monotone stamp assigned at collection (shard order, outbox
    /// order) — the deterministic tie-break for equal-time messages.
    next_seq: u64,
    epochs: u64,
    skipped: u64,
    exchanged: u64,
    wall_nanos: Vec<u64>,
    threaded: bool,
    pacing: EpochPacing,
}

impl ShardedWorld {
    /// Wrap per-shard worlds (index = shard id). Derives the lookahead
    /// from the worlds' cross-shard links and offsets each world's
    /// packet-id allocator into its shard namespace — so construction
    /// must happen before any packet is allocated.
    ///
    /// Panics if no world is supplied, or if boundary links exist with
    /// zero propagation delay (a zero lookahead would make the window
    /// grid degenerate).
    pub fn new(worlds: Vec<World>) -> ShardedWorld {
        assert!(!worlds.is_empty(), "at least one shard world required");
        let mut worlds = worlds;
        for (s, w) in worlds.iter_mut().enumerate() {
            w.set_packet_id_base((s as u64) << PACKET_ID_SHARD_SHIFT);
        }
        let lookahead = worlds
            .iter()
            .filter_map(|w| w.min_remote_propagation())
            .min();
        if let Some(l) = lookahead {
            assert!(
                l > SimTime::ZERO,
                "cross-shard links must have nonzero propagation (conservative lookahead)"
            );
        }
        let n = worlds.len();
        ShardedWorld {
            worlds,
            lookahead,
            horizon: SimTime::ZERO,
            pending: Vec::new(),
            next_seq: 0,
            epochs: 0,
            skipped: 0,
            exchanged: 0,
            wall_nanos: vec![0; n],
            threaded: n > 1,
            pacing: EpochPacing::default(),
        }
    }

    /// Drive every shard's worker on its own OS thread (the default for
    /// multi-shard sets) or advance them serially on the caller's
    /// thread. Results are byte-identical either way — this is the
    /// differential-testing knob the determinism tests sweep.
    pub fn set_threaded(&mut self, threaded: bool) {
        self.threaded = threaded;
    }

    /// Choose between dense grid pacing and adaptive epoch skipping
    /// (the default). Like `set_threaded`, this is a differential knob:
    /// the two modes dispatch byte-identical event streams — only the
    /// barrier count differs.
    pub fn set_pacing(&mut self, pacing: EpochPacing) {
        self.pacing = pacing;
    }

    /// The active pacing mode.
    pub fn pacing(&self) -> EpochPacing {
        self.pacing
    }

    /// Advance all shards to `deadline`, running exchange epochs as
    /// needed. Boundary messages timestamped beyond `deadline` stay
    /// pending for the next call — exactly as an in-queue event beyond
    /// the deadline would stay pending in a single world.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.worlds.len() == 1 {
            // Degenerate exchange: one shard, no boundary, one "epoch"
            // spanning the whole call. The world sees the exact same
            // `run_until` it would outside the wrapper.
            debug_assert!(self.pending.is_empty(), "boundary messages with one shard");
            self.advance(deadline);
            self.collect();
            self.horizon = deadline;
            return;
        }
        while self.horizon < deadline {
            let we = self.window_end(deadline);
            if self.pacing == EpochPacing::Adaptive {
                if let Some(l) = self.lookahead.map(SimTime::as_ps) {
                    let next = self.next_work_time();
                    if next.is_none_or(|t| t > we) {
                        // Nothing lands in (horizon, we]: jump to the
                        // start of the grid window holding the earliest
                        // work, or drain straight to the deadline.
                        let target = match next {
                            Some(t) if t <= deadline => SimTime(((t.as_ps() - 1) / l) * l),
                            _ => deadline,
                        };
                        self.skipped += dense_steps(self.horizon, target, l);
                        self.horizon = target;
                        continue;
                    }
                }
            }
            self.deliver(we);
            self.advance(we);
            self.collect();
            self.horizon = we;
            self.epochs += 1;
        }
    }

    /// Earliest thing any shard has to do: the minimum over every
    /// shard's next queued event and the earliest undelivered boundary
    /// message. `None` means the whole set is drained.
    fn next_work_time(&mut self) -> Option<SimTime> {
        let queued = self
            .worlds
            .iter_mut()
            .filter_map(World::next_event_time)
            .min();
        let pending = self.pending.first().map(|&(at, _, _)| at);
        match (queued, pending) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// End of the epoch window starting at the current horizon: the
    /// next `lookahead`-grid line, clamped to the caller's deadline.
    /// Grid alignment (rather than `horizon + L`) makes epoch
    /// boundaries independent of the `run_until` call pattern, so
    /// chunked and one-shot drives produce identical exchanges.
    fn window_end(&self, deadline: SimTime) -> SimTime {
        match self.lookahead {
            None => deadline,
            Some(l) => {
                let l = l.as_ps();
                SimTime((self.horizon.as_ps() / l + 1) * l).min(deadline)
            }
        }
    }

    /// Route every pending message timestamped at or before `upto` into
    /// its destination shard. Packets become ordinary arrival events at
    /// their precomputed time (always in the destination's future — the
    /// lookahead guarantee). Administrative messages apply at the
    /// barrier: link flips mutate port state directly, wakes are
    /// clamped to the destination clock.
    fn deliver(&mut self, upto: SimTime) {
        let n = self.pending.partition_point(|&(at, _, _)| at <= upto);
        for (at, _, msg) in self.pending.drain(..n) {
            match msg {
                BoundaryMsg::Packet { at, to, pkt } => {
                    self.worlds[to.shard as usize].inject_arrival(at, to.node, to.port, pkt);
                }
                BoundaryMsg::LinkSet { to, up, .. } => {
                    self.worlds[to.shard as usize].apply_remote_link(to.node, to.port, up);
                }
                BoundaryMsg::Wake { to, .. } => {
                    let w = &mut self.worlds[to.shard as usize];
                    let t = at.max(w.now());
                    w.inject_port_idle(t, to.node, to.port);
                }
            }
        }
    }

    /// Advance every shard to `deadline` — in parallel on scoped worker
    /// threads, or serially. Shards share no state within a window, so
    /// the two modes are observationally identical; per-shard handler
    /// wall-clock is accumulated either way.
    fn advance(&mut self, deadline: SimTime) {
        if self.threaded && self.worlds.len() > 1 {
            std::thread::scope(|scope| {
                for (world, wall) in self.worlds.iter_mut().zip(self.wall_nanos.iter_mut()) {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        world.run_until(deadline);
                        *wall += t0.elapsed().as_nanos() as u64;
                    });
                }
            });
        } else {
            for (world, wall) in self.worlds.iter_mut().zip(self.wall_nanos.iter_mut()) {
                let t0 = Instant::now();
                world.run_until(deadline);
                *wall += t0.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Drain every shard's outbox — in shard order, preserving each
    /// outbox's issue order — stamping messages with the exchange
    /// sequence, then restore the pending queue's `(time, seq)` sort.
    fn collect(&mut self) {
        for world in &mut self.worlds {
            for msg in world.take_outbox() {
                self.pending.push((msg.at(), self.next_seq, msg));
                self.next_seq += 1;
                self.exchanged += 1;
            }
        }
        self.pending.sort_by_key(|&(at, seq, _)| (at, seq));
    }

    /// Global dispatch digest: per-shard digests folded in shard order
    /// with the dispatch digest's own byte fold. With one shard this is
    /// *exactly* the plain world digest.
    pub fn dispatch_digest(&self) -> u64 {
        let mut it = self.worlds.iter();
        let mut h = it.next().expect("nonempty").dispatch_digest();
        for w in it {
            h = digest_fold(h, w.dispatch_digest());
        }
        h
    }

    /// Total events dispatched across all shards.
    pub fn events_processed(&self) -> u64 {
        self.worlds.iter().map(|w| w.events_processed()).sum()
    }

    /// Exchange epochs actually executed (0 for single-shard runs —
    /// there is no exchange to run). Windows the adaptive pacer jumped
    /// over are counted separately in [`ShardedWorld::epochs_skipped`].
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Grid windows the adaptive pacer stepped over without running a
    /// barrier. `epochs() + epochs_skipped()` equals the dense-grid
    /// epoch count for the same drive pattern.
    pub fn epochs_skipped(&self) -> u64 {
        self.skipped
    }

    /// Snapshot of the exchange bookkeeping.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            epochs_executed: self.epochs,
            epochs_skipped: self.skipped,
            boundary_messages: self.exchanged,
        }
    }

    /// Boundary messages carried across shards so far.
    pub fn boundary_messages(&self) -> u64 {
        self.exchanged
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.worlds.len()
    }

    /// Per-shard wall-clock spent inside `run_until`, nanoseconds —
    /// the load-balance signal the scale bench reports.
    pub fn shard_wall_nanos(&self) -> &[u64] {
        &self.wall_nanos
    }

    /// The exchange lookahead (min cross-shard propagation), if any
    /// boundary links exist.
    pub fn lookahead(&self) -> Option<SimTime> {
        self.lookahead
    }

    /// Common simulated time all shards have reached.
    pub fn now(&self) -> SimTime {
        self.horizon
    }

    /// Borrow shard `i`'s world.
    pub fn world(&self, i: usize) -> &World {
        &self.worlds[i]
    }

    /// Mutably borrow shard `i`'s world (wiring, node inspection).
    pub fn world_mut(&mut self, i: usize) -> &mut World {
        &mut self.worlds[i]
    }

    /// All shard worlds, in shard order.
    pub fn worlds(&self) -> &[World] {
        &self.worlds
    }
}

/// Number of dense grid windows a [`EpochPacing::Dense`] drive would
/// execute to move the horizon from `from` to `to`: one per grid line
/// crossed, plus the (possibly partial) window reaching `to`. `from` is
/// either grid-aligned or a previous deadline; either way the dense
/// loop's first window ends at the next grid line after `⌊from/l⌋·l`.
fn dense_steps(from: SimTime, to: SimTime, l: u64) -> u64 {
    let base = (from.as_ps() / l) * l;
    (to.as_ps() - base).div_ceil(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Ctx, LinkSpec, Node, NodeId, PortId, RemotePort};
    use rocescale_packet::{EthMeta, MacAddr, Packet, PacketKind};
    use std::any::Any;

    fn spec() -> LinkSpec {
        LinkSpec {
            rate_bps: 40_000_000_000,
            propagation: SimTime::from_nanos(500),
        }
    }

    fn pkt(id: u64) -> Packet {
        Packet::new(
            id,
            EthMeta {
                src: MacAddr::from_id(1),
                dst: MacAddr::from_id(2),
                vlan: None,
            },
            None,
            PacketKind::Raw {
                label: 7,
                size: 1000,
            },
            0,
        )
    }

    /// Sends `to_send` packets on port 0 at a fixed cadence.
    struct Pinger {
        to_send: u32,
        sent: u32,
        interval: SimTime,
        max_seen_id: u64,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.interval, 0);
        }
        fn on_packet(&mut self, _port: PortId, pkt: Packet, _ctx: &mut Ctx<'_>) {
            self.max_seen_id = self.max_seen_id.max(pkt.id);
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            if self.sent >= self.to_send {
                return;
            }
            let id = ctx.next_packet_id();
            if ctx.transmit(PortId(0), pkt(id)).is_ok() {
                self.sent += 1;
            }
            ctx.set_timer(self.interval, 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts arrivals and echoes every other packet back out port 0.
    struct Counter {
        received: u64,
        echo: bool,
        last_at: SimTime,
    }

    impl Node for Counter {
        fn on_packet(&mut self, _port: PortId, p: Packet, ctx: &mut Ctx<'_>) {
            self.received += 1;
            self.last_at = ctx.now();
            if self.echo && self.received.is_multiple_of(2) {
                // Freshly allocated id: exercises the echoing shard's
                // packet-id namespace.
                let id = ctx.next_packet_id();
                debug_assert_ne!(id, p.id);
                let _ = ctx.transmit(PortId(0), pkt(id));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Two shards wired by one boundary link: shard 0 holds the pinger,
    /// shard 1 the (echoing) counter.
    fn two_shard_pair(to_send: u32) -> ShardedWorld {
        let mut a = World::new(11);
        let pinger = a.add_node(Box::new(Pinger {
            to_send,
            sent: 0,
            interval: SimTime::from_nanos(700),
            max_seen_id: 0,
        }));
        a.connect_remote(
            pinger,
            PortId(0),
            spec(),
            RemotePort {
                shard: 1,
                node: NodeId(0),
                port: PortId(0),
            },
        );
        let mut b = World::new(12);
        let counter = b.add_node(Box::new(Counter {
            received: 0,
            echo: true,
            last_at: SimTime::ZERO,
        }));
        b.connect_remote(
            counter,
            PortId(0),
            spec(),
            RemotePort {
                shard: 0,
                node: NodeId(0),
                port: PortId(0),
            },
        );
        ShardedWorld::new(vec![a, b])
    }

    #[test]
    fn lookahead_is_min_remote_propagation() {
        let sw = two_shard_pair(1);
        assert_eq!(sw.lookahead(), Some(SimTime::from_nanos(500)));
        assert_eq!(sw.shard_count(), 2);
    }

    #[test]
    fn packets_cross_the_boundary_and_echo_back() {
        let mut sw = two_shard_pair(20);
        sw.run_until(SimTime::from_micros(100));
        let counter: &Counter = sw.world(1).node(NodeId(0));
        assert_eq!(counter.received, 20, "all pings crossed");
        let pinger: &Pinger = sw.world(0).node(NodeId(0));
        assert_eq!(pinger.sent, 20);
        // 20 pings + 10 echoes crossed the exchange.
        assert_eq!(sw.boundary_messages(), 30);
        assert!(sw.epochs() > 0);
        // First ping: timer at 700 ns + 200 ns serialization + 500 ns
        // propagation = 1.4 µs; last at 700*20 + 200 + 500.
        assert_eq!(counter.last_at, SimTime::from_nanos(700 * 20 + 200 + 500));
    }

    #[test]
    fn threaded_matches_serial_byte_for_byte() {
        let mut serial = two_shard_pair(40);
        serial.set_threaded(false);
        let mut threaded = two_shard_pair(40);
        threaded.set_threaded(true);
        // Chunked vs one-shot drive must not matter either (grid-aligned
        // windows): drive the serial run in uneven chunks.
        for us in [13u64, 57, 100, 250] {
            serial.run_until(SimTime::from_micros(us));
        }
        threaded.run_until(SimTime::from_micros(250));
        assert_eq!(serial.dispatch_digest(), threaded.dispatch_digest());
        assert_eq!(serial.events_processed(), threaded.events_processed());
        assert_eq!(serial.epochs(), threaded.epochs());
        assert_eq!(serial.boundary_messages(), threaded.boundary_messages());
        let a: &Counter = serial.world(1).node(NodeId(0));
        let b: &Counter = threaded.world(1).node(NodeId(0));
        assert_eq!((a.received, a.last_at), (b.received, b.last_at));
    }

    #[test]
    fn adaptive_skipping_matches_dense_byte_for_byte() {
        // The pinger goes quiet after 20 sends (~15 µs of traffic); the
        // remaining ~85 µs of grid windows have no work and must be
        // skipped without touching physics.
        let dur = SimTime::from_micros(100);
        let mut dense = two_shard_pair(20);
        dense.set_pacing(EpochPacing::Dense);
        dense.run_until(dur);
        let mut adaptive = two_shard_pair(20);
        assert_eq!(adaptive.pacing(), EpochPacing::Adaptive);
        adaptive.run_until(dur);

        assert_eq!(adaptive.dispatch_digest(), dense.dispatch_digest());
        assert_eq!(adaptive.events_processed(), dense.events_processed());
        assert_eq!(adaptive.boundary_messages(), dense.boundary_messages());
        let a: &Counter = dense.world(1).node(NodeId(0));
        let b: &Counter = adaptive.world(1).node(NodeId(0));
        assert_eq!((a.received, a.last_at), (b.received, b.last_at));

        assert_eq!(dense.epochs_skipped(), 0, "dense pacing never skips");
        assert!(
            adaptive.epochs() < dense.epochs(),
            "quiet tail must cut executed epochs ({} vs {})",
            adaptive.epochs(),
            dense.epochs()
        );
        assert!(adaptive.epochs_skipped() > 0);
        assert_eq!(
            adaptive.epochs() + adaptive.epochs_skipped(),
            dense.epochs(),
            "executed + skipped must account for every dense window"
        );
        assert_eq!(
            adaptive.stats(),
            ShardStats {
                epochs_executed: adaptive.epochs(),
                epochs_skipped: adaptive.epochs_skipped(),
                boundary_messages: adaptive.boundary_messages(),
            }
        );
    }

    #[test]
    fn skipping_is_invariant_to_the_drive_pattern() {
        // Grid-aligned chunk boundaries: the skip bookkeeping (not just
        // the physics) must match a one-shot drive.
        let mut chunked = two_shard_pair(20);
        for us in [13u64, 57, 100, 250] {
            chunked.run_until(SimTime::from_micros(us));
        }
        let mut oneshot = two_shard_pair(20);
        oneshot.run_until(SimTime::from_micros(250));
        assert_eq!(chunked.stats(), oneshot.stats());
        assert_eq!(chunked.dispatch_digest(), oneshot.dispatch_digest());
        assert_eq!(chunked.events_processed(), oneshot.events_processed());
    }

    #[test]
    fn a_timer_inside_a_quiet_span_forces_its_window_to_execute() {
        // Drain the traffic, then drop a bare timer into shard 1 deep
        // inside what would otherwise be one long skipped span: the
        // window holding it must execute (events advance), and dense
        // pacing must agree byte-for-byte.
        let run = |pacing: EpochPacing| {
            let mut sw = two_shard_pair(5);
            sw.set_pacing(pacing);
            sw.run_until(SimTime::from_micros(50));
            sw.world_mut(1)
                .schedule_timer(SimTime::from_micros(77), NodeId(0), 9);
            sw.run_until(SimTime::from_micros(100));
            (sw.dispatch_digest(), sw.events_processed(), sw.stats())
        };
        let dense = run(EpochPacing::Dense);
        let adaptive = run(EpochPacing::Adaptive);
        assert_eq!(adaptive.0, dense.0);
        assert_eq!(adaptive.1, dense.1);
        assert_eq!(
            adaptive.2.epochs_executed + adaptive.2.epochs_skipped,
            dense.2.epochs_executed
        );
        assert!(adaptive.2.epochs_skipped > 0);
    }

    #[test]
    fn single_shard_is_the_plain_world() {
        let build = || {
            let mut w = World::new(11);
            let pinger = w.add_node(Box::new(Pinger {
                to_send: 15,
                sent: 0,
                interval: SimTime::from_nanos(700),
                max_seen_id: 0,
            }));
            let counter = w.add_node(Box::new(Counter {
                received: 0,
                echo: true,
                last_at: SimTime::ZERO,
            }));
            w.connect(pinger, PortId(0), counter, PortId(0), spec());
            w
        };
        let mut plain = build();
        plain.run_until(SimTime::from_micros(80));
        let mut sharded = ShardedWorld::new(vec![build()]);
        sharded.run_until(SimTime::from_micros(80));
        assert_eq!(sharded.dispatch_digest(), plain.dispatch_digest());
        assert_eq!(sharded.events_processed(), plain.events_processed());
        assert_eq!(sharded.epochs(), 0, "no exchange with one shard");
        assert_eq!(sharded.boundary_messages(), 0);
    }

    #[test]
    fn shard_packet_ids_never_collide() {
        let mut sw = two_shard_pair(4);
        sw.run_until(SimTime::from_micros(20));
        // Shard 1's allocator started at 1 << 48, so every echo the
        // pinger received back carries an id in that namespace — while
        // shard 0's own ids (base 0) stayed small. No collisions.
        let base = 1u64 << PACKET_ID_SHARD_SHIFT;
        let counter: &Counter = sw.world(1).node(NodeId(0));
        assert_eq!(counter.received, 4);
        let pinger: &Pinger = sw.world(0).node(NodeId(0));
        assert!(
            pinger.max_seen_id >= base,
            "echo ids must come from shard 1's namespace (saw {:#x})",
            pinger.max_seen_id
        );
    }

    #[test]
    fn link_set_crosses_the_barrier() {
        let mut sw = two_shard_pair(1000);
        sw.run_until(SimTime::from_micros(5));
        let before: u64 = {
            let c: &Counter = sw.world(1).node(NodeId(0));
            c.received
        };
        assert!(before > 0);
        // Down shard 0's half of the boundary link (the exchange does
        // exactly this when the far side issues a `set_link_up(false)`):
        // the pinger keeps its cadence but `sent` stops advancing.
        sw.world_mut(0)
            .apply_remote_link(NodeId(0), PortId(0), false);
        let sent_at_cut: u32 = {
            let p: &Pinger = sw.world(0).node(NodeId(0));
            p.sent
        };
        sw.run_until(SimTime::from_micros(10));
        let p: &Pinger = sw.world(0).node(NodeId(0));
        assert_eq!(p.sent, sent_at_cut, "downed boundary link blocks transmit");
        // Bring it back; traffic resumes.
        sw.world_mut(0)
            .apply_remote_link(NodeId(0), PortId(0), true);
        sw.run_until(SimTime::from_micros(15));
        let p: &Pinger = sw.world(0).node(NodeId(0));
        assert!(p.sent > sent_at_cut);
    }
}
