//! Deterministic discrete-event simulation kernel for `rocescale`.
//!
//! The kernel is deliberately small: simulated time, an event queue, duplex
//! links, and a [`Node`] trait that switches and hosts implement. Every
//! interaction between nodes happens through packets scheduled on links —
//! nodes never call each other — which keeps the component crates
//! decoupled and the whole simulation reproducible.
//!
//! Determinism is load-bearing for this reproduction: the paper's
//! incidents (PFC deadlock, pause storms) are emergent interleavings, and
//! being able to replay them exactly from a seed is what makes them
//! testable. Two rules guarantee it:
//!
//! 1. Events are ordered by `(time, sequence-number)`, the sequence number
//!    being a monotone counter assigned at scheduling time, so simultaneous
//!    events fire in a defined order.
//! 2. All randomness flows from one seeded in-tree [`SimRng`] owned by
//!    the [`World`] — no external PRNG crate, so identical seeds give
//!    identical runs regardless of dependency version drift.
//!
//! The design follows smoltcp's event-driven philosophy: protocol logic
//! lives in plain state machines (see `rocescale-transport`,
//! `rocescale-dcqcn`), and nodes adapt them to this event loop. Per the
//! Tokio guidance on CPU-bound work, there is no async runtime here — the
//! simulation is a single-threaded computation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod rng;
pub mod sched;
mod shard;
mod time;
mod world;

pub use rng::SimRng;
pub use sched::{EngineKind, SchedStats};
pub use shard::{EpochPacing, ShardStats, ShardedWorld, PACKET_ID_SHARD_SHIFT};
pub use time::SimTime;
pub use world::{
    digest_fold, BoundaryMsg, Ctx, DigestMode, DispatchMode, EventProfile, LinkSpec, Node, NodeId,
    PortId, ProfileMode, RemotePort, TxError, World,
};

/// Speed of signal propagation in copper/fiber used for cable-length →
/// delay conversion: ~2/3 c ≈ 5 ns per metre.
pub const PROPAGATION_PS_PER_METER: u64 = 5_000;

/// Picoseconds to serialize `bytes` at `bps` bits/second.
#[inline]
pub fn serialization_ps(bytes: u32, bps: u64) -> u64 {
    // `bytes * 8e12` fits u64 up to ~2.3 MB frames, which covers every
    // real wire size — so the per-transmit path stays in one u64
    // division instead of a u128 libcall. Results are bit-identical.
    const PS_PER_BYTE_NUM: u64 = 8 * 1_000_000_000_000;
    if let Some(num) = (bytes as u64).checked_mul(PS_PER_BYTE_NUM) {
        num / bps
    } else {
        ((bytes as u128) * PS_PER_BYTE_NUM as u128 / bps as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_examples() {
        // 1086-byte frame at 40 Gb/s = 217.2 ns.
        assert_eq!(serialization_ps(1086, 40_000_000_000), 217_200);
        // 64-byte frame at 10 Gb/s = 51.2 ns.
        assert_eq!(serialization_ps(64, 10_000_000_000), 51_200);
    }

    #[test]
    fn propagation_300m() {
        // The paper's max Leaf–Spine cable: 300 m ≈ 1.5 µs one way.
        assert_eq!(300 * PROPAGATION_PS_PER_METER, 1_500_000);
    }
}
