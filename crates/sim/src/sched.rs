//! The event engine: a hierarchical timer wheel with a sorted overflow
//! level, plus a reference binary-heap engine for differential testing.
//!
//! # Why a wheel
//!
//! Every packet arrival, port-idle, and protocol timer in the fleet goes
//! through this queue. A global `BinaryHeap` costs O(log n) per operation
//! with poor cache locality once the heap spans thousands of in-flight
//! events (a Clos incast easily does). Calendar-queue/timer-wheel engines
//! — the structure used by htsim-style packet simulators and by kernel
//! timer subsystems — make push and pop amortized O(1) by bucketing the
//! near future into slots of a fixed tick.
//!
//! # Layout
//!
//! Time is bucketed into ticks of 2^12 ps (≈4.1 ns, finer than any
//! serialization delay the paper's link speeds produce). Four levels of
//! 256 slots each cover 2^(12+32) ps ≈ 17.6 s of simulated future —
//! beyond that, events go to a sorted overflow heap (far-future watchdog
//! deadlines live there; they are rare by construction). An event's level
//! is the highest bit in which its tick differs from the wheel cursor, so
//! cascades re-bucket a slot exactly when the cursor enters its span.
//!
//! # Determinism
//!
//! Dispatch order is *identical* to the binary heap's: globally sorted by
//! `(time, seq)` where `seq` is a monotone counter assigned at push. A
//! collected slot is sorted once into a ready list (bounded by slot
//! occupancy, not queue depth), so same-timestamp events still fire in
//! strict FIFO schedule order and every scenario trace is bit-identical
//! across both engines.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// log2 of the tick in picoseconds: 4096 ps ≈ 4.1 ns.
const TICK_SHIFT: u32 = 12;
/// log2 of slots per level.
const LEVEL_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels; spans `2^(TICK_SHIFT + LEVELS*LEVEL_BITS)` ps of future.
const LEVELS: usize = 4;
/// Bitmap words per level (256 slots / 64).
const BM_WORDS: usize = SLOTS / 64;

/// Handle returned by [`EventQueue::push`]; pass to
/// [`EventQueue::cancel`] to revoke the event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// Which engine backs an [`EventQueue`] (and a [`crate::World`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Hierarchical timer wheel — the default.
    #[default]
    Wheel,
    /// Global binary heap — the original engine, kept as the reference
    /// implementation for differential tests and benchmarks.
    BinaryHeap,
}

/// Engine-level counters, exposed through `World::sched_stats()` and the
/// monitor crate's engine report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events pushed over the queue's lifetime.
    pub pushed: u64,
    /// Events dispatched (popped) over the queue's lifetime.
    pub dispatched: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// Entries re-bucketed from a higher wheel level to a lower one.
    pub cascades: u64,
    /// Entries migrated from the sorted overflow level into the wheel.
    pub overflow_migrations: u64,
    /// Entries pushed directly into the sorted overflow level because
    /// their deadline was beyond the wheel's horizon.
    pub overflow_pushed: u64,
    /// Peak number of simultaneously pending events.
    pub max_occupancy: u64,
}

struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A priority queue of `(SimTime, T)` dispatching in `(time, insertion
/// order)` — the simulator's event queue. Backed by either engine.
pub struct EventQueue<T> {
    engine: Engine<T>,
    /// Monotone sequence counter; the FIFO tie-break for equal times.
    next_seq: u64,
    /// Live (non-cancelled) pending events.
    len: usize,
    /// Lazily-removed cancelled seqs still physically queued.
    tombstones: HashSet<u64>,
    /// Pending seqs — maintained only for queues built with
    /// [`Self::with_cancellation`], so the plain hot path pays nothing.
    live: Option<HashSet<u64>>,
    stats: SchedStats,
}

enum Engine<T> {
    // Boxed: the wheel's inline arrays dwarf the heap variant, and there
    // is exactly one `Engine` per world, so the indirection is free.
    Wheel(Box<Wheel<T>>),
    Heap(BinaryHeap<Reverse<Entry<T>>>),
}

impl<T> EventQueue<T> {
    /// An empty queue on the given engine.
    pub fn new(kind: EngineKind) -> EventQueue<T> {
        let engine = match kind {
            EngineKind::Wheel => Engine::Wheel(Box::new(Wheel::new())),
            EngineKind::BinaryHeap => Engine::Heap(BinaryHeap::new()),
        };
        EventQueue {
            engine,
            next_seq: 0,
            len: 0,
            tombstones: HashSet::new(),
            live: None,
            stats: SchedStats::default(),
        }
    }

    /// An empty queue that additionally tracks pending events so
    /// [`Self::cancel`] can distinguish pending from already-fired
    /// handles. Costs one hash-set insert/remove per event.
    pub fn with_cancellation(kind: EngineKind) -> EventQueue<T> {
        let mut q = EventQueue::new(kind);
        q.live = Some(HashSet::new());
        q
    }

    /// Which engine backs this queue.
    pub fn kind(&self) -> EngineKind {
        match self.engine {
            Engine::Wheel(_) => EngineKind::Wheel,
            Engine::Heap(_) => EngineKind::BinaryHeap,
        }
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Engine counters so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Schedule `item` at `time`. Events at equal times dispatch in push
    /// order. Returns a handle usable with [`Self::cancel`].
    ///
    /// `time` must be ≥ the time of the last popped event (the simulator
    /// never schedules into the past); pushing earlier is remapped to the
    /// current dispatch front rather than corrupting the wheel.
    pub fn push(&mut self, time: SimTime, item: T) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(live) = &mut self.live {
            live.insert(seq);
        }
        let entry = Entry { time, seq, item };
        match &mut self.engine {
            Engine::Wheel(w) => w.push(entry, &mut self.stats),
            Engine::Heap(h) => h.push(Reverse(entry)),
        }
        self.len += 1;
        self.stats.pushed += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.len as u64);
        EventHandle(seq)
    }

    /// Bulk-schedule a sweep of events, draining `items`. Equivalent to
    /// calling [`Self::push`] once per element in order — seqs are
    /// assigned in `items` order, so the resulting pop stream is
    /// byte-identical — but the wheel engine memoizes the last slot
    /// placement, so runs of same-tick events (the common shape of a
    /// dispatch batch's output: many transmissions scheduled from one
    /// timestamp) skip the level/slot/bitmap work after the first.
    pub fn push_bulk(&mut self, items: &mut Vec<(SimTime, T)>) {
        let n = items.len();
        match &mut self.engine {
            Engine::Wheel(w) => {
                let mut memo = None;
                for (time, item) in items.drain(..) {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if let Some(live) = &mut self.live {
                        live.insert(seq);
                    }
                    w.push_memo(Entry { time, seq, item }, &mut self.stats, &mut memo);
                }
            }
            Engine::Heap(h) => {
                for (time, item) in items.drain(..) {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if let Some(live) = &mut self.live {
                        live.insert(seq);
                    }
                    h.push(Reverse(Entry { time, seq, item }));
                }
            }
        }
        self.len += n;
        self.stats.pushed += n as u64;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.len as u64);
    }

    /// Cancel a pending event. Returns true if it had not yet fired or
    /// been cancelled; false for fired, cancelled, or unknown handles —
    /// and always false on queues not built with
    /// [`Self::with_cancellation`]. The entry is removed lazily at pop
    /// time (tombstoning), so cancel itself is O(1).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(live) = &mut self.live else {
            return false;
        };
        if !live.remove(&handle.0) {
            return false;
        }
        self.tombstones.insert(handle.0);
        self.len -= 1;
        self.stats.cancelled += 1;
        true
    }

    /// Time of the next event to dispatch, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_tombstones();
        match &mut self.engine {
            Engine::Wheel(w) => w.peek(&mut self.stats).map(|e| e.time),
            Engine::Heap(h) => h.peek().map(|Reverse(e)| e.time),
        }
    }

    /// Pop every event sharing the queue-front timestamp — a *batch* —
    /// appending them to `out` in exact `(time, seq)` dispatch order.
    /// Returns the number of events appended; 0 when the queue is empty,
    /// the front event is past `deadline`, or `limit` is 0. At most
    /// `limit` events are drained (a truncated batch resumes, in order,
    /// on the next call).
    ///
    /// This is the engine half of the world's same-tick dispatch
    /// batching: one front lookup amortizes over the whole run instead
    /// of a peek + pop round trip per event.
    ///
    /// Completeness on the wheel engine: `peek` collects the front
    /// level-0 slot into `ready`, after which every entry whose tick
    /// precedes the cursor — in particular every entry sharing the front
    /// *timestamp* — lives in `ready` (later same-time pushes land there
    /// too, via the `t < cursor` path in `push`). So draining
    /// `ready` while the tail's time matches cannot miss a same-time
    /// entry parked elsewhere in the wheel.
    pub fn pop_batch(
        &mut self,
        deadline: SimTime,
        limit: usize,
        out: &mut Vec<(SimTime, T)>,
    ) -> usize {
        if limit == 0 {
            return 0;
        }
        let Some(front) = self.peek_time() else {
            return 0;
        };
        if front > deadline {
            return 0;
        }
        if self.live.is_none() {
            // Fast path: no cancellation tracking (the simulator's own
            // queue), so tombstones cannot exist and the front run can
            // be drained without per-event set lookups.
            let start = out.len();
            match &mut self.engine {
                Engine::Wheel(w) => {
                    while out.len() - start < limit {
                        match w.ready.last() {
                            Some(e) if e.time == front => {
                                let e = w.ready.pop().expect("checked non-empty");
                                out.push((e.time, e.item));
                            }
                            _ => break,
                        }
                    }
                }
                Engine::Heap(h) => {
                    while out.len() - start < limit {
                        match h.peek() {
                            Some(Reverse(e)) if e.time == front => {
                                let Reverse(e) = h.pop().expect("checked non-empty");
                                out.push((e.time, e.item));
                            }
                            _ => break,
                        }
                    }
                }
            }
            let n = out.len() - start;
            self.len -= n;
            self.stats.dispatched += n as u64;
            n
        } else {
            // Cancellation-tracked queues stay on the per-event pop path
            // so tombstones are skipped exactly as single-step dispatch
            // would skip them.
            let mut n = 0;
            while n < limit && self.peek_time() == Some(front) {
                let (t, item) = self.pop().expect("peeked front must pop");
                out.push((t, item));
                n += 1;
            }
            n
        }
    }

    /// Pop the next event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.skip_tombstones();
        let e = match &mut self.engine {
            Engine::Wheel(w) => w.pop(&mut self.stats)?,
            Engine::Heap(h) => h.pop()?.0,
        };
        if let Some(live) = &mut self.live {
            live.remove(&e.seq);
        }
        self.len -= 1;
        self.stats.dispatched += 1;
        Some((e.time, e.item))
    }

    /// Physically drop cancelled entries sitting at the queue front so
    /// `peek`/`pop` see a live event.
    fn skip_tombstones(&mut self) {
        while !self.tombstones.is_empty() {
            let front_seq = match &mut self.engine {
                Engine::Wheel(w) => w.peek(&mut self.stats).map(|e| e.seq),
                Engine::Heap(h) => h.peek().map(|Reverse(e)| e.seq),
            };
            match front_seq {
                Some(seq) if self.tombstones.remove(&seq) => {
                    match &mut self.engine {
                        Engine::Wheel(w) => w.pop(&mut self.stats),
                        Engine::Heap(h) => h.pop().map(|Reverse(e)| e),
                    };
                }
                _ => break,
            }
        }
    }
}

/// The hierarchical wheel proper.
struct Wheel<T> {
    /// Next tick not yet collected: every entry with `tick < cursor` has
    /// been moved to `ready` (or dispatched).
    cursor: u64,
    /// `LEVELS × SLOTS` buckets. Buffers circulate between slots and
    /// `ready`/`scratch` by swapping, so the hot path reuses capacity
    /// instead of allocating (free-list pooling).
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Per-level slot-occupancy bitmaps for O(1) next-slot scans.
    bitmap: [[u64; BM_WORDS]; LEVELS],
    /// Physical entry count per level, so scans skip empty levels
    /// without touching their bitmaps.
    level_count: [usize; LEVELS],
    /// Physical entry count across all wheel slots.
    in_wheel: usize,
    /// Collected entries ready to dispatch, sorted *descending* by
    /// `(time, seq)` so the front of the queue is `ready.last()` and pop
    /// is O(1). Bounded by per-slot occupancy, not global queue depth.
    ready: Vec<Entry<T>>,
    /// Reusable drain buffer for cascades.
    scratch: Vec<Entry<T>>,
    /// Sorted overflow for events beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
}

fn tick_of(t: SimTime) -> u64 {
    t.as_ps() >> TICK_SHIFT
}

impl<T> Wheel<T> {
    fn new() -> Wheel<T> {
        Wheel {
            cursor: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            bitmap: [[0; BM_WORDS]; LEVELS],
            level_count: [0; LEVELS],
            in_wheel: 0,
            ready: Vec::new(),
            scratch: Vec::new(),
            overflow: BinaryHeap::new(),
        }
    }

    /// Insert into the (descending-sorted) ready list, keeping it sorted.
    fn insert_ready(&mut self, entry: Entry<T>) {
        let key = (entry.time, entry.seq);
        let idx = self.ready.partition_point(|e| (e.time, e.seq) > key);
        self.ready.insert(idx, entry);
    }

    /// Level an entry at absolute tick `t` belongs to, given the cursor:
    /// the highest differing bit picks the level, so the slot is cascaded
    /// exactly when the cursor enters its span. `None` means beyond the
    /// horizon (overflow).
    fn level_for(cursor: u64, t: u64) -> Option<usize> {
        let diff = cursor ^ t;
        if diff == 0 {
            return Some(0);
        }
        let msb = 63 - diff.leading_zeros();
        let level = (msb / LEVEL_BITS) as usize;
        (level < LEVELS).then_some(level)
    }

    fn slot_of(level: usize, t: u64) -> usize {
        ((t >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize
    }

    fn set_bit(&mut self, level: usize, slot: usize) {
        self.bitmap[level][slot / 64] |= 1u64 << (slot % 64);
    }

    fn clear_bit(&mut self, level: usize, slot: usize) {
        self.bitmap[level][slot / 64] &= !(1u64 << (slot % 64));
    }

    /// First occupied slot ≥ `from` at `level`, if any.
    fn next_slot(&self, level: usize, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut bits = self.bitmap[level][word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= BM_WORDS {
                return None;
            }
            bits = self.bitmap[level][word];
        }
    }

    fn push(&mut self, entry: Entry<T>, stats: &mut SchedStats) {
        let t = tick_of(entry.time);
        if t < self.cursor {
            // Same tick as (or earlier than) the slot currently being
            // drained: dispatches straight from the ready list, which
            // keeps `(time, seq)` order exact.
            self.insert_ready(entry);
            return;
        }
        match Self::level_for(self.cursor, t) {
            Some(level) => {
                let slot = Self::slot_of(level, t);
                self.levels[level][slot].push(entry);
                self.set_bit(level, slot);
                self.level_count[level] += 1;
                self.in_wheel += 1;
            }
            None => {
                stats.overflow_pushed += 1;
                self.overflow.push(Reverse(entry));
            }
        }
    }

    // (push and push_in_wheel share the placement rule; push_in_wheel is
    // the no-stats variant used during cascades.)

    /// [`Self::push`] with a one-entry placement memo: when the incoming
    /// entry's tick matches the memoized one, it lands in the same slot
    /// whose occupancy bit is already set, so the level/slot computation
    /// and the bitmap write are skipped. Valid only while the cursor is
    /// stationary (no pops between calls) — which bulk insertion
    /// guarantees.
    fn push_memo(
        &mut self,
        entry: Entry<T>,
        stats: &mut SchedStats,
        memo: &mut Option<(u64, usize, usize)>,
    ) {
        let t = tick_of(entry.time);
        if let Some((mt, level, slot)) = *memo {
            if mt == t {
                self.levels[level][slot].push(entry);
                self.level_count[level] += 1;
                self.in_wheel += 1;
                return;
            }
        }
        *memo = None;
        if t < self.cursor {
            self.insert_ready(entry);
            return;
        }
        match Self::level_for(self.cursor, t) {
            Some(level) => {
                let slot = Self::slot_of(level, t);
                self.levels[level][slot].push(entry);
                self.set_bit(level, slot);
                self.level_count[level] += 1;
                self.in_wheel += 1;
                *memo = Some((t, level, slot));
            }
            None => {
                stats.overflow_pushed += 1;
                self.overflow.push(Reverse(entry));
            }
        }
    }

    #[inline]
    fn peek(&mut self, stats: &mut SchedStats) -> Option<&Entry<T>> {
        if self.ready.is_empty() {
            self.collect(stats);
        }
        self.ready.last()
    }

    #[inline]
    fn pop(&mut self, stats: &mut SchedStats) -> Option<Entry<T>> {
        if self.ready.is_empty() {
            self.collect(stats);
        }
        self.ready.pop()
    }

    /// Ensure `ready` holds the global front, advancing the cursor and
    /// cascading levels as needed.
    fn collect(&mut self, stats: &mut SchedStats) {
        while self.ready.is_empty() {
            // Pull overflow entries whose span is now within the horizon.
            while let Some(Reverse(head)) = self.overflow.peek() {
                let t = tick_of(head.time);
                if self.in_wheel == 0 && self.ready.is_empty() {
                    // Nothing nearer anywhere: jump straight to the
                    // overflow head instead of walking the wheel to it.
                    self.cursor = self.cursor.max(t);
                }
                if Self::level_for(self.cursor, t).is_none() {
                    break;
                }
                let Reverse(e) = self.overflow.pop().unwrap();
                stats.overflow_migrations += 1;
                self.push_in_wheel(e);
            }
            if self.in_wheel == 0 {
                return; // truly empty
            }
            // Cascade any higher-level slot whose span contains the
            // cursor. The cursor enters a span mid-slot via the +1 carry
            // of a level-0 collection (or an overflow jump), and entries
            // parked there may precede anything currently in level 0 —
            // they must re-bucket before the level-0 scan below, or a
            // later cascade would dispatch them in the past. Highest
            // level first, so a level-2 cascade can feed level 1.
            for level in (1..LEVELS).rev() {
                if self.level_count[level] == 0 {
                    continue;
                }
                let slot = Self::slot_of(level, self.cursor);
                if self.bitmap[level][slot / 64] & (1u64 << (slot % 64)) != 0 {
                    self.cascade_slot(level, slot, stats);
                }
            }
            if !self.ready.is_empty() {
                // A cascade fed the ready list directly (entries at or
                // before the cursor tick); dispatch those first.
                return;
            }
            // Find the nearest occupied slot, lowest level first.
            let mut advanced = false;
            for level in 0..LEVELS {
                if self.level_count[level] == 0 {
                    continue;
                }
                let idx = Self::slot_of(level, self.cursor);
                let Some(slot) = self.next_slot(level, idx) else {
                    continue;
                };
                if level == 0 {
                    // Collect this slot: swap its buffer straight into the
                    // (empty) ready list — zero-copy, and the slot inherits
                    // ready's spent buffer for reuse — then restore
                    // (time, seq) order with one sort.
                    self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                    debug_assert!(self.ready.is_empty());
                    std::mem::swap(&mut self.ready, &mut self.levels[0][slot]);
                    self.level_count[0] -= self.ready.len();
                    self.in_wheel -= self.ready.len();
                    self.clear_bit(0, slot);
                    self.ready.sort_unstable_by(|a, b| b.cmp(a));
                    self.cursor += 1;
                } else {
                    // Enter the slot's span and cascade it downward.
                    let shift = level as u32 * LEVEL_BITS;
                    let high_mask = !((1u64 << (shift + LEVEL_BITS)) - 1);
                    self.cursor = (self.cursor & high_mask) | ((slot as u64) << shift);
                    self.cascade_slot(level, slot, stats);
                }
                advanced = true;
                break;
            }
            if !advanced {
                // All remaining entries wrapped past every level window:
                // advance the cursor to the next top-level window start
                // and rescan. (Reachable only with > ~17 s gaps between
                // the cursor and every pending event.)
                let top = LEVELS as u32 * LEVEL_BITS;
                let window = 1u64 << top;
                self.cursor = (self.cursor & !(window - 1)) + window;
                // Entries keep their absolute-bit slots, so the rescan
                // sees them once the cursor's high bits match.
            }
        }
    }

    /// Empty `levels[level][slot]` through the scratch buffer, re-placing
    /// every entry relative to the current cursor. Buffers are swapped,
    /// not dropped, so cascades don't allocate on the steady state.
    fn cascade_slot(&mut self, level: usize, slot: usize, stats: &mut SchedStats) {
        let mut entries = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut entries, &mut self.levels[level][slot]);
        self.level_count[level] -= entries.len();
        self.in_wheel -= entries.len();
        self.clear_bit(level, slot);
        stats.cascades += entries.len() as u64;
        for e in entries.drain(..) {
            self.push_in_wheel(e);
        }
        self.scratch = entries;
    }

    /// Re-insert during cascade/migration (seq already assigned).
    fn push_in_wheel(&mut self, entry: Entry<T>) {
        let t = tick_of(entry.time);
        if t < self.cursor {
            self.insert_ready(entry);
            return;
        }
        match Self::level_for(self.cursor, t) {
            Some(level) => {
                let slot = Self::slot_of(level, t);
                self.levels[level][slot].push(entry);
                self.set_bit(level, slot);
                self.level_count[level] += 1;
                self.in_wheel += 1;
            }
            None => self.overflow.push(Reverse(entry)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, v)) = q.pop() {
            out.push((t.as_ps(), v));
        }
        out
    }

    #[test]
    fn fifo_for_equal_times_both_engines() {
        for kind in [EngineKind::Wheel, EngineKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            for v in 0..100u32 {
                q.push(SimTime(5_000), v);
            }
            let got = drain(&mut q);
            let want: Vec<(u64, u32)> = (0..100).map(|v| (5_000, v)).collect();
            assert_eq!(got, want, "{kind:?}");
        }
    }

    #[test]
    fn wheel_matches_heap_on_random_workload() {
        let mut rng = SimRng::from_seed(0xC0FFEE);
        for case in 0..50 {
            let mut wheel = EventQueue::new(EngineKind::Wheel);
            let mut heap = EventQueue::new(EngineKind::BinaryHeap);
            let mut now = 0u64;
            let mut next_val = 0u32;
            for _ in 0..400 {
                // Interleave pushes and pops like a live simulation.
                let burst = rng.gen_range(1..6);
                for _ in 0..burst {
                    // Mix of same-tick, near, far, and very-far deltas.
                    let delta = match rng.gen_below(10) {
                        0 => 0,
                        1..=5 => rng.gen_below(1 << 14),
                        6..=7 => rng.gen_below(1 << 26),
                        8 => rng.gen_below(1 << 40),
                        _ => rng.gen_below(1 << 50),
                    };
                    let t = SimTime(now + delta);
                    wheel.push(t, next_val);
                    heap.push(t, next_val);
                    next_val += 1;
                }
                for _ in 0..rng.gen_below(4) {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "case {case}");
                    if let Some((t, _)) = a {
                        now = t.as_ps();
                    }
                }
            }
            assert_eq!(drain(&mut wheel), drain(&mut heap), "case {case} drain");
        }
    }

    /// Regression: the cursor carries into a new level-1 span (collecting
    /// level-0 slot 255 rolls the level-1 field), an entry parked at
    /// level 1 for that span must cascade before newly pushed level-0
    /// entries in the same window are collected — otherwise it fires
    /// after them, i.e. in the past.
    #[test]
    fn window_carry_cascades_before_level0_scan() {
        const TICK: u64 = 1 << TICK_SHIFT;
        let mut q = EventQueue::new(EngineKind::Wheel);
        q.push(SimTime(255 * TICK), 0); // last slot of window 0
        q.push(SimTime(258 * TICK), 1); // level 1, slot 1
        assert_eq!(q.pop(), Some((SimTime(255 * TICK), 0))); // carry to 256
        q.push(SimTime(261 * TICK), 2); // level 0 of window 1
        assert_eq!(q.pop(), Some((SimTime(258 * TICK), 1)));
        assert_eq!(q.pop(), Some((SimTime(261 * TICK), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn monotonic_dispatch_times() {
        let mut rng = SimRng::from_seed(77);
        let mut q = EventQueue::new(EngineKind::Wheel);
        for v in 0..5_000u32 {
            q.push(SimTime(rng.gen_below(1 << 45)), v);
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t.as_ps() >= last);
            last = t.as_ps();
        }
    }

    #[test]
    fn far_future_goes_to_overflow_and_comes_back() {
        let mut q = EventQueue::new(EngineKind::Wheel);
        let far = SimTime::from_secs(100); // well past the 17.6 s horizon
        q.push(far, 2);
        q.push(SimTime::from_nanos(1), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 1)));
        assert_eq!(q.pop(), Some((far, 2)));
        assert_eq!(q.pop(), None);
        assert!(q.stats().overflow_pushed >= 1);
        assert!(q.stats().overflow_migrations >= 1);
    }

    #[test]
    fn simtime_max_is_storable() {
        let mut q = EventQueue::new(EngineKind::Wheel);
        q.push(SimTime::MAX, 9);
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 1)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 9)));
    }

    #[test]
    fn cancel_prevents_dispatch() {
        for kind in [EngineKind::Wheel, EngineKind::BinaryHeap] {
            let mut q = EventQueue::with_cancellation(kind);
            let _a = q.push(SimTime(100), 1);
            let b = q.push(SimTime(200), 2);
            let c = q.push(SimTime(300), 3);
            assert!(q.cancel(b));
            assert!(!q.cancel(b), "double cancel is a no-op");
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some((SimTime(100), 1)));
            assert_eq!(q.pop(), Some((SimTime(300), 3)));
            assert_eq!(q.pop(), None);
            assert!(!q.cancel(c), "cancel after fire fails, {kind:?}");
            assert_eq!(q.stats().cancelled, 1);
        }
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new(EngineKind::Wheel);
        for v in 0..10u32 {
            q.push(SimTime::from_micros(v as u64 * 50), v);
        }
        assert_eq!(q.stats().pushed, 10);
        assert_eq!(q.stats().max_occupancy, 10);
        while q.pop().is_some() {}
        assert_eq!(q.stats().dispatched, 10);
        // 50 µs spacing spans multiple L1 slots → cascades happened.
        assert!(q.stats().cascades > 0);
    }

    /// Differential: batch draining must produce the exact event stream
    /// single pops do, on both engines, batch boundaries falling exactly
    /// on timestamp changes.
    #[test]
    fn pop_batch_matches_pop_stream() {
        for kind in [EngineKind::Wheel, EngineKind::BinaryHeap] {
            let mut rng = SimRng::from_seed(0xBA7C);
            let mut single = EventQueue::new(kind);
            let mut batched = EventQueue::new(kind);
            for v in 0..2_000u32 {
                // Coarse time quantization so same-timestamp runs form.
                let t = SimTime(rng.gen_below(64) * 10_000);
                single.push(t, v);
                batched.push(t, v);
            }
            let want = drain(&mut single);
            let mut got = Vec::new();
            let mut buf = Vec::new();
            loop {
                buf.clear();
                let n = batched.pop_batch(SimTime::MAX, usize::MAX, &mut buf);
                if n == 0 {
                    break;
                }
                // Every event in a batch shares one timestamp.
                assert!(buf.iter().all(|(t, _)| *t == buf[0].0));
                got.extend(buf.iter().map(|(t, v)| (t.as_ps(), *v)));
            }
            assert_eq!(got, want, "{kind:?}");
            assert_eq!(batched.stats().dispatched, 2_000);
            assert!(batched.is_empty());
        }
    }

    /// A `limit` cuts a batch mid-run; the remainder resumes in order on
    /// the next call. A `deadline` before the front yields nothing.
    #[test]
    fn pop_batch_respects_limit_and_deadline() {
        let mut q = EventQueue::new(EngineKind::Wheel);
        for v in 0..10u32 {
            q.push(SimTime(5_000), v);
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(SimTime(4_999), usize::MAX, &mut out), 0);
        assert_eq!(q.pop_batch(SimTime::MAX, 0, &mut out), 0);
        assert_eq!(q.pop_batch(SimTime::MAX, 3, &mut out), 3);
        assert_eq!(q.pop_batch(SimTime::MAX, usize::MAX, &mut out), 7);
        let want: Vec<(SimTime, u32)> = (0..10).map(|v| (SimTime(5_000), v)).collect();
        assert_eq!(out, want);
        assert_eq!(q.pop_batch(SimTime::MAX, usize::MAX, &mut out), 0);
    }

    /// Cancelled events inside a same-time run must not surface through
    /// the batch path (it defers to the tombstone-aware pop loop).
    #[test]
    fn pop_batch_skips_tombstones() {
        for kind in [EngineKind::Wheel, EngineKind::BinaryHeap] {
            let mut q = EventQueue::with_cancellation(kind);
            let handles: Vec<_> = (0..8u32).map(|v| q.push(SimTime(7_000), v)).collect();
            assert!(q.cancel(handles[0]));
            assert!(q.cancel(handles[3]));
            assert!(q.cancel(handles[7]));
            let mut out = Vec::new();
            assert_eq!(q.pop_batch(SimTime::MAX, usize::MAX, &mut out), 5);
            let got: Vec<u32> = out.iter().map(|&(_, v)| v).collect();
            assert_eq!(got, vec![1, 2, 4, 5, 6], "{kind:?}");
            assert!(q.is_empty());
        }
    }

    /// `push_bulk` must be indistinguishable from sequential `push` —
    /// same seq assignment, same pop stream — on both engines, across
    /// same-tick runs, scattered times, past-cursor times (after a pop
    /// advanced the cursor), and overflow-bound deadlines.
    #[test]
    fn push_bulk_matches_sequential_push() {
        for kind in [EngineKind::Wheel, EngineKind::BinaryHeap] {
            let mut rng = SimRng::from_seed(0xB01C);
            let mut seq_q = EventQueue::new(kind);
            let mut bulk_q = EventQueue::new(kind);
            let mut next_val = 0u32;
            let mut now = 0u64;
            for _ in 0..200 {
                // A sweep: mostly same-tick, with scattered outliers.
                let base = now + rng.gen_below(1 << 20);
                let mut sweep = Vec::new();
                for _ in 0..rng.gen_range(1..12) {
                    let t = match rng.gen_below(8) {
                        0..=4 => base,
                        5 => now, // at (or before) the cursor tick
                        6 => base + rng.gen_below(1 << 30),
                        _ => base + rng.gen_below(1 << 48), // overflow-ish
                    };
                    sweep.push((SimTime(t), next_val));
                    next_val += 1;
                }
                for &(t, v) in &sweep {
                    seq_q.push(t, v);
                }
                let mut sweep_vec = sweep;
                bulk_q.push_bulk(&mut sweep_vec);
                assert!(sweep_vec.is_empty());
                for _ in 0..rng.gen_below(3) {
                    let a = seq_q.pop();
                    let b = bulk_q.pop();
                    assert_eq!(a, b, "{kind:?}");
                    if let Some((t, _)) = a {
                        now = t.as_ps();
                    }
                }
            }
            assert_eq!(drain(&mut seq_q), drain(&mut bulk_q), "{kind:?}");
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut rng = SimRng::from_seed(5);
        let mut q = EventQueue::new(EngineKind::Wheel);
        for v in 0..1000u32 {
            q.push(SimTime(rng.gen_below(1 << 30)), v);
        }
        while let Some(t) = q.peek_time() {
            let (pt, _) = q.pop().unwrap();
            assert_eq!(t, pt);
        }
    }
}
