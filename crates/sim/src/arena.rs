//! Dense arena for in-flight packet storage.
//!
//! The world's packet slab used to be a `Vec<Option<Packet>>` plus a
//! separate `Vec<u32>` free list. The `Option` tag widened the stride of
//! the hottest array in the simulator and put a discriminant check (and
//! panic branch) on every arrival, and the side free list cost its own
//! heap allocation and cache line. This arena stores packets *densely* —
//! `Vec<Packet>`, no tag — and threads the free list through the vacant
//! slots themselves: a vacant slot's `id` field holds the index of the
//! next free slot (`Packet` is `Copy` with no `Drop`, so a dead packet
//! body is just bytes). Allocation and free are O(1) pointer-free index
//! ops touching only the slot itself.
//!
//! Slot indices are allocator artifacts: nothing semantic (digest,
//! trace, handler logic) may depend on them — packets are identified by
//! `Packet::id`. The property tests below pin the two guarantees the
//! world relies on: slots are recycled (bounded memory under steady
//! churn) and a live packet's identity is never disturbed by
//! [`PacketArena::compact`].
//!
//! A struct-of-arrays split was considered and rejected on measurement
//! (reproduce with `cargo run --release -p rocescale-core --example
//! soa_probe`): `Packet` is 88 bytes — at most two cache lines — and it
//! crosses this API *by value, whole-struct* in both directions
//! ([`PacketArena::insert`] writes every field, [`PacketArena::remove`]
//! reads every field into the handler's argument). An SoA layout would
//! replace one contiguous 88-byte copy with five-plus scattered loads
//! over distinct arrays; no field is accessed separately from the rest
//! while a packet is in flight, so the split only adds lines touched.
//! The profiler agrees: arrival dispatch costs ~180 ns/event on the
//! fleet workload, dominated by switch/NIC logic, not slab locality.

use rocescale_packet::Packet;

/// Free-list terminator. Slot indices are `u32`, so `u32::MAX` can never
/// collide with a real slot (the slab would exceed memory long before).
const NIL: u32 = u32::MAX;

/// The dense in-flight packet slab: `Vec<Packet>` with an intrusive
/// LIFO free list over vacant slots.
pub(crate) struct PacketArena {
    /// All slots, live and vacant. A vacant slot's `id` field holds the
    /// next free index ([`NIL`] terminates the chain).
    slots: Vec<Packet>,
    /// Head of the intrusive free list ([`NIL`] when empty).
    free_head: u32,
    /// Number of vacant slots (chain length).
    free_len: usize,
    /// Debug-only occupancy mirror so a double-consumed arrival slot
    /// still fails loudly (the old `Option::take().expect(..)` check)
    /// without taxing the release hot path.
    #[cfg(debug_assertions)]
    vacant: Vec<bool>,
}

impl PacketArena {
    pub(crate) fn new() -> PacketArena {
        PacketArena {
            slots: Vec::new(),
            free_head: NIL,
            free_len: 0,
            #[cfg(debug_assertions)]
            vacant: Vec::new(),
        }
    }

    /// Store `pkt`, reusing the most recently freed slot if any (LIFO —
    /// the warmest slot, and deterministic for replay).
    pub(crate) fn insert(&mut self, pkt: Packet) -> u32 {
        let slot = if self.free_head == NIL {
            self.slots.push(pkt);
            #[cfg(debug_assertions)]
            self.vacant.push(false);
            return (self.slots.len() - 1) as u32;
        } else {
            self.free_head
        };
        self.free_head = self.slots[slot as usize].id as u32;
        self.free_len -= 1;
        self.slots[slot as usize] = pkt;
        #[cfg(debug_assertions)]
        {
            self.vacant[slot as usize] = false;
        }
        slot
    }

    /// Take the packet out of `slot` and push the slot onto the free
    /// list. Each stored slot must be removed exactly once (enforced in
    /// debug builds).
    pub(crate) fn remove(&mut self, slot: u32) -> Packet {
        #[cfg(debug_assertions)]
        {
            assert!(
                !std::mem::replace(&mut self.vacant[slot as usize], true),
                "arrival slot already consumed"
            );
        }
        let pkt = self.slots[slot as usize];
        self.slots[slot as usize].id = self.free_head as u64;
        self.free_head = slot;
        self.free_len += 1;
        pkt
    }

    /// Physical slot count (live + vacant).
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Allocated slot capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Vacant slots awaiting reuse.
    pub(crate) fn free_len(&self) -> usize {
        self.free_len
    }

    /// Shed capacity retained from past bursts: drop every vacant slot
    /// at the tail of the slab, rebuild the free chain over the
    /// survivors (preserving LIFO order, so replay stays deterministic),
    /// and shrink the backing storage. Live packets keep their slots —
    /// pending `Arrival` events hold indices into this slab.
    pub(crate) fn compact(&mut self) {
        // The chain orders vacant slots most-recently-freed first.
        let mut free = Vec::with_capacity(self.free_len);
        let mut cur = self.free_head;
        while cur != NIL {
            free.push(cur);
            cur = self.slots[cur as usize].id as u32;
        }
        debug_assert_eq!(free.len(), self.free_len);
        let mut is_vacant = vec![false; self.slots.len()];
        for &s in &free {
            is_vacant[s as usize] = true;
        }
        while self.slots.last().is_some() && is_vacant[self.slots.len() - 1] {
            self.slots.pop();
        }
        let live = self.slots.len() as u32;
        free.retain(|&s| s < live);
        self.free_len = free.len();
        self.free_head = NIL;
        for &s in free.iter().rev() {
            self.slots[s as usize].id = self.free_head as u64;
            self.free_head = s;
        }
        self.slots.shrink_to_fit();
        #[cfg(debug_assertions)]
        {
            self.vacant.truncate(self.slots.len());
            self.vacant.shrink_to_fit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use rocescale_packet::{EthMeta, MacAddr, PacketKind};

    fn pkt(id: u64) -> Packet {
        Packet::new(
            id,
            EthMeta {
                src: MacAddr::from_id(0),
                dst: MacAddr::from_id(1),
                vlan: None,
            },
            None,
            PacketKind::Raw {
                label: 0,
                size: 1000,
            },
            0,
        )
    }

    #[test]
    fn reuses_freed_slots_lifo() {
        let mut a = PacketArena::new();
        let s0 = a.insert(pkt(1));
        let s1 = a.insert(pkt(2));
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(a.remove(s0).id, 1);
        assert_eq!(a.remove(s1).id, 2);
        assert_eq!(a.free_len(), 2);
        // Most recently freed first, and no growth.
        assert_eq!(a.insert(pkt(3)), s1);
        assert_eq!(a.insert(pkt(4)), s0);
        assert_eq!(a.len(), 2);
        assert_eq!(a.free_len(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "arrival slot already consumed")]
    fn double_remove_fails_loudly() {
        let mut a = PacketArena::new();
        let s = a.insert(pkt(1));
        a.remove(s);
        a.remove(s);
    }

    #[test]
    fn compact_drops_vacant_tail_and_keeps_live_packets() {
        let mut a = PacketArena::new();
        let slots: Vec<u32> = (0..8).map(|i| a.insert(pkt(100 + i))).collect();
        // Free the tail half plus one interior slot.
        for &s in &slots[4..] {
            a.remove(s);
        }
        a.remove(slots[1]);
        a.compact();
        // Tail slots gone; the interior hole survives (slot 1 < live
        // prefix) and stays reusable.
        assert_eq!(a.len(), 4);
        assert_eq!(a.free_len(), 1);
        assert_eq!(a.insert(pkt(9)), slots[1], "interior hole reused");
        for &s in &[slots[0], slots[2], slots[3]] {
            assert_eq!(a.remove(s).id, 100 + s as u64);
        }
    }

    /// Property: under seeded random insert/remove/compact churn the
    /// arena (a) recycles slots — memory stays bounded by peak
    /// in-flight, not total traffic — and (b) never changes a live
    /// packet's id, across any number of compacts.
    #[test]
    fn churn_recycles_slots_and_preserves_live_ids() {
        let mut rng = SimRng::from_seed(0xA5EA);
        let mut a = PacketArena::new();
        let mut live: Vec<(u32, u64)> = Vec::new(); // (slot, id)
        let mut next_id = 1u64;
        let mut peak_live = 0usize;
        for step in 0..20_000u32 {
            match rng.gen_below(100) {
                // Bias toward insert so the population stays interesting.
                0..=54 => {
                    let id = next_id;
                    next_id += 1;
                    live.push((a.insert(pkt(id)), id));
                }
                55..=97 => {
                    if !live.is_empty() {
                        let i = rng.gen_below(live.len() as u64) as usize;
                        let (slot, id) = live.swap_remove(i);
                        assert_eq!(a.remove(slot).id, id, "step {step}");
                    }
                }
                _ => {
                    a.compact();
                    assert!(a.len() >= live.len());
                }
            }
            peak_live = peak_live.max(live.len());
            assert_eq!(a.len() - a.free_len(), live.len(), "step {step}");
        }
        // (a) Recycling: ~11k packets flowed, but the slab never grew
        // past the peak concurrent population.
        assert!(next_id > 10_000);
        assert_eq!(a.len() - a.free_len(), live.len());
        assert!(
            a.len() <= peak_live,
            "slab {} > peak live {peak_live}",
            a.len()
        );
        // (b) Every live id still reads back intact after a final compact.
        a.compact();
        for (slot, id) in live {
            assert_eq!(a.remove(slot).id, id);
        }
        a.compact();
        assert_eq!((a.len(), a.free_len(), a.capacity()), (0, 0, 0));
    }
}
