//! Simulated time in integer picoseconds.
//!
//! Picoseconds keep serialization delays exact at every link speed the
//! paper mentions (one byte at 100 Gb/s is 80 ps) while a `u64` still
//! covers ~50 days of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute simulation timestamp (or, by arithmetic, a duration) in
/// picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "armed but inactive" timer sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns * 1_000)
    }
    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000_000)
    }
    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000_000)
    }
    /// From seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000_000)
    }

    /// As picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// As whole nanoseconds (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }
    /// As whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }
    /// As whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000_000
    }
    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else {
            write!(f, "{}ns", ps as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(9).as_ps(), 9_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_millis(1));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(90).to_string(), "90.000us");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
    }
}
