//! Simulated time in integer picoseconds.
//!
//! Picoseconds keep serialization delays exact at every link speed the
//! paper mentions (one byte at 100 Gb/s is 80 ps) while a `u64` still
//! covers ~50 days of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute simulation timestamp (or, by arithmetic, a duration) in
/// picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "armed but inactive" timer sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds (saturating at [`SimTime::MAX`]).
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns.saturating_mul(1_000))
    }
    /// From microseconds (saturating at [`SimTime::MAX`]).
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us.saturating_mul(1_000_000))
    }
    /// From milliseconds (saturating at [`SimTime::MAX`]).
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms.saturating_mul(1_000_000_000))
    }
    /// From seconds (saturating at [`SimTime::MAX`]).
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s.saturating_mul(1_000_000_000_000))
    }

    /// As picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// As whole nanoseconds (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }
    /// As whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }
    /// As whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000_000
    }
    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition — `MAX + anything = MAX`, so a far-future
    /// watchdog deadline (`SimTime::MAX`) plus a delay stays a sentinel
    /// instead of wrapping into the past.
    pub const fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` when `other > self`.
    pub const fn checked_sub(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_sub(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Saturating multiplication of a duration by a scalar (e.g. N
    /// retransmission intervals).
    pub const fn saturating_mul(self, n: u64) -> SimTime {
        SimTime(self.0.saturating_mul(n))
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    pub const fn checked_mul(self, n: u64) -> Option<SimTime> {
        match self.0.checked_mul(n) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

// Operator arithmetic saturates rather than wrapping: timestamp math in
// release builds previously wrapped silently on far-future deadlines
// (`SimTime::MAX + delay`), scheduling events in the past. Saturation
// keeps sentinels sentinel; code that must detect overflow uses the
// `checked_*` forms.
impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = self.saturating_add(rhs);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else {
            write!(f, "{}ns", ps as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(9).as_ps(), 9_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn overflow_edges_saturate() {
        // Far-future watchdog deadline arithmetic must not wrap.
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        let mut t = SimTime::MAX;
        t += SimTime::from_nanos(1);
        assert_eq!(t, SimTime::MAX);
        // Subtraction below zero clamps instead of wrapping to ~50 days.
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(1), SimTime::ZERO);
        // Unit constructors saturate on huge inputs.
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_nanos(u64::MAX), SimTime::MAX);
        // Scalar multiplication.
        assert_eq!(SimTime::from_secs(1).saturating_mul(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_nanos(2).saturating_mul(3).as_nanos(), 6);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(SimTime::MAX.checked_add(SimTime(1)), None);
        assert_eq!(SimTime(5).checked_add(SimTime(7)), Some(SimTime(12)));
        assert_eq!(SimTime(3).checked_sub(SimTime(5)), None);
        assert_eq!(SimTime(5).checked_sub(SimTime(3)), Some(SimTime(2)));
        assert_eq!(SimTime::MAX.checked_mul(2), None);
        assert_eq!(SimTime(4).checked_mul(4), Some(SimTime(16)));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_millis(1));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(90).to_string(), "90.000us");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
    }
}
