//! Configuration management and monitoring (§5.1): "We have a
//! configuration monitoring service to check if the running
//! configurations of the switches and the servers are the same as their
//! desired configurations."
//!
//! The §6.2 incident is the motivating case: a newly introduced switch
//! type silently shipped with dynamic-buffer α = 1/64 where the fleet
//! standard was 1/16, and thousands of servers saw pause storms at
//! midnight. A desired-vs-running diff of exactly the fields below would
//! have flagged it before traffic did.

/// The RDMA-relevant configuration of a switch or server, §5.1's "global
/// part" plus safety features.
#[derive(Debug, Clone, PartialEq)]
pub struct RdmaConfig {
    /// DSCP-based (true) or VLAN-based (false) PFC.
    pub dscp_based_pfc: bool,
    /// Which of the 8 classes are lossless.
    pub lossless_classes: Vec<u8>,
    /// Dynamic buffer α (None = static thresholds).
    pub buffer_alpha: Option<f64>,
    /// DCQCN enabled.
    pub dcqcn: bool,
    /// ECN marking enabled on lossless classes.
    pub ecn: bool,
    /// Go-back-N (true) vs go-back-0 (false) NIC loss recovery.
    pub go_back_n: bool,
    /// Storm watchdogs armed.
    pub watchdogs: bool,
    /// Drop lossless packets on incomplete ARP entries (§4.2 fix).
    pub drop_lossless_on_incomplete_arp: bool,
}

impl RdmaConfig {
    /// The paper's recommended end-state configuration.
    pub fn paper_recommended() -> RdmaConfig {
        RdmaConfig {
            dscp_based_pfc: true,
            lossless_classes: vec![3, 4],
            buffer_alpha: Some(1.0 / 16.0),
            dcqcn: true,
            ecn: true,
            go_back_n: true,
            watchdogs: true,
            drop_lossless_on_incomplete_arp: true,
        }
    }
}

/// One detected deviation between desired and running configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigDeviation {
    /// Device name.
    pub device: String,
    /// Field that deviates.
    pub field: String,
    /// Desired value, rendered.
    pub desired: String,
    /// Running value, rendered.
    pub running: String,
}

/// Diff a running config against the desired one.
pub fn diff(device: &str, desired: &RdmaConfig, running: &RdmaConfig) -> Vec<ConfigDeviation> {
    let mut out = Vec::new();
    let mut check = |field: &'static str, d: String, r: String| {
        if d != r {
            out.push(ConfigDeviation {
                device: device.to_string(),
                field: field.to_string(),
                desired: d,
                running: r,
            });
        }
    };
    check(
        "dscp_based_pfc",
        desired.dscp_based_pfc.to_string(),
        running.dscp_based_pfc.to_string(),
    );
    check(
        "lossless_classes",
        format!("{:?}", desired.lossless_classes),
        format!("{:?}", running.lossless_classes),
    );
    check(
        "buffer_alpha",
        format!("{:?}", desired.buffer_alpha),
        format!("{:?}", running.buffer_alpha),
    );
    check(
        "dcqcn",
        desired.dcqcn.to_string(),
        running.dcqcn.to_string(),
    );
    check("ecn", desired.ecn.to_string(), running.ecn.to_string());
    check(
        "go_back_n",
        desired.go_back_n.to_string(),
        running.go_back_n.to_string(),
    );
    check(
        "watchdogs",
        desired.watchdogs.to_string(),
        running.watchdogs.to_string(),
    );
    check(
        "drop_lossless_on_incomplete_arp",
        desired.drop_lossless_on_incomplete_arp.to_string(),
        running.drop_lossless_on_incomplete_arp.to_string(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_configs_have_no_deviations() {
        let c = RdmaConfig::paper_recommended();
        assert!(diff("tor0", &c, &c).is_empty());
    }

    /// The §6.2 incident: a new switch type running α = 1/64.
    #[test]
    fn alpha_misconfiguration_detected() {
        let desired = RdmaConfig::paper_recommended();
        let mut running = desired.clone();
        running.buffer_alpha = Some(1.0 / 64.0);
        let devs = diff("new-tor-type-7", &desired, &running);
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].field, "buffer_alpha");
        assert!(devs[0].desired.contains("0.0625"));
    }

    #[test]
    fn multiple_deviations_all_reported() {
        let desired = RdmaConfig::paper_recommended();
        let mut running = desired.clone();
        running.go_back_n = false;
        running.watchdogs = false;
        running.lossless_classes = vec![3];
        let devs = diff("srv42", &desired, &running);
        assert_eq!(devs.len(), 3);
    }

    #[test]
    fn fleet_tooling_type_bounds() {
        // Compile-time check that fleet tooling can clone, compare, and
        // render these (serialization itself is out of tree since the
        // serde dependency was removed for hermetic builds).
        fn assert_fleet_ready<T: Clone + PartialEq + std::fmt::Debug>() {}
        assert_fleet_ready::<RdmaConfig>();
        assert_fleet_ready::<ConfigDeviation>();
    }
}
