//! RDMA Pingmesh (§5.3): "We let the servers ping each other using RDMA …
//! RDMA Pingmesh launches RDMA probes, with payload size 512 bytes, to
//! the servers at different locations (ToR, Podset, Data center) and logs
//! the measured RTT (if probes succeed) or error code (if probes fail)."
//!
//! The probing itself is the RDMA hosts' `Pinger`/`Echo` apps; this module
//! aggregates the resulting samples per source/destination scope.

use std::collections::HashMap;

use crate::stats::Percentiles;
use crate::telemetry::MetricsHub;

/// The standard Pingmesh probe payload.
pub const PROBE_BYTES: u32 = 512;

/// Scope of a probe, per the paper's three levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// Same ToR.
    IntraTor,
    /// Same podset, different ToR.
    IntraPodset,
    /// Across the spine layer.
    IntraDc,
}

impl core::fmt::Display for Scope {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Scope::IntraTor => write!(f, "tor"),
            Scope::IntraPodset => write!(f, "podset"),
            Scope::IntraDc => write!(f, "dc"),
        }
    }
}

/// One probe outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// Round trip completed in this many picoseconds.
    Rtt(u64),
    /// Probe failed (timeout or error code).
    Failed,
}

/// Aggregated Pingmesh results.
#[derive(Debug, Clone, Default)]
pub struct Pingmesh {
    per_scope: HashMap<Scope, Percentiles>,
    failures: HashMap<Scope, u64>,
    total: u64,
    /// Telemetry hub the aggregation is mirrored into, if bound: each
    /// scope's RTTs feed a `pingmesh.{scope}.rtt_ps` histogram, plus
    /// probe/failure counters — so Pingmesh shows up in hub snapshots
    /// and exported traces, not just this struct's render. A disabled
    /// (or unbound) hub makes the mirroring a no-op.
    hub: MetricsHub,
}

impl Pingmesh {
    /// Empty aggregator.
    pub fn new() -> Pingmesh {
        Pingmesh::default()
    }

    /// Empty aggregator mirroring into `hub` (§5's "RDMA Pingmesh data
    /// feeds the same monitoring pipeline as the counters").
    pub fn with_hub(hub: MetricsHub) -> Pingmesh {
        Pingmesh {
            hub,
            ..Pingmesh::default()
        }
    }

    /// Record a probe outcome.
    pub fn record(&mut self, scope: Scope, result: ProbeResult) {
        self.total += 1;
        self.hub
            .incr(self.hub.counter(&format!("pingmesh.{scope}.probes")));
        match result {
            ProbeResult::Rtt(ps) => {
                self.per_scope.entry(scope).or_default().add(ps);
                self.hub
                    .observe(self.hub.histogram(&format!("pingmesh.{scope}.rtt_ps")), ps);
            }
            ProbeResult::Failed => {
                *self.failures.entry(scope).or_default() += 1;
                self.hub
                    .incr(self.hub.counter(&format!("pingmesh.{scope}.failures")));
            }
        }
    }

    /// Record a batch of raw RTT samples for one scope.
    pub fn record_samples(&mut self, scope: Scope, samples: &[u64]) {
        for s in samples {
            self.record(scope, ProbeResult::Rtt(*s));
        }
    }

    /// Total probes recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Failure count for a scope.
    pub fn failures(&self, scope: Scope) -> u64 {
        self.failures.get(&scope).copied().unwrap_or(0)
    }

    /// Percentile access for a scope.
    pub fn scope_mut(&mut self, scope: Scope) -> Option<&mut Percentiles> {
        self.per_scope.get_mut(&scope)
    }

    /// "Is RDMA working?" — the paper's operational question: healthy
    /// when the failure fraction is tiny and the p99 is under `p99_ps`.
    pub fn healthy(&mut self, scope: Scope, p99_ps: u64) -> bool {
        let fails = self.failures(scope);
        let Some(p) = self.per_scope.get_mut(&scope) else {
            return false;
        };
        let n = p.count() as u64;
        if n == 0 || fails * 100 > n {
            return false;
        }
        p.p99().is_some_and(|v| v <= p99_ps)
    }

    /// Render the percentile table (µs) the experiments print.
    pub fn render(&mut self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "scope", "probes", "p50(us)", "p99(us)", "p99.9(us)", "fails"
        );
        let mut scopes: Vec<Scope> = self.per_scope.keys().copied().collect();
        scopes.sort();
        for s in scopes {
            let fails = self.failures(s);
            let p = self.per_scope.get_mut(&s).expect("key from iteration");
            let us = |v: Option<u64>| v.map_or(0.0, |v| v as f64 / 1e6);
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10}",
                s.to_string(),
                p.count(),
                us(p.p50()),
                us(p.p99()),
                us(p.p999()),
                fails
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_scope() {
        let mut pm = Pingmesh::new();
        pm.record_samples(Scope::IntraTor, &[50_000_000, 60_000_000, 55_000_000]);
        pm.record(Scope::IntraDc, ProbeResult::Rtt(90_000_000));
        pm.record(Scope::IntraDc, ProbeResult::Failed);
        assert_eq!(pm.total(), 5);
        assert_eq!(pm.failures(Scope::IntraDc), 1);
        assert_eq!(
            pm.scope_mut(Scope::IntraTor).unwrap().p50(),
            Some(55_000_000)
        );
    }

    /// §5.3: "From the measured RTT of RDMA Pingmesh, we can infer if
    /// RDMA is working well or not."
    #[test]
    fn health_inference() {
        let mut pm = Pingmesh::new();
        pm.record_samples(Scope::IntraTor, &vec![80_000_000u64; 200]);
        assert!(pm.healthy(Scope::IntraTor, 90_000_000));
        assert!(!pm.healthy(Scope::IntraTor, 70_000_000), "p99 too high");
        assert!(
            !pm.healthy(Scope::IntraDc, u64::MAX),
            "no data = not healthy"
        );
        // >1% failures = unhealthy.
        for _ in 0..5 {
            pm.record(Scope::IntraTor, ProbeResult::Failed);
        }
        assert!(!pm.healthy(Scope::IntraTor, 90_000_000));
    }

    /// A hub-bound aggregator mirrors every outcome into telemetry:
    /// per-scope RTT histograms plus probe/failure counters, visible in
    /// hub snapshots under `pingmesh.*` names.
    #[test]
    fn bound_hub_sees_percentiles_and_counts() {
        let hub = MetricsHub::enabled();
        let mut pm = Pingmesh::with_hub(hub.clone());
        pm.record_samples(Scope::IntraTor, &[10_000, 20_000, 30_000]);
        pm.record(Scope::IntraDc, ProbeResult::Rtt(90_000));
        pm.record(Scope::IntraDc, ProbeResult::Failed);
        assert_eq!(hub.counter_value("pingmesh.tor.probes"), Some(3));
        assert_eq!(hub.counter_value("pingmesh.dc.probes"), Some(2));
        assert_eq!(hub.counter_value("pingmesh.dc.failures"), Some(1));
        assert_eq!(hub.counter_value("pingmesh.tor.failures"), None);
        let mut h = hub.histogram_snapshot("pingmesh.tor.rtt_ps").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.p50(), Some(20_000));
        // And the aggregator's own view is unchanged by the mirroring.
        assert_eq!(pm.total(), 5);
        assert_eq!(pm.scope_mut(Scope::IntraTor).unwrap().p50(), Some(20_000));
        // An unbound aggregator stays hub-silent.
        let mut silent = Pingmesh::new();
        silent.record(Scope::IntraTor, ProbeResult::Rtt(1));
        assert_eq!(hub.counter_value("pingmesh.tor.probes"), Some(3));
    }

    #[test]
    fn render_table() {
        let mut pm = Pingmesh::new();
        pm.record_samples(Scope::IntraPodset, &[100_000_000]);
        let s = pm.render();
        assert!(s.contains("podset"));
        assert!(s.contains("100.0"));
    }
}
