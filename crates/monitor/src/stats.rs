//! Percentile and time-series machinery for latency and pause-frame
//! monitoring.

/// An exact percentile calculator over collected samples (experiments are
/// small enough that exactness beats sketching; determinism matters more
/// than memory here).
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<u64>,
    sorted: bool,
}

impl Percentiles {
    /// Empty collector.
    pub fn new() -> Percentiles {
        Percentiles::default()
    }

    /// From existing samples.
    pub fn from_samples(samples: &[u64]) -> Percentiles {
        let mut p = Percentiles {
            samples: samples.to_vec(),
            sorted: false,
        };
        p.sort();
        p
    }

    /// Add one sample.
    pub fn add(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (q in \[0,1\]), nearest-rank. None if empty.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        self.sort();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Median.
    pub fn p50(&mut self) -> Option<u64> {
        self.quantile(0.50)
    }
    /// 99th percentile — the paper's headline metric.
    pub fn p99(&mut self) -> Option<u64> {
        self.quantile(0.99)
    }
    /// 99.9th percentile.
    pub fn p999(&mut self) -> Option<u64> {
        self.quantile(0.999)
    }
    /// Maximum.
    pub fn max(&mut self) -> Option<u64> {
        self.sort();
        self.samples.last().copied()
    }
    /// Arithmetic mean. Accumulates in `u128`: picosecond-scale samples
    /// over long runs overflow a `u64` sum long before they overflow the
    /// sample vector.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            let sum: u128 = self.samples.iter().map(|&v| v as u128).sum();
            Some(sum as f64 / self.samples.len() as f64)
        }
    }
}

/// A time series of (time, value) points with fixed-window aggregation —
/// the "pause frames received in every five minutes" plots of Figures 9
/// and 10, scaled to simulation time.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Record a point (times must be non-decreasing).
    ///
    /// Enforced unconditionally: a series that silently accepts
    /// out-of-order times renders corrupt plots and wrong deltas in
    /// release builds, which is exactly where long runs happen.
    pub fn push(&mut self, t_ps: u64, value: f64) {
        assert!(
            self.points.last().is_none_or(|(lt, _)| *lt <= t_ps),
            "time went backwards"
        );
        self.points.push((t_ps, value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Deltas between consecutive cumulative-counter samples (turns a
    /// monotone counter into a per-window rate series).
    pub fn deltas(&self) -> Vec<(u64, f64)> {
        self.points
            .windows(2)
            .map(|w| (w[1].0, w[1].1 - w[0].1))
            .collect()
    }

    /// Peak value.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Render as simple aligned rows (time in µs) for experiment output.
    pub fn render(&self, label: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{:>12}  {label}", "t(us)");
        for (t, v) in &self.points {
            let _ = writeln!(out, "{:>12}  {v:.1}", t / 1_000_000);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut p = Percentiles::from_samples(&(1..=100u64).collect::<Vec<_>>());
        assert_eq!(p.p50(), Some(50));
        assert_eq!(p.p99(), Some(99));
        assert_eq!(p.quantile(1.0), Some(100));
        assert_eq!(p.quantile(0.0), Some(1)); // clamped to rank 1
        assert_eq!(p.max(), Some(100));
        assert_eq!(p.mean(), Some(50.5));
    }

    #[test]
    fn empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.p99(), None);
        assert_eq!(p.mean(), None);
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn incremental_adds_resort() {
        let mut p = Percentiles::new();
        for v in [5u64, 1, 9, 3] {
            p.add(v);
        }
        assert_eq!(p.p50(), Some(3));
        p.add(100);
        assert_eq!(p.max(), Some(100));
    }

    #[test]
    fn p999_needs_tail() {
        // 1000 samples of 10 with two 500 outliers (0.2% tail): p99
        // misses them, p99.9 (nearest-rank 999 of 1000) catches one.
        let mut samples = vec![10u64; 998];
        samples.extend([500, 500]);
        let mut p = Percentiles::from_samples(&samples);
        assert_eq!(p.p99(), Some(10));
        assert_eq!(p.p999(), Some(500));
    }

    #[test]
    fn mean_survives_u64_overflow() {
        // Two samples near u64::MAX: the old u64 accumulator wrapped and
        // reported a tiny mean; the u128 path reports ~u64::MAX.
        let p = Percentiles::from_samples(&[u64::MAX, u64::MAX - 2]);
        let mean = p.mean().unwrap();
        assert!((mean - u64::MAX as f64).abs() < 4.0, "mean was {mean}");
    }

    #[test]
    fn hand_computed_percentile_fixtures() {
        // Nearest-rank over 10 samples: rank(p50) = ceil(0.5*10) = 5,
        // rank(p99) = ceil(0.99*10) = 10.
        let mut p = Percentiles::from_samples(&[12, 7, 3, 41, 19, 8, 25, 5, 30, 16]);
        // Sorted: 3 5 7 8 12 16 19 25 30 41 → 5th = 12, 10th = 41.
        assert_eq!(p.p50(), Some(12));
        assert_eq!(p.p99(), Some(41));
        assert_eq!(p.mean(), Some(16.6)); // 166 / 10

        // 200 samples: rank(p99) = ceil(0.99*200) = 198.
        let samples: Vec<u64> = (1..=200u64).collect();
        let mut p = Percentiles::from_samples(&samples);
        assert_eq!(p.p50(), Some(100));
        assert_eq!(p.p99(), Some(198));
        assert_eq!(p.mean(), Some(100.5));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn timeseries_rejects_backwards_time_unconditionally() {
        let mut ts = TimeSeries::new();
        ts.push(1_000, 1.0);
        ts.push(999, 2.0);
    }

    #[test]
    fn timeseries_accepts_equal_times() {
        let mut ts = TimeSeries::new();
        ts.push(5, 1.0);
        ts.push(5, 2.0); // non-decreasing, not strictly increasing
        assert_eq!(ts.points().len(), 2);
    }

    #[test]
    fn timeseries_deltas() {
        let mut ts = TimeSeries::new();
        ts.push(0, 0.0);
        ts.push(1_000_000, 100.0);
        ts.push(2_000_000, 150.0);
        let d = ts.deltas();
        assert_eq!(d, vec![(1_000_000, 100.0), (2_000_000, 50.0)]);
        assert_eq!(ts.max(), Some(150.0));
        let rendered = ts.render("pauses");
        assert!(rendered.contains("pauses"));
        assert_eq!(rendered.lines().count(), 4);
    }
}
