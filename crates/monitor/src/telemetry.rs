//! Unified telemetry bus: a [`MetricsHub`] of typed instruments plus a
//! bounded [`FlightRecorder`] of structured trace events.
//!
//! §5 of the paper builds RDMA operability from three legs — PFC/traffic
//! counters everywhere, configuration monitoring, and Pingmesh. This
//! module is the first leg generalized: every layer (switch, NIC,
//! transport, DCQCN, TCP, and the event engine itself) registers
//! instruments under hierarchical dotted names
//! (`switch.t0.port.2.pfc.xoff_tx`, `nic.s7.qp.0.retransmits`) in one
//! hub, and noteworthy transitions (drops with reason, pause TX/RX,
//! watchdog fires, ARP-incomplete drops, go-back-N rollbacks, DCQCN rate
//! cuts) land in a flight-recorder ring for post-mortem inspection.
//!
//! Two invariants shape the design:
//!
//! * **Zero cost when disabled.** The hub handle is an
//!   `Option<Arc<Mutex<..>>>`; a disabled hub hands out sentinel
//!   instrument ids without allocating and every record call is an
//!   inlined no-op. Scenarios that don't opt in pay a null check.
//! * **Digest neutrality.** The hub never schedules simulator events,
//!   never draws randomness, and never touches packet contents — it only
//!   observes. Sampling is driven by the caller (the cluster chunks its
//!   `run_until` at sampling boundaries), so the golden dispatch digest
//!   is byte-identical with telemetry on or off; a tier-1 test pins this.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::stats::{Percentiles, TimeSeries};

/// Hub tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sampling cadence for counter/gauge time series, in picoseconds of
    /// simulated time. The paper's production cadence is minutes; the
    /// simulated default is 100 µs so short experiments still get a
    /// usable series.
    pub sample_every_ps: u64,
    /// Flight-recorder capacity in records; the oldest record is evicted
    /// (and counted) once full.
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            sample_every_ps: 100_000_000, // 100 µs
            flight_capacity: 4096,
        }
    }
}

/// Handle to a registered counter. Sentinel when the hub is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge. Sentinel when the hub is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram. Sentinel when the hub is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// Handle to a flight-recorder scope (the emitting component's name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeId(u32);

const SENTINEL: u32 = u32::MAX;

impl CounterId {
    /// The id handed out by a disabled hub.
    pub fn sentinel() -> CounterId {
        CounterId(SENTINEL)
    }
}
impl GaugeId {
    /// The id handed out by a disabled hub.
    pub fn sentinel() -> GaugeId {
        GaugeId(SENTINEL)
    }
}
impl HistogramId {
    /// The id handed out by a disabled hub.
    pub fn sentinel() -> HistogramId {
        HistogramId(SENTINEL)
    }
}
impl ScopeId {
    /// The id handed out by a disabled hub.
    pub fn sentinel() -> ScopeId {
        ScopeId(SENTINEL)
    }
}

/// A structured trace event for the flight recorder.
///
/// Reasons and causes are `&'static str` so the recorder stays allocation-
/// free per record and `rocescale-monitor` needs no dependency on the
/// crates that define the richer enums (which would invert the layering —
/// they depend on us).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was dropped; `reason` names the `DropReason`.
    Drop {
        /// Stable reason name (e.g. `"BufferOverflow"`).
        reason: &'static str,
    },
    /// A PFC XOFF pause frame was transmitted for `prio` on `port`.
    PauseTx {
        /// Egress port of the pause frame.
        port: u16,
        /// Paused priority class.
        prio: u8,
    },
    /// A PFC pause frame was received on `port` for `prio`.
    PauseRx {
        /// Ingress port of the pause frame.
        port: u16,
        /// Paused priority class.
        prio: u8,
    },
    /// A PFC XON resume frame was transmitted for `prio` on `port`.
    ResumeTx {
        /// Egress port of the resume frame.
        port: u16,
        /// Resumed priority class.
        prio: u8,
    },
    /// The switch PFC-storm watchdog disabled pause handling on a port.
    WatchdogDisabled {
        /// Port whose lossless handling was disabled.
        port: u16,
    },
    /// The switch watchdog re-enabled a previously disabled port.
    WatchdogReenabled {
        /// Port whose lossless handling was restored.
        port: u16,
    },
    /// The NIC-side pause-storm watchdog fired (§4.3 mitigation).
    NicWatchdogFired,
    /// A lossless-class packet was dropped on an incomplete ARP entry
    /// instead of being flooded (§4.2 mitigation).
    ArpIncompleteDrop,
    /// A transport sender rolled its send window back (go-back-N /
    /// go-back-0).
    Rollback {
        /// What triggered the rewind (`"nak"` or `"rto"`).
        cause: &'static str,
        /// PSN the sender rewound to.
        to_psn: u32,
        /// Packets between the old and new send pointer (retransmit
        /// volume).
        pkts: u32,
    },
    /// A congestion controller changed a QP's sending rate.
    RateChange {
        /// Which controller acted (`"dcqcn"`, `"timely"`).
        cc: &'static str,
        /// New rate in Mbit/s.
        rate_mbps: u32,
        /// What moved it (`"cnp"`, `"increase"`, `"rtt-high"`, …).
        cause: &'static str,
    },
    /// A deliberate pause-storm injection began (experiment fault).
    StormStart,
}

impl TraceEvent {
    /// Stable kind tag for rendering and filtering.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::PauseTx { .. } => "pause_tx",
            TraceEvent::PauseRx { .. } => "pause_rx",
            TraceEvent::ResumeTx { .. } => "resume_tx",
            TraceEvent::WatchdogDisabled { .. } => "watchdog_disabled",
            TraceEvent::WatchdogReenabled { .. } => "watchdog_reenabled",
            TraceEvent::NicWatchdogFired => "nic_watchdog_fired",
            TraceEvent::ArpIncompleteDrop => "arp_incomplete_drop",
            TraceEvent::Rollback { .. } => "rollback",
            TraceEvent::RateChange { .. } => "rate_change",
            TraceEvent::StormStart => "storm_start",
        }
    }

    fn detail_json(&self) -> Vec<(String, Json)> {
        let mut d = Vec::new();
        match *self {
            TraceEvent::Drop { reason } => d.push(("reason".into(), Json::Str(reason.into()))),
            TraceEvent::PauseTx { port, prio }
            | TraceEvent::PauseRx { port, prio }
            | TraceEvent::ResumeTx { port, prio } => {
                d.push(("port".into(), Json::U64(port as u64)));
                d.push(("prio".into(), Json::U64(prio as u64)));
            }
            TraceEvent::WatchdogDisabled { port } | TraceEvent::WatchdogReenabled { port } => {
                d.push(("port".into(), Json::U64(port as u64)));
            }
            TraceEvent::Rollback {
                cause,
                to_psn,
                pkts,
            } => {
                d.push(("cause".into(), Json::Str(cause.into())));
                d.push(("to_psn".into(), Json::U64(to_psn as u64)));
                d.push(("pkts".into(), Json::U64(pkts as u64)));
            }
            TraceEvent::RateChange {
                cc,
                rate_mbps,
                cause,
            } => {
                d.push(("cc".into(), Json::Str(cc.into())));
                d.push(("rate_mbps".into(), Json::U64(rate_mbps as u64)));
                d.push(("cause".into(), Json::Str(cause.into())));
            }
            TraceEvent::NicWatchdogFired
            | TraceEvent::ArpIncompleteDrop
            | TraceEvent::StormStart => {}
        }
        d
    }
}

/// One flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone sequence number (survives eviction; gaps never occur —
    /// `seq` of the oldest retained record equals `dropped`).
    pub seq: u64,
    /// Simulated time of the event, picoseconds.
    pub t_ps: u64,
    /// Which component emitted it.
    pub scope: ScopeId,
    /// The event payload.
    pub event: TraceEvent,
}

/// Bounded ring of [`TraceRecord`]s. Oldest records are evicted (and
/// counted) once capacity is reached, so the recorder always holds the
/// most recent window — the black-box-recorder semantics of §5.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// New recorder holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.clamp(1, 1 << 16)),
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest if full.
    pub fn record(&mut self, t_ps: u64, scope: ScopeId, event: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord {
            seq: self.next_seq,
            t_ps,
            scope,
            event,
        });
        self.next_seq += 1;
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records ever recorded (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

struct Counter {
    value: u64,
    series: TimeSeries,
}

struct Gauge {
    value: f64,
    series: TimeSeries,
}

struct HubInner {
    cfg: TelemetryConfig,
    names: HashMap<String, u32>,
    counter_names: Vec<String>,
    counters: Vec<Counter>,
    gauge_names: Vec<String>,
    gauges: Vec<Gauge>,
    histogram_names: Vec<String>,
    histograms: Vec<Percentiles>,
    scope_names: Vec<String>,
    flight: FlightRecorder,
    next_sample_ps: u64,
    samples_taken: u64,
}

impl HubInner {
    fn new(cfg: TelemetryConfig) -> HubInner {
        HubInner {
            cfg,
            names: HashMap::new(),
            counter_names: Vec::new(),
            counters: Vec::new(),
            gauge_names: Vec::new(),
            gauges: Vec::new(),
            histogram_names: Vec::new(),
            histograms: Vec::new(),
            scope_names: Vec::new(),
            flight: FlightRecorder::new(cfg.flight_capacity),
            next_sample_ps: 0,
            samples_taken: 0,
        }
    }

    fn sample(&mut self, t_ps: u64) {
        for c in &mut self.counters {
            c.series.push(t_ps, c.value as f64);
        }
        for g in &mut self.gauges {
            g.series.push(t_ps, g.value);
        }
        self.samples_taken += 1;
    }
}

/// Cloneable handle to the telemetry bus. `MetricsHub::disabled()` (the
/// `Default`) is a free-to-clone null hub; [`MetricsHub::enabled`] backs
/// the handle with shared state. Each simulated world is single-threaded,
/// but the fleet runner constructs whole clusters inside worker threads,
/// so the handle must be `Send`: the shared state is `Arc<Mutex<..>>`.
/// The mutex is never contended in practice — all clones of one hub live
/// on the thread that built the cluster — so `lock()` is an uncontended
/// atomic, and a poisoned lock (a panic mid-record) is a bug we surface
/// by unwrapping.
#[derive(Clone, Default)]
pub struct MetricsHub {
    inner: Option<Arc<Mutex<HubInner>>>,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "MetricsHub(disabled)"),
            Some(h) => {
                let h = h.lock().unwrap();
                write!(
                    f,
                    "MetricsHub({} counters, {} gauges, {} histograms, {} trace records)",
                    h.counters.len(),
                    h.gauges.len(),
                    h.histograms.len(),
                    h.flight.len()
                )
            }
        }
    }
}

impl MetricsHub {
    /// A hub that records nothing; all operations are inlined no-ops.
    pub fn disabled() -> MetricsHub {
        MetricsHub { inner: None }
    }

    /// An active hub with default configuration.
    pub fn enabled() -> MetricsHub {
        MetricsHub::with_config(TelemetryConfig::default())
    }

    /// An active hub with explicit configuration.
    pub fn with_config(cfg: TelemetryConfig) -> MetricsHub {
        MetricsHub {
            inner: Some(Arc::new(Mutex::new(HubInner::new(cfg)))),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ---- registration -------------------------------------------------

    /// Register (or look up) a counter under a hierarchical dotted name.
    /// Re-registering a name returns the same id.
    pub fn counter(&self, name: &str) -> CounterId {
        let Some(inner) = &self.inner else {
            return CounterId::sentinel();
        };
        let mut h = inner.lock().unwrap();
        let key = format!("c:{name}");
        if let Some(&id) = h.names.get(&key) {
            return CounterId(id);
        }
        let id = h.counters.len() as u32;
        h.counters.push(Counter {
            value: 0,
            series: TimeSeries::new(),
        });
        h.counter_names.push(name.to_string());
        h.names.insert(key, id);
        CounterId(id)
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str) -> GaugeId {
        let Some(inner) = &self.inner else {
            return GaugeId::sentinel();
        };
        let mut h = inner.lock().unwrap();
        let key = format!("g:{name}");
        if let Some(&id) = h.names.get(&key) {
            return GaugeId(id);
        }
        let id = h.gauges.len() as u32;
        h.gauges.push(Gauge {
            value: 0.0,
            series: TimeSeries::new(),
        });
        h.gauge_names.push(name.to_string());
        h.names.insert(key, id);
        GaugeId(id)
    }

    /// Register (or look up) an exact histogram.
    pub fn histogram(&self, name: &str) -> HistogramId {
        let Some(inner) = &self.inner else {
            return HistogramId::sentinel();
        };
        let mut h = inner.lock().unwrap();
        let key = format!("h:{name}");
        if let Some(&id) = h.names.get(&key) {
            return HistogramId(id);
        }
        let id = h.histograms.len() as u32;
        h.histograms.push(Percentiles::new());
        h.histogram_names.push(name.to_string());
        h.names.insert(key, id);
        HistogramId(id)
    }

    /// Register a flight-recorder scope (the emitting component's name).
    pub fn scope(&self, name: &str) -> ScopeId {
        let Some(inner) = &self.inner else {
            return ScopeId::sentinel();
        };
        let mut h = inner.lock().unwrap();
        let key = format!("s:{name}");
        if let Some(&id) = h.names.get(&key) {
            return ScopeId(id);
        }
        let id = h.scope_names.len() as u32;
        h.scope_names.push(name.to_string());
        h.names.insert(key, id);
        ScopeId(id)
    }

    // ---- recording ----------------------------------------------------

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if let Some(inner) = &self.inner {
            if id.0 != SENTINEL {
                inner.lock().unwrap().counters[id.0 as usize].value += n;
            }
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Set a gauge's current value.
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, v: f64) {
        if let Some(inner) = &self.inner {
            if id.0 != SENTINEL {
                inner.lock().unwrap().gauges[id.0 as usize].value = v;
            }
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, id: HistogramId, v: u64) {
        if let Some(inner) = &self.inner {
            if id.0 != SENTINEL {
                inner.lock().unwrap().histograms[id.0 as usize].add(v);
            }
        }
    }

    /// Append a trace event to the flight recorder.
    #[inline]
    pub fn trace(&self, t_ps: u64, scope: ScopeId, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().flight.record(t_ps, scope, event);
        }
    }

    // ---- sampling -----------------------------------------------------

    /// The sampling cadence, if enabled.
    pub fn sample_every_ps(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.lock().unwrap().cfg.sample_every_ps)
    }

    /// The next simulated time at which [`MetricsHub::maybe_sample`]
    /// will take a sample, if enabled. Drives the caller's run-loop
    /// chunking; the hub itself never schedules simulator events.
    pub fn next_sample_ps(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.lock().unwrap().next_sample_ps)
    }

    /// Sample every counter and gauge into its time series if `now_ps`
    /// has reached the next sampling boundary. Multiple boundaries
    /// crossed in one call collapse into a single sample at `now_ps`
    /// (series stay monotone; no catch-up fabrication).
    pub fn maybe_sample(&self, now_ps: u64) {
        let Some(inner) = &self.inner else { return };
        let mut h = inner.lock().unwrap();
        if now_ps < h.next_sample_ps {
            return;
        }
        h.sample(now_ps);
        let every = h.cfg.sample_every_ps.max(1);
        // Next boundary strictly after now.
        h.next_sample_ps = (now_ps / every + 1) * every;
    }

    /// Number of sampling passes taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().unwrap().samples_taken)
    }

    // ---- inspection ---------------------------------------------------

    /// Current value of a counter by name, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let h = inner.lock().unwrap();
        let id = *h.names.get(&format!("c:{name}"))?;
        Some(h.counters[id as usize].value)
    }

    /// Current value of a gauge by name, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let h = inner.lock().unwrap();
        let id = *h.names.get(&format!("g:{name}"))?;
        Some(h.gauges[id as usize].value)
    }

    /// Clone of a counter's sampled time series by name.
    pub fn counter_series(&self, name: &str) -> Option<TimeSeries> {
        let inner = self.inner.as_ref()?;
        let h = inner.lock().unwrap();
        let id = *h.names.get(&format!("c:{name}"))?;
        Some(h.counters[id as usize].series.clone())
    }

    /// Clone of a histogram's samples by name.
    pub fn histogram_snapshot(&self, name: &str) -> Option<Percentiles> {
        let inner = self.inner.as_ref()?;
        let h = inner.lock().unwrap();
        let id = *h.names.get(&format!("h:{name}"))?;
        Some(h.histograms[id as usize].clone())
    }

    /// All registered counter names (sorted) with current values.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let h = inner.lock().unwrap();
        let mut out: Vec<(String, u64)> = h
            .counter_names
            .iter()
            .zip(&h.counters)
            .map(|(n, c)| (n.clone(), c.value))
            .collect();
        out.sort();
        out
    }

    /// Flight-recorder records (oldest retained first) with scope names
    /// resolved, plus the evicted-record count.
    pub fn flight_snapshot(&self) -> (Vec<(u64, u64, String, TraceEvent)>, u64) {
        let Some(inner) = &self.inner else {
            return (Vec::new(), 0);
        };
        let h = inner.lock().unwrap();
        let rows = h
            .flight
            .records()
            .map(|r| {
                let scope = h
                    .scope_names
                    .get(r.scope.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| "?".to_string());
                (r.seq, r.t_ps, scope, r.event)
            })
            .collect();
        (rows, h.flight.dropped())
    }

    /// Count of flight records by event kind (sorted by kind).
    pub fn flight_kind_counts(&self) -> Vec<(&'static str, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let h = inner.lock().unwrap();
        let mut counts: HashMap<&'static str, u64> = HashMap::new();
        for r in h.flight.records() {
            *counts.entry(r.event.kind()).or_insert(0) += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort();
        out
    }

    // ---- export -------------------------------------------------------

    /// Render the whole hub (instruments, series, flight recorder) as a
    /// JSON tree. Names are sorted so output is deterministic regardless
    /// of registration order.
    pub fn render_json(&self) -> Json {
        let Some(inner) = &self.inner else {
            return Json::obj(vec![("enabled", Json::Bool(false))]);
        };
        let h = inner.lock().unwrap();

        let mut counters: Vec<(String, Json)> = h
            .counter_names
            .iter()
            .zip(&h.counters)
            .map(|(n, c)| (n.clone(), Json::U64(c.value)))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));

        let mut gauges: Vec<(String, Json)> = h
            .gauge_names
            .iter()
            .zip(&h.gauges)
            .map(|(n, g)| (n.clone(), Json::F64(g.value)))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));

        let mut histograms: Vec<(String, Json)> = h
            .histogram_names
            .iter()
            .zip(&h.histograms)
            .map(|(n, p)| {
                let mut p = p.clone();
                (
                    n.clone(),
                    Json::obj(vec![
                        ("count", Json::U64(p.count() as u64)),
                        ("p50", opt_u64(p.p50())),
                        ("p99", opt_u64(p.p99())),
                        ("p999", opt_u64(p.p999())),
                        ("max", opt_u64(p.max())),
                        ("mean", p.mean().map(Json::F64).unwrap_or(Json::Null)),
                    ]),
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));

        let mut series: Vec<(String, Json)> = h
            .counter_names
            .iter()
            .zip(&h.counters)
            .map(|(n, c)| (n.clone(), series_json(&c.series)))
            .chain(
                h.gauge_names
                    .iter()
                    .zip(&h.gauges)
                    .map(|(n, g)| (n.clone(), series_json(&g.series))),
            )
            .filter(|(_, j)| j.as_arr().is_some_and(|a| !a.is_empty()))
            .collect();
        series.sort_by(|a, b| a.0.cmp(&b.0));

        let flight: Vec<Json> = h
            .flight
            .records()
            .map(|r| {
                let scope = h
                    .scope_names
                    .get(r.scope.0 as usize)
                    .map(|s| s.as_str())
                    .unwrap_or("?");
                let mut pairs = vec![
                    ("seq".to_string(), Json::U64(r.seq)),
                    ("t_ps".to_string(), Json::U64(r.t_ps)),
                    ("scope".to_string(), Json::Str(scope.to_string())),
                    ("kind".to_string(), Json::Str(r.event.kind().to_string())),
                ];
                pairs.extend(r.event.detail_json());
                Json::Obj(pairs)
            })
            .collect();

        Json::obj(vec![
            ("enabled", Json::Bool(true)),
            ("sample_every_ps", Json::U64(h.cfg.sample_every_ps)),
            ("samples_taken", Json::U64(h.samples_taken)),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
            ("series", Json::Obj(series)),
            (
                "flight_recorder",
                Json::obj(vec![
                    ("dropped", Json::U64(h.flight.dropped())),
                    ("total_recorded", Json::U64(h.flight.total_recorded())),
                    ("records", Json::Arr(flight)),
                ]),
            ),
        ])
    }
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map(Json::U64).unwrap_or(Json::Null)
}

fn series_json(s: &TimeSeries) -> Json {
    Json::Arr(
        s.points()
            .iter()
            .map(|(t, v)| Json::Arr(vec![Json::U64(*t), Json::F64(*v)]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_inert() {
        let hub = MetricsHub::disabled();
        assert!(!hub.is_enabled());
        let c = hub.counter("switch.t0.drop.total");
        let g = hub.gauge("nic.s0.rate");
        let h = hub.histogram("nic.s0.rtt_ps");
        let s = hub.scope("switch.t0");
        assert_eq!(c, CounterId::sentinel());
        hub.add(c, 5);
        hub.incr(c);
        hub.set_gauge(g, 1.0);
        hub.observe(h, 9);
        hub.trace(0, s, TraceEvent::NicWatchdogFired);
        hub.maybe_sample(1_000_000_000);
        assert_eq!(hub.counter_value("switch.t0.drop.total"), None);
        assert_eq!(hub.samples_taken(), 0);
        assert!(hub.counters_snapshot().is_empty());
        assert_eq!(hub.render_json().render(), r#"{"enabled":false}"#);
    }

    #[test]
    fn counters_and_dedup_registration() {
        let hub = MetricsHub::enabled();
        let a = hub.counter("switch.t0.port.2.pfc.xoff_tx");
        let b = hub.counter("switch.t0.port.2.pfc.xoff_tx");
        assert_eq!(a, b);
        hub.incr(a);
        hub.add(b, 2);
        assert_eq!(hub.counter_value("switch.t0.port.2.pfc.xoff_tx"), Some(3));
        // Same leaf name under a different instrument type is distinct.
        let g = hub.gauge("switch.t0.port.2.pfc.xoff_tx");
        hub.set_gauge(g, 7.5);
        assert_eq!(hub.gauge_value("switch.t0.port.2.pfc.xoff_tx"), Some(7.5));
        assert_eq!(hub.counter_value("switch.t0.port.2.pfc.xoff_tx"), Some(3));
    }

    #[test]
    fn sampling_boundaries() {
        let hub = MetricsHub::with_config(TelemetryConfig {
            sample_every_ps: 100,
            flight_capacity: 8,
        });
        let c = hub.counter("x");
        hub.maybe_sample(0); // boundary 0: sample
        hub.add(c, 1);
        hub.maybe_sample(50); // before next boundary: no sample
        hub.maybe_sample(100); // boundary
        hub.add(c, 1);
        hub.maybe_sample(350); // skipped two boundaries: one sample, not three
        assert_eq!(hub.samples_taken(), 3);
        let series = hub.counter_series("x").unwrap();
        assert_eq!(series.points(), &[(0, 0.0), (100, 1.0), (350, 2.0)]);
        assert_eq!(hub.next_sample_ps(), Some(400));
    }

    #[test]
    fn flight_ring_wraps_and_counts_evictions() {
        let mut fr = FlightRecorder::new(3);
        let s = ScopeId::sentinel();
        for i in 0..5 {
            fr.record(i, s, TraceEvent::NicWatchdogFired);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.total_recorded(), 5);
        let seqs: Vec<u64> = fr.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]); // oldest retained == dropped count
    }

    #[test]
    fn flight_kind_counts_aggregate() {
        let hub = MetricsHub::enabled();
        let s = hub.scope("switch.t0");
        hub.trace(
            1,
            s,
            TraceEvent::Drop {
                reason: "BufferOverflow",
            },
        );
        hub.trace(2, s, TraceEvent::Drop { reason: "Corrupt" });
        hub.trace(3, s, TraceEvent::PauseTx { port: 2, prio: 3 });
        let counts = hub.flight_kind_counts();
        assert_eq!(counts, vec![("drop", 2), ("pause_tx", 1)]);
        let (rows, dropped) = hub.flight_snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].2, "switch.t0");
    }

    #[test]
    fn render_json_is_sorted_and_parseable() {
        let hub = MetricsHub::with_config(TelemetryConfig {
            sample_every_ps: 10,
            flight_capacity: 4,
        });
        let z = hub.counter("z.last");
        let a = hub.counter("a.first");
        hub.add(z, 9);
        hub.add(a, 1);
        let h = hub.histogram("nic.s0.rtt_ps");
        for v in [10, 20, 30] {
            hub.observe(h, v);
        }
        let s = hub.scope("nic.s0");
        hub.trace(
            5,
            s,
            TraceEvent::RateChange {
                cc: "dcqcn",
                rate_mbps: 1000,
                cause: "cnp",
            },
        );
        hub.maybe_sample(10);
        let text = hub.render_json().render();
        let back = crate::json::parse(&text).expect("hub JSON must parse");
        let counters = back.get("counters").unwrap();
        // Sorted: "a.first" renders before "z.last".
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        assert_eq!(counters.get("z.last"), Some(&Json::U64(9)));
        let hist = back
            .get("histograms")
            .unwrap()
            .get("nic.s0.rtt_ps")
            .unwrap();
        assert_eq!(hist.get("p50"), Some(&Json::U64(20)));
        let flight = back.get("flight_recorder").unwrap();
        assert_eq!(flight.get("records").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn hub_handles_are_send_and_sync() {
        // The fleet runner moves cluster construction (hub included) into
        // worker threads; this fails to compile if that ever regresses.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsHub>();
    }

    #[test]
    fn clones_share_state() {
        let hub = MetricsHub::enabled();
        let c = hub.counter("shared");
        let clone = hub.clone();
        clone.add(c, 4);
        assert_eq!(hub.counter_value("shared"), Some(4));
    }
}
