//! Unified telemetry bus: a [`MetricsHub`] of typed instruments plus a
//! bounded [`FlightRecorder`] of structured trace events.
//!
//! §5 of the paper builds RDMA operability from three legs — PFC/traffic
//! counters everywhere, configuration monitoring, and Pingmesh. This
//! module is the first leg generalized: every layer (switch, NIC,
//! transport, DCQCN, TCP, and the event engine itself) registers
//! instruments under hierarchical dotted names
//! (`switch.t0.port.2.pfc.xoff_tx`, `nic.s7.qp.0.retransmits`) in one
//! hub, and noteworthy transitions (drops with reason, pause TX/RX,
//! watchdog fires, ARP-incomplete drops, go-back-N rollbacks, DCQCN rate
//! cuts) land in a flight-recorder ring for post-mortem inspection.
//!
//! Three invariants shape the design:
//!
//! * **Zero cost when disabled.** The hub handle is an
//!   `Option<Arc<..>>`; a disabled hub hands out sentinel instrument ids
//!   without allocating and every record call is an inlined no-op behind
//!   a single sentinel compare.
//! * **Lock-free on the hot path.** Counter and gauge *updates* are the
//!   per-packet/per-event path (every hop increments several counters),
//!   so they never take a lock: values live in preallocated chunks of
//!   `AtomicU64` slots indexed directly by the `CounterId`/`GaugeId`
//!   handed out at registration, and an update is one relaxed
//!   `fetch_add`/`store` with no allocation. Only registration,
//!   sampling, and snapshot/export — the rare paths — take the `Mutex`.
//!   The flight recorder keeps its own small mutex, separate from the
//!   registration lock: trace events (drops, pauses, watchdog fires) are
//!   orders of magnitude rarer than counter bumps.
//! * **Digest neutrality.** The hub never schedules simulator events,
//!   never draws randomness, and never touches packet contents — it only
//!   observes. Sampling is driven by the caller (the cluster chunks its
//!   `run_until` at sampling boundaries), so the golden dispatch digest
//!   is byte-identical with telemetry on or off; a tier-1 test pins this.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;
use crate::sink::{
    HopRecord, QueueSample, RatePoint, RecordBody, StreamRecord, TraceFilter, TraceSink,
};
use crate::stats::{Percentiles, TimeSeries};

/// Hub tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sampling cadence for counter/gauge time series, in picoseconds of
    /// simulated time. The paper's production cadence is minutes; the
    /// simulated default is 100 µs so short experiments still get a
    /// usable series.
    pub sample_every_ps: u64,
    /// Flight-recorder capacity in records; the oldest record is evicted
    /// (and counted) once full.
    pub flight_capacity: usize,
    /// Route counter/gauge updates through the registration mutex into a
    /// shadow value table instead of the lock-free atomic bank. This is
    /// the pre-optimization reference path, kept selectable so a
    /// lockstep test can prove the atomic fast path observes the exact
    /// same values on the exact same event stream. Never enable it for
    /// performance work.
    pub locked_reference: bool,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            sample_every_ps: 100_000_000, // 100 µs
            flight_capacity: 4096,
            locked_reference: false,
        }
    }
}

/// Handle to a registered counter. Sentinel when the hub is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge. Sentinel when the hub is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram. Sentinel when the hub is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// Handle to a flight-recorder scope (the emitting component's name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeId(u32);

const SENTINEL: u32 = u32::MAX;

/// Sink-filter bit for flight-recorder events ([`TraceFilter::bits`]).
const SINK_EVENTS: u32 = 1;
/// Sink-filter bit for per-packet hop records.
const SINK_HOPS: u32 = 1 << 1;
/// Sink-filter bit for periodic queue-depth samples.
const SINK_QUEUES: u32 = 1 << 2;
/// Sink-filter bit for CC rate-change points.
const SINK_RATES: u32 = 1 << 3;

impl CounterId {
    /// The id handed out by a disabled hub.
    pub fn sentinel() -> CounterId {
        CounterId(SENTINEL)
    }
}
impl GaugeId {
    /// The id handed out by a disabled hub.
    pub fn sentinel() -> GaugeId {
        GaugeId(SENTINEL)
    }
}
impl HistogramId {
    /// The id handed out by a disabled hub.
    pub fn sentinel() -> HistogramId {
        HistogramId(SENTINEL)
    }
}
impl ScopeId {
    /// The id handed out by a disabled hub.
    pub fn sentinel() -> ScopeId {
        ScopeId(SENTINEL)
    }
}

/// A structured trace event for the flight recorder.
///
/// Reasons and causes are `&'static str` so the recorder stays allocation-
/// free per record and `rocescale-monitor` needs no dependency on the
/// crates that define the richer enums (which would invert the layering —
/// they depend on us).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was dropped; `reason` names the `DropReason`.
    Drop {
        /// Stable reason name (e.g. `"BufferOverflow"`).
        reason: &'static str,
    },
    /// A PFC XOFF pause frame was transmitted for `prio` on `port`.
    PauseTx {
        /// Egress port of the pause frame.
        port: u16,
        /// Paused priority class.
        prio: u8,
    },
    /// A PFC pause frame was received on `port` for `prio`.
    PauseRx {
        /// Ingress port of the pause frame.
        port: u16,
        /// Paused priority class.
        prio: u8,
    },
    /// A PFC XON resume frame was transmitted for `prio` on `port`.
    ResumeTx {
        /// Egress port of the resume frame.
        port: u16,
        /// Resumed priority class.
        prio: u8,
    },
    /// The switch PFC-storm watchdog disabled pause handling on a port.
    WatchdogDisabled {
        /// Port whose lossless handling was disabled.
        port: u16,
    },
    /// The switch watchdog re-enabled a previously disabled port.
    WatchdogReenabled {
        /// Port whose lossless handling was restored.
        port: u16,
    },
    /// The NIC-side pause-storm watchdog fired (§4.3 mitigation).
    NicWatchdogFired,
    /// A lossless-class packet was dropped on an incomplete ARP entry
    /// instead of being flooded (§4.2 mitigation).
    ArpIncompleteDrop,
    /// A transport sender rolled its send window back (go-back-N /
    /// go-back-0).
    Rollback {
        /// What triggered the rewind (`"nak"` or `"rto"`).
        cause: &'static str,
        /// PSN the sender rewound to.
        to_psn: u32,
        /// Packets between the old and new send pointer (retransmit
        /// volume).
        pkts: u32,
    },
    /// A congestion controller changed a QP's sending rate.
    RateChange {
        /// Which controller acted (`"dcqcn"`, `"timely"`).
        cc: &'static str,
        /// New rate in Mbit/s.
        rate_mbps: u32,
        /// What moved it (`"cnp"`, `"increase"`, `"rtt-high"`, …).
        cause: &'static str,
    },
    /// A deliberate pause-storm injection began (experiment fault).
    StormStart,
    /// A deliberate pause-storm injection was stopped (fault script).
    StormStop,
    /// The live deadlock detector found a cycle in the pause-wait graph
    /// with corroborating zero-progress devices (§4.2 signature).
    DeadlockSuspected {
        /// Number of devices around the detected wait cycle.
        cycle_len: u16,
    },
}

impl TraceEvent {
    /// Stable kind tag for rendering and filtering.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::PauseTx { .. } => "pause_tx",
            TraceEvent::PauseRx { .. } => "pause_rx",
            TraceEvent::ResumeTx { .. } => "resume_tx",
            TraceEvent::WatchdogDisabled { .. } => "watchdog_disabled",
            TraceEvent::WatchdogReenabled { .. } => "watchdog_reenabled",
            TraceEvent::NicWatchdogFired => "nic_watchdog_fired",
            TraceEvent::ArpIncompleteDrop => "arp_incomplete_drop",
            TraceEvent::Rollback { .. } => "rollback",
            TraceEvent::RateChange { .. } => "rate_change",
            TraceEvent::StormStart => "storm_start",
            TraceEvent::StormStop => "storm_stop",
            TraceEvent::DeadlockSuspected { .. } => "deadlock_suspected",
        }
    }

    pub(crate) fn detail_json(&self) -> Vec<(String, Json)> {
        let mut d = Vec::new();
        match *self {
            TraceEvent::Drop { reason } => d.push(("reason".into(), Json::Str(reason.into()))),
            TraceEvent::PauseTx { port, prio }
            | TraceEvent::PauseRx { port, prio }
            | TraceEvent::ResumeTx { port, prio } => {
                d.push(("port".into(), Json::U64(port as u64)));
                d.push(("prio".into(), Json::U64(prio as u64)));
            }
            TraceEvent::WatchdogDisabled { port } | TraceEvent::WatchdogReenabled { port } => {
                d.push(("port".into(), Json::U64(port as u64)));
            }
            TraceEvent::Rollback {
                cause,
                to_psn,
                pkts,
            } => {
                d.push(("cause".into(), Json::Str(cause.into())));
                d.push(("to_psn".into(), Json::U64(to_psn as u64)));
                d.push(("pkts".into(), Json::U64(pkts as u64)));
            }
            TraceEvent::RateChange {
                cc,
                rate_mbps,
                cause,
            } => {
                d.push(("cc".into(), Json::Str(cc.into())));
                d.push(("rate_mbps".into(), Json::U64(rate_mbps as u64)));
                d.push(("cause".into(), Json::Str(cause.into())));
            }
            TraceEvent::DeadlockSuspected { cycle_len } => {
                d.push(("cycle_len".into(), Json::U64(cycle_len as u64)));
            }
            TraceEvent::NicWatchdogFired
            | TraceEvent::ArpIncompleteDrop
            | TraceEvent::StormStart
            | TraceEvent::StormStop => {}
        }
        d
    }
}

/// One flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone sequence number (survives eviction; gaps never occur —
    /// `seq` of the oldest retained record equals `dropped`).
    pub seq: u64,
    /// Simulated time of the event, picoseconds.
    pub t_ps: u64,
    /// Which component emitted it.
    pub scope: ScopeId,
    /// The event payload.
    pub event: TraceEvent,
}

/// Bounded ring of [`TraceRecord`]s. Oldest records are evicted (and
/// counted) once capacity is reached, so the recorder always holds the
/// most recent window — the black-box-recorder semantics of §5.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// New recorder holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.clamp(1, 1 << 16)),
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest if full.
    pub fn record(&mut self, t_ps: u64, scope: ScopeId, event: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord {
            seq: self.next_seq,
            t_ps,
            scope,
            event,
        });
        self.next_seq += 1;
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records ever recorded (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Slots per lazily-allocated chunk. 256 × 8 bytes = one 2 KiB
/// allocation per chunk; small hubs touch one chunk, a full podset's
/// per-port/per-QP instrument population spreads over a handful.
const CHUNK_SLOTS: usize = 256;
/// Chunk-table capacity: 256 × 256 = 65 536 instruments of each type,
/// far beyond any topology the simulator builds.
const MAX_CHUNKS: usize = 256;

/// Lock-free value store: a fixed table of lazily-initialized chunks of
/// atomic slots, indexed directly by instrument id. Chunks are allocated
/// under the registration mutex (`ensure`); the update path does one
/// bounds check, one `OnceLock` acquire-load, and one relaxed atomic op.
/// Slots are never freed or moved, so a handle stays valid for the hub's
/// lifetime.
struct AtomicBank {
    chunks: [OnceLock<Box<[AtomicU64]>>; MAX_CHUNKS],
}

impl AtomicBank {
    fn new() -> AtomicBank {
        AtomicBank {
            chunks: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// Allocate the chunk holding `id` if it does not exist yet. Called
    /// at registration time, under the registration mutex.
    fn ensure(&self, id: u32) {
        let chunk = id as usize / CHUNK_SLOTS;
        assert!(
            chunk < MAX_CHUNKS,
            "telemetry instrument id {id} exceeds bank capacity"
        );
        self.chunks[chunk].get_or_init(|| (0..CHUNK_SLOTS).map(|_| AtomicU64::new(0)).collect());
    }

    /// The slot for `id`, if its chunk has been allocated.
    #[inline]
    fn slot(&self, id: u32) -> Option<&AtomicU64> {
        let idx = id as usize;
        self.chunks
            .get(idx / CHUNK_SLOTS)?
            .get()
            .map(|c| &c[idx % CHUNK_SLOTS])
    }

    /// Current raw value of `id` (0 if the chunk was never allocated).
    fn load(&self, id: u32) -> u64 {
        self.slot(id).map_or(0, |s| s.load(Ordering::Relaxed))
    }
}

struct HubInner {
    cfg: TelemetryConfig,
    names: HashMap<String, u32>,
    counter_names: Vec<String>,
    counter_series: Vec<TimeSeries>,
    /// Counter ids ordered by name — built incrementally at registration
    /// so snapshot/export paths never sort.
    counters_by_name: Vec<u32>,
    /// Shadow values for the `locked_reference` mode only.
    locked_counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauge_series: Vec<TimeSeries>,
    gauges_by_name: Vec<u32>,
    locked_gauges: Vec<f64>,
    histogram_names: Vec<String>,
    histograms: Vec<Percentiles>,
    histograms_by_name: Vec<u32>,
    scope_names: Vec<String>,
    next_sample_ps: u64,
    samples_taken: u64,
}

impl HubInner {
    fn new(cfg: TelemetryConfig) -> HubInner {
        HubInner {
            cfg,
            names: HashMap::new(),
            counter_names: Vec::new(),
            counter_series: Vec::new(),
            counters_by_name: Vec::new(),
            locked_counters: Vec::new(),
            gauge_names: Vec::new(),
            gauge_series: Vec::new(),
            gauges_by_name: Vec::new(),
            locked_gauges: Vec::new(),
            histogram_names: Vec::new(),
            histograms: Vec::new(),
            histograms_by_name: Vec::new(),
            scope_names: Vec::new(),
            next_sample_ps: 0,
            samples_taken: 0,
        }
    }
}

/// Insert `id` into `order` keeping it sorted by `names[id]`. Names are
/// unique per instrument type, so position is unambiguous.
fn insert_sorted(order: &mut Vec<u32>, names: &[String], id: u32) {
    let name = names[id as usize].as_str();
    let pos = order.partition_point(|&i| names[i as usize].as_str() < name);
    order.insert(pos, id);
}

/// Shared state behind an enabled hub: the lock-free value banks, the
/// flight recorder under its own small mutex, and everything rare
/// (registration, series, histograms, sampling) under the inner mutex.
struct HubShared {
    counters: AtomicBank,
    gauges: AtomicBank,
    flight: Mutex<FlightRecorder>,
    inner: Mutex<HubInner>,
    /// Copied out of `TelemetryConfig` so the hot path reads it without
    /// locking.
    locked_reference: bool,
    /// Attached streaming trace sink, if any. Locked only while writing
    /// a record; lock order is always `inner` → `sink` (scope-name
    /// resolution happens under `inner` so the borrowed record can be
    /// written without cloning the name).
    sink: Mutex<Option<Box<dyn TraceSink>>>,
    /// [`TraceFilter::bits`] of the attached sink, 0 when detached. The
    /// per-packet emission guard is one relaxed load of this word — with
    /// no sink the hop path costs a single compare, like a disabled hub.
    sink_flags: AtomicU32,
}

impl HubShared {
    /// Current value of counter `id`, honoring the reference mode.
    fn counter_val(&self, h: &HubInner, id: usize) -> u64 {
        if self.locked_reference {
            h.locked_counters[id]
        } else {
            self.counters.load(id as u32)
        }
    }

    /// Current value of gauge `id`, honoring the reference mode.
    fn gauge_val(&self, h: &HubInner, id: usize) -> f64 {
        if self.locked_reference {
            h.locked_gauges[id]
        } else {
            f64::from_bits(self.gauges.load(id as u32))
        }
    }
}

/// Cloneable handle to the telemetry bus. `MetricsHub::disabled()` (the
/// `Default`) is a free-to-clone null hub; [`MetricsHub::enabled`] backs
/// the handle with shared state. Counter/gauge updates go straight to
/// atomic slots (see [`AtomicBank`]); the mutexes guard only
/// registration, sampling, snapshots, and the flight recorder. The
/// handle stays `Send + Sync` for the fleet runner, which constructs
/// whole clusters inside worker threads; a poisoned lock (a panic
/// mid-registration) is a bug we surface by unwrapping.
#[derive(Clone, Default)]
pub struct MetricsHub {
    inner: Option<Arc<HubShared>>,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "MetricsHub(disabled)"),
            Some(s) => {
                let h = s.inner.lock().unwrap();
                let flight_len = s.flight.lock().unwrap().len();
                write!(
                    f,
                    "MetricsHub({} counters, {} gauges, {} histograms, {} trace records)",
                    h.counter_names.len(),
                    h.gauge_names.len(),
                    h.histograms.len(),
                    flight_len
                )
            }
        }
    }
}

impl MetricsHub {
    /// A hub that records nothing; all operations are inlined no-ops.
    pub fn disabled() -> MetricsHub {
        MetricsHub { inner: None }
    }

    /// An active hub with default configuration.
    pub fn enabled() -> MetricsHub {
        MetricsHub::with_config(TelemetryConfig::default())
    }

    /// An active hub on the pre-optimization mutex reference path — every
    /// update takes the registration lock. Exists so the lockstep test
    /// can pin the atomic fast path against it; see
    /// [`TelemetryConfig::locked_reference`].
    pub fn enabled_locked_reference() -> MetricsHub {
        MetricsHub::with_config(TelemetryConfig {
            locked_reference: true,
            ..TelemetryConfig::default()
        })
    }

    /// An active hub with explicit configuration.
    pub fn with_config(cfg: TelemetryConfig) -> MetricsHub {
        MetricsHub {
            inner: Some(Arc::new(HubShared {
                counters: AtomicBank::new(),
                gauges: AtomicBank::new(),
                flight: Mutex::new(FlightRecorder::new(cfg.flight_capacity)),
                inner: Mutex::new(HubInner::new(cfg)),
                locked_reference: cfg.locked_reference,
                sink: Mutex::new(None),
                sink_flags: AtomicU32::new(0),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ---- registration -------------------------------------------------

    /// Register (or look up) a counter under a hierarchical dotted name.
    /// Re-registering a name returns the same id.
    pub fn counter(&self, name: &str) -> CounterId {
        let Some(s) = &self.inner else {
            return CounterId::sentinel();
        };
        let mut h = s.inner.lock().unwrap();
        let key = format!("c:{name}");
        if let Some(&id) = h.names.get(&key) {
            return CounterId(id);
        }
        let id = h.counter_names.len() as u32;
        s.counters.ensure(id);
        h.counter_names.push(name.to_string());
        h.counter_series.push(TimeSeries::new());
        h.locked_counters.push(0);
        let HubInner {
            counters_by_name,
            counter_names,
            ..
        } = &mut *h;
        insert_sorted(counters_by_name, counter_names, id);
        h.names.insert(key, id);
        CounterId(id)
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str) -> GaugeId {
        let Some(s) = &self.inner else {
            return GaugeId::sentinel();
        };
        let mut h = s.inner.lock().unwrap();
        let key = format!("g:{name}");
        if let Some(&id) = h.names.get(&key) {
            return GaugeId(id);
        }
        let id = h.gauge_names.len() as u32;
        s.gauges.ensure(id);
        h.gauge_names.push(name.to_string());
        h.gauge_series.push(TimeSeries::new());
        h.locked_gauges.push(0.0);
        let HubInner {
            gauges_by_name,
            gauge_names,
            ..
        } = &mut *h;
        insert_sorted(gauges_by_name, gauge_names, id);
        h.names.insert(key, id);
        GaugeId(id)
    }

    /// Register (or look up) an exact histogram.
    pub fn histogram(&self, name: &str) -> HistogramId {
        let Some(s) = &self.inner else {
            return HistogramId::sentinel();
        };
        let mut h = s.inner.lock().unwrap();
        let key = format!("h:{name}");
        if let Some(&id) = h.names.get(&key) {
            return HistogramId(id);
        }
        let id = h.histograms.len() as u32;
        h.histograms.push(Percentiles::new());
        h.histogram_names.push(name.to_string());
        let HubInner {
            histograms_by_name,
            histogram_names,
            ..
        } = &mut *h;
        insert_sorted(histograms_by_name, histogram_names, id);
        h.names.insert(key, id);
        HistogramId(id)
    }

    /// Register a flight-recorder scope (the emitting component's name).
    pub fn scope(&self, name: &str) -> ScopeId {
        let Some(s) = &self.inner else {
            return ScopeId::sentinel();
        };
        let mut h = s.inner.lock().unwrap();
        let key = format!("s:{name}");
        if let Some(&id) = h.names.get(&key) {
            return ScopeId(id);
        }
        let id = h.scope_names.len() as u32;
        h.scope_names.push(name.to_string());
        h.names.insert(key, id);
        ScopeId(id)
    }

    // ---- recording ----------------------------------------------------

    /// Add `n` to a counter. Lock-free: one relaxed `fetch_add` on the
    /// preallocated slot; a no-op behind a single compare when disabled.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if id.0 == SENTINEL {
            return;
        }
        let Some(s) = &self.inner else { return };
        if s.locked_reference {
            s.inner.lock().unwrap().locked_counters[id.0 as usize] += n;
        } else if let Some(slot) = s.counters.slot(id.0) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Set a gauge's current value. Lock-free: one relaxed store of the
    /// value's bit pattern.
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, v: f64) {
        if id.0 == SENTINEL {
            return;
        }
        let Some(s) = &self.inner else { return };
        if s.locked_reference {
            s.inner.lock().unwrap().locked_gauges[id.0 as usize] = v;
        } else if let Some(slot) = s.gauges.slot(id.0) {
            slot.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Record one histogram observation. Histograms stay under the inner
    /// mutex: observations are per-message (RTT samples), not per-packet.
    #[inline]
    pub fn observe(&self, id: HistogramId, v: u64) {
        if id.0 == SENTINEL {
            return;
        }
        if let Some(s) = &self.inner {
            s.inner.lock().unwrap().histograms[id.0 as usize].add(v);
        }
    }

    /// Append a trace event to the flight recorder. Takes only the
    /// recorder's own mutex, never the registration lock — unless a
    /// sink is attached with the events class selected, in which case
    /// the event is also teed into the unbounded stream.
    #[inline]
    pub fn trace(&self, t_ps: u64, scope: ScopeId, event: TraceEvent) {
        if let Some(s) = &self.inner {
            s.flight.lock().unwrap().record(t_ps, scope, event);
            if s.sink_flags.load(Ordering::Relaxed) & SINK_EVENTS != 0 {
                self.stream(t_ps, scope, RecordBody::Event(event));
            }
        }
    }

    // ---- trace streaming ----------------------------------------------

    /// Attach a streaming trace sink. Records matching `filter` flow to
    /// it from now on; any previously attached sink is flushed and
    /// returned. The sink only observes — attaching one never perturbs
    /// the dispatch trace (a tier-1 test pins this against the golden
    /// digest). No-op returning the sink on a disabled hub.
    pub fn attach_sink(
        &self,
        sink: Box<dyn TraceSink>,
        filter: TraceFilter,
    ) -> Option<Box<dyn TraceSink>> {
        let Some(s) = &self.inner else {
            return Some(sink);
        };
        let mut slot = s.sink.lock().unwrap();
        let mut old = slot.replace(sink);
        if let Some(prev) = old.as_mut() {
            prev.flush();
        }
        s.sink_flags.store(filter.bits(), Ordering::Relaxed);
        old
    }

    /// Detach the current sink (flushed), stopping all streaming.
    pub fn detach_sink(&self) -> Option<Box<dyn TraceSink>> {
        let s = self.inner.as_ref()?;
        s.sink_flags.store(0, Ordering::Relaxed);
        let mut old = s.sink.lock().unwrap().take();
        if let Some(prev) = old.as_mut() {
            prev.flush();
        }
        old
    }

    /// Flush the attached sink's buffered output, if any.
    pub fn flush_sink(&self) {
        if let Some(s) = &self.inner {
            if let Some(sink) = s.sink.lock().unwrap().as_mut() {
                sink.flush();
            }
        }
    }

    /// Whether a sink is attached with at least one record class live.
    #[inline]
    pub fn has_sink(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|s| s.sink_flags.load(Ordering::Relaxed) != 0)
    }

    /// Whether per-packet hop records are being streamed. Emission sites
    /// guard on this before assembling a [`HopRecord`], so a detached
    /// sink keeps the per-packet path at a single relaxed load.
    #[inline]
    pub fn streams_hops(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|s| s.sink_flags.load(Ordering::Relaxed) & SINK_HOPS != 0)
    }

    /// Whether periodic queue-depth samples are being streamed.
    #[inline]
    pub fn streams_queues(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|s| s.sink_flags.load(Ordering::Relaxed) & SINK_QUEUES != 0)
    }

    /// Whether CC rate-change points are being streamed.
    #[inline]
    pub fn streams_rates(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|s| s.sink_flags.load(Ordering::Relaxed) & SINK_RATES != 0)
    }

    /// Stream one per-packet hop record (guard with
    /// [`Self::streams_hops`] to skip field extraction when detached).
    #[inline]
    pub fn stream_hop(&self, t_ps: u64, scope: ScopeId, hop: HopRecord) {
        if self.streams_hops() {
            self.stream(t_ps, scope, RecordBody::Hop(hop));
        }
    }

    /// Stream one periodic queue-depth sample.
    #[inline]
    pub fn stream_queue(&self, t_ps: u64, scope: ScopeId, q: QueueSample) {
        if self.streams_queues() {
            self.stream(t_ps, scope, RecordBody::Queue(q));
        }
    }

    /// Stream one CC rate-change trajectory point.
    #[inline]
    pub fn stream_rate(&self, t_ps: u64, scope: ScopeId, r: RatePoint) {
        if self.streams_rates() {
            self.stream(t_ps, scope, RecordBody::Rate(r));
        }
    }

    /// Resolve the scope name and hand one record to the sink. Cold
    /// relative to the guards above; takes `inner` then `sink` (the
    /// global lock order).
    fn stream(&self, t_ps: u64, scope: ScopeId, body: RecordBody) {
        let Some(s) = &self.inner else { return };
        let h = s.inner.lock().unwrap();
        let name = h
            .scope_names
            .get(scope.0 as usize)
            .map(|n| n.as_str())
            .unwrap_or("?");
        if let Some(sink) = s.sink.lock().unwrap().as_mut() {
            sink.write(&StreamRecord {
                t_ps,
                scope: name,
                // Direct emission never knows its shard; the sharded
                // merge stamps the tag when moving bank records into the
                // final sink.
                shard: None,
                body,
            });
        }
    }

    // ---- sampling -----------------------------------------------------

    /// The sampling cadence, if enabled.
    pub fn sample_every_ps(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|s| s.inner.lock().unwrap().cfg.sample_every_ps)
    }

    /// The next simulated time at which [`MetricsHub::maybe_sample`]
    /// will take a sample, if enabled. Drives the caller's run-loop
    /// chunking; the hub itself never schedules simulator events.
    pub fn next_sample_ps(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|s| s.inner.lock().unwrap().next_sample_ps)
    }

    /// Sample every counter and gauge into its time series if `now_ps`
    /// has reached the next sampling boundary. Multiple boundaries
    /// crossed in one call collapse into a single sample at `now_ps`
    /// (series stay monotone; no catch-up fabrication).
    pub fn maybe_sample(&self, now_ps: u64) {
        let Some(s) = &self.inner else { return };
        let mut h = s.inner.lock().unwrap();
        if now_ps < h.next_sample_ps {
            return;
        }
        for id in 0..h.counter_series.len() {
            let v = s.counter_val(&h, id) as f64;
            h.counter_series[id].push(now_ps, v);
        }
        for id in 0..h.gauge_series.len() {
            let v = s.gauge_val(&h, id);
            h.gauge_series[id].push(now_ps, v);
        }
        h.samples_taken += 1;
        let every = h.cfg.sample_every_ps.max(1);
        // Next boundary strictly after now.
        h.next_sample_ps = (now_ps / every + 1) * every;
    }

    /// Number of sampling passes taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.inner.lock().unwrap().samples_taken)
    }

    // ---- inspection ---------------------------------------------------

    /// Current value of a counter by name, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let s = self.inner.as_ref()?;
        let h = s.inner.lock().unwrap();
        let id = *h.names.get(&format!("c:{name}"))?;
        Some(s.counter_val(&h, id as usize))
    }

    /// Current value of a gauge by name, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let s = self.inner.as_ref()?;
        let h = s.inner.lock().unwrap();
        let id = *h.names.get(&format!("g:{name}"))?;
        Some(s.gauge_val(&h, id as usize))
    }

    /// Clone of a counter's sampled time series by name.
    pub fn counter_series(&self, name: &str) -> Option<TimeSeries> {
        let s = self.inner.as_ref()?;
        let h = s.inner.lock().unwrap();
        let id = *h.names.get(&format!("c:{name}"))?;
        Some(h.counter_series[id as usize].clone())
    }

    /// Clone of a histogram's samples by name.
    pub fn histogram_snapshot(&self, name: &str) -> Option<Percentiles> {
        let s = self.inner.as_ref()?;
        let h = s.inner.lock().unwrap();
        let id = *h.names.get(&format!("h:{name}"))?;
        Some(h.histograms[id as usize].clone())
    }

    /// All registered counter names (sorted) with current values. The
    /// name order is maintained at registration time — no per-call sort.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        let Some(s) = &self.inner else {
            return Vec::new();
        };
        let h = s.inner.lock().unwrap();
        h.counters_by_name
            .iter()
            .map(|&id| {
                (
                    h.counter_names[id as usize].clone(),
                    s.counter_val(&h, id as usize),
                )
            })
            .collect()
    }

    /// All registered gauge names (sorted) with current values. Like
    /// [`Self::counters_snapshot`], order is maintained at registration.
    pub fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        let Some(s) = &self.inner else {
            return Vec::new();
        };
        let h = s.inner.lock().unwrap();
        h.gauges_by_name
            .iter()
            .map(|&id| {
                (
                    h.gauge_names[id as usize].clone(),
                    s.gauge_val(&h, id as usize),
                )
            })
            .collect()
    }

    /// Flight-recorder records (oldest retained first) with scope names
    /// resolved, plus the evicted-record count.
    pub fn flight_snapshot(&self) -> (Vec<(u64, u64, String, TraceEvent)>, u64) {
        let Some(s) = &self.inner else {
            return (Vec::new(), 0);
        };
        let h = s.inner.lock().unwrap();
        let flight = s.flight.lock().unwrap();
        let rows = flight
            .records()
            .map(|r| {
                let scope = h
                    .scope_names
                    .get(r.scope.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| "?".to_string());
                (r.seq, r.t_ps, scope, r.event)
            })
            .collect();
        (rows, flight.dropped())
    }

    /// Count of flight records by event kind (sorted by kind).
    pub fn flight_kind_counts(&self) -> Vec<(&'static str, u64)> {
        let Some(s) = &self.inner else {
            return Vec::new();
        };
        let flight = s.flight.lock().unwrap();
        let mut counts: HashMap<&'static str, u64> = HashMap::new();
        for r in flight.records() {
            *counts.entry(r.event.kind()).or_insert(0) += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort();
        out
    }

    // ---- export -------------------------------------------------------

    /// Render the whole hub (instruments, series, flight recorder) as a
    /// JSON tree. Names come out sorted regardless of registration order;
    /// the order is maintained incrementally at registration, so no
    /// export-time sort or name re-formatting happens here.
    pub fn render_json(&self) -> Json {
        let Some(s) = &self.inner else {
            return Json::obj(vec![("enabled", Json::Bool(false))]);
        };
        let h = s.inner.lock().unwrap();

        let counters: Vec<(String, Json)> = h
            .counters_by_name
            .iter()
            .map(|&id| {
                (
                    h.counter_names[id as usize].clone(),
                    Json::U64(s.counter_val(&h, id as usize)),
                )
            })
            .collect();

        let gauges: Vec<(String, Json)> = h
            .gauges_by_name
            .iter()
            .map(|&id| {
                (
                    h.gauge_names[id as usize].clone(),
                    Json::F64(s.gauge_val(&h, id as usize)),
                )
            })
            .collect();

        let histograms: Vec<(String, Json)> = h
            .histograms_by_name
            .iter()
            .map(|&id| {
                let n = &h.histogram_names[id as usize];
                let mut p = h.histograms[id as usize].clone();
                (
                    n.clone(),
                    Json::obj(vec![
                        ("count", Json::U64(p.count() as u64)),
                        ("p50", opt_u64(p.p50())),
                        ("p99", opt_u64(p.p99())),
                        ("p999", opt_u64(p.p999())),
                        ("max", opt_u64(p.max())),
                        ("mean", p.mean().map(Json::F64).unwrap_or(Json::Null)),
                    ]),
                )
            })
            .collect();

        // Counter and gauge series merge into one name-sorted map. Both
        // sides are already sorted, so a linear merge suffices.
        let mut series: Vec<(String, Json)> = Vec::new();
        {
            let mut ci = 0;
            let mut gi = 0;
            while ci < h.counters_by_name.len() || gi < h.gauges_by_name.len() {
                let take_counter = match (h.counters_by_name.get(ci), h.gauges_by_name.get(gi)) {
                    (Some(&c), Some(&g)) => {
                        h.counter_names[c as usize] <= h.gauge_names[g as usize]
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                let (name, ts) = if take_counter {
                    let id = h.counters_by_name[ci] as usize;
                    ci += 1;
                    (&h.counter_names[id], &h.counter_series[id])
                } else {
                    let id = h.gauges_by_name[gi] as usize;
                    gi += 1;
                    (&h.gauge_names[id], &h.gauge_series[id])
                };
                if !ts.points().is_empty() {
                    series.push((name.clone(), series_json(ts)));
                }
            }
        }

        let flight_lock = s.flight.lock().unwrap();
        let flight: Vec<Json> = flight_lock
            .records()
            .map(|r| {
                let scope = h
                    .scope_names
                    .get(r.scope.0 as usize)
                    .map(|s| s.as_str())
                    .unwrap_or("?");
                let mut pairs = vec![
                    ("seq".to_string(), Json::U64(r.seq)),
                    ("t_ps".to_string(), Json::U64(r.t_ps)),
                    ("scope".to_string(), Json::Str(scope.to_string())),
                    ("kind".to_string(), Json::Str(r.event.kind().to_string())),
                ];
                pairs.extend(r.event.detail_json());
                Json::Obj(pairs)
            })
            .collect();

        Json::obj(vec![
            ("enabled", Json::Bool(true)),
            ("sample_every_ps", Json::U64(h.cfg.sample_every_ps)),
            ("samples_taken", Json::U64(h.samples_taken)),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
            ("series", Json::Obj(series)),
            (
                "flight_recorder",
                Json::obj(vec![
                    ("dropped", Json::U64(flight_lock.dropped())),
                    ("total_recorded", Json::U64(flight_lock.total_recorded())),
                    ("records", Json::Arr(flight)),
                ]),
            ),
        ])
    }
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map(Json::U64).unwrap_or(Json::Null)
}

fn series_json(s: &TimeSeries) -> Json {
    Json::Arr(
        s.points()
            .iter()
            .map(|(t, v)| Json::Arr(vec![Json::U64(*t), Json::F64(*v)]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_inert() {
        let hub = MetricsHub::disabled();
        assert!(!hub.is_enabled());
        let c = hub.counter("switch.t0.drop.total");
        let g = hub.gauge("nic.s0.rate");
        let h = hub.histogram("nic.s0.rtt_ps");
        let s = hub.scope("switch.t0");
        assert_eq!(c, CounterId::sentinel());
        hub.add(c, 5);
        hub.incr(c);
        hub.set_gauge(g, 1.0);
        hub.observe(h, 9);
        hub.trace(0, s, TraceEvent::NicWatchdogFired);
        hub.maybe_sample(1_000_000_000);
        assert_eq!(hub.counter_value("switch.t0.drop.total"), None);
        assert_eq!(hub.samples_taken(), 0);
        assert!(hub.counters_snapshot().is_empty());
        assert_eq!(hub.render_json().render(), r#"{"enabled":false}"#);
    }

    #[test]
    fn counters_and_dedup_registration() {
        let hub = MetricsHub::enabled();
        let a = hub.counter("switch.t0.port.2.pfc.xoff_tx");
        let b = hub.counter("switch.t0.port.2.pfc.xoff_tx");
        assert_eq!(a, b);
        hub.incr(a);
        hub.add(b, 2);
        assert_eq!(hub.counter_value("switch.t0.port.2.pfc.xoff_tx"), Some(3));
        // Same leaf name under a different instrument type is distinct.
        let g = hub.gauge("switch.t0.port.2.pfc.xoff_tx");
        hub.set_gauge(g, 7.5);
        assert_eq!(hub.gauge_value("switch.t0.port.2.pfc.xoff_tx"), Some(7.5));
        assert_eq!(hub.counter_value("switch.t0.port.2.pfc.xoff_tx"), Some(3));
    }

    #[test]
    fn sampling_boundaries() {
        let hub = MetricsHub::with_config(TelemetryConfig {
            sample_every_ps: 100,
            flight_capacity: 8,
            ..TelemetryConfig::default()
        });
        let c = hub.counter("x");
        hub.maybe_sample(0); // boundary 0: sample
        hub.add(c, 1);
        hub.maybe_sample(50); // before next boundary: no sample
        hub.maybe_sample(100); // boundary
        hub.add(c, 1);
        hub.maybe_sample(350); // skipped two boundaries: one sample, not three
        assert_eq!(hub.samples_taken(), 3);
        let series = hub.counter_series("x").unwrap();
        assert_eq!(series.points(), &[(0, 0.0), (100, 1.0), (350, 2.0)]);
        assert_eq!(hub.next_sample_ps(), Some(400));
    }

    #[test]
    fn flight_ring_wraps_and_counts_evictions() {
        let mut fr = FlightRecorder::new(3);
        let s = ScopeId::sentinel();
        for i in 0..5 {
            fr.record(i, s, TraceEvent::NicWatchdogFired);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.total_recorded(), 5);
        let seqs: Vec<u64> = fr.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]); // oldest retained == dropped count
    }

    #[test]
    fn flight_kind_counts_aggregate() {
        let hub = MetricsHub::enabled();
        let s = hub.scope("switch.t0");
        hub.trace(
            1,
            s,
            TraceEvent::Drop {
                reason: "BufferOverflow",
            },
        );
        hub.trace(2, s, TraceEvent::Drop { reason: "Corrupt" });
        hub.trace(3, s, TraceEvent::PauseTx { port: 2, prio: 3 });
        let counts = hub.flight_kind_counts();
        assert_eq!(counts, vec![("drop", 2), ("pause_tx", 1)]);
        let (rows, dropped) = hub.flight_snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].2, "switch.t0");
    }

    #[test]
    fn render_json_is_sorted_and_parseable() {
        let hub = MetricsHub::with_config(TelemetryConfig {
            sample_every_ps: 10,
            flight_capacity: 4,
            ..TelemetryConfig::default()
        });
        let z = hub.counter("z.last");
        let a = hub.counter("a.first");
        hub.add(z, 9);
        hub.add(a, 1);
        let h = hub.histogram("nic.s0.rtt_ps");
        for v in [10, 20, 30] {
            hub.observe(h, v);
        }
        let s = hub.scope("nic.s0");
        hub.trace(
            5,
            s,
            TraceEvent::RateChange {
                cc: "dcqcn",
                rate_mbps: 1000,
                cause: "cnp",
            },
        );
        hub.maybe_sample(10);
        let text = hub.render_json().render();
        let back = crate::json::parse(&text).expect("hub JSON must parse");
        let counters = back.get("counters").unwrap();
        // Sorted: "a.first" renders before "z.last".
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        assert_eq!(counters.get("z.last"), Some(&Json::U64(9)));
        let hist = back
            .get("histograms")
            .unwrap()
            .get("nic.s0.rtt_ps")
            .unwrap();
        assert_eq!(hist.get("p50"), Some(&Json::U64(20)));
        let flight = back.get("flight_recorder").unwrap();
        assert_eq!(flight.get("records").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn hub_handles_are_send_and_sync() {
        // The fleet runner moves cluster construction (hub included) into
        // worker threads; this fails to compile if that ever regresses.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsHub>();
    }

    #[test]
    fn clones_share_state() {
        let hub = MetricsHub::enabled();
        let c = hub.counter("shared");
        let clone = hub.clone();
        clone.add(c, 4);
        assert_eq!(hub.counter_value("shared"), Some(4));
    }

    /// The atomic fast path and the mutex reference path must be
    /// observationally identical for the same operation stream.
    #[test]
    fn locked_reference_matches_atomic_path() {
        let fast = MetricsHub::enabled();
        let slow = MetricsHub::enabled_locked_reference();
        for hub in [&fast, &slow] {
            let c1 = hub.counter("b.bytes");
            let c2 = hub.counter("a.pkts");
            let g = hub.gauge("q.depth");
            for i in 0..100u64 {
                hub.add(c1, i);
                hub.incr(c2);
                hub.set_gauge(g, i as f64 * 0.5);
            }
            hub.maybe_sample(100);
        }
        assert_eq!(fast.counters_snapshot(), slow.counters_snapshot());
        assert_eq!(fast.gauge_value("q.depth"), slow.gauge_value("q.depth"));
        assert_eq!(
            fast.counter_series("a.pkts").unwrap().points(),
            slow.counter_series("a.pkts").unwrap().points()
        );
    }

    /// Snapshot order is maintained at registration, including ids that
    /// land in the middle of the existing name order.
    #[test]
    fn snapshot_sorted_without_export_sort() {
        let hub = MetricsHub::enabled();
        for name in ["m.mid", "z.last", "a.first", "m.aaa"] {
            hub.incr(hub.counter(name));
        }
        let names: Vec<String> = hub
            .counters_snapshot()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a.first", "m.aaa", "m.mid", "z.last"]);
    }

    /// A sink attached to the hub receives flight events (teed), hop
    /// records, queue samples, and rate points with scope names
    /// resolved, honors the filter, and stops cleanly on detach.
    #[test]
    fn sink_tee_streams_filtered_records() {
        use crate::sink::{HopRecord, MemorySink, QueueSample, RatePoint, TraceFilter};
        let hub = MetricsHub::enabled();
        let sw = hub.scope("switch.t0");
        let nic = hub.scope("nic.s1");
        assert!(!hub.has_sink());
        // Nothing attached: streaming guards are off, calls are no-ops.
        assert!(!hub.streams_hops());
        hub.stream_queue(
            0,
            sw,
            QueueSample {
                backlog_bytes: 0,
                max_port_bytes: 0,
                tx_pkts: 0,
            },
        );

        let mem = MemorySink::new();
        hub.attach_sink(Box::new(mem.clone()), TraceFilter::no_hops());
        assert!(hub.has_sink());
        assert!(!hub.streams_hops());
        assert!(hub.streams_queues() && hub.streams_rates());

        hub.trace(10, sw, TraceEvent::PauseTx { port: 2, prio: 3 });
        hub.stream_hop(
            11,
            sw,
            HopRecord {
                port: 1,
                prio: 3,
                bytes: 1000,
                src_ip: 1,
                dst_ip: 2,
                queue_bytes: 1000,
            },
        ); // filtered out
        hub.stream_queue(
            12,
            sw,
            QueueSample {
                backlog_bytes: 5,
                max_port_bytes: 5,
                tx_pkts: 1,
            },
        );
        hub.stream_rate(
            13,
            nic,
            RatePoint {
                qp: 0,
                rate_mbps: 40_000,
                cc: "dcqcn",
                cause: "cnp",
            },
        );

        let recs = mem.records();
        assert_eq!(recs.len(), 3, "hop must be filtered: {recs:?}");
        assert_eq!(recs[0].body.kind(), "pause_tx");
        assert_eq!(recs[0].scope, "switch.t0");
        assert_eq!(recs[1].body.kind(), "queue");
        assert_eq!(recs[2].body.kind(), "cc_rate");
        assert_eq!(recs[2].scope, "nic.s1");
        // The flight recorder still got the event (tee, not a move).
        assert_eq!(hub.flight_kind_counts(), vec![("pause_tx", 1)]);

        hub.detach_sink();
        assert!(!hub.has_sink());
        hub.trace(20, sw, TraceEvent::StormStart);
        assert_eq!(mem.len(), 3, "detached sink must see nothing new");
    }

    /// Updates from several threads land without loss — the property the
    /// atomic bank must give the fleet's Send story.
    #[test]
    fn concurrent_updates_are_not_lost() {
        let hub = MetricsHub::enabled();
        let c = hub.counter("racy");
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let h = hub.clone();
                sc.spawn(move || {
                    for _ in 0..10_000 {
                        h.incr(c);
                    }
                });
            }
        });
        assert_eq!(hub.counter_value("racy"), Some(40_000));
    }
}
