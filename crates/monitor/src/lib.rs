//! RDMA management and monitoring (§5): "From day one … we put
//! RDMA/RoCEv2 management and monitoring as an indispensable part of the
//! project."
//!
//! Four subsystems, mirroring the paper's:
//!
//! * [`stats`] — latency/percentile machinery for Pingmesh-style RTT data
//!   (the p99/p99.9 numbers of Figures 6 and 8) and time-series windows
//!   for pause-frame counts (the per-5-minute plots of Figures 9 and 10).
//! * [`pingmesh`] — aggregation of RDMA Pingmesh probe results per
//!   (source, destination) pair (§5.3).
//! * [`config`] — configuration management and monitoring (§5.1): desired
//!   vs running RDMA/PFC configuration diffing. The §6.2 buffer
//!   misconfiguration (a new switch type shipping α = 1/64 instead of
//!   1/16) is exactly the class of deviation this catches.
//! * [`deadlock`] — progress tracking over counter snapshots: detects the
//!   PFC deadlock signature (lossless backlog with zero transmit progress
//!   across consecutive samples, §4.2).
//!
//! Plus one simulator-side subsystem: [`engine`] snapshots the event
//! engine's own counters (dispatch volume, wheel cascades, peak pending
//! events) so scheduler health shows up in experiment output alongside
//! the fleet's counters.
//!
//! Tying them together, [`telemetry`] is the unified bus: a
//! [`MetricsHub`] of typed instruments (counters, gauges, exact
//! histograms) registered under hierarchical dotted names by every layer
//! of the stack, plus a bounded flight recorder of structured trace
//! events. [`json`] provides the serde-free JSON tree every experiment
//! renders its machine-readable report through, and [`aggregate`] folds
//! replicate reports from the fleet runner into one min/mean/max summary
//! of the same schema. [`sink`] is the unbounded export path: a
//! [`TraceSink`] attached to the hub streams every structured record —
//! flight-recorder events plus per-packet hops, queue-depth samples and
//! CC rate trajectories — out of the run as line-delimited JSON for
//! offline analysis (`trace_analyze`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod config;
pub mod deadlock;
pub mod engine;
pub mod json;
pub mod pingmesh;
pub mod sink;
pub mod stats;
pub mod telemetry;

pub use aggregate::merge_reports;
pub use config::{ConfigDeviation, RdmaConfig};
pub use deadlock::{ProgressTracker, WaitGraph};
pub use engine::{profile_json, EngineReport};
pub use json::Json;
pub use pingmesh::Pingmesh;
pub use sink::{
    parse_jsonl, parse_line, HopRecord, JsonlSink, MemorySink, OwnedRecord, ParsedRecord,
    QueueSample, RatePoint, RecordBody, StreamRecord, TraceFilter, TraceSink,
};
pub use stats::{Percentiles, TimeSeries};
pub use telemetry::{
    CounterId, FlightRecorder, GaugeId, HistogramId, MetricsHub, ScopeId, TelemetryConfig,
    TraceEvent, TraceRecord,
};
