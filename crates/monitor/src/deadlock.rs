//! Deadlock detection over counter snapshots (§4.2).
//!
//! A PFC deadlock's observable signature is stark: switches hold lossless
//! backlog, their egress ports are paused, and *nothing moves* — "Once the
//! deadlock occurs, it does not go away even if we restart all the
//! servers." The detector consumes periodic snapshots of each device's
//! (transmitted-packet counter, lossless backlog bytes) and reports
//! devices that made zero transmit progress across a full window while
//! holding backlog.

use std::collections::HashMap;

/// One device snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Cumulative packets transmitted by the device.
    pub tx_pkts: u64,
    /// Lossless bytes currently queued.
    pub backlog_bytes: u64,
}

/// Tracks progress between snapshot rounds.
#[derive(Debug, Clone, Default)]
pub struct ProgressTracker {
    last: HashMap<String, Snapshot>,
    /// Devices stuck (no progress + backlog) and for how many rounds.
    stuck_rounds: HashMap<String, u32>,
}

impl ProgressTracker {
    /// Empty tracker.
    pub fn new() -> ProgressTracker {
        ProgressTracker::default()
    }

    /// Feed one round of snapshots (all devices at the same instant).
    /// Returns the devices that were stuck this round.
    ///
    /// A device absent from a round is treated as reset: its history is
    /// discarded, so a device that stops being snapshotted (decommissioned,
    /// renamed, scraped out of rotation) cannot stay "stuck" forever on
    /// stale state.
    pub fn observe(&mut self, round: &[(String, Snapshot)]) -> Vec<String> {
        let mut stuck = Vec::new();
        for (name, snap) in round {
            let prev = self.last.insert(name.clone(), *snap);
            if let Some(prev) = prev {
                if snap.tx_pkts == prev.tx_pkts && snap.backlog_bytes > 0 {
                    let c = self.stuck_rounds.entry(name.clone()).or_insert(0);
                    *c += 1;
                    stuck.push(name.clone());
                } else {
                    self.stuck_rounds.remove(name);
                }
            }
        }
        // Absence is reset: forget devices not in this round.
        let seen: std::collections::HashSet<&str> = round.iter().map(|(n, _)| n.as_str()).collect();
        self.last.retain(|n, _| seen.contains(n.as_str()));
        self.stuck_rounds.retain(|n, _| seen.contains(n.as_str()));
        stuck
    }

    /// Devices stuck for at least `rounds` consecutive rounds — the
    /// behavioural *suspicion*. This alone cannot distinguish a deadlock
    /// from a storm victim (a single device starved by a pause storm also
    /// makes zero progress while holding backlog); use
    /// [`ProgressTracker::deadlocked`] for the corroborated verdict.
    pub fn stuck(&self, rounds: u32) -> Vec<String> {
        let mut v: Vec<String> = self
            .stuck_rounds
            .iter()
            .filter(|(_, c)| **c >= rounds)
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }

    /// The deadlock verdict: devices stuck for at least `rounds`
    /// consecutive rounds **and** on a cycle of the pause-wait graph. A
    /// genuine PFC deadlock is a cyclic buffer dependency involving ≥ 2
    /// devices (or a pathological self-wait); requiring cycle membership
    /// keeps storm victims — stuck but waiting on a chain, not a cycle —
    /// out of the verdict.
    pub fn deadlocked(&self, rounds: u32, graph: &WaitGraph) -> Vec<String> {
        let members = graph.cycle_members();
        self.stuck(rounds)
            .into_iter()
            .filter(|n| members.iter().any(|m| m == n))
            .collect()
    }
}

/// A pause-wait graph: directed edges `A → B` meaning device A's egress
/// toward B is paused (A waits on B to resume it) while A holds lossless
/// backlog for that port. A cycle in this graph is the §4.2 "cyclic
/// buffer dependency" — the topological signature of a PFC deadlock,
/// complementing [`ProgressTracker`]'s behavioural one.
#[derive(Debug, Clone, Default)]
pub struct WaitGraph {
    edges: Vec<(String, String)>,
}

impl WaitGraph {
    /// Empty graph.
    pub fn new() -> WaitGraph {
        WaitGraph::default()
    }

    /// Add a wait edge: `from`'s egress toward `to` is paused with
    /// backlog behind it.
    pub fn add_edge(&mut self, from: impl Into<String>, to: impl Into<String>) {
        self.edges.push((from.into(), to.into()));
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Find one cycle, if any, as the list of devices around it.
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        use std::collections::HashMap;
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        for (a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
        }
        // Iterative DFS with colouring; deterministic order.
        let mut nodes: Vec<&str> = adj.keys().copied().collect();
        nodes.sort_unstable();
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<&str, Color> = HashMap::new();
        let mut parent: HashMap<&str, &str> = HashMap::new();
        for start in nodes {
            if *color.get(start).unwrap_or(&Color::White) != Color::White {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color.insert(start, Color::Gray);
            while let Some((node, idx)) = stack.pop() {
                let next = adj.get(node).and_then(|v| v.get(idx)).copied();
                match next {
                    Some(succ) => {
                        stack.push((node, idx + 1));
                        match *color.get(succ).unwrap_or(&Color::White) {
                            Color::White => {
                                color.insert(succ, Color::Gray);
                                parent.insert(succ, node);
                                stack.push((succ, 0));
                            }
                            Color::Gray => {
                                // Found a cycle: walk parents back to succ.
                                let mut cycle = vec![succ.to_string()];
                                let mut cur = node;
                                while cur != succ {
                                    cycle.push(cur.to_string());
                                    cur = parent.get(cur).copied().unwrap_or(succ);
                                }
                                cycle.reverse();
                                return Some(cycle);
                            }
                            Color::Black => {}
                        }
                    }
                    None => {
                        color.insert(node, Color::Black);
                    }
                }
            }
        }
        None
    }

    /// Every device on *some* cycle: the union of strongly connected
    /// components of size ≥ 2, plus self-loops. Sorted and deduplicated.
    /// This is the corroboration set [`ProgressTracker::deadlocked`]
    /// intersects with — a device merely downstream of a cycle (a storm
    /// victim on a pause chain) is not in it.
    pub fn cycle_members(&self) -> Vec<String> {
        use std::collections::HashMap;
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        let mut nodes: Vec<&str> = Vec::new();
        for (a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
            nodes.push(a);
            nodes.push(b);
        }
        nodes.sort_unstable();
        nodes.dedup();

        // Iterative Tarjan SCC, deterministic over the sorted node list.
        #[derive(Default, Clone, Copy)]
        struct NodeState {
            index: u32,
            lowlink: u32,
            on_stack: bool,
            visited: bool,
        }
        let idx_of: HashMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let succs: Vec<Vec<usize>> = nodes
            .iter()
            .map(|n| {
                adj.get(n)
                    .map(|v| v.iter().map(|s| idx_of[s]).collect())
                    .unwrap_or_default()
            })
            .collect();
        let mut state = vec![NodeState::default(); nodes.len()];
        let mut next_index = 0u32;
        let mut stack: Vec<usize> = Vec::new();
        let mut members: Vec<String> = Vec::new();
        for root in 0..nodes.len() {
            if state[root].visited {
                continue;
            }
            // (node, next-successor cursor)
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(frame) = call.last_mut() {
                let v = frame.0;
                let cursor = frame.1;
                frame.1 += 1;
                if cursor == 0 {
                    state[v].visited = true;
                    state[v].index = next_index;
                    state[v].lowlink = next_index;
                    next_index += 1;
                    state[v].on_stack = true;
                    stack.push(v);
                }
                if let Some(&w) = succs[v].get(cursor) {
                    if !state[w].visited {
                        call.push((w, 0));
                    } else if state[w].on_stack {
                        state[v].lowlink = state[v].lowlink.min(state[w].index);
                    }
                } else {
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        state[p].lowlink = state[p].lowlink.min(state[v].lowlink);
                    }
                    if state[v].lowlink == state[v].index {
                        // Root of an SCC: pop it off.
                        let mut scc: Vec<usize> = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            state[w].on_stack = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let cyclic = scc.len() >= 2 || succs[v].contains(&v);
                        if cyclic {
                            members.extend(scc.iter().map(|i| nodes[*i].to_string()));
                        }
                    }
                }
            }
        }
        members.sort();
        members.dedup();
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(tx: u64, backlog: u64) -> Snapshot {
        Snapshot {
            tx_pkts: tx,
            backlog_bytes: backlog,
        }
    }

    #[test]
    fn progress_is_not_deadlock() {
        let mut t = ProgressTracker::new();
        t.observe(&[("sw0".into(), snap(100, 5000))]);
        t.observe(&[("sw0".into(), snap(200, 5000))]);
        t.observe(&[("sw0".into(), snap(300, 9000))]);
        assert!(t.stuck(1).is_empty());
    }

    #[test]
    fn zero_progress_with_backlog_is_stuck() {
        let mut t = ProgressTracker::new();
        for _ in 0..4 {
            t.observe(&[
                ("sw0".into(), snap(100, 5000)),
                ("sw1".into(), snap(80, 3000)),
            ]);
        }
        assert_eq!(t.stuck(3), vec!["sw0".to_string(), "sw1".to_string()]);
    }

    #[test]
    fn idle_device_is_not_stuck() {
        let mut t = ProgressTracker::new();
        for _ in 0..4 {
            t.observe(&[("sw0".into(), snap(100, 0))]); // no backlog: just idle
        }
        assert!(t.stuck(1).is_empty());
    }

    /// Regression: a device that disappears from the snapshot rounds must
    /// not stay "stuck" forever — absence is reset. Before the fix,
    /// `sw0` here would remain in the verdict indefinitely on stale state.
    #[test]
    fn absent_device_resets_instead_of_sticking_forever() {
        let mut t = ProgressTracker::new();
        for _ in 0..4 {
            t.observe(&[
                ("sw0".into(), snap(100, 5000)),
                ("sw1".into(), snap(80, 3000)),
            ]);
        }
        assert_eq!(t.stuck(3), vec!["sw0".to_string(), "sw1".to_string()]);
        // sw0 drops out of the scrape: only sw1 may stay stuck.
        t.observe(&[("sw1".into(), snap(80, 3000))]);
        assert_eq!(t.stuck(3), vec!["sw1".to_string()]);
        // And when sw0 comes back, its history restarts from zero:
        // one stuck round is not enough for a 3-round verdict.
        t.observe(&[
            ("sw0".into(), snap(100, 5000)),
            ("sw1".into(), snap(80, 3000)),
        ]);
        t.observe(&[
            ("sw0".into(), snap(100, 5000)),
            ("sw1".into(), snap(80, 3000)),
        ]);
        assert_eq!(t.stuck(3), vec!["sw1".to_string()]);
    }

    /// The corroborated verdict: only stuck devices on a wait-graph cycle
    /// are deadlocked. A storm victim (stuck, but waiting on a chain) is
    /// excluded — the satellite-3 fix.
    #[test]
    fn deadlock_verdict_requires_cycle_membership() {
        let mut t = ProgressTracker::new();
        for _ in 0..4 {
            t.observe(&[
                ("T0".into(), snap(10, 5000)),
                ("T1".into(), snap(20, 5000)),
                ("victim".into(), snap(30, 4000)), // stuck, but not cyclic
            ]);
        }
        assert_eq!(
            t.stuck(3),
            vec!["T0".to_string(), "T1".to_string(), "victim".to_string()]
        );
        let mut g = WaitGraph::new();
        g.add_edge("T0", "T1");
        g.add_edge("T1", "T0");
        g.add_edge("victim", "T0"); // chained onto the cycle, not in it
        assert_eq!(
            t.deadlocked(3, &g),
            vec!["T0".to_string(), "T1".to_string()]
        );
        // No cycle at all: nobody is deadlocked, however stuck.
        assert!(t.deadlocked(3, &WaitGraph::new()).is_empty());
    }

    #[test]
    fn wait_graph_finds_the_fig4_cycle() {
        // The paper's cycle: T1 → La → T0 → Lb → T1.
        let mut g = WaitGraph::new();
        g.add_edge("La", "T1");
        g.add_edge("T0", "La");
        g.add_edge("Lb", "T0");
        g.add_edge("T1", "Lb");
        // Plus a harmless dangling wait (a slow receiver).
        g.add_edge("T9", "server42");
        let cycle = g.find_cycle().expect("cycle exists");
        assert_eq!(cycle.len(), 4);
        for n in ["T0", "T1", "La", "Lb"] {
            assert!(cycle.contains(&n.to_string()), "{n} missing from {cycle:?}");
        }
    }

    #[test]
    fn wait_graph_acyclic_is_clean() {
        let mut g = WaitGraph::new();
        // A pause *chain* (storm propagation) is not a deadlock.
        g.add_edge("spine", "leaf");
        g.add_edge("leaf", "tor");
        g.add_edge("tor", "server0");
        assert_eq!(g.edge_count(), 3);
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn wait_graph_self_loop() {
        let mut g = WaitGraph::new();
        g.add_edge("sw", "sw");
        assert_eq!(g.find_cycle(), Some(vec!["sw".to_string()]));
        assert_eq!(g.cycle_members(), vec!["sw".to_string()]);
    }

    /// `cycle_members` returns exactly the union of cyclic SCCs: the
    /// Figure-4 cycle, not the dangling chain hanging off it.
    #[test]
    fn cycle_members_excludes_chains() {
        let mut g = WaitGraph::new();
        g.add_edge("La", "T1");
        g.add_edge("T0", "La");
        g.add_edge("Lb", "T0");
        g.add_edge("T1", "Lb");
        g.add_edge("victim", "La"); // waits on the cycle, not in it
        g.add_edge("T9", "server42"); // disconnected chain
        assert_eq!(
            g.cycle_members(),
            ["La", "Lb", "T0", "T1"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        assert!(WaitGraph::new().cycle_members().is_empty());
    }

    #[test]
    fn recovery_resets_the_counter() {
        let mut t = ProgressTracker::new();
        t.observe(&[("sw0".into(), snap(100, 5000))]);
        t.observe(&[("sw0".into(), snap(100, 5000))]); // stuck 1
        t.observe(&[("sw0".into(), snap(150, 1000))]); // progress
        t.observe(&[("sw0".into(), snap(150, 1000))]); // stuck 1 again
        assert!(t.stuck(2).is_empty());
    }
}
