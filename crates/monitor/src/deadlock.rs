//! Deadlock detection over counter snapshots (§4.2).
//!
//! A PFC deadlock's observable signature is stark: switches hold lossless
//! backlog, their egress ports are paused, and *nothing moves* — "Once the
//! deadlock occurs, it does not go away even if we restart all the
//! servers." The detector consumes periodic snapshots of each device's
//! (transmitted-packet counter, lossless backlog bytes) and reports
//! devices that made zero transmit progress across a full window while
//! holding backlog.

use std::collections::HashMap;

/// One device snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Cumulative packets transmitted by the device.
    pub tx_pkts: u64,
    /// Lossless bytes currently queued.
    pub backlog_bytes: u64,
}

/// Tracks progress between snapshot rounds.
#[derive(Debug, Clone, Default)]
pub struct ProgressTracker {
    last: HashMap<String, Snapshot>,
    /// Devices stuck (no progress + backlog) and for how many rounds.
    stuck_rounds: HashMap<String, u32>,
}

impl ProgressTracker {
    /// Empty tracker.
    pub fn new() -> ProgressTracker {
        ProgressTracker::default()
    }

    /// Feed one round of snapshots (all devices at the same instant).
    /// Returns the devices that were stuck this round.
    pub fn observe(&mut self, round: &[(String, Snapshot)]) -> Vec<String> {
        let mut stuck = Vec::new();
        for (name, snap) in round {
            let prev = self.last.insert(name.clone(), *snap);
            if let Some(prev) = prev {
                if snap.tx_pkts == prev.tx_pkts && snap.backlog_bytes > 0 {
                    let c = self.stuck_rounds.entry(name.clone()).or_insert(0);
                    *c += 1;
                    stuck.push(name.clone());
                } else {
                    self.stuck_rounds.remove(name);
                }
            }
        }
        stuck
    }

    /// Devices stuck for at least `rounds` consecutive rounds — the
    /// deadlock verdict. A genuine PFC deadlock involves ≥ 2 devices in a
    /// cycle; a single stuck device is more likely a storm victim.
    pub fn deadlocked(&self, rounds: u32) -> Vec<String> {
        let mut v: Vec<String> = self
            .stuck_rounds
            .iter()
            .filter(|(_, c)| **c >= rounds)
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }
}

/// A pause-wait graph: directed edges `A → B` meaning device A's egress
/// toward B is paused (A waits on B to resume it) while A holds lossless
/// backlog for that port. A cycle in this graph is the §4.2 "cyclic
/// buffer dependency" — the topological signature of a PFC deadlock,
/// complementing [`ProgressTracker`]'s behavioural one.
#[derive(Debug, Clone, Default)]
pub struct WaitGraph {
    edges: Vec<(String, String)>,
}

impl WaitGraph {
    /// Empty graph.
    pub fn new() -> WaitGraph {
        WaitGraph::default()
    }

    /// Add a wait edge: `from`'s egress toward `to` is paused with
    /// backlog behind it.
    pub fn add_edge(&mut self, from: impl Into<String>, to: impl Into<String>) {
        self.edges.push((from.into(), to.into()));
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Find one cycle, if any, as the list of devices around it.
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        use std::collections::HashMap;
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        for (a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
        }
        // Iterative DFS with colouring; deterministic order.
        let mut nodes: Vec<&str> = adj.keys().copied().collect();
        nodes.sort_unstable();
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<&str, Color> = HashMap::new();
        let mut parent: HashMap<&str, &str> = HashMap::new();
        for start in nodes {
            if *color.get(start).unwrap_or(&Color::White) != Color::White {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color.insert(start, Color::Gray);
            while let Some((node, idx)) = stack.pop() {
                let next = adj.get(node).and_then(|v| v.get(idx)).copied();
                match next {
                    Some(succ) => {
                        stack.push((node, idx + 1));
                        match *color.get(succ).unwrap_or(&Color::White) {
                            Color::White => {
                                color.insert(succ, Color::Gray);
                                parent.insert(succ, node);
                                stack.push((succ, 0));
                            }
                            Color::Gray => {
                                // Found a cycle: walk parents back to succ.
                                let mut cycle = vec![succ.to_string()];
                                let mut cur = node;
                                while cur != succ {
                                    cycle.push(cur.to_string());
                                    cur = parent.get(cur).copied().unwrap_or(succ);
                                }
                                cycle.reverse();
                                return Some(cycle);
                            }
                            Color::Black => {}
                        }
                    }
                    None => {
                        color.insert(node, Color::Black);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(tx: u64, backlog: u64) -> Snapshot {
        Snapshot {
            tx_pkts: tx,
            backlog_bytes: backlog,
        }
    }

    #[test]
    fn progress_is_not_deadlock() {
        let mut t = ProgressTracker::new();
        t.observe(&[("sw0".into(), snap(100, 5000))]);
        t.observe(&[("sw0".into(), snap(200, 5000))]);
        t.observe(&[("sw0".into(), snap(300, 9000))]);
        assert!(t.deadlocked(1).is_empty());
    }

    #[test]
    fn zero_progress_with_backlog_is_stuck() {
        let mut t = ProgressTracker::new();
        for _ in 0..4 {
            t.observe(&[
                ("sw0".into(), snap(100, 5000)),
                ("sw1".into(), snap(80, 3000)),
            ]);
        }
        assert_eq!(t.deadlocked(3), vec!["sw0".to_string(), "sw1".to_string()]);
    }

    #[test]
    fn idle_device_is_not_stuck() {
        let mut t = ProgressTracker::new();
        for _ in 0..4 {
            t.observe(&[("sw0".into(), snap(100, 0))]); // no backlog: just idle
        }
        assert!(t.deadlocked(1).is_empty());
    }

    #[test]
    fn wait_graph_finds_the_fig4_cycle() {
        // The paper's cycle: T1 → La → T0 → Lb → T1.
        let mut g = WaitGraph::new();
        g.add_edge("La", "T1");
        g.add_edge("T0", "La");
        g.add_edge("Lb", "T0");
        g.add_edge("T1", "Lb");
        // Plus a harmless dangling wait (a slow receiver).
        g.add_edge("T9", "server42");
        let cycle = g.find_cycle().expect("cycle exists");
        assert_eq!(cycle.len(), 4);
        for n in ["T0", "T1", "La", "Lb"] {
            assert!(cycle.contains(&n.to_string()), "{n} missing from {cycle:?}");
        }
    }

    #[test]
    fn wait_graph_acyclic_is_clean() {
        let mut g = WaitGraph::new();
        // A pause *chain* (storm propagation) is not a deadlock.
        g.add_edge("spine", "leaf");
        g.add_edge("leaf", "tor");
        g.add_edge("tor", "server0");
        assert_eq!(g.edge_count(), 3);
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn wait_graph_self_loop() {
        let mut g = WaitGraph::new();
        g.add_edge("sw", "sw");
        assert_eq!(g.find_cycle(), Some(vec!["sw".to_string()]));
    }

    #[test]
    fn recovery_resets_the_counter() {
        let mut t = ProgressTracker::new();
        t.observe(&[("sw0".into(), snap(100, 5000))]);
        t.observe(&[("sw0".into(), snap(100, 5000))]); // stuck 1
        t.observe(&[("sw0".into(), snap(150, 1000))]); // progress
        t.observe(&[("sw0".into(), snap(150, 1000))]); // stuck 1 again
        assert!(t.deadlocked(2).is_empty());
    }
}
