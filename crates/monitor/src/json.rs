//! Hand-rolled JSON: a tree value, a renderer, and a small strict parser.
//!
//! The workspace builds hermetically (no serde), yet §5's operability
//! story demands machine-readable output: every experiment binary renders
//! its report through [`Json`], and CI validates the result by parsing it
//! back with [`parse`]. The renderer emits canonical, deterministic text
//! (object keys in insertion order, `u64` counters verbatim rather than
//! through `f64`), so diffs of `BENCH_*.json` trajectory files stay
//! meaningful.

use std::fmt::Write as _;

/// A JSON value. Integers keep their own variants so 64-bit counters
/// (packet ids, byte totals) render exactly instead of rounding through
/// `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer, rendered verbatim.
    U64(u64),
    /// Signed integer, rendered verbatim.
    I64(i64),
    /// Floating point. Non-finite values render as `null` (JSON has no
    /// NaN/Inf).
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered key list (insertion order is render order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{v}` alone prints integral floats without a point;
                    // keep them distinguishable from integers.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset, for CI diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Strict: no comments, no trailing commas, numbers
/// land in `U64`/`I64` when integral and representable, else `F64`.
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after key")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates would need pairing; the renderer
                            // never emits them, so reject for simplicity.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| ParseError {
            at: start,
            msg: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_canonically() {
        let v = Json::obj(vec![
            ("id", Json::Str("fig2".into())),
            ("n", Json::U64(18446744073709551615)),
            ("neg", Json::I64(-3)),
            ("f", Json::F64(2.5)),
            ("whole", Json::F64(3.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"id":"fig2","n":18446744073709551615,"neg":-3,"f":2.5,"whole":3.0,"ok":true,"none":null,"rows":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn roundtrips() {
        let v = Json::obj(vec![(
            "tables",
            Json::Arr(vec![Json::obj(vec![
                ("name", Json::Str("t".into())),
                (
                    "rows",
                    Json::Arr(vec![Json::Arr(vec![
                        Json::F64(-1.25),
                        Json::U64(u64::MAX),
                        Json::Bool(false),
                    ])]),
                ),
            ])]),
        )]);
        let back = parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn integer_vs_float_classification() {
        assert_eq!(parse("42").unwrap(), Json::U64(42));
        assert_eq!(parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(parse("42.0").unwrap(), Json::F64(42.0));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
    }
}
