//! Cross-run report aggregation for the fleet runner: merge N replicate
//! reports (same scenario, different RNG seeds) into one report of the
//! same JSON schema, summarizing every numeric cell as min/mean/max.
//!
//! The paper's figures are statistics over repeated runs; the fleet
//! runner regenerates them by sweeping seeds and folding the per-seed
//! [`Json`] reports through [`merge_reports`]. Two properties are
//! load-bearing:
//!
//! * **Schema stability.** The merged document has exactly the
//!   `{id,title,paper,tables,scalars,notes}` shape of a single report, so
//!   `json_check` and downstream tooling need no second schema. A numeric
//!   cell whose replicate values differ becomes
//!   `{"min":..,"mean":..,"max":..}`; a cell whose values agree (the
//!   common case for deterministic sims) passes through verbatim.
//! * **Determinism.** Output depends only on the input reports and their
//!   order; merging the same reports always renders byte-identical text.
//!   The fleet sorts replicates by job index before merging.

use crate::json::Json;

/// Numeric view of a scalar JSON cell.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Num {
    U(u64),
    I(i64),
    F(f64),
}

impl Num {
    fn of(j: &Json) -> Option<Num> {
        match *j {
            Json::U64(v) => Some(Num::U(v)),
            Json::I64(v) => Some(Num::I(v)),
            Json::F64(v) => Some(Num::F(v)),
            _ => None,
        }
    }

    fn as_f64(self) -> f64 {
        match self {
            Num::U(v) => v as f64,
            Num::I(v) => v as f64,
            Num::F(v) => v,
        }
    }

    fn to_json(self) -> Json {
        match self {
            Num::U(v) => Json::U64(v),
            Num::I(v) => Json::I64(v),
            Num::F(v) => Json::F64(v),
        }
    }
}

/// Merge one cell position across all replicates.
///
/// Identical values (numeric or not) pass through verbatim; differing
/// numerics fold to a `{"min","mean","max"}` object; differing
/// non-numerics are a shape mismatch.
fn merge_cells(cells: &[&Json], at: &str) -> Result<Json, String> {
    let first = cells[0];
    if cells.iter().all(|c| *c == first) {
        return Ok((*first).clone());
    }
    let nums: Option<Vec<Num>> = cells.iter().map(|c| Num::of(c)).collect();
    let Some(nums) = nums else {
        return Err(format!(
            "non-numeric cells differ across replicates at {at}"
        ));
    };
    let min = nums
        .iter()
        .copied()
        .min_by(|a, b| a.as_f64().total_cmp(&b.as_f64()))
        .expect("non-empty");
    let max = nums
        .iter()
        .copied()
        .max_by(|a, b| a.as_f64().total_cmp(&b.as_f64()))
        .expect("non-empty");
    let mean = nums.iter().map(|n| n.as_f64()).sum::<f64>() / nums.len() as f64;
    Ok(Json::obj(vec![
        ("min", min.to_json()),
        ("mean", Json::F64(mean)),
        ("max", max.to_json()),
    ]))
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("report missing string field {key:?}"))
}

/// Merge N replicate reports of the same scenario into one report of the
/// same schema.
///
/// All reports must agree on `id`/`title`/`paper`, table shapes (names,
/// columns, row counts), scalar keys, and notes — replicates of a
/// deterministic scenario differ only in cell *values*. A single report
/// is returned unchanged; for N > 1 every differing numeric cell becomes
/// a `{"min","mean","max"}` object and a note records the replicate
/// count.
pub fn merge_reports(reports: &[Json]) -> Result<Json, String> {
    let first = reports.first().ok_or("merge_reports: no reports")?;
    if reports.len() == 1 {
        return Ok(first.clone());
    }
    let id = str_field(first, "id")?;
    for r in &reports[1..] {
        if str_field(r, "id")? != id {
            return Err(format!(
                "replicates mix scenarios: {id:?} vs {:?}",
                str_field(r, "id")?
            ));
        }
    }

    let all_tables: Vec<&[Json]> = reports
        .iter()
        .map(|r| {
            r.get("tables")
                .and_then(|t| t.as_arr())
                .ok_or_else(|| format!("{id}: report missing tables array"))
        })
        .collect::<Result<_, _>>()?;
    let n_tables = all_tables[0].len();
    if all_tables.iter().any(|t| t.len() != n_tables) {
        return Err(format!("{id}: table count differs across replicates"));
    }

    let mut tables = Vec::with_capacity(n_tables);
    for ti in 0..n_tables {
        let heads: Vec<&Json> = all_tables.iter().map(|t| &t[ti]).collect();
        let name = heads[0].get("name").cloned().unwrap_or(Json::Null);
        let columns = heads[0].get("columns").cloned().unwrap_or(Json::Null);
        let all_rows: Vec<&[Json]> = heads
            .iter()
            .map(|h| {
                h.get("rows")
                    .and_then(|r| r.as_arr())
                    .ok_or_else(|| format!("{id}: table {ti} missing rows"))
            })
            .collect::<Result<_, _>>()?;
        let n_rows = all_rows[0].len();
        if all_rows.iter().any(|r| r.len() != n_rows) {
            return Err(format!("{id}: row count differs in table {ti}"));
        }
        let mut rows = Vec::with_capacity(n_rows);
        for ri in 0..n_rows {
            let all_cells: Vec<&[Json]> = all_rows
                .iter()
                .map(|r| {
                    r[ri]
                        .as_arr()
                        .ok_or_else(|| format!("{id}: table {ti} row {ri} is not an array"))
                })
                .collect::<Result<_, _>>()?;
            let n_cells = all_cells[0].len();
            if all_cells.iter().any(|c| c.len() != n_cells) {
                return Err(format!("{id}: cell count differs in table {ti} row {ri}"));
            }
            let mut row = Vec::with_capacity(n_cells);
            for ci in 0..n_cells {
                let cells: Vec<&Json> = all_cells.iter().map(|c| &c[ci]).collect();
                row.push(merge_cells(
                    &cells,
                    &format!("{id} table {ti} row {ri} col {ci}"),
                )?);
            }
            rows.push(Json::Arr(row));
        }
        tables.push(Json::Obj(vec![
            ("name".to_string(), name),
            ("columns".to_string(), columns),
            ("rows".to_string(), Json::Arr(rows)),
        ]));
    }

    let all_scalars: Vec<&[(String, Json)]> = reports
        .iter()
        .map(|r| match r.get("scalars") {
            Some(Json::Obj(pairs)) => Ok(pairs.as_slice()),
            _ => Err(format!("{id}: report missing scalars object")),
        })
        .collect::<Result<_, _>>()?;
    let n_scalars = all_scalars[0].len();
    let mut scalars = Vec::with_capacity(n_scalars);
    for si in 0..n_scalars {
        let key = &all_scalars[0][si].0;
        let vals: Vec<&Json> = all_scalars
            .iter()
            .map(|s| {
                s.get(si)
                    .filter(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("{id}: scalar keys differ across replicates at {key}"))
            })
            .collect::<Result<_, _>>()?;
        scalars.push((
            key.clone(),
            merge_cells(&vals, &format!("{id} scalar {key:?}"))?,
        ));
    }

    let mut notes: Vec<Json> = first
        .get("notes")
        .and_then(|n| n.as_arr())
        .map(|n| n.to_vec())
        .unwrap_or_default();
    notes.push(Json::Str(format!(
        "aggregated min/mean/max over {} replicates",
        reports.len()
    )));

    Ok(Json::obj(vec![
        ("id", Json::Str(id.to_string())),
        ("title", first.get("title").cloned().unwrap_or(Json::Null)),
        ("paper", first.get("paper").cloned().unwrap_or(Json::Null)),
        ("tables", Json::Arr(tables)),
        ("scalars", Json::Obj(scalars)),
        ("notes", Json::Arr(notes)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(goodput: u64, ratio: f64) -> Json {
        Json::obj(vec![
            ("id", Json::Str("FIG-T".into())),
            ("title", Json::Str("test".into())),
            ("paper", Json::Str("claim".into())),
            (
                "tables",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::Str("arms".into())),
                    (
                        "columns",
                        Json::Arr(vec![Json::Str("arm".into()), Json::Str("goodput".into())]),
                    ),
                    (
                        "rows",
                        Json::Arr(vec![Json::Arr(vec![
                            Json::Str("a".into()),
                            Json::U64(goodput),
                        ])]),
                    ),
                ])]),
            ),
            (
                "scalars",
                Json::Obj(vec![("ratio".to_string(), Json::F64(ratio))]),
            ),
            ("notes", Json::Arr(vec![Json::Str("n".into())])),
        ])
    }

    #[test]
    fn single_report_passes_through() {
        let r = report(5, 1.5);
        assert_eq!(merge_reports(std::slice::from_ref(&r)).unwrap(), r);
    }

    #[test]
    fn identical_replicates_keep_cells_verbatim() {
        let r = report(5, 1.5);
        let m = merge_reports(&[r.clone(), r.clone(), r]).unwrap();
        let rows = m.get("tables").unwrap().as_arr().unwrap()[0]
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[1], Json::U64(5));
        assert_eq!(
            m.get("scalars").unwrap().get("ratio"),
            Some(&Json::F64(1.5))
        );
        let notes = m.get("notes").unwrap().as_arr().unwrap();
        assert!(notes
            .last()
            .unwrap()
            .as_str()
            .unwrap()
            .contains("3 replicates"));
    }

    #[test]
    fn differing_numerics_fold_to_min_mean_max() {
        let m = merge_reports(&[report(4, 1.0), report(8, 3.0)]).unwrap();
        let rows = m.get("tables").unwrap().as_arr().unwrap()[0]
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap();
        let cell = &rows[0].as_arr().unwrap()[1];
        assert_eq!(cell.get("min"), Some(&Json::U64(4)));
        assert_eq!(cell.get("mean"), Some(&Json::F64(6.0)));
        assert_eq!(cell.get("max"), Some(&Json::U64(8)));
        let ratio = m.get("scalars").unwrap().get("ratio").unwrap();
        assert_eq!(ratio.get("mean"), Some(&Json::F64(2.0)));
    }

    #[test]
    fn merged_output_is_deterministic() {
        let inputs = [report(4, 1.0), report(8, 3.0), report(6, 2.0)];
        let a = merge_reports(&inputs).unwrap().render();
        let b = merge_reports(&inputs).unwrap().render();
        assert_eq!(a, b);
    }

    #[test]
    fn mismatches_are_rejected() {
        // Different scenario ids.
        let mut other = report(4, 1.0);
        if let Json::Obj(pairs) = &mut other {
            pairs[0].1 = Json::Str("FIG-X".into());
        }
        assert!(merge_reports(&[report(4, 1.0), other]).is_err());
        // Different string cells.
        let mut renamed = report(4, 1.0);
        if let Json::Obj(pairs) = &mut renamed {
            if let Json::Arr(tables) = &mut pairs[3].1 {
                if let Json::Obj(t) = &mut tables[0] {
                    if let Json::Arr(rows) = &mut t[2].1 {
                        if let Json::Arr(cells) = &mut rows[0] {
                            cells[0] = Json::Str("b".into());
                        }
                    }
                }
            }
        }
        assert!(merge_reports(&[report(4, 1.0), renamed]).is_err());
        assert!(merge_reports(&[]).is_err());
    }
}
