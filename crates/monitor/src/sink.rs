//! Streaming trace export: unbounded, structured, line-delimited.
//!
//! The flight recorder (§5's black box) keeps the most recent 4096
//! [`TraceEvent`]s — enough for a post-mortem, useless for regenerating a
//! paper figure. The paper's evidence is *trajectories*: queue depth over
//! time (Figure 10), pause propagation (Figure 9), DCQCN rate curves,
//! RTT distributions (Figure 6). This module is the export path those
//! figures need: a [`TraceSink`] receives every record the fabric emits
//! — flight-recorder events, per-packet hop records, periodic queue-depth
//! samples, and congestion-control rate-change points — as it happens,
//! and streams it out of the simulation (to a JSONL file, or into memory
//! for tests) instead of into a bounded ring.
//!
//! Invariants:
//!
//! * **Digest neutrality.** A sink only observes. It never schedules
//!   events, draws randomness, or touches packet contents, so the golden
//!   dispatch digest is byte-identical with a sink attached or not; a
//!   tier-1 test pins this the same way it pins telemetry, the profiler
//!   and the deadlock detector.
//! * **Zero cost detached.** Emission sites guard on one relaxed atomic
//!   flag load; with no sink attached the per-packet hop path costs a
//!   single compare.
//! * **Self-describing lines.** Every record renders as one JSON object
//!   with `t_ps`, `scope`, `kind` and kind-specific fields, through the
//!   in-tree serde-free renderer. The strict [`parse_line`] parser reads
//!   them back; `trace_analyze` is built on it, and a property test pins
//!   the round trip.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::json::{self, Json};
use crate::telemetry::TraceEvent;

/// One per-packet hop: a data packet was enqueued at a switch egress
/// port. The combination of (`scope`, `port`, `queue_bytes`) over time is
/// the raw material of queue-depth heatmaps; (`src_ip`, `dst_ip`) ties
/// hops into flow trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Egress port the packet was queued on.
    pub port: u16,
    /// Priority class.
    pub prio: u8,
    /// Wire size of the packet, bytes.
    pub bytes: u32,
    /// IPv4 source (0 for non-IP frames).
    pub src_ip: u32,
    /// IPv4 destination (0 for non-IP frames).
    pub dst_ip: u32,
    /// Total bytes queued at the egress port *after* this enqueue.
    pub queue_bytes: u64,
}

/// One periodic queue-depth sample for a switch, taken at every
/// telemetry epoch by the cluster run loop — the Figure 10 time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSample {
    /// Lossless-class bytes queued across all egress ports.
    pub backlog_bytes: u64,
    /// Deepest single egress port right now, bytes (any class).
    pub max_port_bytes: u64,
    /// Cumulative data packets transmitted (progress corroboration).
    pub tx_pkts: u64,
}

/// One congestion-control rate change on a QP — a point on the CC rate
/// trajectory the DCQCN/TIMELY plots are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatePoint {
    /// QP number on the emitting NIC.
    pub qp: u32,
    /// New sending rate, Mbit/s.
    pub rate_mbps: u32,
    /// Controller that acted (`"dcqcn"`, `"timely"`).
    pub cc: &'static str,
    /// What moved it (`"cnp"`, `"increase"`, `"rtt-high"`, …).
    pub cause: &'static str,
}

/// The payload of one streamed record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordBody {
    /// A flight-recorder event (drops, pauses, watchdogs, …), streamed
    /// unbounded instead of ring-buffered.
    Event(TraceEvent),
    /// A per-packet hop at a switch egress.
    Hop(HopRecord),
    /// A periodic per-switch queue-depth sample.
    Queue(QueueSample),
    /// A CC rate-change trajectory point.
    Rate(RatePoint),
}

impl RecordBody {
    /// Stable kind tag for the `kind` field of the JSONL line.
    pub fn kind(&self) -> &'static str {
        match self {
            RecordBody::Event(e) => e.kind(),
            RecordBody::Hop(_) => "hop",
            RecordBody::Queue(_) => "queue",
            RecordBody::Rate(_) => "cc_rate",
        }
    }
}

/// One record as handed to a [`TraceSink`]: timestamp, resolved scope
/// name (the emitting component), and the payload. Borrowed so the hub
/// can stream without per-record allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRecord<'a> {
    /// Simulated time, picoseconds.
    pub t_ps: u64,
    /// Emitting component (e.g. `switch.pod0-tor0`, `nic.s3`).
    pub scope: &'a str,
    /// Owning shard for records merged out of a sharded run; `None` for
    /// single-world emission, which keeps those lines byte-identical to
    /// the pre-sharding format.
    pub shard: Option<u32>,
    /// The payload.
    pub body: RecordBody,
}

impl StreamRecord<'_> {
    /// The canonical JSON object for this record — exactly what
    /// [`JsonlSink`] writes per line and [`parse_line`] reads back.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("t_ps".to_string(), Json::U64(self.t_ps)),
            ("scope".to_string(), Json::Str(self.scope.to_string())),
            ("kind".to_string(), Json::Str(self.body.kind().to_string())),
        ];
        if let Some(s) = self.shard {
            pairs.push(("shard".to_string(), Json::U64(s as u64)));
        }
        match self.body {
            RecordBody::Event(e) => pairs.extend(e.detail_json()),
            RecordBody::Hop(h) => {
                pairs.push(("port".into(), Json::U64(h.port as u64)));
                pairs.push(("prio".into(), Json::U64(h.prio as u64)));
                pairs.push(("bytes".into(), Json::U64(h.bytes as u64)));
                pairs.push(("src_ip".into(), Json::U64(h.src_ip as u64)));
                pairs.push(("dst_ip".into(), Json::U64(h.dst_ip as u64)));
                pairs.push(("queue_bytes".into(), Json::U64(h.queue_bytes)));
            }
            RecordBody::Queue(q) => {
                pairs.push(("backlog_bytes".into(), Json::U64(q.backlog_bytes)));
                pairs.push(("max_port_bytes".into(), Json::U64(q.max_port_bytes)));
                pairs.push(("tx_pkts".into(), Json::U64(q.tx_pkts)));
            }
            RecordBody::Rate(r) => {
                pairs.push(("qp".into(), Json::U64(r.qp as u64)));
                pairs.push(("rate_mbps".into(), Json::U64(r.rate_mbps as u64)));
                pairs.push(("cc".into(), Json::Str(r.cc.to_string())));
                pairs.push(("cause".into(), Json::Str(r.cause.to_string())));
            }
        }
        Json::Obj(pairs)
    }
}

/// Which record classes a sink receives. Hop records dominate volume
/// (one per packet per switch); analyses that only need trajectories can
/// drop them at the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    /// Flight-recorder events (drops, pauses, watchdogs, …).
    pub events: bool,
    /// Per-packet hop records.
    pub hops: bool,
    /// Periodic queue-depth samples.
    pub queues: bool,
    /// CC rate-change points.
    pub rates: bool,
}

impl TraceFilter {
    /// Everything (the default).
    pub fn all() -> TraceFilter {
        TraceFilter {
            events: true,
            hops: true,
            queues: true,
            rates: true,
        }
    }

    /// Everything except per-packet hops — the compact trajectory trace.
    pub fn no_hops() -> TraceFilter {
        TraceFilter {
            hops: false,
            ..TraceFilter::all()
        }
    }

    /// The bitmask the hub's lock-free emission guard loads. Non-zero
    /// exactly when at least one class is selected.
    pub fn bits(&self) -> u32 {
        (self.events as u32)
            | (self.hops as u32) << 1
            | (self.queues as u32) << 2
            | (self.rates as u32) << 3
    }
}

impl Default for TraceFilter {
    fn default() -> TraceFilter {
        TraceFilter::all()
    }
}

/// A destination for streamed trace records. Implementations must be
/// `Send`: the fleet runner builds clusters (sink included) inside worker
/// threads.
pub trait TraceSink: Send {
    /// Receive one record. Called inline from simulation dispatch; the
    /// record borrows the hub's scope table, so copy out what you keep.
    fn write(&mut self, rec: &StreamRecord<'_>);

    /// Flush buffered output (end of run, or before a reader opens the
    /// file). Default: no-op.
    fn flush(&mut self) {}
}

/// Line-delimited JSON sink over any writer (file, pipe, `Vec<u8>`).
/// One [`StreamRecord::to_json`] object per line, in emission order.
pub struct JsonlSink {
    w: Box<dyn Write + Send>,
    records: u64,
}

impl JsonlSink {
    /// Stream to a buffered file at `path` (created/truncated).
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::to_writer(std::io::BufWriter::new(f)))
    }

    /// Stream to an arbitrary writer.
    pub fn to_writer(w: impl Write + Send + 'static) -> JsonlSink {
        JsonlSink {
            w: Box::new(w),
            records: 0,
        }
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }
}

impl TraceSink for JsonlSink {
    fn write(&mut self, rec: &StreamRecord<'_>) {
        let mut line = rec.to_json().render();
        line.push('\n');
        // A full disk mid-export is not a simulation error; the writer
        // surfaces it on flush.
        let _ = self.w.write_all(line.as_bytes());
        self.records += 1;
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// One record copied out of the stream by a [`MemorySink`].
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedRecord {
    /// Simulated time, picoseconds.
    pub t_ps: u64,
    /// Emitting component.
    pub scope: String,
    /// Owning shard tag (see [`StreamRecord::shard`]).
    pub shard: Option<u32>,
    /// The payload.
    pub body: RecordBody,
}

impl OwnedRecord {
    /// The same canonical JSON a [`JsonlSink`] would have written.
    pub fn to_json(&self) -> Json {
        StreamRecord {
            t_ps: self.t_ps,
            scope: &self.scope,
            shard: self.shard,
            body: self.body,
        }
        .to_json()
    }
}

/// In-memory sink for tests: clone the handle before attaching, read
/// the records after the run. Clones share one record list.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<OwnedRecord>>>,
}

impl MemorySink {
    /// An empty shared sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of everything recorded so far, in emission order.
    pub fn records(&self) -> Vec<OwnedRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Drain everything recorded so far, in emission order. The sharded
    /// merge uses this to move each bank's records into the final sink
    /// exactly once per flush boundary.
    pub fn take_records(&self) -> Vec<OwnedRecord> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }

    /// Number of records captured.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of records of one kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter(|r| r.body.kind() == kind)
            .count()
    }
}

impl TraceSink for MemorySink {
    fn write(&mut self, rec: &StreamRecord<'_>) {
        self.records.lock().unwrap().push(OwnedRecord {
            t_ps: rec.t_ps,
            scope: rec.scope.to_string(),
            shard: rec.shard,
            body: rec.body,
        });
    }
}

/// One line of an exported trace, parsed back: the fixed header fields
/// plus every kind-specific field as (name, value). This is the
/// analyzer's working form — generic enough that new record kinds flow
/// through without a schema change.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// Simulated time, picoseconds.
    pub t_ps: u64,
    /// Emitting component.
    pub scope: String,
    /// Record kind tag (`"hop"`, `"queue"`, `"cc_rate"`, or an event
    /// kind like `"pause_tx"`).
    pub kind: String,
    /// Kind-specific fields in line order.
    pub fields: Vec<(String, Json)>,
}

impl ParsedRecord {
    /// A numeric field as `u64`, if present.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                Json::U64(u) => Some(*u),
                Json::I64(i) => u64::try_from(*i).ok(),
                _ => None,
            })
    }

    /// A string field, if present.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
    }

    /// Re-render the canonical JSON line this record was parsed from.
    /// `parse_line(line)?.to_json().render() == line` for every line a
    /// [`JsonlSink`] writes — the round-trip property the tests pin.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("t_ps".to_string(), Json::U64(self.t_ps)),
            ("scope".to_string(), Json::Str(self.scope.clone())),
            ("kind".to_string(), Json::Str(self.kind.clone())),
        ];
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs)
    }
}

/// Parse one JSONL trace line. Strict about the header (`t_ps`, `scope`,
/// `kind` must be present and correctly typed); everything else is
/// carried through as kind-specific fields.
pub fn parse_line(line: &str) -> Result<ParsedRecord, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let Json::Obj(pairs) = v else {
        return Err("trace line is not a JSON object".to_string());
    };
    let mut t_ps = None;
    let mut scope = None;
    let mut kind = None;
    let mut fields = Vec::new();
    for (k, v) in pairs {
        match (k.as_str(), &v) {
            ("t_ps", Json::U64(t)) => t_ps = Some(*t),
            ("t_ps", _) => return Err("\"t_ps\" must be an unsigned integer".to_string()),
            ("scope", Json::Str(s)) => scope = Some(s.clone()),
            ("scope", _) => return Err("\"scope\" must be a string".to_string()),
            ("kind", Json::Str(s)) => kind = Some(s.clone()),
            ("kind", _) => return Err("\"kind\" must be a string".to_string()),
            _ => fields.push((k, v)),
        }
    }
    Ok(ParsedRecord {
        t_ps: t_ps.ok_or("missing \"t_ps\"")?,
        scope: scope.ok_or("missing \"scope\"")?,
        kind: kind.ok_or("missing \"kind\"")?,
        fields,
    })
}

/// Parse a whole exported trace (one record per line; blank lines
/// allowed). Errors carry the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<ParsedRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<OwnedRecord> {
        vec![
            OwnedRecord {
                t_ps: 1_000,
                scope: "switch.t0".into(),
                shard: None,
                body: RecordBody::Hop(HopRecord {
                    port: 4,
                    prio: 3,
                    bytes: 1120,
                    src_ip: 0x0a000001,
                    dst_ip: 0x0a000002,
                    queue_bytes: 2240,
                }),
            },
            OwnedRecord {
                t_ps: 2_000,
                scope: "switch.t0".into(),
                shard: None,
                body: RecordBody::Event(TraceEvent::PauseTx { port: 1, prio: 3 }),
            },
            OwnedRecord {
                t_ps: 3_000,
                scope: "nic.s1".into(),
                // Shard-tagged, as the sharded merge emits: the tag must
                // survive the render → parse → re-render round trip.
                shard: Some(2),
                body: RecordBody::Rate(RatePoint {
                    qp: 0,
                    rate_mbps: 20_000,
                    cc: "dcqcn",
                    cause: "cnp",
                }),
            },
            OwnedRecord {
                t_ps: 100_000_000,
                scope: "switch.t0".into(),
                shard: None,
                body: RecordBody::Queue(QueueSample {
                    backlog_bytes: 1 << 20,
                    max_port_bytes: 1 << 19,
                    tx_pkts: 42,
                }),
            },
        ]
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let buf: Vec<u8> = Vec::new();
        let shared = Arc::new(Mutex::new(buf));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::to_writer(SharedWriter(shared.clone()));
        for r in sample_records() {
            sink.write(&StreamRecord {
                t_ps: r.t_ps,
                scope: &r.scope,
                shard: r.shard,
                body: r.body,
            });
        }
        sink.flush();
        assert_eq!(sink.records_written(), 4);
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[0].kind, "hop");
        assert_eq!(parsed[1].kind, "pause_tx");
        assert_eq!(parsed[2].kind, "cc_rate");
        assert_eq!(parsed[3].kind, "queue");
        assert_eq!(parsed[3].u64_field("backlog_bytes"), Some(1 << 20));
        assert_eq!(parsed[2].str_field("cc"), Some("dcqcn"));
    }

    /// Canonical round trip: render → parse → re-render is the identity
    /// on bytes, for every record kind.
    #[test]
    fn parse_reaches_fixpoint_on_canonical_lines() {
        for r in sample_records() {
            let line = r.to_json().render();
            let back = parse_line(&line).unwrap();
            assert_eq!(back.to_json().render(), line);
            assert_eq!(back.t_ps, r.t_ps);
            assert_eq!(back.scope, r.scope);
            assert_eq!(back.kind, r.body.kind());
        }
    }

    #[test]
    fn memory_sink_copies_records() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        for r in sample_records() {
            writer.write(&StreamRecord {
                t_ps: r.t_ps,
                scope: &r.scope,
                shard: r.shard,
                body: r.body,
            });
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.count_kind("hop"), 1);
        assert_eq!(sink.records(), sample_records());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("[1,2]").is_err());
        assert!(parse_line(r#"{"scope":"x","kind":"hop"}"#).is_err()); // no t_ps
        assert!(parse_line(r#"{"t_ps":-1,"scope":"x","kind":"hop"}"#).is_err());
        assert!(parse_line(r#"{"t_ps":1,"scope":2,"kind":"hop"}"#).is_err());
        assert!(
            parse_jsonl("{\"t_ps\":1,\"scope\":\"s\",\"kind\":\"k\"}\ngarbage\n")
                .unwrap_err()
                .contains("line 2")
        );
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "\n{\"t_ps\":1,\"scope\":\"s\",\"kind\":\"k\"}\n\n";
        assert_eq!(parse_jsonl(text).unwrap().len(), 1);
    }

    #[test]
    fn filter_bits() {
        assert_eq!(TraceFilter::all().bits(), 0b1111);
        assert_eq!(TraceFilter::no_hops().bits(), 0b1101);
        let none = TraceFilter {
            events: false,
            hops: false,
            queues: false,
            rates: false,
        };
        assert_eq!(none.bits(), 0);
    }
}
