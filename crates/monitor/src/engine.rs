//! Event-engine telemetry: the simulator's scheduler watched the way the
//! paper watches NIC and switch counters. A fleet run that suddenly
//! spends its time cascading wheel levels (or whose pending-event
//! occupancy explodes) is the simulation-side analogue of a PFC storm —
//! these snapshots make that visible in experiment output.

use crate::json::Json;
use rocescale_sim::{EngineKind, EventProfile, ProfileMode, SchedStats, World};

/// A point-in-time snapshot of the event engine's health counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// Which engine backs the world.
    pub kind: EngineKind,
    /// The engine's lifetime counters at capture time.
    pub stats: SchedStats,
    /// Events the world has dispatched (matches `stats.dispatched` minus
    /// any cancelled entries skipped at pop).
    pub events_processed: u64,
    /// Simulated time of the capture, in picoseconds.
    pub now_ps: u64,
    /// Per-event-kind dispatch counts and handler wall-time, present
    /// when the world ran under [`ProfileMode::On`].
    pub profile: Option<EventProfile>,
}

impl EngineReport {
    /// Snapshot a world's engine counters.
    pub fn capture(world: &World) -> EngineReport {
        EngineReport {
            kind: world.engine_kind(),
            stats: world.sched_stats(),
            events_processed: world.events_processed(),
            now_ps: world.now().as_ps(),
            profile: (world.profile_mode() == ProfileMode::On).then(|| world.event_profile()),
        }
    }

    /// Events still pending (pushed but neither dispatched nor
    /// cancelled).
    pub fn pending(&self) -> u64 {
        self.stats
            .pushed
            .saturating_sub(self.stats.dispatched + self.stats.cancelled)
    }

    /// Wheel cascades per dispatched event — the amortized-O(1) claim in
    /// one number. Near zero for workloads inside the first wheel level;
    /// bounded by `LEVELS` in the worst case. Always zero on the
    /// binary-heap engine.
    pub fn cascades_per_event(&self) -> f64 {
        if self.stats.dispatched == 0 {
            0.0
        } else {
            self.stats.cascades as f64 / self.stats.dispatched as f64
        }
    }

    /// Simulated events per simulated microsecond — a density measure
    /// that lets runs of different lengths be compared.
    pub fn events_per_us(&self) -> f64 {
        if self.now_ps == 0 {
            0.0
        } else {
            self.events_processed as f64 / (self.now_ps as f64 / 1e6)
        }
    }

    /// Render as aligned `key value` rows for experiment output.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "engine              {:?}", self.kind);
        let _ = writeln!(out, "events dispatched   {}", self.stats.dispatched);
        let _ = writeln!(out, "events pushed       {}", self.stats.pushed);
        let _ = writeln!(out, "events cancelled    {}", self.stats.cancelled);
        let _ = writeln!(out, "pending             {}", self.pending());
        let _ = writeln!(out, "max occupancy       {}", self.stats.max_occupancy);
        let _ = writeln!(out, "wheel cascades      {}", self.stats.cascades);
        let _ = writeln!(out, "overflow pushed     {}", self.stats.overflow_pushed);
        let _ = writeln!(
            out,
            "overflow migrations {}",
            self.stats.overflow_migrations
        );
        let _ = writeln!(out, "cascades/event      {:.4}", self.cascades_per_event());
        if let Some(p) = &self.profile {
            for (i, kind) in EventProfile::KINDS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "dispatch {:<11} {} events, {} ns total, {:.1} ns/event",
                    kind,
                    p.counts[i],
                    p.nanos[i],
                    p.ns_per_event(i)
                );
            }
            let batches = p.total_batches();
            if batches > 0 {
                let _ = writeln!(
                    out,
                    "batches             {} ({:.2} events/batch)",
                    batches,
                    p.total_events() as f64 / batches as f64
                );
                for (i, range) in EventProfile::BATCH_BUCKETS.iter().enumerate() {
                    if p.batches[i] > 0 {
                        let _ = writeln!(out, "batch {:<13} {}", range, p.batches[i]);
                    }
                }
            }
        }
        out
    }

    /// Machine-readable form for `--json` output and bench artifacts.
    /// The `profile` key is present only when the world was profiled.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("engine", Json::Str(format!("{:?}", self.kind))),
            ("events_processed", Json::U64(self.events_processed)),
            ("events_pushed", Json::U64(self.stats.pushed)),
            ("events_cancelled", Json::U64(self.stats.cancelled)),
            ("pending", Json::U64(self.pending())),
            ("max_occupancy", Json::U64(self.stats.max_occupancy)),
            ("cascades", Json::U64(self.stats.cascades)),
            ("cascades_per_event", Json::F64(self.cascades_per_event())),
            ("now_ps", Json::U64(self.now_ps)),
        ];
        if let Some(p) = &self.profile {
            pairs.push(("profile", profile_json(p)));
        }
        Json::obj(pairs)
    }
}

/// Render an [`EventProfile`] as a JSON object keyed by event kind, each
/// with `count`, `nanos`, and `ns_per_event`, plus totals and the
/// events-per-batch histogram — the dispatch breakdown the bench
/// artifacts record.
pub fn profile_json(p: &EventProfile) -> Json {
    let mut pairs: Vec<(&str, Json)> = EventProfile::KINDS
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            (
                *kind,
                Json::obj(vec![
                    ("count", Json::U64(p.counts[i])),
                    ("nanos", Json::U64(p.nanos[i])),
                    ("ns_per_event", Json::F64(p.ns_per_event(i))),
                ]),
            )
        })
        .collect();
    pairs.push(("total_events", Json::U64(p.total_events())));
    pairs.push(("total_nanos", Json::U64(p.total_nanos())));
    pairs.push(("total_batches", Json::U64(p.total_batches())));
    pairs.push((
        "batch_histogram",
        Json::obj(
            EventProfile::BATCH_BUCKETS
                .iter()
                .enumerate()
                .map(|(i, range)| (*range, Json::U64(p.batches[i])))
                .collect(),
        ),
    ));
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocescale_sim::SimTime;

    #[test]
    fn capture_reflects_world_counters() {
        let mut w = World::new(7);
        // An empty world still starts nodes; with zero nodes nothing runs.
        w.run_until(SimTime::from_nanos(10));
        let r = EngineReport::capture(&w);
        assert_eq!(r.kind, EngineKind::Wheel);
        assert_eq!(r.events_processed, 0);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.cascades_per_event(), 0.0);
        let text = r.render();
        assert!(text.contains("engine"));
        assert!(text.contains("max occupancy"));
        // Unprofiled world: no profile in the report or its JSON.
        assert!(r.profile.is_none());
        assert!(r.to_json().get("profile").is_none());
    }

    #[test]
    fn profiled_world_surfaces_breakdown() {
        let mut w = World::new(7);
        w.set_profile_mode(ProfileMode::On);
        w.run_until(SimTime::from_nanos(10));
        let r = EngineReport::capture(&w);
        let p = r.profile.expect("profile captured when mode is on");
        // Zero nodes → zero events, but the structure is fully present.
        assert_eq!(p.total_events(), 0);
        let json = r.to_json();
        let prof = json.get("profile").expect("profile key in json");
        for kind in EventProfile::KINDS {
            let entry = prof.get(kind).expect("kind entry");
            assert!(entry.get("count").is_some() && entry.get("nanos").is_some());
        }
        assert!(r.render().contains("dispatch arrival"));
    }
}
