//! Event-engine telemetry: the simulator's scheduler watched the way the
//! paper watches NIC and switch counters. A fleet run that suddenly
//! spends its time cascading wheel levels (or whose pending-event
//! occupancy explodes) is the simulation-side analogue of a PFC storm —
//! these snapshots make that visible in experiment output.

use rocescale_sim::{EngineKind, SchedStats, World};

/// A point-in-time snapshot of the event engine's health counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// Which engine backs the world.
    pub kind: EngineKind,
    /// The engine's lifetime counters at capture time.
    pub stats: SchedStats,
    /// Events the world has dispatched (matches `stats.dispatched` minus
    /// any cancelled entries skipped at pop).
    pub events_processed: u64,
    /// Simulated time of the capture, in picoseconds.
    pub now_ps: u64,
}

impl EngineReport {
    /// Snapshot a world's engine counters.
    pub fn capture(world: &World) -> EngineReport {
        EngineReport {
            kind: world.engine_kind(),
            stats: world.sched_stats(),
            events_processed: world.events_processed(),
            now_ps: world.now().as_ps(),
        }
    }

    /// Events still pending (pushed but neither dispatched nor
    /// cancelled).
    pub fn pending(&self) -> u64 {
        self.stats
            .pushed
            .saturating_sub(self.stats.dispatched + self.stats.cancelled)
    }

    /// Wheel cascades per dispatched event — the amortized-O(1) claim in
    /// one number. Near zero for workloads inside the first wheel level;
    /// bounded by `LEVELS` in the worst case. Always zero on the
    /// binary-heap engine.
    pub fn cascades_per_event(&self) -> f64 {
        if self.stats.dispatched == 0 {
            0.0
        } else {
            self.stats.cascades as f64 / self.stats.dispatched as f64
        }
    }

    /// Simulated events per simulated microsecond — a density measure
    /// that lets runs of different lengths be compared.
    pub fn events_per_us(&self) -> f64 {
        if self.now_ps == 0 {
            0.0
        } else {
            self.events_processed as f64 / (self.now_ps as f64 / 1e6)
        }
    }

    /// Render as aligned `key value` rows for experiment output.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "engine              {:?}", self.kind);
        let _ = writeln!(out, "events dispatched   {}", self.stats.dispatched);
        let _ = writeln!(out, "events pushed       {}", self.stats.pushed);
        let _ = writeln!(out, "events cancelled    {}", self.stats.cancelled);
        let _ = writeln!(out, "pending             {}", self.pending());
        let _ = writeln!(out, "max occupancy       {}", self.stats.max_occupancy);
        let _ = writeln!(out, "wheel cascades      {}", self.stats.cascades);
        let _ = writeln!(out, "overflow pushed     {}", self.stats.overflow_pushed);
        let _ = writeln!(
            out,
            "overflow migrations {}",
            self.stats.overflow_migrations
        );
        let _ = writeln!(out, "cascades/event      {:.4}", self.cascades_per_event());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocescale_sim::SimTime;

    #[test]
    fn capture_reflects_world_counters() {
        let mut w = World::new(7);
        // An empty world still starts nodes; with zero nodes nothing runs.
        w.run_until(SimTime::from_nanos(10));
        let r = EngineReport::capture(&w);
        assert_eq!(r.kind, EngineKind::Wheel);
        assert_eq!(r.events_processed, 0);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.cascades_per_event(), 0.0);
        let text = r.render();
        assert!(text.contains("engine"));
        assert!(text.contains("max occupancy"));
    }
}
