//! Focused host/NIC behaviour tests beyond the end-to-end suite: VLAN
//! tagging, MAC filtering, receive-buffer pressure, DCQCN pacing, and
//! storm-mode receive behaviour.

use rocescale_nic::host::TOK_INJECT_STORM;
use rocescale_nic::{HostPfcMode, NicConfig, QpApp, RdmaHost};
use rocescale_packet::MacAddr;
use rocescale_sim::{LinkSpec, NodeId, PortId, SimTime, World};
use rocescale_switch::{ClassifyMode, PortRole, Switch, SwitchConfig};
use rocescale_transport::Verb;

const SUBNET: u32 = 0x0a000000;

fn host_ip(i: u32) -> u32 {
    SUBNET + 1 + i
}

fn star(
    n: u32,
    mut sw_cfg: SwitchConfig,
    mut tweak: impl FnMut(u32, &mut NicConfig),
) -> (World, NodeId, Vec<NodeId>) {
    let sw_mac = MacAddr::from_id(1000);
    sw_cfg.ports = n as u16;
    sw_cfg.port_roles = vec![PortRole::Server; n as usize];
    let mut sw = Switch::new(sw_cfg, sw_mac, 99);
    sw.routes_mut().add_connected(SUBNET, 24);
    let mut world = World::new(7);
    let mut cfgs = Vec::new();
    for i in 0..n {
        let mut cfg = NicConfig::new(format!("h{i}"), i + 1, host_ip(i), sw_mac);
        tweak(i, &mut cfg);
        sw.seed_arp(host_ip(i), cfg.mac, SimTime::ZERO);
        sw.seed_mac(cfg.mac, PortId(i as u16), SimTime::ZERO);
        cfgs.push(cfg);
    }
    let sw_id = world.add_node(Box::new(sw));
    let hosts: Vec<NodeId> = cfgs
        .into_iter()
        .map(|c| world.add_node(Box::new(RdmaHost::new(c))))
        .collect();
    for (i, h) in hosts.iter().enumerate() {
        world.connect(
            *h,
            PortId(0),
            sw_id,
            PortId(i as u16),
            LinkSpec::server_40g(),
        );
    }
    (world, sw_id, hosts)
}

fn connect_qp(
    world: &mut World,
    a: NodeId,
    b: NodeId,
    udp_src: u16,
    app_a: QpApp,
    app_b: QpApp,
) -> (rocescale_nic::QpHandle, rocescale_nic::QpHandle) {
    let a_ip = world.node::<RdmaHost>(a).config().ip;
    let b_ip = world.node::<RdmaHost>(b).config().ip;
    let a_qpn = world.node::<RdmaHost>(a).qp_count() as u32;
    let b_qpn = world.node::<RdmaHost>(b).qp_count() as u32;
    let ha = world
        .node_mut::<RdmaHost>(a)
        .add_qp(b_ip, b_qpn, udp_src, app_a);
    let hb = world
        .node_mut::<RdmaHost>(b)
        .add_qp(a_ip, a_qpn, udp_src, app_b);
    (ha, hb)
}

/// Hosts in VLAN mode tag their data packets; a VLAN-mode switch
/// classifies them by PCP and the transfer is lossless end to end —
/// the host half of the §3 equivalence.
#[test]
fn vlan_mode_host_end_to_end() {
    let mut sw_cfg = SwitchConfig::new("tor", 2);
    sw_cfg.classify = ClassifyMode::Vlan;
    let (mut world, sw, hosts) = star(2, sw_cfg, |_, cfg| {
        cfg.pfc_mode = HostPfcMode::Vlan { vid: 100 };
    });
    let (qa, qb) = connect_qp(
        &mut world,
        hosts[0],
        hosts[1],
        5000,
        QpApp::None,
        QpApp::None,
    );
    let _ = qa;
    world.node_mut::<RdmaHost>(hosts[0]).post(
        qa,
        Verb::Send { len: 1 << 20 },
        SimTime::ZERO,
        false,
    );
    world.run_until(SimTime::from_millis(2));
    assert_eq!(
        world
            .node::<RdmaHost>(hosts[1])
            .qp_endpoint(qb)
            .goodput_bytes(),
        1 << 20
    );
    assert_eq!(world.node::<Switch>(sw).stats.total_drops(), 0);
}

/// A host in storm mode drops everything it receives (the paper: the
/// stormer "was not sending or receiving any data packets") and counts
/// it.
#[test]
fn storm_mode_drops_all_rx() {
    let (mut world, _sw, hosts) = star(2, SwitchConfig::new("tor", 2), |i, cfg| {
        if i == 1 {
            // Keep the stormer's switch port lossless so frames reach it.
            cfg.nic_watchdog_after = None;
        }
    });
    connect_qp(
        &mut world,
        hosts[0],
        hosts[1],
        5000,
        QpApp::Saturate {
            msg_len: 64 * 1024,
            inflight: 1,
        },
        QpApp::None,
    );
    world.schedule_timer(SimTime::from_micros(100), hosts[1], TOK_INJECT_STORM);
    world.run_until(SimTime::from_millis(5));
    let h = world.node::<RdmaHost>(hosts[1]);
    assert!(h.in_storm());
    assert!(h.stats.rx_storm_dropped > 0, "storm must discard arrivals");
    // And it has been pausing continuously.
    assert!(h.stats.pause_tx > 10);
}

/// DCQCN pacing actually limits the wire rate: a QP whose RP has been
/// cut transmits measurably slower than line rate.
#[test]
fn dcqcn_pacing_limits_wire_rate() {
    // 3:1 incast with DCQCN: after convergence each sender's share is
    // well under line rate, so per-QP pacing must show in tx counts.
    let (mut world, _sw, hosts) = star(4, SwitchConfig::new("tor", 4), |_, _| {});
    for i in 1..4 {
        connect_qp(
            &mut world,
            hosts[i],
            hosts[0],
            5000 + i as u16,
            QpApp::Saturate {
                msg_len: 1 << 20,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    world.run_until(SimTime::from_millis(10));
    for (i, &host) in hosts.iter().enumerate().skip(1) {
        let h = world.node::<RdmaHost>(host);
        let gbps = h.stats.tx_bytes as f64 * 8.0 / 0.010 / 1e9;
        assert!(
            gbps < 30.0,
            "sender {i} must be paced below line rate: {gbps}"
        );
        assert!(h.stats.cnp_rx > 0, "sender {i} must have received CNPs");
        let rate = h.qp_rate_bps(rocescale_nic::QpHandle(0));
        assert!(rate < 35e9, "RP rate must be cut: {rate}");
    }
}

/// Sequential IP IDs: consecutive transmitted packets carry consecutive
/// IDs — the property that makes §4.1's filter deterministic.
#[test]
fn ip_ids_are_sequential() {
    let (mut world, sw, hosts) = star(2, SwitchConfig::new("tor", 2), |_, _| {});
    let (qa, _qb) = connect_qp(
        &mut world,
        hosts[0],
        hosts[1],
        5000,
        QpApp::None,
        QpApp::None,
    );
    world.node_mut::<RdmaHost>(hosts[0]).post(
        qa,
        Verb::Send { len: 600 * 1024 },
        SimTime::ZERO,
        false,
    );
    world.run_until(SimTime::from_millis(1));
    // 600 data packets plus control: the sender's ip_id counter must have
    // advanced once per packet — verify via the switch's rx counter vs
    // the host's tx counter (no gaps possible if equal and no drops).
    let host_tx = world.node::<RdmaHost>(hosts[0]).stats.data_pkts_tx;
    let sw_rx = world.node::<Switch>(sw).stats.rx_pkts[0];
    assert!(host_tx >= 600);
    // switch also received ACK-path control from host 0? no: acks come
    // from host 1's port. rx on port 0 = host 0's data + its ctrl.
    assert!(
        sw_rx >= host_tx,
        "all transmitted packets reached the switch"
    );
    assert_eq!(world.node::<Switch>(sw).stats.total_drops(), 0);
}

/// Receive-buffer overflow is impossible while the host's own PFC is on:
/// the host XOFFs its ToR before the buffer fills.
#[test]
fn host_pfc_protects_its_rx_buffer() {
    let (mut world, _sw, hosts) = star(3, SwitchConfig::new("tor", 3), |i, cfg| {
        if i == 0 {
            // A receiver with a deliberately slow pipeline.
            cfg.rx.per_packet_ps = 400_000; // 2.5 M pps < line rate
        }
        cfg.cc = rocescale_cc::CcParams::Off;
    });
    for i in 1..3 {
        connect_qp(
            &mut world,
            hosts[i],
            hosts[0],
            5000 + i as u16,
            QpApp::Saturate {
                msg_len: 1 << 20,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    world.run_until(SimTime::from_millis(5));
    let h = world.node::<RdmaHost>(hosts[0]);
    assert!(h.stats.pause_tx > 0, "slow pipeline must XOFF the ToR");
    assert_eq!(h.stats.rx_overflow, 0, "PFC must protect the rx buffer");
}
