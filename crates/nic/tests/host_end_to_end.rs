//! End-to-end tests: RDMA hosts talking through a real switch — transport
//! completion, the §4.1 livelock at packet level, the §4.4 slow receiver,
//! the §4.3 NIC storm with its watchdog, and DCQCN under incast.

use rocescale_nic::host::TOK_INJECT_STORM;
use rocescale_nic::{MttConfig, NicConfig, QpApp, RdmaHost};
use rocescale_packet::MacAddr;
use rocescale_sim::{LinkSpec, NodeId, PortId, SimTime, World};
use rocescale_switch::{DropReason, PortRole, Switch, SwitchConfig};
use rocescale_transport::{LossRecovery, QpConfig, Verb};

const SUBNET: u32 = 0x0a000000;

fn host_ip(i: u32) -> u32 {
    SUBNET + 1 + i
}

/// N hosts on one ToR. Returns (world, switch id, host ids).
fn star(
    n: u32,
    mut sw_cfg: SwitchConfig,
    mut tweak: impl FnMut(u32, &mut NicConfig),
) -> (World, NodeId, Vec<NodeId>) {
    let sw_mac = MacAddr::from_id(1000);
    sw_cfg.ports = n as u16;
    sw_cfg.port_roles = vec![PortRole::Server; n as usize];
    let mut sw = Switch::new(sw_cfg, sw_mac, 99);
    sw.routes_mut().add_connected(SUBNET, 24);
    let mut world = World::new(7);
    let mut cfgs = Vec::new();
    for i in 0..n {
        let mut cfg = NicConfig::new(format!("h{i}"), i + 1, host_ip(i), sw_mac);
        tweak(i, &mut cfg);
        sw.seed_arp(host_ip(i), cfg.mac, SimTime::ZERO);
        sw.seed_mac(cfg.mac, PortId(i as u16), SimTime::ZERO);
        cfgs.push(cfg);
    }
    let sw_id = world.add_node(Box::new(sw));
    let hosts: Vec<NodeId> = cfgs
        .into_iter()
        .map(|c| world.add_node(Box::new(RdmaHost::new(c))))
        .collect();
    for (i, h) in hosts.iter().enumerate() {
        world.connect(
            *h,
            PortId(0),
            sw_id,
            PortId(i as u16),
            LinkSpec::server_40g(),
        );
    }
    (world, sw_id, hosts)
}

/// Wire a QP pair between two hosts (both directions agree on QPNs).
fn connect_qp(
    world: &mut World,
    a: NodeId,
    b: NodeId,
    udp_src: u16,
    app_a: QpApp,
    app_b: QpApp,
) -> (rocescale_nic::QpHandle, rocescale_nic::QpHandle) {
    let a_ip = world.node::<RdmaHost>(a).config().ip;
    let b_ip = world.node::<RdmaHost>(b).config().ip;
    let a_qpn = world.node::<RdmaHost>(a).qp_count() as u32;
    let b_qpn = world.node::<RdmaHost>(b).qp_count() as u32;
    let ha = world
        .node_mut::<RdmaHost>(a)
        .add_qp(b_ip, b_qpn, udp_src, app_a);
    let hb = world
        .node_mut::<RdmaHost>(b)
        .add_qp(a_ip, a_qpn, udp_src, app_b);
    (ha, hb)
}

#[test]
fn send_end_to_end_completes() {
    let (mut world, sw, hosts) = star(2, SwitchConfig::new("tor", 2), |_, _| {});
    let (qa, qb) = connect_qp(
        &mut world,
        hosts[0],
        hosts[1],
        5000,
        QpApp::None,
        QpApp::None,
    );
    world.node_mut::<RdmaHost>(hosts[0]).post(
        qa,
        Verb::Send { len: 1 << 20 },
        SimTime::ZERO,
        false,
    );
    world.run_until(SimTime::from_millis(2));
    let b = world.node::<RdmaHost>(hosts[1]);
    assert_eq!(b.qp_endpoint(qb).goodput_bytes(), 1 << 20);
    let a = world.node::<RdmaHost>(hosts[0]);
    assert_eq!(a.stats.send_completions, 1);
    assert_eq!(world.node::<Switch>(sw).stats.total_drops(), 0);
    // 1 MB at 40G with headers ≈ 220 µs: it must have finished well under
    // 2 ms of simulated time, i.e. at roughly line rate.
    assert!(a.stats.data_pkts_tx >= 1024);
}

#[test]
fn burst_sends_exactly_its_budget_then_goes_quiet() {
    let (mut world, sw, hosts) = star(2, SwitchConfig::new("tor", 2), |_, _| {});
    let (_qa, qb) = connect_qp(
        &mut world,
        hosts[0],
        hosts[1],
        5000,
        QpApp::Burst {
            msg_len: 64 * 1024,
            count: 5,
            inflight: 2,
        },
        QpApp::None,
    );
    world.run_until(SimTime::from_millis(1));
    let done_at = world.node::<RdmaHost>(hosts[0]).stats.data_pkts_tx;
    let b = world.node::<RdmaHost>(hosts[1]);
    assert_eq!(b.qp_endpoint(qb).goodput_bytes(), 5 * 64 * 1024);
    assert_eq!(world.node::<RdmaHost>(hosts[0]).stats.send_completions, 5);
    assert_eq!(world.node::<Switch>(sw).stats.total_drops(), 0);
    // The budget is spent: another millisecond moves no more data.
    world.run_until(SimTime::from_millis(2));
    assert_eq!(world.node::<RdmaHost>(hosts[0]).stats.data_pkts_tx, done_at);
}

#[test]
fn write_and_read_verbs_work_through_fabric() {
    let (mut world, _sw, hosts) = star(2, SwitchConfig::new("tor", 2), |_, _| {});
    let (qa, qb) = connect_qp(
        &mut world,
        hosts[0],
        hosts[1],
        5000,
        QpApp::None,
        QpApp::None,
    );
    world.node_mut::<RdmaHost>(hosts[0]).post(
        qa,
        Verb::Write { len: 256 * 1024 },
        SimTime::ZERO,
        false,
    );
    world.node_mut::<RdmaHost>(hosts[0]).post(
        qa,
        Verb::Read { len: 128 * 1024 },
        SimTime::ZERO,
        false,
    );
    world.run_until(SimTime::from_millis(2));
    let b = world.node::<RdmaHost>(hosts[1]);
    assert_eq!(b.qp_endpoint(qb).goodput_bytes(), 256 * 1024);
    let a = world.node::<RdmaHost>(hosts[0]);
    // WRITE completion + READ completion.
    assert_eq!(a.stats.send_completions, 2);
    // READ response bytes landed back at A.
    assert_eq!(a.qp_endpoint(qa).goodput_bytes(), 128 * 1024);
}

/// §4.1 at full packet level: two servers, one switch, deterministic
/// 1/256 drop. Go-back-0 → zero goodput at full link utilization;
/// go-back-N → graceful degradation.
#[test]
fn livelock_through_real_switch() {
    let run = |recovery: LossRecovery| {
        let mut sw_cfg = SwitchConfig::new("tor", 2);
        sw_cfg.drop_ip_id_low_byte = Some(0xff);
        let (mut world, sw, hosts) = star(2, sw_cfg, |_, cfg| {
            cfg.qp_defaults = QpConfig {
                recovery,
                rto_ps: 100_000_000, // 100 µs: tight for a 1-hop testbed
                ..QpConfig::default()
            };
            cfg.cc = rocescale_cc::CcParams::Off; // isolate loss recovery from rate control
        });
        let (qa, qb) = connect_qp(
            &mut world,
            hosts[0],
            hosts[1],
            5000,
            QpApp::Saturate {
                msg_len: 4 << 20,
                inflight: 1,
            },
            QpApp::None,
        );
        let _ = qa;
        world.run_until(SimTime::from_millis(20));
        let goodput = world
            .node::<RdmaHost>(hosts[1])
            .qp_endpoint(qb)
            .goodput_bytes();
        let sent = world.node::<RdmaHost>(hosts[0]).stats.data_pkts_tx;
        let dropped = world
            .node::<Switch>(sw)
            .stats
            .drops_of(DropReason::InjectedFilter);
        (goodput, sent, dropped)
    };

    let (g0, sent0, drop0) = run(LossRecovery::GoBack0);
    assert_eq!(g0, 0, "go-back-0 must livelock (goodput 0)");
    // The link stayed busy: 20 ms at 40G ≈ 92k packets of 1086 B.
    assert!(
        sent0 > 60_000,
        "link must stay near line rate, sent {sent0}"
    );
    assert!(drop0 > 200, "filter must be active, dropped {drop0}");

    let (gn, sent_n, _) = run(LossRecovery::GoBackN);
    // 20 ms at 40G ≈ 100 MB minus go-back-N waste; must complete many
    // 4 MB messages.
    assert!(gn >= 8 * (4 << 20), "go-back-N goodput too low: {gn}");
    assert!(sent_n > 60_000);
}

/// §4.4: a receiver with 4 KB pages and a tiny MTT thrashes, stalls its
/// pipeline, and emits pause frames; 2 MB pages fix it.
#[test]
fn slow_receiver_symptom_and_large_page_fix() {
    let run = |mtt: MttConfig| {
        let (mut world, _sw, hosts) = star(2, SwitchConfig::new("tor", 2), |i, cfg| {
            if i == 1 {
                cfg.rx.mtt = Some(mtt);
            }
            cfg.cc = rocescale_cc::CcParams::Off;
        });
        let (_qa, _qb) = connect_qp(
            &mut world,
            hosts[0],
            hosts[1],
            5000,
            QpApp::Saturate {
                msg_len: 1 << 20,
                inflight: 4,
            },
            QpApp::None,
        );
        world.run_until(SimTime::from_millis(10));
        world.node::<RdmaHost>(hosts[1]).stats.pause_tx
    };
    // Shrink the cache so the thrash shows quickly at test scale.
    let small = MttConfig {
        entries: 64,
        ..MttConfig::small_pages()
    };
    let large = MttConfig {
        entries: 64,
        ..MttConfig::large_pages()
    };
    let pauses_small = run(small);
    let pauses_large = run(large);
    assert!(
        pauses_small > 0,
        "small pages must produce the slow-receiver symptom"
    );
    assert!(
        pauses_large * 5 < pauses_small,
        "large pages must (mostly) cure it: {pauses_large} vs {pauses_small}"
    );
}

/// §4.3: a stormed NIC pauses its port forever; the NIC watchdog cuts the
/// pause generation (and never re-enables).
#[test]
fn nic_storm_watchdog_stops_pause_generation() {
    let run = |watchdog: Option<SimTime>| {
        let (mut world, _sw, hosts) = star(2, SwitchConfig::new("tor", 2), |i, cfg| {
            if i == 1 {
                cfg.nic_watchdog_after = watchdog;
            }
        });
        let (_qa, _qb) = connect_qp(
            &mut world,
            hosts[0],
            hosts[1],
            5000,
            QpApp::Saturate {
                msg_len: 64 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
        world.schedule_timer(SimTime::from_millis(1), hosts[1], TOK_INJECT_STORM);
        world.run_until(SimTime::from_millis(40));
        let h = world.node::<RdmaHost>(hosts[1]);
        (
            h.stats.pause_tx,
            h.pause_generation_disabled(),
            h.stats.nic_watchdog_fired,
        )
    };
    // Without the watchdog the storm pauses continuously: ~390 pauses in
    // 39 ms of storm (one per 100 µs refresh).
    let (pauses_no_wd, disabled_no, _) = run(None);
    assert!(
        pauses_no_wd > 300,
        "storm must pause continuously: {pauses_no_wd}"
    );
    assert!(!disabled_no);
    // With a 5 ms watchdog, generation stops early and stays stopped.
    let (pauses_wd, disabled, fired) = run(Some(SimTime::from_millis(5)));
    assert!(disabled && fired == 1);
    assert!(
        pauses_wd < pauses_no_wd / 4,
        "watchdog must contain the storm: {pauses_wd} vs {pauses_no_wd}"
    );
}

/// DCQCN under 4:1 incast: ECN marks produce CNPs, senders cut their
/// rates, and PFC pause generation drops sharply versus DCQCN off.
#[test]
fn dcqcn_reduces_pfc_under_incast() {
    let run = |dcqcn: bool| {
        let (mut world, sw, hosts) = star(5, SwitchConfig::new("tor", 5), |_, cfg| {
            if !dcqcn {
                cfg.cc = rocescale_cc::CcParams::Off;
            }
        });
        // Hosts 1..5 all blast host 0.
        for (i, src) in hosts.iter().enumerate().skip(1) {
            connect_qp(
                &mut world,
                *src,
                hosts[0],
                5000 + i as u16,
                QpApp::Saturate {
                    msg_len: 1 << 20,
                    inflight: 2,
                },
                QpApp::None,
            );
        }
        world.run_until(SimTime::from_millis(15));
        let pauses: u64 = world.node::<Switch>(sw).stats.total_pause_tx();
        let marked = world.node::<Switch>(sw).stats.ecn_marked;
        let drops = world.node::<Switch>(sw).stats.total_drops();
        let goodput = world.node::<RdmaHost>(hosts[0]).total_goodput_bytes();
        let cnps: u64 = hosts[1..]
            .iter()
            .map(|h| world.node::<RdmaHost>(*h).stats.cnp_rx)
            .sum();
        (pauses, marked, cnps, drops, goodput)
    };
    let (p_off, _, _, drops_off, good_off) = run(false);
    let (p_on, marked, cnps, drops_on, good_on) = run(true);
    assert_eq!(drops_off + drops_on, 0, "lossless classes never drop");
    assert!(marked > 0, "congestion point must mark");
    assert!(cnps > 0, "notification point must fire");
    assert!(
        p_on < p_off / 2,
        "DCQCN must reduce pause generation: {p_on} vs {p_off}"
    );
    // Rate control trades a little throughput for far fewer pauses.
    assert!(good_on > good_off / 2);
}

/// Pinger/Echo measure RTTs; an unloaded 2 m hop is microseconds.
#[test]
fn pingmesh_style_rtt_measurement() {
    let (mut world, _sw, hosts) = star(2, SwitchConfig::new("tor", 2), |_, _| {});
    connect_qp(
        &mut world,
        hosts[0],
        hosts[1],
        5000,
        QpApp::Pinger {
            payload: 512,
            interval: SimTime::from_micros(100),
            start_at: SimTime::from_micros(10),
        },
        QpApp::Echo { reply_len: 512 },
    );
    world.run_until(SimTime::from_millis(2));
    let a = world.node::<RdmaHost>(hosts[0]);
    let n = a.stats.rtt_samples_ps.len();
    assert!(n >= 15, "expected ~20 probes, got {n}");
    for rtt in &a.stats.rtt_samples_ps {
        let us = *rtt as f64 / 1e6;
        assert!(us > 0.5 && us < 50.0, "implausible RTT {us} µs");
    }
}

/// Determinism: identical seeds and configs give identical outcomes.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let (mut world, sw, hosts) = star(3, SwitchConfig::new("tor", 3), |_, _| {});
        for src in &hosts[1..] {
            connect_qp(
                &mut world,
                *src,
                hosts[0],
                7000,
                QpApp::Saturate {
                    msg_len: 256 * 1024,
                    inflight: 1,
                },
                QpApp::None,
            );
        }
        world.run_until(SimTime::from_millis(5));
        (
            world.node::<RdmaHost>(hosts[0]).total_goodput_bytes(),
            world.node::<Switch>(sw).stats.total_pause_tx(),
            world.node::<Switch>(sw).stats.ecn_marked,
            world.events_processed(),
        )
    };
    assert_eq!(run(), run());
}
