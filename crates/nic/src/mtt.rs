//! The NIC's Memory Translation Table cache (§4.4).
//!
//! "The NIC has a Memory Translation Table (MTT) which translates the
//! virtual memory to the physical memory. The MTT has only 2K entries.
//! For 4KB page size, 2K MTT entries can only handle 8MB memory." A miss
//! forces the NIC to fetch the entry from host DRAM over PCIe, stalling
//! the receive pipeline — the slow-receiver symptom. The fix: 2 MB pages.

use std::collections::HashMap;

/// MTT cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MttConfig {
    /// Number of cached translations (the paper's NIC: 2K).
    pub entries: usize,
    /// Page size in bytes (4 KB default, 2 MB mitigation).
    pub page_size: u64,
    /// Pipeline stall per miss (PCIe round trip to host DRAM plus
    /// replacement bookkeeping).
    pub miss_penalty_ps: u64,
}

impl MttConfig {
    /// The paper's problematic configuration: 2K entries × 4 KB pages.
    pub fn small_pages() -> MttConfig {
        MttConfig {
            entries: 2048,
            page_size: 4 * 1024,
            miss_penalty_ps: 1_500_000, // ~1.5 µs PCIe round trip
        }
    }

    /// The paper's mitigation: 2 MB pages (same 2K entries now cover
    /// 4 GB).
    pub fn large_pages() -> MttConfig {
        MttConfig {
            page_size: 2 * 1024 * 1024,
            ..MttConfig::small_pages()
        }
    }
}

/// An LRU cache of page translations keyed by (region, page-index).
///
/// The LRU is a clock over a dense slot array — O(1) amortized and
/// deterministic, no hash iteration order dependence.
#[derive(Debug, Clone)]
pub struct MttCache {
    cfg: MttConfig,
    /// page key -> slot index
    map: HashMap<u64, usize>,
    /// slot -> (key, referenced bit)
    slots: Vec<(u64, bool)>,
    hand: usize,
    hits: u64,
    misses: u64,
}

impl MttCache {
    /// An empty cache.
    pub fn new(cfg: MttConfig) -> MttCache {
        MttCache {
            cfg,
            map: HashMap::with_capacity(cfg.entries),
            slots: Vec::with_capacity(cfg.entries),
            hand: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MttConfig {
        &self.cfg
    }

    /// Translate an access at `byte_offset` within memory region
    /// `region_id`. Returns the pipeline stall in picoseconds (0 on hit).
    pub fn access(&mut self, region_id: u64, byte_offset: u64) -> u64 {
        let page = byte_offset / self.cfg.page_size;
        let key = (region_id << 24) ^ page;
        if let Some(&slot) = self.map.get(&key) {
            self.hits += 1;
            self.slots[slot].1 = true;
            return 0;
        }
        self.misses += 1;
        if self.slots.len() < self.cfg.entries {
            self.slots.push((key, true));
            self.map.insert(key, self.slots.len() - 1);
        } else {
            // Clock eviction.
            loop {
                let (old_key, referenced) = self.slots[self.hand];
                if referenced {
                    self.slots[self.hand].1 = false;
                    self.hand = (self.hand + 1) % self.slots.len();
                } else {
                    self.map.remove(&old_key);
                    self.slots[self.hand] = (key, true);
                    self.map.insert(key, self.hand);
                    self.hand = (self.hand + 1) % self.slots.len();
                    break;
                }
            }
        }
        self.cfg.miss_penalty_ps
    }

    /// (hits, misses).
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio so far (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut m = MttCache::new(MttConfig::small_pages());
        assert!(m.access(1, 0) > 0); // cold miss
        assert_eq!(m.access(1, 100), 0); // same page
        assert_eq!(m.access(1, 4095), 0);
        assert!(m.access(1, 4096) > 0); // next page
        assert_eq!(m.counters(), (2, 2));
    }

    #[test]
    fn capacity_eviction() {
        let cfg = MttConfig {
            entries: 4,
            page_size: 4096,
            miss_penalty_ps: 100,
        };
        let mut m = MttCache::new(cfg);
        for p in 0..4u64 {
            m.access(1, p * 4096);
        }
        // All four resident.
        for p in 0..4u64 {
            assert_eq!(m.access(1, p * 4096), 0, "page {p}");
        }
        // A fifth page evicts one.
        m.access(1, 4 * 4096);
        let misses_before = m.counters().1;
        for p in 0..5u64 {
            m.access(1, p * 4096);
        }
        assert!(m.counters().1 > misses_before, "someone was evicted");
    }

    /// §4.4 in miniature: a streaming working set larger than the cache's
    /// 4 KB-page reach thrashes; with 2 MB pages the same stream fits.
    #[test]
    fn large_pages_eliminate_thrash() {
        let stream = 16u64 << 20; // 16 MB of arriving message bytes
        let mut small = MttCache::new(MttConfig::small_pages());
        let mut large = MttCache::new(MttConfig::large_pages());
        // Sweep twice; second sweep shows steady-state behaviour.
        for _ in 0..2 {
            for off in (0..stream).step_by(1024) {
                small.access(1, off);
                large.access(1, off);
            }
        }
        assert!(
            small.miss_ratio() > 100.0 * large.miss_ratio(),
            "small {} vs large {}",
            small.miss_ratio(),
            large.miss_ratio()
        );
    }

    #[test]
    fn regions_do_not_alias() {
        let cfg = MttConfig {
            entries: 16,
            page_size: 4096,
            miss_penalty_ps: 1,
        };
        let mut m = MttCache::new(cfg);
        m.access(1, 0);
        assert!(m.access(2, 0) > 0, "different region misses");
        assert_eq!(m.access(1, 0), 0);
        assert_eq!(m.access(2, 0), 0);
    }
}
