//! The RDMA host node: QPs, pacing, congestion control, host-side PFC,
//! the receive pipeline, and built-in workload applications.
//!
//! Congestion control is pluggable: the host drives the sans-IO
//! [`rocescale_cc::SenderCc`] / [`rocescale_cc::ReceiverCc`] roles via
//! typed signals instead of a concrete DCQCN implementation, so DCQCN,
//! TIMELY-style delay-gradient control, and fixed-rate pacing all thread
//! through the same pump/receive paths.

use std::any::Any;
use std::collections::VecDeque;

use rocescale_cc::{CcAction, CcParams, CcSignal, CongestionControl, ReceiverCc, SenderCc};
use rocescale_dcqcn::{NpParams, RpParams};
use rocescale_monitor::{CounterId, HistogramId, MetricsHub, RatePoint, ScopeId, TraceEvent};
use rocescale_packet::{
    EcnCodepoint, EthMeta, Ipv4Meta, MacAddr, Packet, PacketKind, PauseFrame, PfcPauseFrame,
    Priority, RoceOpcode, RocePacket,
};
use rocescale_sim::{Ctx, Node, PortId, SimTime};
use rocescale_transport::{
    Completion, PacketDesc, QpConfig, QpEndpoint, TransportEvent, Verb, WrId,
};

use crate::mtt::{MttCache, MttConfig};

/// How the host tags outgoing packets for PFC classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPfcMode {
    /// DSCP-based PFC (§3): untagged frames, priority in the IP DSCP
    /// field (DSCP = priority value, the paper's identity mapping).
    Dscp,
    /// VLAN-based PFC: 802.1Q tag with PCP = priority and this VLAN ID.
    Vlan {
        /// VLAN ID for all tagged traffic.
        vid: u16,
    },
}

/// Receive-pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// Receive buffer size in bytes.
    pub buffer_bytes: u64,
    /// Emit a PFC pause when occupancy crosses this.
    pub xoff_bytes: u64,
    /// Emit a resume when occupancy falls to this.
    pub xon_bytes: u64,
    /// Fixed per-packet processing time of the pipeline.
    pub per_packet_ps: u64,
    /// MTT cache model; `None` disables translation stalls.
    pub mtt: Option<MttConfig>,
}

impl Default for RxConfig {
    fn default() -> RxConfig {
        RxConfig {
            buffer_bytes: 512 * 1024,
            xoff_bytes: 256 * 1024,
            xon_bytes: 128 * 1024,
            per_packet_ps: 100_000, // 100 ns — keeps up with 40G line rate
            mtt: None,
        }
    }
}

/// Host/NIC configuration.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Name for traces.
    pub name: String,
    /// NIC MAC address.
    pub mac: MacAddr,
    /// Host IP.
    pub ip: u32,
    /// MAC of the ToR's routed interface (hosts are statically provisioned
    /// with their gateway; ARP bootstrap is out of scope).
    pub gateway_mac: MacAddr,
    /// Link rate, bits/second.
    pub link_bps: u64,
    /// Tagging mode.
    pub pfc_mode: HostPfcMode,
    /// Default transport configuration for new QPs.
    pub qp_defaults: QpConfig,
    /// Priority class for RDMA traffic (the paper's bulk lossless class).
    pub rdma_priority: Priority,
    /// Sender-side congestion control: DCQCN reaction point, TIMELY-style
    /// delay gradient, or fixed-rate pacing ([`CcParams::Off`] disables
    /// rate control).
    pub cc: CcParams,
    /// DCQCN receiver (NP) parameters. The notification point runs
    /// regardless of the sender's controller — non-DCQCN senders simply
    /// ignore CNPs — which keeps receive-side behaviour identical across
    /// congestion-control ablations.
    pub dcqcn_np: NpParams,
    /// Receive pipeline.
    pub rx: RxConfig,
    /// NIC-side storm watchdog: disable pause generation once the receive
    /// pipeline has been stalled this long while pausing (§4.3; the
    /// paper's default is 100 ms). `None` disables the watchdog.
    pub nic_watchdog_after: Option<SimTime>,
    /// Telemetry bus handle. Disabled by default; when enabled the host
    /// registers its counters under `nic.{name}.…` (plus per-QP
    /// instruments under `nic.{name}.qp.{qpn}.…`) and feeds the flight
    /// recorder (pauses, rollbacks, rate changes, watchdog fires).
    pub telemetry: MetricsHub,
}

impl NicConfig {
    /// A 40 GbE host with the paper's recommended settings (DSCP-based
    /// PFC, go-back-N, DCQCN on).
    pub fn new(name: impl Into<String>, id: u32, ip: u32, gateway_mac: MacAddr) -> NicConfig {
        NicConfig {
            name: name.into(),
            mac: MacAddr::from_id(id),
            ip,
            gateway_mac,
            link_bps: 40_000_000_000,
            pfc_mode: HostPfcMode::Dscp,
            qp_defaults: QpConfig::default(),
            rdma_priority: Priority::new(3),
            cc: CcParams::Dcqcn(RpParams::for_line_rate(40_000_000_000)),
            dcqcn_np: NpParams::default(),
            rx: RxConfig::default(),
            nic_watchdog_after: None,
            telemetry: MetricsHub::disabled(),
        }
    }
}

/// Per-QP application behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QpApp {
    /// Passive: only what is explicitly posted.
    None,
    /// Keep `inflight` messages of `msg_len` bytes posted at all times —
    /// the "send as fast as possible" generators of §4.1 and Figure 7.
    Saturate {
        /// Message length, bytes.
        msg_len: u32,
        /// Messages kept outstanding.
        inflight: u32,
    },
    /// Saturate with a budget: keep `inflight` messages posted until
    /// `count` have been sent in total, then go quiet. The bulk-transfer
    /// shape of fleet workloads — a burst drains and the QP idles, so
    /// large-scale runs have genuine quiet spans for the sharded
    /// engine's adaptive epoch skipping to exploit.
    Burst {
        /// Message length, bytes.
        msg_len: u32,
        /// Total messages to send before going quiet.
        count: u32,
        /// Messages kept outstanding while budget remains.
        inflight: u32,
    },
    /// Reply to every received message with one of `reply_len` bytes —
    /// the response half of the incast service (Figure 6).
    Echo {
        /// Reply length, bytes.
        reply_len: u32,
    },
    /// Periodically send a `payload`-byte message and measure the RTT to
    /// the peer's (Echo) reply — Pingmesh probes (§5.3) and the query
    /// half of the incast service.
    Pinger {
        /// Probe payload, bytes (Pingmesh uses 512).
        payload: u32,
        /// Probe period.
        interval: SimTime,
        /// Phase offset of the first probe.
        start_at: SimTime,
    },
}

/// Host-level application behaviour (spanning QPs).
#[derive(Debug, Clone, PartialEq)]
pub enum HostApp {
    /// Nothing.
    None,
    /// Every `interval`, send a `query_len` query on *all* listed QPs at
    /// once — the fan-out that makes incast (Figure 6's chatty servers,
    /// §6.2's "queries to more than one thousand servers simultaneously").
    Fanout {
        /// QPs to query (indices from [`RdmaHost::add_qp`]).
        qps: Vec<QpHandle>,
        /// Query period.
        interval: SimTime,
        /// Query length, bytes.
        query_len: u32,
        /// First fan-out time.
        start_at: SimTime,
    },
}

/// Identifies a QP on its host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpHandle(pub u32);

/// Host counters.
#[derive(Debug, Clone, Default)]
pub struct HostStats {
    /// Data packets sent (transport, excluding control).
    pub data_pkts_tx: u64,
    /// Data bytes sent on the wire (all frames).
    pub tx_bytes: u64,
    /// Data packets received and processed.
    pub data_pkts_rx: u64,
    /// Pause frames sent by this host (slow receiver / storm).
    pub pause_tx: u64,
    /// Pause frames received (the fabric throttling us).
    pub pause_rx: u64,
    /// CNPs sent (NP role).
    pub cnp_tx: u64,
    /// CNPs received (RP role).
    pub cnp_rx: u64,
    /// Packets dropped because the receive buffer overflowed.
    pub rx_overflow: u64,
    /// Packets dropped because the NIC was in storm mode.
    pub rx_storm_dropped: u64,
    /// Completed RTT measurements, picoseconds (Pinger/Fanout apps).
    pub rtt_samples_ps: Vec<u64>,
    /// Total send-side message completions.
    pub send_completions: u64,
    /// Times the NIC watchdog disabled pause generation.
    pub nic_watchdog_fired: u64,
}

struct Qp {
    endpoint: QpEndpoint,
    peer_ip: u32,
    peer_qp: u32,
    udp_src: u16,
    prio: Priority,
    /// Sender-role congestion control (enum dispatch: determinism-cheap).
    cc: SenderCc,
    /// Receiver-role congestion notification.
    np: ReceiverCc,
    /// Next time pacing allows a data packet, ps.
    next_tx_ps: u64,
    app: QpApp,
    /// Send timestamps of tracked (RTT-measured) messages, FIFO.
    pending_rtt: VecDeque<u64>,
    /// Cumulative received payload offset (MTT access pattern).
    rx_offset: u64,
    /// Messages currently posted by a Saturate/Burst app.
    posted: u32,
    /// Messages a Burst app may still post (0 once the budget drains).
    burst_remaining: u32,
    wr_seq: u64,
}

impl Qp {
    /// Top up a Saturate/Burst generator to its inflight target,
    /// spending Burst budget as it goes. No-op for other apps.
    fn refill_app(&mut self) {
        match self.app {
            QpApp::Saturate { msg_len, inflight } => {
                while self.posted < inflight {
                    let wr = WrId(self.wr_seq);
                    self.wr_seq += 1;
                    self.endpoint.post(Verb::Send { len: msg_len }, wr);
                    self.posted += 1;
                }
            }
            QpApp::Burst {
                msg_len, inflight, ..
            } => {
                while self.posted < inflight && self.burst_remaining > 0 {
                    let wr = WrId(self.wr_seq);
                    self.wr_seq += 1;
                    self.endpoint.post(Verb::Send { len: msg_len }, wr);
                    self.posted += 1;
                    self.burst_remaining -= 1;
                }
            }
            _ => {}
        }
    }
}

// Timer tokens.
const TOK_PUMP: u64 = 1;
const TOK_CC_TICK: u64 = 2;
const TOK_RX_DONE: u64 = 3;
const TOK_RTO: u64 = 4;
const TOK_QP_APP_BASE: u64 = 1 << 32; // + qpn
const TOK_FANOUT: u64 = 5;
const TOK_PAUSE_REFRESH: u64 = 6;
const TOK_STORM_TICK: u64 = 7;
/// Public token: schedule with [`rocescale_sim::World::schedule_timer`] to
/// put the NIC into storm mode at a chosen instant (§4.3 fault injection).
pub const TOK_INJECT_STORM: u64 = 100;
/// Public token: end a pause storm started by [`TOK_INJECT_STORM`] — the
/// fault-script "storm stop" action. The NIC resumes its peer (unless its
/// own watchdog already cut pause generation) and restarts reception.
pub const TOK_STOP_STORM: u64 = 101;

// (Token 2 is the periodic congestion-control tick; its period comes from
// `CcParams::tick_period_ps` — 55 µs for DCQCN's alpha/increase timers.)
const RTO_SCAN: SimTime = SimTime::from_micros(100);
const STORM_REFRESH: SimTime = SimTime::from_micros(100);

/// Pre-registered telemetry instrument ids (sentinels when disabled).
struct NicTele {
    hub: MetricsHub,
    scope: ScopeId,
    /// Host name, kept for late per-QP registration in `add_qp`.
    name: String,
    pause_tx: CounterId,
    pause_rx: CounterId,
    cnp_tx: CounterId,
    cnp_rx: CounterId,
    rx_overflow: CounterId,
    rx_storm_dropped: CounterId,
    nic_watchdog_fired: CounterId,
    /// RTT histogram (`nic.{name}.rtt_ps`), fed by Pinger/Fanout apps.
    rtt_ps: HistogramId,
    /// Per-QP `nic.{name}.qp.{qpn}.retransmits` (rollback PSN volume).
    qp_retransmits: Vec<CounterId>,
    /// Per-QP `nic.{name}.qp.{qpn}.{controller}.rate_changes` (pacing
    /// rate moves, named for the controller that made them).
    qp_rate_changes: Vec<CounterId>,
}

impl NicTele {
    fn register(hub: MetricsHub, name: &str) -> NicTele {
        NicTele {
            scope: hub.scope(&format!("nic.{name}")),
            pause_tx: hub.counter(&format!("nic.{name}.pfc.xoff_tx")),
            pause_rx: hub.counter(&format!("nic.{name}.pfc.xoff_rx")),
            cnp_tx: hub.counter(&format!("nic.{name}.dcqcn.cnp_tx")),
            cnp_rx: hub.counter(&format!("nic.{name}.dcqcn.cnp_rx")),
            rx_overflow: hub.counter(&format!("nic.{name}.rx.overflow")),
            rx_storm_dropped: hub.counter(&format!("nic.{name}.rx.storm_dropped")),
            nic_watchdog_fired: hub.counter(&format!("nic.{name}.watchdog.fired")),
            rtt_ps: hub.histogram(&format!("nic.{name}.rtt_ps")),
            qp_retransmits: Vec::new(),
            qp_rate_changes: Vec::new(),
            name: name.to_string(),
            hub,
        }
    }
}

/// The RDMA host node.
pub struct RdmaHost {
    cfg: NicConfig,
    qps: Vec<Qp>,
    host_app: HostApp,
    /// Control packets (ACK/NAK/CNP) awaiting transmission.
    ctrl: VecDeque<Packet>,
    /// Pause frames awaiting transmission (bypass everything).
    pause_out: VecDeque<Packet>,
    /// Host egress pause state per priority (PFC reaction).
    paused_until: [SimTime; Priority::COUNT],
    /// Round-robin pointer over QPs.
    rr: usize,
    /// Sequential IP ID counter (§4.1's determinism).
    ip_id: u16,
    // --- receive pipeline ---
    rx_queue: VecDeque<Packet>,
    rx_occupancy: u64,
    rx_busy: bool,
    /// Host is in XOFF state toward the switch.
    host_xoff: bool,
    mtt: Option<MttCache>,
    /// Time the pipeline last completed a packet (watchdog input).
    last_rx_progress: SimTime,
    // --- storm state ---
    storm: bool,
    pause_gen_disabled: bool,
    /// Telemetry instruments (sentinels when the hub is disabled).
    tele: NicTele,
    /// Counters.
    pub stats: HostStats,
}

impl RdmaHost {
    /// Build a host from its configuration.
    pub fn new(cfg: NicConfig) -> RdmaHost {
        RdmaHost {
            mtt: cfg.rx.mtt.map(MttCache::new),
            tele: NicTele::register(cfg.telemetry.clone(), &cfg.name),
            cfg,
            qps: Vec::new(),
            host_app: HostApp::None,
            ctrl: VecDeque::new(),
            pause_out: VecDeque::new(),
            paused_until: [SimTime::ZERO; Priority::COUNT],
            rr: 0,
            ip_id: 0,
            rx_queue: VecDeque::new(),
            rx_occupancy: 0,
            rx_busy: false,
            host_xoff: false,
            last_rx_progress: SimTime::ZERO,
            storm: false,
            pause_gen_disabled: false,
            stats: HostStats::default(),
        }
    }

    /// Forward a QP's queued transport events (rollbacks) to the
    /// telemetry bus. Always drained so the queue stays bounded even with
    /// telemetry disabled.
    fn drain_transport_events(&mut self, qpn: u32, now_ps: u64) {
        while let Some(ev) = self.qps[qpn as usize].endpoint.pop_event() {
            match ev {
                TransportEvent::Rollback {
                    cause,
                    to_psn,
                    pkts,
                } => {
                    self.tele
                        .hub
                        .add(self.tele.qp_retransmits[qpn as usize], pkts as u64);
                    self.tele.hub.trace(
                        now_ps,
                        self.tele.scope,
                        TraceEvent::Rollback {
                            cause,
                            to_psn,
                            pkts,
                        },
                    );
                }
            }
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Create a QP to `peer_ip`/`peer_qp`. `udp_src` is the per-QP random
    /// UDP source port (the ECMP path selector); both ends must agree on
    /// each other's QP numbers.
    pub fn add_qp(&mut self, peer_ip: u32, peer_qp: u32, udp_src: u16, app: QpApp) -> QpHandle {
        let qpn = self.qps.len() as u32;
        let mut qp = Qp {
            endpoint: QpEndpoint::new(self.cfg.qp_defaults),
            peer_ip,
            peer_qp,
            udp_src,
            prio: self.cfg.rdma_priority,
            cc: SenderCc::new(&self.cfg.cc, self.cfg.link_bps),
            np: ReceiverCc::dcqcn(self.cfg.dcqcn_np),
            next_tx_ps: 0,
            app,
            pending_rtt: VecDeque::new(),
            rx_offset: 0,
            posted: 0,
            burst_remaining: match app {
                QpApp::Burst { count, .. } => count,
                _ => 0,
            },
            wr_seq: 0,
        };
        // Prime saturating apps here so QPs created mid-run start sending
        // at the next transmit opportunity (the periodic scans pump).
        qp.refill_app();
        self.qps.push(qp);
        let (hub, name) = (&self.tele.hub, &self.tele.name);
        self.tele
            .qp_retransmits
            .push(hub.counter(&format!("nic.{name}.qp.{qpn}.retransmits")));
        let cc_name = self.cfg.cc.kind().name();
        self.tele
            .qp_rate_changes
            .push(hub.counter(&format!("nic.{name}.qp.{qpn}.{cc_name}.rate_changes")));
        QpHandle(qpn)
    }

    /// Install a host-level application.
    pub fn set_host_app(&mut self, app: HostApp) {
        self.host_app = app;
    }

    /// Post a work request on a QP (programmatic workloads; `tracked`
    /// pushes an RTT measurement start for the message).
    pub fn post(&mut self, qp: QpHandle, verb: Verb, now: SimTime, tracked: bool) {
        let q = &mut self.qps[qp.0 as usize];
        let wr = WrId(q.wr_seq);
        q.wr_seq += 1;
        q.endpoint.post(verb, wr);
        if tracked {
            q.pending_rtt.push_back(now.as_ps());
        }
    }

    /// Read access to a QP's transport endpoint (stats, goodput).
    pub fn qp_endpoint(&self, qp: QpHandle) -> &QpEndpoint {
        &self.qps[qp.0 as usize].endpoint
    }

    /// Current congestion-controlled pacing rate of a QP, b/s (line rate
    /// when congestion control is off).
    pub fn qp_rate_bps(&self, qp: QpHandle) -> f64 {
        self.qps[qp.0 as usize].cc.rate_bps()
    }

    /// Number of QPs.
    pub fn qp_count(&self) -> usize {
        self.qps.len()
    }

    /// Sum of goodput bytes over all QPs (receiver side).
    pub fn total_goodput_bytes(&self) -> u64 {
        self.qps.iter().map(|q| q.endpoint.goodput_bytes()).sum()
    }

    /// Is the NIC in storm mode?
    pub fn in_storm(&self) -> bool {
        self.storm
    }

    /// MTT cache (hits, misses), if an MTT model is configured.
    pub fn mtt_counters(&self) -> Option<(u64, u64)> {
        self.mtt.as_ref().map(|m| m.counters())
    }

    /// Has the NIC watchdog disabled pause generation?
    pub fn pause_generation_disabled(&self) -> bool {
        self.pause_gen_disabled
    }

    /// Put the NIC into §4.3 storm mode immediately: the receive pipeline
    /// halts and the NIC pauses its switch port continuously. Prefer
    /// scheduling [`TOK_INJECT_STORM`] for mid-run injection.
    pub fn inject_storm(&mut self) {
        self.storm = true;
    }

    // ---- packet materialization ----

    fn next_ip_id(&mut self) -> u16 {
        let id = self.ip_id;
        self.ip_id = self.ip_id.wrapping_add(1);
        id
    }

    fn vlan_for(&self, prio: Priority) -> Option<(u8, u16)> {
        match self.cfg.pfc_mode {
            HostPfcMode::Dscp => None,
            HostPfcMode::Vlan { vid } => Some((prio.value(), vid)),
        }
    }

    fn materialize(&mut self, qpn: u32, desc: &PacketDesc, ctx: &mut Ctx<'_>) -> Packet {
        let q = &self.qps[qpn as usize];
        let prio = q.prio;
        let (peer_ip, peer_qp, udp_src) = (q.peer_ip, q.peer_qp, q.udp_src);
        let ecn = if desc.opcode.carries_data() {
            EcnCodepoint::Ect
        } else {
            EcnCodepoint::NotEct
        };
        let id = self.next_ip_id();
        Packet::new(
            ctx.next_packet_id(),
            EthMeta {
                src: self.cfg.mac,
                dst: self.cfg.gateway_mac,
                vlan: self.vlan_for(prio),
            },
            Some(Ipv4Meta {
                src: self.cfg.ip,
                dst: peer_ip,
                dscp: prio.value(),
                ecn,
                id,
                ttl: 64,
            }),
            PacketKind::Roce(RocePacket {
                opcode: desc.opcode,
                dest_qp: peer_qp,
                src_qp: qpn,
                psn: desc.psn,
                payload: desc.payload,
                is_first: desc.is_first,
                is_last: desc.is_last,
                udp_src,
            }),
            ctx.now().as_ps(),
        )
    }

    fn pause_packet(&mut self, prio: Priority, quanta: u16, ctx: &mut Ctx<'_>) -> Packet {
        let frame = if quanta == 0 {
            PauseFrame::resume(prio)
        } else {
            PauseFrame::pause(prio, quanta)
        };
        Packet::new(
            ctx.next_packet_id(),
            EthMeta {
                src: self.cfg.mac,
                dst: MacAddr::PAUSE_MULTICAST,
                vlan: None,
            },
            None,
            PacketKind::Pfc(frame),
            ctx.now().as_ps(),
        )
    }

    // ---- transmit pump ----

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let port = PortId(0);
        while !ctx.port_busy(port) && ctx.port_connected(port) {
            // Pause frames leave no matter what.
            if let Some(p) = self.pause_out.pop_front() {
                ctx.transmit(port, p).expect("port checked idle");
                continue;
            }
            if self.storm {
                return; // storm mode: no data, no control
            }
            let now = ctx.now();
            let prio = self.cfg.rdma_priority;
            if self.paused_until[prio.index()] > now {
                // Our lossless class is paused; wake when it expires.
                ctx.set_timer_at(self.paused_until[prio.index()], TOK_PUMP);
                return;
            }
            if let Some(p) = self.ctrl.pop_front() {
                self.stats.tx_bytes += p.wire_size() as u64;
                ctx.transmit(port, p).expect("port checked idle");
                continue;
            }
            // Data: round-robin over QPs, honouring per-QP pacing.
            let n = self.qps.len();
            let mut earliest: Option<u64> = None;
            let mut picked = None;
            for step in 0..n {
                let i = (self.rr + step) % n;
                if !self.qps[i].endpoint.has_data_tx() {
                    continue;
                }
                let t = self.qps[i].next_tx_ps;
                if t <= now.as_ps() {
                    picked = Some(i);
                    self.rr = (i + 1) % n;
                    break;
                }
                earliest = Some(earliest.map_or(t, |e: u64| e.min(t)));
            }
            let Some(i) = picked else {
                if let Some(t) = earliest {
                    ctx.set_timer_at(SimTime(t), TOK_PUMP);
                }
                return;
            };
            let desc = self.qps[i]
                .endpoint
                .next_data_tx(now.as_ps())
                .expect("has_data_tx checked");
            let pkt = self.materialize(i as u32, &desc, ctx);
            let bytes = pkt.wire_size() as u64;
            let rate = self.qps[i].cc.rate_bps();
            let gap_ps = (bytes as f64 * 8.0 * 1e12 / rate) as u64;
            let q = &mut self.qps[i];
            q.next_tx_ps = now.as_ps().max(q.next_tx_ps) + gap_ps;
            let act = q.cc.on_signal(CcSignal::BytesSent { bytes }, now.as_ps());
            if let Some(act) = act {
                self.note_cc_action(i as u32, act, now.as_ps());
            }
            self.stats.data_pkts_tx += 1;
            self.stats.tx_bytes += bytes;
            ctx.transmit(port, pkt).expect("port checked idle");
        }
    }

    /// Move a QP endpoint's pending control packets into the host queue.
    fn drain_ctrl(&mut self, qpn: u32, ctx: &mut Ctx<'_>) {
        while let Some(desc) = self.qps[qpn as usize].endpoint.pop_ctrl_tx() {
            let pkt = self.materialize(qpn, &desc, ctx);
            self.ctrl.push_back(pkt);
        }
    }

    fn send_cnp(&mut self, qpn: u32, ctx: &mut Ctx<'_>) {
        let desc = PacketDesc {
            opcode: RoceOpcode::Cnp,
            psn: 0,
            payload: 0,
            is_first: true,
            is_last: true,
            ack_req: false,
        };
        let pkt = self.materialize(qpn, &desc, ctx);
        self.ctrl.push_back(pkt);
        self.stats.cnp_tx += 1;
        self.tele.hub.incr(self.tele.cnp_tx);
    }

    // ---- receive pipeline ----

    fn on_rx(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        // NIC MAC filter: flooded copies of other hosts' frames (the §4.2
        // scenario floods lossless packets to every port) are discarded
        // in hardware before they can alias a local QP number.
        if pkt.eth.dst != self.cfg.mac && !pkt.eth.dst.is_multicast() {
            return;
        }
        if self.storm {
            self.stats.rx_storm_dropped += 1;
            self.tele.hub.incr(self.tele.rx_storm_dropped);
            self.note_rx_pressure(ctx);
            return;
        }
        let bytes = pkt.wire_size() as u64;
        if self.rx_occupancy + bytes > self.cfg.rx.buffer_bytes {
            self.stats.rx_overflow += 1;
            self.tele.hub.incr(self.tele.rx_overflow);
            return;
        }
        self.rx_occupancy += bytes;
        self.rx_queue.push_back(pkt);
        self.note_rx_pressure(ctx);
        if !self.rx_busy {
            self.start_rx_service(ctx);
        }
    }

    /// Emit XOFF when the receive buffer crosses its threshold (the
    /// slow-receiver symptom's visible signature).
    fn note_rx_pressure(&mut self, ctx: &mut Ctx<'_>) {
        let over = self.storm || self.rx_occupancy >= self.cfg.rx.xoff_bytes;
        if over && !self.host_xoff && !self.pause_gen_disabled {
            self.host_xoff = true;
            self.emit_pause(u16::MAX, ctx);
            ctx.set_timer(STORM_REFRESH, TOK_PAUSE_REFRESH);
        }
    }

    fn emit_pause(&mut self, quanta: u16, ctx: &mut Ctx<'_>) {
        let prio = self.cfg.rdma_priority;
        let pkt = self.pause_packet(prio, quanta, ctx);
        self.pause_out.push_back(pkt);
        if quanta > 0 {
            self.stats.pause_tx += 1;
            self.tele.hub.incr(self.tele.pause_tx);
            self.tele.hub.trace(
                ctx.now().as_ps(),
                self.tele.scope,
                TraceEvent::PauseTx {
                    port: 0,
                    prio: prio.index() as u8,
                },
            );
        }
        self.pump(ctx);
    }

    fn start_rx_service(&mut self, ctx: &mut Ctx<'_>) {
        let Some(pkt) = self.rx_queue.front() else {
            self.rx_busy = false;
            return;
        };
        self.rx_busy = true;
        let mut delay = self.cfg.rx.per_packet_ps;
        // MTT translation for packets that DMA payload into host memory.
        if let (Some(mtt), PacketKind::Roce(r)) = (self.mtt.as_mut(), &pkt.kind) {
            if r.opcode.carries_data() {
                let q = &self.qps.get(r.dest_qp as usize);
                if let Some(q) = q {
                    delay += mtt.access(r.dest_qp as u64, q.rx_offset);
                }
            }
        }
        ctx.set_timer(SimTime(delay), TOK_RX_DONE);
    }

    fn finish_rx_service(&mut self, ctx: &mut Ctx<'_>) {
        let Some(pkt) = self.rx_queue.pop_front() else {
            self.rx_busy = false;
            return;
        };
        self.rx_occupancy -= pkt.wire_size() as u64;
        self.last_rx_progress = ctx.now();
        self.process_rx(pkt, ctx);
        // XON when the buffer has drained enough.
        if self.host_xoff && !self.storm && self.rx_occupancy <= self.cfg.rx.xon_bytes {
            self.host_xoff = false;
            self.emit_pause(0, ctx);
        }
        self.start_rx_service(ctx);
    }

    fn process_rx(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let PacketKind::Roce(r) = pkt.kind else {
            return; // non-RoCE traffic (e.g. raw frames) is outside the NIC fast path
        };
        let qpn = r.dest_qp;
        if qpn as usize >= self.qps.len() {
            return; // unknown QP (e.g. host considered "dead" has none)
        }
        self.stats.data_pkts_rx += 1;
        // DCQCN NP: CE-marked data triggers a (rate-limited) CNP.
        if pkt.ip.map(|ip| ip.ecn) == Some(EcnCodepoint::Ce) {
            let now = ctx.now().as_ps();
            if self.qps[qpn as usize].np.on_ce_packet(now) {
                self.send_cnp(qpn, ctx);
            }
        }
        if r.opcode == RoceOpcode::Cnp {
            self.stats.cnp_rx += 1;
            self.tele.hub.incr(self.tele.cnp_rx);
            let now_ps = ctx.now().as_ps();
            let act = self.qps[qpn as usize].cc.on_signal(CcSignal::Cnp, now_ps);
            if let Some(act) = act {
                self.note_cc_action(qpn, act, now_ps);
            }
            return;
        }
        let desc = PacketDesc {
            opcode: r.opcode,
            psn: r.psn,
            payload: r.payload,
            is_first: r.is_first,
            is_last: r.is_last,
            ack_req: false,
        };
        let now_ps = ctx.now().as_ps();
        {
            let q = &mut self.qps[qpn as usize];
            if r.opcode.carries_data() {
                q.rx_offset += r.payload as u64;
            }
            q.endpoint.on_packet(&desc, now_ps);
        }
        // Delay-based controllers: feed the RTT samples this packet's
        // cumulative-ACK processing produced (no-op signals for DCQCN and
        // fixed-rate, so the paper-default event stream is untouched).
        while let Some(rtt_ps) = self.qps[qpn as usize].endpoint.take_rtt_sample() {
            let act = self.qps[qpn as usize]
                .cc
                .on_signal(CcSignal::AckRtt { rtt_ps }, now_ps);
            if let Some(act) = act {
                self.note_cc_action(qpn, act, now_ps);
            }
        }
        self.drain_ctrl(qpn, ctx);
        self.drain_transport_events(qpn, now_ps);
        self.handle_completions(qpn, ctx);
        self.pump(ctx);
    }

    /// Record a congestion-control action: per-QP counter plus a trace
    /// event naming the controller that acted, plus — with a sink
    /// streaming rate points — one trajectory point carrying the QP
    /// identity the flight event elides.
    fn note_cc_action(&mut self, qpn: u32, act: CcAction, now_ps: u64) {
        match act {
            CcAction::RateChange { rate_bps, cause } => {
                self.tele.hub.incr(self.tele.qp_rate_changes[qpn as usize]);
                let cc = self.qps[qpn as usize].cc.kind().name();
                let rate_mbps = (rate_bps / 1e6) as u32;
                self.tele.hub.trace(
                    now_ps,
                    self.tele.scope,
                    TraceEvent::RateChange {
                        cc,
                        rate_mbps,
                        cause,
                    },
                );
                self.tele.hub.stream_rate(
                    now_ps,
                    self.tele.scope,
                    RatePoint {
                        qp: qpn,
                        rate_mbps,
                        cc,
                        cause,
                    },
                );
            }
        }
    }

    fn handle_completions(&mut self, qpn: u32, ctx: &mut Ctx<'_>) {
        let completions = self.qps[qpn as usize].endpoint.take_completions();
        for c in completions {
            match c {
                Completion::SendDone { .. } => {
                    self.stats.send_completions += 1;
                    let q = &mut self.qps[qpn as usize];
                    if matches!(q.app, QpApp::Saturate { .. } | QpApp::Burst { .. }) {
                        q.posted = q.posted.saturating_sub(1);
                        q.refill_app();
                    }
                }
                Completion::ReadDone { .. } => {
                    self.stats.send_completions += 1;
                }
                Completion::MessageReceived { .. } => {
                    let now = ctx.now().as_ps();
                    let q = &mut self.qps[qpn as usize];
                    if let Some(sent) = q.pending_rtt.pop_front() {
                        self.stats.rtt_samples_ps.push(now - sent);
                        self.tele.hub.observe(self.tele.rtt_ps, now - sent);
                    }
                    if let QpApp::Echo { reply_len } = q.app {
                        let wr = WrId(q.wr_seq);
                        q.wr_seq += 1;
                        q.endpoint.post(Verb::Send { len: reply_len }, wr);
                    }
                }
            }
        }
    }

    // ---- PFC reaction ----

    fn on_pause(&mut self, frame: &PauseFrame, ctx: &mut Ctx<'_>) {
        self.stats.pause_rx += 1;
        self.tele.hub.incr(self.tele.pause_rx);
        if self.tele.hub.is_enabled() {
            if let Some((prio, quanta)) = frame.entries().next() {
                if quanta > 0 {
                    self.tele.hub.trace(
                        ctx.now().as_ps(),
                        self.tele.scope,
                        TraceEvent::PauseRx {
                            port: 0,
                            prio: prio.index() as u8,
                        },
                    );
                }
            }
        }
        let rate = ctx.port_rate(PortId(0)).unwrap_or(self.cfg.link_bps);
        let mut resumed = false;
        for (prio, quanta) in frame.entries() {
            if quanta == 0 {
                self.paused_until[prio.index()] = ctx.now();
                resumed = true;
            } else {
                let until = ctx.now() + SimTime(PfcPauseFrame::quanta_to_ps(quanta, rate));
                self.paused_until[prio.index()] = until;
                ctx.set_timer_at(until, TOK_PUMP);
            }
        }
        if resumed {
            self.pump(ctx);
        }
    }

    fn storm_tick(&mut self, ctx: &mut Ctx<'_>) {
        if !self.storm {
            return;
        }
        // NIC watchdog: the micro-controller sees a stalled receive
        // pipeline that keeps generating pauses and cuts pause generation.
        // It never re-enables (§4.3): a stormed NIC "never comes back".
        if let Some(after) = self.cfg.nic_watchdog_after {
            if !self.pause_gen_disabled && ctx.now().saturating_sub(self.last_rx_progress) >= after
            {
                self.pause_gen_disabled = true;
                self.stats.nic_watchdog_fired += 1;
                self.tele.hub.incr(self.tele.nic_watchdog_fired);
                self.tele.hub.trace(
                    ctx.now().as_ps(),
                    self.tele.scope,
                    TraceEvent::NicWatchdogFired,
                );
            }
        }
        if !self.pause_gen_disabled {
            self.emit_pause(u16::MAX, ctx);
        }
        ctx.set_timer(STORM_REFRESH, TOK_STORM_TICK);
    }
}

impl Node for RdmaHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Periodic machinery.
        if let Some(period) = self.cfg.cc.tick_period_ps() {
            ctx.set_timer(SimTime(period), TOK_CC_TICK);
        }
        ctx.set_timer(RTO_SCAN, TOK_RTO);
        // Prime per-QP apps.
        for i in 0..self.qps.len() {
            match self.qps[i].app {
                QpApp::Saturate { .. } | QpApp::Burst { .. } => {
                    self.qps[i].refill_app();
                }
                QpApp::Pinger { start_at, .. } => {
                    ctx.set_timer_at(start_at, TOK_QP_APP_BASE + i as u64);
                }
                QpApp::Echo { .. } | QpApp::None => {}
            }
        }
        if let HostApp::Fanout { start_at, .. } = &self.host_app {
            ctx.set_timer_at(*start_at, TOK_FANOUT);
        }
        self.pump(ctx);
    }

    fn on_packet(&mut self, _port: PortId, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketKind::Pfc(frame) = pkt.kind {
            self.on_pause(&frame, ctx);
            return;
        }
        self.on_rx(pkt, ctx);
    }

    fn on_port_idle(&mut self, _port: PortId, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match token {
            TOK_PUMP => self.pump(ctx),
            TOK_CC_TICK => {
                let now_ps = ctx.now().as_ps();
                for i in 0..self.qps.len() {
                    let act = self.qps[i].cc.on_signal(CcSignal::Tick, now_ps);
                    if let Some(act) = act {
                        self.note_cc_action(i as u32, act, now_ps);
                    }
                }
                if let Some(period) = self.cfg.cc.tick_period_ps() {
                    ctx.set_timer(SimTime(period), TOK_CC_TICK);
                }
                self.pump(ctx);
            }
            TOK_RX_DONE => self.finish_rx_service(ctx),
            TOK_RTO => {
                let now = ctx.now().as_ps();
                let mut rewound = false;
                for i in 0..self.qps.len() {
                    rewound |= self.qps[i].endpoint.check_timeout(now);
                    self.drain_transport_events(i as u32, now);
                }
                ctx.set_timer(RTO_SCAN, TOK_RTO);
                // Always pump: QPs may have been added mid-run by an
                // experiment, and rewinds need restarting anyway.
                let _ = rewound;
                self.pump(ctx);
            }
            TOK_FANOUT => {
                if let HostApp::Fanout {
                    qps,
                    interval,
                    query_len,
                    ..
                } = self.host_app.clone()
                {
                    let now = ctx.now();
                    for qp in qps {
                        self.post(qp, Verb::Send { len: query_len }, now, true);
                    }
                    ctx.set_timer(interval, TOK_FANOUT);
                    self.pump(ctx);
                }
            }
            // Keep the peer paused while we are still in XOFF.
            TOK_PAUSE_REFRESH if self.host_xoff && !self.pause_gen_disabled => {
                self.emit_pause(u16::MAX, ctx);
                ctx.set_timer(STORM_REFRESH, TOK_PAUSE_REFRESH);
            }
            TOK_STORM_TICK => self.storm_tick(ctx),
            TOK_INJECT_STORM => {
                self.storm = true;
                self.tele
                    .hub
                    .trace(ctx.now().as_ps(), self.tele.scope, TraceEvent::StormStart);
                self.storm_tick(ctx);
            }
            TOK_STOP_STORM if self.storm => {
                self.storm = false;
                self.tele
                    .hub
                    .trace(ctx.now().as_ps(), self.tele.scope, TraceEvent::StormStop);
                // Resume the peer if we were the ones holding it down
                // (the watchdog-disabled case already stopped pausing).
                if self.host_xoff
                    && !self.pause_gen_disabled
                    && self.rx_occupancy <= self.cfg.rx.xon_bytes
                {
                    self.host_xoff = false;
                    self.emit_pause(0, ctx);
                }
                self.pump(ctx);
            }
            t if t >= TOK_QP_APP_BASE => {
                let i = (t - TOK_QP_APP_BASE) as usize;
                if let QpApp::Pinger {
                    payload, interval, ..
                } = self.qps[i].app
                {
                    let now = ctx.now();
                    self.post(QpHandle(i as u32), Verb::Send { len: payload }, now, true);
                    ctx.set_timer(interval, TOK_QP_APP_BASE + i as u64);
                    self.pump(ctx);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
