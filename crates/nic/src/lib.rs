//! The RNIC host model: verbs, DCQCN, PFC at the host, and the NIC bugs
//! the paper fought.
//!
//! "NICs are the key to make RDMA/RoCEv2 work. Most of the RDMA/RoCEv2
//! bugs we ran into were caused by the NICs instead of the switches"
//! (§6.3). Accordingly this crate models the NIC with its warts:
//!
//! * **Transmit path** ([`host`]): per-QP [`rocescale_transport`]
//!   endpoints, DCQCN reaction-point pacing per QP, PFC pause reaction at
//!   the host egress, and sequential IP IDs (the property that made the
//!   §4.1 drop filter deterministic).
//! * **Receive pipeline** ([`host`]): a finite receive buffer drained by a
//!   processing pipeline whose speed depends on the **Memory Translation
//!   Table** cache ([`mtt`]). The MTT holds only 2K entries; with 4 KB
//!   pages that covers 8 MB — misses stall the pipeline, the buffer
//!   crosses its XOFF threshold, and the host itself emits pause frames:
//!   the §4.4 *slow-receiver symptom*. The mitigation is 2 MB pages.
//! * **The storm bug** ([`host::RdmaHost::inject_storm`]): "a bug in the
//!   NIC's receiving pipeline … the NIC's receiving buffer filled, and the
//!   NIC began to send out pause frames all the time" (§4.3). The
//!   NIC-side watchdog — a micro-controller that disables pause generation
//!   once the pipeline has been stopped too long — is implemented per the
//!   paper, including its asymmetry: unlike the switch watchdog it never
//!   re-enables, because a stormed NIC "never comes back".
//! * **Built-in applications** ([`host::QpApp`], [`host::HostApp`]): the
//!   workload generators the experiments need — saturating senders
//!   (Figure 7), echo responders and fan-out queriers (the incast service
//!   of Figure 6), and RDMA Pingmesh probers (§5.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;
pub mod mtt;

pub use host::{HostApp, HostPfcMode, HostStats, NicConfig, QpApp, QpHandle, RdmaHost, RxConfig};
pub use mtt::{MttCache, MttConfig};
