//! Declarative parameter sweeps: cartesian grids over the three
//! configuration profiles plus seed replicates, enumerated into
//! independent, `Send` jobs for the fleet runner.
//!
//! The paper's figures are sweeps — load levels, ablations (PFC on/off,
//! DCQCN on/off, go-back-N vs go-back-0), buffer misconfigurations —
//! each cell an independent deterministic simulation. A [`SweepSpec`]
//! names each axis once and the enumeration does the bookkeeping:
//!
//! ```
//! use rocescale_core::sweep::{SweepAxis, SweepSpec};
//!
//! let spec = SweepSpec::new()
//!     .axis(SweepAxis::new("pfc")
//!         .variant("on", |p| p.fabric = p.fabric.clone().pfc(true))
//!         .variant("off", |p| p.fabric = p.fabric.clone().pfc(false)))
//!     .axis(SweepAxis::new("dcqcn")
//!         .variant("on", |p| p.transport = p.transport.dcqcn(true))
//!         .variant("off", |p| p.transport = p.transport.dcqcn(false)))
//!     .replicates(3);
//! let jobs = spec.jobs();
//! assert_eq!(jobs.len(), 2 * 2 * 3);
//! assert_eq!(jobs[0].labels, vec!["pfc=on", "dcqcn=on", "seed=1"]);
//! ```
//!
//! Enumeration order is load-bearing: axes vary in declaration order
//! (first axis outermost), replicates innermost, and every job carries
//! its `index` so the fleet can run jobs on any thread in any order and
//! still emit results in this exact order.

use std::sync::Arc;

use rocescale_cc::CcKind;

use crate::profiles::{FabricProfile, FaultProfile, TransportProfile};

/// One point in configuration space: the three profiles plus the RNG
/// seed. Axis variants mutate a clone of the spec's base point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Switch-side configuration.
    pub fabric: FabricProfile,
    /// NIC-side configuration.
    pub transport: TransportProfile,
    /// Fault injection.
    pub faults: FaultProfile,
    /// RNG seed (replicates differ only here).
    pub seed: u64,
}

impl SweepPoint {
    /// The paper-default configuration at seed 1.
    pub fn paper_default() -> SweepPoint {
        SweepPoint {
            fabric: FabricProfile::paper_default(),
            transport: TransportProfile::paper_default(),
            faults: FaultProfile::paper_default(),
            seed: 1,
        }
    }
}

/// A labelled mutation of a [`SweepPoint`] — one value on an axis.
#[derive(Clone)]
pub struct SweepVariant {
    /// Short value label, e.g. `"on"`, `"1/64"`.
    pub label: String,
    apply: Arc<dyn Fn(&mut SweepPoint) + Send + Sync>,
}

impl std::fmt::Debug for SweepVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SweepVariant({:?})", self.label)
    }
}

/// One sweep dimension: a named axis with an ordered list of variants.
#[derive(Debug, Clone)]
pub struct SweepAxis {
    /// Axis name, e.g. `"pfc"` — combined with the variant label into
    /// `"pfc=on"` job labels.
    pub name: String,
    /// The axis values, in declaration order.
    pub variants: Vec<SweepVariant>,
}

impl SweepAxis {
    /// An empty axis named `name`.
    pub fn new(name: impl Into<String>) -> SweepAxis {
        SweepAxis {
            name: name.into(),
            variants: Vec::new(),
        }
    }

    /// Append a variant: `label` plus the mutation it applies.
    pub fn variant(
        mut self,
        label: impl Into<String>,
        apply: impl Fn(&mut SweepPoint) + Send + Sync + 'static,
    ) -> Self {
        self.variants.push(SweepVariant {
            label: label.into(),
            apply: Arc::new(apply),
        });
        self
    }

    /// The congestion-control axis: one variant per [`CcKind`], labelled
    /// with the controller's name (`cc=dcqcn`, `cc=timely`, `cc=off`).
    pub fn cc() -> SweepAxis {
        let mut axis = SweepAxis::new("cc");
        for kind in [CcKind::Dcqcn, CcKind::Timely, CcKind::Off] {
            axis = axis.variant(kind.name(), move |p| {
                p.transport = p.transport.cc(kind);
            });
        }
        axis
    }
}

/// One enumerated job: an index into the sweep's canonical order, the
/// human-readable axis labels, and the fully-applied configuration
/// point.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Position in enumeration order — the fleet sorts results by this,
    /// making output independent of worker count and scheduling.
    pub index: usize,
    /// `"axis=value"` per axis, plus `"seed=N"`.
    pub labels: Vec<String>,
    /// The configuration to run.
    pub point: SweepPoint,
}

/// A declarative sweep: a base point, axes, and a replicate count.
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    base: Option<SweepPoint>,
    axes: Vec<SweepAxis>,
    replicates: u64,
}

impl SweepSpec {
    /// An empty sweep over the paper-default base point, one replicate.
    pub fn new() -> SweepSpec {
        SweepSpec::default()
    }

    /// Replace the base configuration point (default: paper defaults,
    /// seed 1).
    pub fn base(mut self, p: SweepPoint) -> Self {
        self.base = Some(p);
        self
    }

    /// Append an axis. Axes vary in declaration order, first axis
    /// outermost.
    pub fn axis(mut self, a: SweepAxis) -> Self {
        assert!(!a.variants.is_empty(), "axis {:?} has no variants", a.name);
        self.axes.push(a);
        self
    }

    /// Seed replicates per grid cell (min 1). Replicate `r` runs at
    /// `base.seed + r`; replicates vary innermost.
    pub fn replicates(mut self, n: u64) -> Self {
        self.replicates = n;
        self
    }

    /// Total number of jobs: the cartesian product times replicates.
    pub fn len(&self) -> usize {
        self.axes
            .iter()
            .map(|a| a.variants.len())
            .product::<usize>()
            * self.replicates.max(1) as usize
    }

    /// True when the sweep enumerates nothing (impossible in practice —
    /// an axis must have variants — but keeps clippy's `len` contract).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerate every job in canonical order: the exact cartesian
    /// product of the axes (no duplicates, stable order — axes in
    /// declaration order, first axis outermost) with seed replicates
    /// innermost.
    pub fn jobs(&self) -> Vec<SweepJob> {
        let base = self.base.clone().unwrap_or_else(SweepPoint::paper_default);
        let reps = self.replicates.max(1);
        let total = self.len();
        let mut jobs = Vec::with_capacity(total);
        // Odometer over axis indices; replicates are the innermost digit.
        let mut digits = vec![0usize; self.axes.len()];
        'outer: loop {
            for rep in 0..reps {
                let mut point = base.clone();
                let mut labels = Vec::with_capacity(self.axes.len() + 1);
                for (a, &d) in self.axes.iter().zip(&digits) {
                    let v = &a.variants[d];
                    (v.apply)(&mut point);
                    labels.push(format!("{}={}", a.name, v.label));
                }
                point.seed = base.seed + rep;
                labels.push(format!("seed={}", point.seed));
                jobs.push(SweepJob {
                    index: jobs.len(),
                    labels,
                    point,
                });
            }
            // Increment the odometer, last axis fastest.
            for i in (0..digits.len()).rev() {
                digits[i] += 1;
                if digits[i] < self.axes[i].variants.len() {
                    continue 'outer;
                }
                digits[i] = 0;
            }
            break;
        }
        debug_assert_eq!(jobs.len(), total);
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::PfcMode;
    use rocescale_transport::LossRecovery;

    fn two_by_three() -> SweepSpec {
        SweepSpec::new()
            .axis(
                SweepAxis::new("pfc")
                    .variant("on", |p| p.fabric = p.fabric.clone().pfc(true))
                    .variant("off", |p| p.fabric = p.fabric.clone().pfc(false)),
            )
            .axis(
                SweepAxis::new("alpha")
                    .variant("1/16", |p| {
                        p.fabric = p.fabric.clone().alpha(Some(1.0 / 16.0))
                    })
                    .variant("1/64", |p| {
                        p.fabric = p.fabric.clone().alpha(Some(1.0 / 64.0))
                    })
                    .variant("static", |p| p.fabric = p.fabric.clone().alpha(None)),
            )
    }

    #[test]
    fn enumerates_exact_cartesian_product() {
        // Property check, exhaustively enumerated (the in-tree idiom for
        // property tests): every (axis₀, axis₁, rep) combination appears
        // exactly once, in odometer order.
        let spec = two_by_three().replicates(2);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 2 * 3 * 2);
        assert_eq!(spec.len(), jobs.len());

        // No duplicate label vectors, indices dense and in order.
        let mut seen = std::collections::HashSet::new();
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i, "indices must be dense and ordered");
            assert!(seen.insert(j.labels.join(",")), "dup: {:?}", j.labels);
        }

        // Expected odometer order: first axis outermost, replicate
        // innermost.
        let expect: Vec<Vec<String>> = {
            let mut e = Vec::new();
            for pfc in ["on", "off"] {
                for alpha in ["1/16", "1/64", "static"] {
                    for seed in [1, 2] {
                        e.push(vec![
                            format!("pfc={pfc}"),
                            format!("alpha={alpha}"),
                            format!("seed={seed}"),
                        ]);
                    }
                }
            }
            e
        };
        let got: Vec<Vec<String>> = jobs.iter().map(|j| j.labels.clone()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn variants_apply_their_mutations() {
        let jobs = two_by_three().jobs();
        assert_eq!(jobs.len(), 6);
        assert!(jobs[0].point.fabric.pfc_enabled);
        assert!(!jobs[3].point.fabric.pfc_enabled);
        assert_eq!(jobs[2].point.fabric.alpha, None);
        assert!((jobs[1].point.fabric.alpha.unwrap() - 1.0 / 64.0).abs() < 1e-12);
        // Untouched dimensions stay at the base.
        for j in &jobs {
            assert_eq!(j.point.fabric.pfc_mode, PfcMode::Dscp);
            assert_eq!(j.point.transport.recovery, LossRecovery::GoBackN);
        }
    }

    #[test]
    fn replicates_differ_only_in_seed() {
        let spec = two_by_three().replicates(3);
        let jobs = spec.jobs();
        for cell in jobs.chunks(3) {
            let first = &cell[0];
            for (r, j) in cell.iter().enumerate() {
                assert_eq!(j.point.seed, 1 + r as u64);
                // Same cell ⇒ identical except the seed (and its label).
                let mut normalized = j.point.clone();
                normalized.seed = first.point.seed;
                assert_eq!(normalized, first.point);
                assert_eq!(
                    j.labels[..j.labels.len() - 1],
                    first.labels[..first.labels.len() - 1]
                );
            }
        }
    }

    #[test]
    fn stable_order_across_enumerations() {
        let spec = two_by_three().replicates(2);
        let a: Vec<String> = spec.jobs().iter().map(|j| j.labels.join(",")).collect();
        let b: Vec<String> = spec.jobs().iter().map(|j| j.labels.join(",")).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_spec_is_one_job() {
        let jobs = SweepSpec::new().jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].labels, vec!["seed=1"]);
        assert_eq!(jobs[0].point, SweepPoint::paper_default());
    }

    #[test]
    fn base_seed_offsets_replicates() {
        let mut base = SweepPoint::paper_default();
        base.seed = 40;
        let jobs = SweepSpec::new().base(base).replicates(3).jobs();
        let seeds: Vec<u64> = jobs.iter().map(|j| j.point.seed).collect();
        assert_eq!(seeds, vec![40, 41, 42]);
    }

    #[test]
    fn cc_axis_covers_every_controller() {
        let jobs = SweepSpec::new().axis(SweepAxis::cc()).jobs();
        assert_eq!(jobs.len(), 3);
        let labels: Vec<&str> = jobs.iter().map(|j| j.labels[0].as_str()).collect();
        assert_eq!(labels, vec!["cc=dcqcn", "cc=timely", "cc=off"]);
        assert_eq!(jobs[0].point.transport.cc, CcKind::Dcqcn);
        assert_eq!(jobs[1].point.transport.cc, CcKind::Timely);
        assert_eq!(jobs[2].point.transport.cc, CcKind::Off);
        // The deprecated shim composes with the axis without churn.
        let spec = SweepSpec::new().axis(
            SweepAxis::new("dcqcn")
                .variant("on", |p| p.transport = p.transport.dcqcn(true))
                .variant("off", |p| p.transport = p.transport.dcqcn(false)),
        );
        let shimmed = spec.jobs();
        assert_eq!(shimmed[0].point.transport.cc, CcKind::Dcqcn);
        assert_eq!(shimmed[1].point.transport.cc, CcKind::Off);
    }

    #[test]
    fn spec_and_jobs_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SweepSpec>();
        assert_send::<SweepJob>();
        assert_send::<SweepPoint>();
    }
}
