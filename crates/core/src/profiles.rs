//! Configuration profiles: the three coherent knob groups a cluster is
//! built from.
//!
//! The original builder exposed ~18 loose setters; operationally the
//! knobs cluster into three groups that are tuned together and shipped
//! together (the paper's §3–§7 narrative):
//!
//! * [`FabricProfile`] — what the *switches* do: PFC flavour and reach,
//!   buffer sharing, ECN marking, the storm watchdog, the §4.2 deadlock
//!   fix, and the §8.1 spraying ablation.
//! * [`TransportProfile`] — what the *NICs* do: loss recovery, DCQCN,
//!   retransmission timeouts, the NIC-side storm watchdog.
//! * [`FaultProfile`] — what goes *wrong*: the §4.1 deterministic drop
//!   filter, injected NIC pause storms, and dead servers whose ARP
//!   entries linger half-resolved (§4.2's deadlock trigger).
//!
//! Each profile's `paper_default()` is the configuration the paper
//! deployed; chainable setters express ablations as small diffs against
//! that baseline.

use rocescale_cc::CcKind;
use rocescale_sim::SimTime;
use rocescale_transport::LossRecovery;

use crate::cluster::PfcMode;
use crate::deployment::DeploymentStage;

/// Switch-side configuration: PFC, buffers, ECN, watchdog, routing
/// ablations.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricProfile {
    /// PFC flavour (§3): DSCP-based (the paper's design) or VLAN-based.
    pub pfc_mode: PfcMode,
    /// Master PFC switch — `false` makes every class lossy everywhere
    /// (the best-effort arm of Figure 2/7).
    pub pfc_enabled: bool,
    /// How far up the Clos PFC is enabled (§7's staged deployment).
    pub stage: DeploymentStage,
    /// Dynamic-buffer α (`None` = static thresholds). The §6.2 incident
    /// is `Some(1.0/64.0)`.
    pub alpha: Option<f64>,
    /// ECN marking (DCQCN CP) at switches.
    pub ecn: bool,
    /// Switch-side PFC-storm watchdog (§4.3).
    pub switch_watchdog: bool,
    /// The §4.2 deadlock fix: drop lossless packets on incomplete ARP
    /// entries instead of flooding them.
    pub drop_lossless_on_incomplete_arp: bool,
    /// §8.1 ablation: per-packet spraying over ECMP groups.
    pub per_packet_spraying: bool,
}

impl FabricProfile {
    /// The paper's deployed fabric: DSCP PFC to the spine, α = 1/16,
    /// ECN on, watchdog armed, deadlock fix on.
    pub fn paper_default() -> FabricProfile {
        FabricProfile {
            pfc_mode: PfcMode::Dscp,
            pfc_enabled: true,
            stage: DeploymentStage::Spine,
            alpha: Some(1.0 / 16.0),
            ecn: true,
            switch_watchdog: true,
            drop_lossless_on_incomplete_arp: true,
            per_packet_spraying: false,
        }
    }

    /// Set the PFC flavour.
    pub fn pfc_mode(mut self, m: PfcMode) -> Self {
        self.pfc_mode = m;
        self
    }

    /// Enable/disable PFC entirely.
    pub fn pfc(mut self, on: bool) -> Self {
        self.pfc_enabled = on;
        self
    }

    /// Deployment stage (how far up PFC is enabled).
    pub fn stage(mut self, s: DeploymentStage) -> Self {
        self.stage = s;
        self
    }

    /// Dynamic-buffer α (`None` = static thresholds).
    pub fn alpha(mut self, a: Option<f64>) -> Self {
        self.alpha = a;
        self
    }

    /// Enable/disable ECN marking at switches.
    pub fn ecn(mut self, on: bool) -> Self {
        self.ecn = on;
        self
    }

    /// Arm/disarm the switch-side storm watchdog.
    pub fn switch_watchdog(mut self, on: bool) -> Self {
        self.switch_watchdog = on;
        self
    }

    /// Enable/disable the §4.2 deadlock fix.
    pub fn drop_lossless_on_incomplete_arp(mut self, on: bool) -> Self {
        self.drop_lossless_on_incomplete_arp = on;
        self
    }

    /// §8.1 ablation: per-packet spraying over ECMP groups.
    pub fn per_packet_spraying(mut self, on: bool) -> Self {
        self.per_packet_spraying = on;
        self
    }
}

impl Default for FabricProfile {
    fn default() -> FabricProfile {
        FabricProfile::paper_default()
    }
}

/// NIC-side transport configuration: recovery, DCQCN, timeouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportProfile {
    /// Loss-recovery scheme (§4.1: go-back-0 livelocks, go-back-N is the
    /// deployed fix; selective repeat is the IRN-style contrast).
    pub recovery: LossRecovery,
    /// Congestion control on RDMA hosts: DCQCN (the paper's deployment),
    /// TIMELY-style delay gradient (§7's contrast), or off.
    pub cc: CcKind,
    /// RDMA transport retransmission timeout.
    pub qp_rto: SimTime,
    /// Minimum TCP RTO on kernel-TCP hosts.
    pub tcp_min_rto: SimTime,
    /// NIC-side storm watchdog stall threshold (`None` disarms; the
    /// paper's default is 100 ms).
    pub nic_watchdog: Option<SimTime>,
}

impl TransportProfile {
    /// The paper's deployed transport: go-back-N, DCQCN on, 4 ms QP RTO,
    /// 5 ms TCP min-RTO, NIC watchdog at 100 ms.
    pub fn paper_default() -> TransportProfile {
        TransportProfile {
            recovery: LossRecovery::GoBackN,
            cc: CcKind::Dcqcn,
            qp_rto: SimTime::from_millis(4),
            tcp_min_rto: SimTime::from_millis(5),
            nic_watchdog: Some(SimTime::from_millis(100)),
        }
    }

    /// Set the NIC loss-recovery scheme.
    pub fn recovery(mut self, r: LossRecovery) -> Self {
        self.recovery = r;
        self
    }

    /// Select the congestion-control algorithm.
    pub fn cc(mut self, cc: CcKind) -> Self {
        self.cc = cc;
        self
    }

    /// Enable/disable DCQCN rate control.
    ///
    /// Deprecated shim, kept so pre-CC-trait scenarios and sweeps keep
    /// compiling: `dcqcn(true)` is [`CcKind::Dcqcn`], `dcqcn(false)` is
    /// [`CcKind::Off`]. New code should call [`TransportProfile::cc`],
    /// which also reaches [`CcKind::Timely`].
    pub fn dcqcn(self, on: bool) -> Self {
        self.cc(if on { CcKind::Dcqcn } else { CcKind::Off })
    }

    /// RDMA transport retransmission timeout.
    pub fn qp_rto(mut self, rto: SimTime) -> Self {
        self.qp_rto = rto;
        self
    }

    /// Minimum TCP RTO.
    pub fn tcp_min_rto(mut self, rto: SimTime) -> Self {
        self.tcp_min_rto = rto;
        self
    }

    /// Arm the NIC-side storm watchdog with this stall threshold
    /// (`None` disarms).
    pub fn nic_watchdog(mut self, after: Option<SimTime>) -> Self {
        self.nic_watchdog = after;
        self
    }
}

impl Default for TransportProfile {
    fn default() -> TransportProfile {
        TransportProfile::paper_default()
    }
}

/// How the simulation executes: one world on one thread, or pod-granular
/// shards advanced in conservative-lookahead epochs (the fifth profile,
/// alongside fabric/transport/fault/instrumentation).
///
/// Execution is a *mechanical* knob like the engine backend: it decides
/// how events are dispatched, never which events exist. `Sharded` with
/// one effective shard (either `shards: 1` or a single-pod topology,
/// which [`rocescale_topology::Partition::pods`] collapses) dispatches
/// the byte-identical event stream — and digest — of `SingleThread`.
/// With two or more effective shards the *partitioned* run is its own
/// deterministic reference: serial and threaded epoch execution agree
/// byte-for-byte, but packet-id namespacing means the digest differs
/// from the unpartitioned world's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionProfile {
    /// One world, one thread — the default, and the golden-trace path.
    SingleThread,
    /// Split the fabric into per-pod worker shards exchanged through the
    /// conservative barrier (see `rocescale_sim::ShardedWorld`).
    Sharded {
        /// Requested shard count; clamped to the topology's pod count.
        shards: u32,
    },
}

impl ExecutionProfile {
    /// The paper-default execution: single-threaded.
    pub fn paper_default() -> ExecutionProfile {
        ExecutionProfile::SingleThread
    }

    /// The shard count this profile asks for (before the topology clamps
    /// it): 1 for `SingleThread`, `max(shards, 1)` for `Sharded`.
    pub fn shard_count(self) -> u32 {
        match self {
            ExecutionProfile::SingleThread => 1,
            ExecutionProfile::Sharded { shards } => shards.max(1),
        }
    }
}

impl Default for ExecutionProfile {
    fn default() -> ExecutionProfile {
        ExecutionProfile::paper_default()
    }
}

/// One timed incident-replay action — the declarative fault-script
/// vocabulary. Every action is resolved at cluster build time into an
/// ordinary sim event (a switch admin action or a NIC storm token fired
/// by a timer), so scripted incidents replay deterministically and stay
/// digest-pinnable; a script that never fires adds zero events.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptAction {
    /// Flip the ToR↔server link of server `server` (both endpoints).
    ServerLink {
        /// Server index (build order).
        server: usize,
        /// New administrative link state.
        up: bool,
    },
    /// Flip the fabric link between two switches, by switch name
    /// (e.g. `"t0"`, `"l1"`, `"s0"`). Panics at build time if no such
    /// link exists — a misspelled script is a construction bug.
    FabricLink {
        /// One endpoint switch name.
        a: String,
        /// The other endpoint switch name.
        b: String,
        /// New administrative link state.
        up: bool,
    },
    /// Start a §4.3 NIC pause storm on server `server`.
    StormStart {
        /// Server index (build order).
        server: usize,
    },
    /// Stop a previously started pause storm on server `server`.
    StormStop {
        /// Server index (build order).
        server: usize,
    },
    /// Kill server `server` *mid-run* the §4.2 way: its link goes down
    /// (a dead server is silent — nothing to re-learn the MAC from) and
    /// its ToR's MAC entry is evicted (5-minute timeout) while the
    /// 4-hour ARP entry survives — the dead-but-remembered state that
    /// makes lossless packets flood.
    ServerDeath {
        /// Server index (build order).
        server: usize,
    },
    /// Resurrect a dead server: its link comes back up and its ToR
    /// relearns the MAC→port binding.
    ServerResurrect {
        /// Server index (build order).
        server: usize,
    },
    /// Rewrite the PFC buffer thresholds on switch `switch` — the §6.2
    /// misconfiguration as a runtime event.
    PfcThreshold {
        /// Switch name (e.g. `"t0"`).
        switch: String,
        /// Dynamic-sharing α, or `None` for static thresholds.
        alpha: Option<f64>,
        /// Static XOFF threshold in bytes (used when `alpha` is `None`).
        xoff_static: u64,
    },
    /// Turn lossless mode for a priority on or off on switch `switch`,
    /// flushing queued lossless packets on disable.
    SetLossless {
        /// Switch name.
        switch: String,
        /// Priority class index.
        prio: u8,
        /// New lossless state.
        on: bool,
    },
    /// Replace the ECMP group for `prefix/len` on switch `switch` with
    /// `ports` (switch-local port numbers), flushing its flow cache.
    Reroute {
        /// Switch name.
        switch: String,
        /// Route prefix (host byte order).
        prefix: u32,
        /// Prefix length in bits.
        len: u8,
        /// New equal-cost egress ports.
        ports: Vec<u16>,
    },
}

/// Fault injection: everything the healthy paper-default config does
/// *not* do.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultProfile {
    /// §4.1 fault injection on every switch: drop any data packet whose
    /// IP ID has this low byte.
    pub drop_ip_id_low_byte: Option<u8>,
    /// NIC pause storms to inject: `(server index, start time)`. The
    /// server's NIC enters the §4.3 malfunction mode at that instant.
    pub storms: Vec<(usize, SimTime)>,
    /// Servers (by build order) that are *dead but remembered*: their
    /// ToR keeps the IP→MAC ARP entry but loses the MAC→port binding,
    /// reproducing the half-resolved state that triggers the §4.2
    /// flooding deadlock.
    pub dead_servers: Vec<usize>,
    /// The incident-replay script: time-ordered [`ScriptAction`]s the
    /// cluster schedules as ordinary sim events at build time.
    pub script: Vec<(SimTime, ScriptAction)>,
}

impl FaultProfile {
    /// No faults — the healthy baseline.
    pub fn paper_default() -> FaultProfile {
        FaultProfile::default()
    }

    /// §4.1 drop filter on every switch.
    pub fn drop_ip_id_low_byte(mut self, b: Option<u8>) -> Self {
        self.drop_ip_id_low_byte = b;
        self
    }

    /// Schedule a NIC pause storm on server `idx` at `at`.
    pub fn storm_at(mut self, idx: usize, at: SimTime) -> Self {
        self.storms.push((idx, at));
        self
    }

    /// Mark server `idx` dead-but-remembered (incomplete ARP at its ToR).
    pub fn dead_server(mut self, idx: usize) -> Self {
        self.dead_servers.push(idx);
        self
    }

    /// Append a scripted incident action firing at `at`.
    pub fn at(mut self, at: SimTime, action: ScriptAction) -> Self {
        self.script.push((at, action));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_deployed_config() {
        let f = FabricProfile::paper_default();
        assert_eq!(f.pfc_mode, PfcMode::Dscp);
        assert!(f.pfc_enabled && f.ecn && f.switch_watchdog);
        assert!(f.drop_lossless_on_incomplete_arp);
        assert!((f.alpha.unwrap() - 1.0 / 16.0).abs() < 1e-12);
        let t = TransportProfile::paper_default();
        assert_eq!(t.recovery, LossRecovery::GoBackN);
        assert_eq!(t.cc, CcKind::Dcqcn);
        assert_eq!(t.qp_rto, SimTime::from_millis(4));
        assert_eq!(t.nic_watchdog, Some(SimTime::from_millis(100)));
        let fault = FaultProfile::paper_default();
        assert_eq!(fault, FaultProfile::default());
        assert!(fault.storms.is_empty() && fault.dead_servers.is_empty());
    }

    #[test]
    fn setters_chain_into_ablations() {
        let f = FabricProfile::paper_default()
            .pfc(false)
            .alpha(Some(1.0 / 64.0))
            .ecn(false);
        assert!(!f.pfc_enabled && !f.ecn);
        assert!((f.alpha.unwrap() - 1.0 / 64.0).abs() < 1e-12);
        let t = TransportProfile::paper_default()
            .recovery(LossRecovery::GoBack0)
            .dcqcn(false)
            .qp_rto(SimTime::from_micros(100));
        assert_eq!(t.recovery, LossRecovery::GoBack0);
        assert_eq!(t.cc, CcKind::Off);
        let t = TransportProfile::paper_default().cc(CcKind::Timely);
        assert_eq!(t.cc, CcKind::Timely);
        let fault = FaultProfile::paper_default()
            .drop_ip_id_low_byte(Some(0xff))
            .storm_at(3, SimTime::from_millis(1))
            .dead_server(2);
        assert_eq!(fault.drop_ip_id_low_byte, Some(0xff));
        assert_eq!(fault.storms, vec![(3, SimTime::from_millis(1))]);
        assert_eq!(fault.dead_servers, vec![2]);
    }

    #[test]
    fn execution_profile_shard_counts() {
        assert_eq!(
            ExecutionProfile::paper_default(),
            ExecutionProfile::SingleThread
        );
        assert_eq!(ExecutionProfile::SingleThread.shard_count(), 1);
        assert_eq!(ExecutionProfile::Sharded { shards: 0 }.shard_count(), 1);
        assert_eq!(ExecutionProfile::Sharded { shards: 4 }.shard_count(), 4);
    }

    /// The deprecated `dcqcn(bool)` shim and the `cc()` setter must
    /// agree, so pre-trait scenarios keep selecting the same controllers.
    #[test]
    fn dcqcn_shim_agrees_with_cc_setter() {
        assert_eq!(
            TransportProfile::paper_default().dcqcn(true),
            TransportProfile::paper_default().cc(CcKind::Dcqcn)
        );
        assert_eq!(
            TransportProfile::paper_default().dcqcn(false),
            TransportProfile::paper_default().cc(CcKind::Off)
        );
        // The shim round-trips through an unrelated CC choice too.
        assert_eq!(
            TransportProfile::paper_default()
                .cc(CcKind::Timely)
                .dcqcn(true)
                .cc,
            CcKind::Dcqcn
        );
    }
}
