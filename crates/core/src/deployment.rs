//! Staged deployment (§6.1): "In the third step, we enabled RDMA in
//! production networks at ToR level only. In the fourth step, we enabled
//! PFC at the Podset level … In the last step, we enabled PFC up to the
//! Spine switches."

/// How far up the fabric PFC (lossless classes) is enabled. RDMA traffic
/// crossing a tier without PFC is treated as lossy there — the risk the
/// staged rollout controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeploymentStage {
    /// PFC on ToR switches only: RDMA is safe within a rack.
    TorOnly,
    /// PFC on ToR and Leaf switches: safe within a podset.
    Podset,
    /// PFC everywhere up to the Spine layer: the paper's end state,
    /// RDMA for all intra-DC communication under one spine layer.
    Spine,
}

impl DeploymentStage {
    /// Is PFC enabled on ToR switches at this stage?
    pub fn tor(self) -> bool {
        true
    }

    /// Is PFC enabled on Leaf switches at this stage?
    pub fn leaf(self) -> bool {
        self >= DeploymentStage::Podset
    }

    /// Is PFC enabled on Spine switches at this stage?
    pub fn spine(self) -> bool {
        self >= DeploymentStage::Spine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_monotone() {
        assert!(DeploymentStage::TorOnly.tor());
        assert!(!DeploymentStage::TorOnly.leaf());
        assert!(!DeploymentStage::TorOnly.spine());
        assert!(DeploymentStage::Podset.leaf());
        assert!(!DeploymentStage::Podset.spine());
        assert!(DeploymentStage::Spine.spine());
    }
}
