//! Live PFC-deadlock detection over a running fabric (§4.2).
//!
//! The `monitor` crate supplies the two halves of the deadlock
//! signature — [`ProgressTracker`] (behavioural: lossless backlog with
//! zero transmit progress across rounds) and [`WaitGraph`] (topological:
//! a cycle of paused egress ports with backlog behind them). This module
//! wires both to *real switch state*: at every telemetry sampling epoch
//! [`DeadlockProbe::observe`] rebuilds the wait graph from each switch's
//! pause timers and per-priority egress depths, feeds per-switch
//! tx/backlog snapshots to the tracker, and surfaces
//! `monitor.deadlock.*` metrics plus a
//! [`TraceEvent::DeadlockSuspected`] record whenever a cycle is present.
//!
//! The probe is a pure observer: it reads the world and writes only to
//! the telemetry hub, so it cannot perturb the dispatch digest — the
//! golden-trace pin holds with the detector live.

use rocescale_monitor::deadlock::Snapshot;
use rocescale_monitor::{
    CounterId, GaugeId, MetricsHub, ProgressTracker, ScopeId, TraceEvent, WaitGraph,
};
use rocescale_packet::Priority;
use rocescale_sim::{NodeId, PortId, SimTime, World};
use rocescale_switch::Switch;

/// One monitored egress: `switch` (index into the probe's switch list)
/// sends toward the device called `peer` on `port`.
#[derive(Debug, Clone)]
pub struct ProbeLink {
    /// Index into the probe's switch list.
    pub switch: usize,
    /// Egress port on that switch.
    pub port: PortId,
    /// Display name of the device behind the port (switch or server).
    pub peer: String,
}

/// Live deadlock detector: rebuilt wait graph + progress tracking per
/// sampling epoch. Construct once per fabric (done automatically by
/// `ClusterBuilder`), call [`observe`](DeadlockProbe::observe) at each
/// epoch.
pub struct DeadlockProbe {
    /// (display name, owning shard, shard-local sim id). Single-world
    /// probes put every switch on shard 0.
    switches: Vec<(String, u32, NodeId)>,
    links: Vec<ProbeLink>,
    lossless: Vec<Priority>,
    tracker: ProgressTracker,
    /// Consecutive stuck rounds required for the behavioural half.
    window: u32,
    hub: MetricsHub,
    scope: ScopeId,
    g_edges: GaugeId,
    g_stuck: GaugeId,
    c_cycles: CounterId,
    c_epochs: CounterId,
    last_graph: WaitGraph,
    first_cycle_at: Option<SimTime>,
    cycle_epochs: u64,
    epochs: u64,
}

impl DeadlockProbe {
    /// Build a probe over `switches` (name, sim node) watching `links`,
    /// treating `lossless` priorities as pause-eligible. `window` is the
    /// number of consecutive zero-progress rounds before a device counts
    /// as stuck (3 matches the offline detector's convention). All
    /// switches live in one world; use [`DeadlockProbe::new_sharded`]
    /// when they are spread over shards.
    pub fn new(
        hub: &MetricsHub,
        switches: Vec<(String, NodeId)>,
        links: Vec<ProbeLink>,
        lossless: Vec<Priority>,
        window: u32,
    ) -> DeadlockProbe {
        DeadlockProbe::new_sharded(
            hub,
            switches.into_iter().map(|(n, id)| (n, 0, id)).collect(),
            links,
            lossless,
            window,
        )
    }

    /// Like [`DeadlockProbe::new`], but each switch names its owning
    /// shard — the form the sharded cluster uses so one probe can read
    /// pause/occupancy state across every shard's world at a barrier.
    pub fn new_sharded(
        hub: &MetricsHub,
        switches: Vec<(String, u32, NodeId)>,
        links: Vec<ProbeLink>,
        lossless: Vec<Priority>,
        window: u32,
    ) -> DeadlockProbe {
        DeadlockProbe {
            scope: hub.scope("monitor.deadlock"),
            g_edges: hub.gauge("monitor.deadlock.wait_edges"),
            g_stuck: hub.gauge("monitor.deadlock.stuck_devices"),
            c_cycles: hub.counter("monitor.deadlock.cycles"),
            c_epochs: hub.counter("monitor.deadlock.epochs"),
            hub: hub.clone(),
            switches,
            links,
            lossless,
            tracker: ProgressTracker::new(),
            window,
            last_graph: WaitGraph::new(),
            first_cycle_at: None,
            cycle_epochs: 0,
            epochs: 0,
        }
    }

    /// Run one detection epoch against live switch state. Returns the
    /// wait cycle found this epoch, if any. Read-only on the world.
    pub fn observe(&mut self, world: &World, now: SimTime) -> Option<Vec<String>> {
        self.observe_merged(std::slice::from_ref(world), now)
    }

    /// One detection epoch over the barrier-merged view of a sharded
    /// run: `worlds[s]` is shard `s`'s world, and every monitored switch
    /// is read from its owning shard. Called at a barrier (all shards at
    /// a common horizon), the pause/occupancy view is exactly what a
    /// single merged world would show — pause state and egress depths
    /// are plain per-switch state, not in-flight events.
    pub fn observe_merged(&mut self, worlds: &[World], now: SimTime) -> Option<Vec<String>> {
        self.epochs += 1;
        self.hub.incr(self.c_epochs);
        // Topological half: rebuild the wait graph from pause state.
        let mut graph = WaitGraph::new();
        for l in &self.links {
            let (ref name, shard, sim) = self.switches[l.switch];
            let sw = worlds[shard as usize].node::<Switch>(sim);
            for prio in &self.lossless {
                if sw.is_paused(l.port, *prio, now) && sw.egress_depth_prio(l.port, *prio) > 0 {
                    graph.add_edge(name.clone(), l.peer.clone());
                    break;
                }
            }
        }
        // Behavioural half: per-switch progress snapshots.
        let snaps: Vec<(String, Snapshot)> = self
            .switches
            .iter()
            .map(|(name, shard, sim)| {
                let sw = worlds[*shard as usize].node::<Switch>(*sim);
                (
                    name.clone(),
                    Snapshot {
                        tx_pkts: sw.total_data_tx_pkts(),
                        backlog_bytes: sw.lossless_backlog(),
                    },
                )
            })
            .collect();
        let stuck = self.tracker.observe(&snaps);
        self.hub.set_gauge(self.g_edges, graph.edge_count() as f64);
        self.hub.set_gauge(self.g_stuck, stuck.len() as f64);
        let cycle = graph.find_cycle();
        if let Some(c) = &cycle {
            self.cycle_epochs += 1;
            self.first_cycle_at.get_or_insert(now);
            self.hub.incr(self.c_cycles);
            self.hub.trace(
                now.as_ps(),
                self.scope,
                TraceEvent::DeadlockSuspected {
                    cycle_len: c.len().min(u16::MAX as usize) as u16,
                },
            );
        }
        self.last_graph = graph;
        cycle
    }

    /// The corroborated verdict as of the last epoch: devices stuck for
    /// the probe's full window *and* on a wait-graph cycle.
    pub fn verdict(&self) -> Vec<String> {
        self.tracker.deadlocked(self.window, &self.last_graph)
    }

    /// Devices failing the behavioural half alone (stuck, cycle or not).
    pub fn stuck(&self) -> Vec<String> {
        self.tracker.stuck(self.window)
    }

    /// First sim time a wait cycle was observed, if ever.
    pub fn first_cycle_at(&self) -> Option<SimTime> {
        self.first_cycle_at
    }

    /// Epochs in which a wait cycle was present.
    pub fn cycle_epochs(&self) -> u64 {
        self.cycle_epochs
    }

    /// Total detection epochs run.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The wait graph from the last epoch.
    pub fn last_graph(&self) -> &WaitGraph {
        &self.last_graph
    }
}
