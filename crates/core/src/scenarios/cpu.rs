//! §1 — the CPU cost of kernel TCP vs RDMA at 40 Gb/s.
//!
//! "Sending at 40Gb/s using 8 TCP connections chews up 6% aggregate CPU
//! time on a 32 core Intel Xeon E5-2690 Windows 2012R2 server. Receiving
//! at 40Gb/s using 8 connections requires 12% aggregate CPU time." RDMA
//! offloads the transport to the NIC: "Every server was sending and
//! receiving at 8Gb/s with the CPU utilization close to 0%" (§5.4).

use rocescale_nic::QpApp;
use rocescale_sim::SimTime;
use rocescale_tcp::{KernelModel, TcpApp};

use crate::cluster::{ClusterBuilder, ServerId, ServerKind};
use crate::scenarios::gbps;

/// Result of the CPU-overhead comparison.
#[derive(Debug, Clone)]
pub struct CpuResult {
    /// TCP throughput achieved, Gb/s.
    pub tcp_gbps: f64,
    /// TCP sender CPU, % of a 32-core server.
    pub tcp_tx_cpu_pct: f64,
    /// TCP receiver CPU, % of a 32-core server.
    pub tcp_rx_cpu_pct: f64,
    /// RDMA throughput achieved, Gb/s.
    pub rdma_gbps: f64,
    /// RDMA host CPU, % (the transport runs in the NIC: 0 by
    /// construction, which is the paper's point).
    pub rdma_cpu_pct: f64,
}

/// Run both halves: 8 connections / 8 QPs, one sender, one receiver,
/// saturating for `dur`.
pub fn run(dur: SimTime) -> CpuResult {
    const CORES: u32 = 32;
    // TCP half.
    let (tcp_gbps, tx_pct, rx_pct) = {
        let mut c = ClusterBuilder::single_tor(2)
            .server_kind(|_| ServerKind::Tcp)
            .tcp_tweak(|_, cfg| {
                // Measure pure stack cost: no scheduler hiccup tail.
                cfg.kernel = KernelModel {
                    tail_prob: 0.0,
                    ..KernelModel::default()
                };
            })
            .build();
        let (a, b) = (ServerId(0), ServerId(1));
        for _ in 0..8 {
            c.connect_tcp(a, b, TcpApp::Saturate { msg_len: 4 << 20 }, TcpApp::None);
        }
        c.run_until(dur);
        let delivered: u64 = (0..8)
            .map(|i| c.tcp(b).bytes_delivered(rocescale_tcp::ConnHandle(i)))
            .sum();
        (
            gbps(delivered, dur),
            c.tcp(a).stats.cpu_percent(dur, CORES),
            c.tcp(b).stats.cpu_percent(dur, CORES),
        )
    };
    // RDMA half.
    let (rdma_gbps, rdma_pct) = {
        let mut c = ClusterBuilder::single_tor(2).build();
        let (a, b) = (ServerId(0), ServerId(1));
        for q in 0..8u16 {
            c.connect_qp(
                a,
                b,
                14_000 + q,
                QpApp::Saturate {
                    msg_len: 4 << 20,
                    inflight: 1,
                },
                QpApp::None,
            );
        }
        c.run_until(dur);
        // The RDMA data path bills no host CPU: kernel bypass is the
        // mechanism, not a parameter we tuned.
        (gbps(c.rdma(b).total_goodput_bytes(), dur), 0.0)
    };
    CpuResult {
        tcp_gbps,
        tcp_tx_cpu_pct: tx_pct,
        tcp_rx_cpu_pct: rx_pct,
        rdma_gbps,
        rdma_cpu_pct: rdma_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §1's table: at ≈ 40 Gb/s, TCP tx ≈ 6%, rx ≈ 12% of 32 cores;
    /// RDMA ≈ 0% at the same rate.
    #[test]
    fn cpu_overhead_matches_paper_shape() {
        let r = run(SimTime::from_millis(40));
        assert!(r.tcp_gbps > 20.0, "tcp throughput {}", r.tcp_gbps);
        assert!(r.rdma_gbps > 30.0, "rdma throughput {}", r.rdma_gbps);
        // Normalize CPU% to a full 40 Gb/s as the paper reports it.
        let tx40 = r.tcp_tx_cpu_pct * 40.0 / r.tcp_gbps;
        let rx40 = r.tcp_rx_cpu_pct * 40.0 / r.tcp_gbps;
        assert!((4.0..9.0).contains(&tx40), "tx cpu at 40G: {tx40}%");
        assert!((9.0..16.0).contains(&rx40), "rx cpu at 40G: {rx40}%");
        assert!(rx40 > tx40, "receive costs more than send");
        assert_eq!(r.rdma_cpu_pct, 0.0);
    }
}
