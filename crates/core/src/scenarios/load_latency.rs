//! Figure 8 — RDMA latency vs network load, and TCP/RDMA isolation.
//!
//! The paper's two-tier testbed (2 ToRs × 24 servers, 6:1
//! oversubscription): once the ToR-pair saturation starts, Pingmesh RTTs
//! jump "from 50us at the 99th percentile and 80us at the 99.9th
//! percentile to 400us and 800us, respectively" — queues and PFC pauses
//! raise latency even though nothing is dropped. Meanwhile "the 99th
//! percentile latency of TCP did not change during the experiment …
//! because we put RDMA and TCP packets into two different queues."

use rocescale_monitor::Percentiles;
use rocescale_nic::QpApp;
use rocescale_sim::SimTime;
use rocescale_tcp::TcpApp;

use crate::cluster::{ClusterBuilder, ServerKind};
use crate::scenarios::latency::LatencySummary;

/// Result of the Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// RDMA probe RTTs while the fabric was idle.
    pub rdma_idle: LatencySummary,
    /// RDMA probe RTTs under the saturating stress.
    pub rdma_loaded: LatencySummary,
    /// TCP probe RTTs while idle.
    pub tcp_idle: LatencySummary,
    /// TCP probe RTTs under the (RDMA) stress — must be unchanged.
    pub tcp_loaded: LatencySummary,
    /// Drops during the whole run (zero: latency rose, loss did not).
    pub lossless_drops: u64,
}

fn summarize(samples: &[u64]) -> LatencySummary {
    let mut p = Percentiles::from_samples(samples);
    let us = |v: Option<u64>| v.map_or(0.0, |v| v as f64 / 1e6);
    LatencySummary {
        samples: p.count(),
        p50_us: us(p.p50()),
        p99_us: us(p.p99()),
        p999_us: us(p.p999()),
        max_us: us(p.max()),
    }
}

/// Run: `idle_dur` of probes on a quiet fabric, then start the ToR-pair
/// stress and probe for `loaded_dur` more.
pub fn run(idle_dur: SimTime, loaded_dur: SimTime) -> Fig8Result {
    let servers_per_tor = 12u32;
    // Last two servers of each rack run TCP (the isolation control).
    let spt = servers_per_tor as usize;
    let mut c = ClusterBuilder::two_tier(2, servers_per_tor)
        .server_kind(move |i| {
            if i % spt >= spt - 2 {
                ServerKind::Tcp
            } else {
                ServerKind::Rdma
            }
        })
        .tcp_tweak(|_, cfg| {
            // The isolation claim is about network queues; remove the
            // kernel scheduler-hiccup tail so it cannot masquerade as
            // congestion in either phase.
            cfg.kernel.tail_prob = 0.0;
        })
        .seed(29)
        .build();

    // Pingmesh probes: rack0 RDMA server i probes rack1 RDMA server i.
    let rack0 = c.servers_under(0, 0);
    let rack1 = c.servers_under(0, 1);
    let probe_pairs = 4usize;
    for i in 0..probe_pairs {
        c.connect_qp(
            rack0[i],
            rack1[i],
            (11_000 + i) as u16,
            QpApp::Pinger {
                payload: 512,
                interval: SimTime::from_micros(200),
                start_at: SimTime::from_micros(40 + i as u64 * 7),
            },
            QpApp::Echo { reply_len: 512 },
        );
    }
    // TCP probes between the TCP servers (cross-rack).
    let tcp = c.servers_of_kind(ServerKind::Tcp);
    for i in 0..2 {
        c.connect_tcp(
            tcp[i],
            tcp[i + 2],
            TcpApp::Pinger {
                payload: 512,
                interval: SimTime::from_micros(400),
                start_at: SimTime::from_micros(60 + i as u64 * 11),
            },
            TcpApp::Echo { reply_len: 512 },
        );
    }

    // Phase 1: idle.
    c.run_until(idle_dur);
    let rdma_idle = c.take_rdma_rtts();
    let tcp_idle = c.take_tcp_rtts();

    // Phase 2: saturating ToR-pair stress on the *other* RDMA servers
    // (every server-pair, 8 QPs each — Figure 7's pattern at testbed
    // scale, 6:1 oversubscribed so the fabric genuinely congests).
    for i in probe_pairs..(spt - 2) {
        for q in 0..8usize {
            c.connect_qp(
                rack0[i],
                rack1[i],
                (12_000 + i * 16 + q) as u16,
                QpApp::Saturate {
                    msg_len: 1 << 20,
                    inflight: 2,
                },
                QpApp::Saturate {
                    msg_len: 1 << 20,
                    inflight: 2,
                },
            );
        }
    }
    c.run_until(idle_dur + loaded_dur);
    let rdma_loaded = c.take_rdma_rtts();
    let tcp_loaded = c.take_tcp_rtts();

    Fig8Result {
        rdma_idle: summarize(&rdma_idle),
        rdma_loaded: summarize(&rdma_loaded),
        tcp_idle: summarize(&tcp_idle),
        tcp_loaded: summarize(&tcp_loaded),
        lossless_drops: c.lossless_drops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 8's two findings: RDMA latency rises sharply under load
    /// (congestion without loss), and TCP in its own queue is unaffected.
    #[test]
    fn latency_rises_under_load_tcp_isolated() {
        let r = run(SimTime::from_millis(10), SimTime::from_millis(25));
        assert!(r.rdma_idle.samples > 30 && r.rdma_loaded.samples > 30);
        assert_eq!(r.lossless_drops, 0, "latency rose, loss did not");
        assert!(
            r.rdma_loaded.p99_us > 3.0 * r.rdma_idle.p99_us,
            "p99 must jump: idle {} loaded {}",
            r.rdma_idle.p99_us,
            r.rdma_loaded.p99_us
        );
        // TCP's p99 stays in the same band (within 2x, it has its own
        // kernel-jitter noise floor).
        assert!(
            r.tcp_loaded.p99_us < 2.0 * r.tcp_idle.p99_us,
            "TCP must be isolated: idle {} loaded {}",
            r.tcp_idle.p99_us,
            r.tcp_loaded.p99_us
        );
    }
}
