//! Incident replays (§4/§6) — scripted fault timelines on a full
//! cluster, each a deterministic, digest-pinnable rerun of an
//! operational incident class from the paper:
//!
//! * [`run_reroute`] — a mid-incast reroute: the route table is opened
//!   while the flow-decision cache is hot, forcing one real cache flush
//!   and a miss storm as every live flow re-resolves.
//! * [`run_cascade`] — a cascading pause storm: two NICs start storming
//!   at staggered times, pauses propagate ToR → leaf, a scripted stop
//!   ends both storms and the fabric recovers. The live deadlock
//!   detector must stay silent throughout — a pause *tree* is not a
//!   cycle (§4.2's distinction).
//! * [`run_dead_remembered`] — the §4.2 precondition replayed live: a
//!   server "dies" (its ToR MAC entry is evicted while ARP survives),
//!   lossless traffic to it hits the incomplete-ARP path, then the
//!   server resurrects and goodput resumes.
//!
//! Every scripted action rides an ordinary simulator timer event, so
//! each replay is exactly reproducible: the result carries the
//! dispatch digest as a determinism pin.

use rocescale_nic::QpApp;
use rocescale_sim::SimTime;
use rocescale_switch::DropReason;
use rocescale_topology::{ClosSpec, RouteSpec, Topology};

use crate::cluster::{Cluster, ClusterBuilder, ServerId};
use crate::instrument::InstrumentationProfile;
use crate::profiles::{FabricProfile, FaultProfile, ScriptAction};

fn saturate(c: &mut Cluster, from: ServerId, to: ServerId, udp_src: u16) {
    c.connect_qp(
        from,
        to,
        udp_src,
        QpApp::Saturate {
            msg_len: 128 * 1024,
            inflight: 2,
        },
        QpApp::None,
    );
}

/// Result of the mid-incast reroute replay.
#[derive(Debug, Clone)]
pub struct RerouteResult {
    /// Flow-cache invalidations on the rerouted ToR — must be exactly 1:
    /// one scripted `routes_mut` open, one live cache, one real flush.
    pub invalidations: u64,
    /// Cache misses on that ToR before the reroute fired.
    pub misses_before: u64,
    /// Cache misses after — the miss storm as live flows re-resolve.
    pub misses_after: u64,
    /// Cache hits over the whole run (the cache must have been hot).
    pub hits: u64,
    /// Receiver goodput in the last quarter of the run, bytes (the
    /// incast must survive the reroute).
    pub tail_goodput_bytes: u64,
    /// Dispatch digest (determinism pin).
    pub digest: u64,
    /// Events dispatched.
    pub events: u64,
}

/// Mid-incast reroute: rack-1's ToR carries a 4-to-1 incast toward
/// rack 0 over its ECMP uplinks; at 3 ms a scripted reroute pins the
/// inter-rack prefix to a single uplink. Opening the route table flushes
/// the hot flow cache (counted once) and every live flow takes a miss.
pub fn run_reroute(dur: SimTime) -> RerouteResult {
    let reroute_at = SimTime::from_millis(3);
    let spec = ClosSpec::uniform_40g(1, 2, 2, 2, 4);
    // Discover the ToR's ECMP uplink route from the topology the builder
    // will instantiate, so the script survives topology changes.
    let topo = Topology::clos(&spec);
    let tor = "pod0-tor1";
    let tor_idx = topo
        .nodes
        .iter()
        .position(|n| n.name == tor)
        .expect("topology names its ToRs");
    let (prefix, len, ports) = topo.routes[tor_idx]
        .iter()
        .find_map(|r| match r {
            RouteSpec::Via { prefix, len, ports } if ports.len() > 1 => {
                Some((*prefix, *len, ports.clone()))
            }
            _ => None,
        })
        .expect("ToR has an ECMP uplink route");

    let mut c = ClusterBuilder::new(spec)
        .seed(17)
        .faults(FaultProfile::paper_default().at(
            reroute_at,
            ScriptAction::Reroute {
                switch: tor.to_string(),
                prefix,
                len,
                ports: vec![ports[0].0],
            },
        ))
        .build();
    let rack0 = c.servers_under(0, 0);
    let rack1 = c.servers_under(0, 1);
    for (i, s) in rack1.iter().enumerate() {
        saturate(&mut c, *s, rack0[0], 7100 + i as u16);
    }
    let tor_i = (0..c.switch_count())
        .find(|i| c.switch_name(*i) == tor)
        .expect("built cluster keeps topology names");

    c.run_until(SimTime(reroute_at.as_ps() - 1));
    let before = c.switch(tor_i).flow_cache_stats();
    let mut goodput_at_three_quarters = 0u64;
    let mut t = c.now();
    let step = SimTime::from_millis(1);
    while t < dur {
        t += step;
        c.run_until(t);
        if t.as_ps() * 4 <= dur.as_ps() * 3 {
            goodput_at_three_quarters = c.total_rdma_goodput();
        }
    }
    let after = c.switch(tor_i).flow_cache_stats();
    RerouteResult {
        invalidations: after.invalidations - before.invalidations,
        misses_before: before.misses,
        misses_after: after.misses,
        hits: after.hits,
        tail_goodput_bytes: c.total_rdma_goodput() - goodput_at_three_quarters,
        digest: c.world.dispatch_digest(),
        events: c.world.events_processed(),
    }
}

/// Result of the cascading pause-storm replay.
#[derive(Debug, Clone)]
pub struct CascadeResult {
    /// Pause frames sent by switches while both storms were active.
    pub storm_pauses: u64,
    /// Packets the storming NICs dropped on their own receive path.
    pub storm_dropped: u64,
    /// Bystander goodput while both storms were active, bytes.
    pub goodput_during: u64,
    /// Bystander goodput after the scripted stop, bytes.
    pub goodput_after: u64,
    /// Detection epochs in which the live detector saw a wait cycle —
    /// must be 0: a pause storm is a tree, not a cycle.
    pub cycle_epochs: u64,
    /// Detection epochs run (the detector must have been live).
    pub epochs: u64,
    /// Lossless drops (must stay 0: PFC holds during the storm).
    pub lossless_drops: u64,
    /// Dispatch digest (determinism pin).
    pub digest: u64,
    /// Events dispatched.
    pub events: u64,
}

/// Cascading pause storm with a scripted stop: rack-0 servers 1 and 2
/// start storming at 1 ms and 2 ms, pausing their ToR ports; backpressure
/// cascades up while cross-rack senders keep pushing. At 6 ms the script
/// stops both storms and the fabric drains. The switch watchdog is
/// disarmed so recovery is attributable to the scripted stop alone.
pub fn run_cascade(dur: SimTime) -> CascadeResult {
    run_cascade_traced(dur, InstrumentationProfile::paper_default())
}

/// [`run_cascade`] under an explicit observation setup (`--trace-out`):
/// the exported trace carries the storm's whole pause-propagation
/// timeline — `pause_tx`/`resume_tx` events cascading up the fabric —
/// plus per-epoch queue samples. The hub is always enabled here (the
/// live deadlock detector needs it), so the traced and untraced runs
/// are the same configuration and pin the same dispatch digest.
pub fn run_cascade_traced(dur: SimTime, mut instr: InstrumentationProfile) -> CascadeResult {
    instr.telemetry = rocescale_monitor::MetricsHub::enabled();
    let stop_at = SimTime::from_millis(6);
    let mut c = ClusterBuilder::two_tier(2, 4)
        .seed(23)
        .fabric(FabricProfile::paper_default().switch_watchdog(false))
        .instrumentation(instr)
        .faults(
            FaultProfile::paper_default()
                .at(
                    SimTime::from_millis(1),
                    ScriptAction::StormStart { server: 1 },
                )
                .at(
                    SimTime::from_millis(2),
                    ScriptAction::StormStart { server: 2 },
                )
                .at(stop_at, ScriptAction::StormStop { server: 1 })
                .at(stop_at, ScriptAction::StormStop { server: 2 }),
        )
        .build();
    let rack0 = c.servers_under(0, 0);
    let rack1 = c.servers_under(0, 1);
    // Victims: heavy cross-rack flows into both stormers — enough
    // in-flight data to fill the ToR's ingress guarantee behind the
    // paused ports and force XOFF up toward the leaves. Bystander: a
    // flow into rack-0's server 0, sharing the ToR with the storms.
    for (i, (from, to)) in [(rack1[1], rack0[1]), (rack1[2], rack0[2])]
        .into_iter()
        .enumerate()
    {
        c.connect_qp(
            from,
            to,
            7200 + i as u16,
            QpApp::Saturate {
                msg_len: 1 << 20,
                inflight: 8,
            },
            QpApp::None,
        );
    }
    saturate(&mut c, rack1[0], rack0[0], 7202);

    c.run_until(SimTime::from_millis(1));
    let pauses_pre = c.total_switch_pause_tx();
    let goodput_pre = c.total_rdma_goodput();
    c.run_until(stop_at);
    let storm_pauses = c.total_switch_pause_tx() - pauses_pre;
    let goodput_during = c.total_rdma_goodput() - goodput_pre;
    c.run_until(dur);
    let goodput_after = c.total_rdma_goodput() - goodput_pre - goodput_during;
    let storm_dropped: u64 = [rack0[1], rack0[2]]
        .iter()
        .map(|s| c.rdma(*s).stats.rx_storm_dropped)
        .sum();
    CascadeResult {
        storm_pauses,
        storm_dropped,
        goodput_during,
        goodput_after,
        cycle_epochs: c.deadlock_probe().cycle_epochs(),
        epochs: c.deadlock_probe().epochs(),
        lossless_drops: c.lossless_drops(),
        digest: c.world.dispatch_digest(),
        events: c.world.events_processed(),
    }
}

/// Result of the dead-but-remembered-server replay.
#[derive(Debug, Clone)]
pub struct DeadRememberedResult {
    /// Incomplete-ARP lossless drops before the scripted death — must
    /// be 0 (the server was fully resolved).
    pub arp_drops_before: u64,
    /// The same counter at the end of the run — the fix must have been
    /// dropping while the server was "dead but remembered".
    pub arp_drops_total: u64,
    /// Receiver goodput before the death, bytes.
    pub goodput_before_death: u64,
    /// Goodput gained while dead (retransmissions go nowhere).
    pub goodput_while_dead: u64,
    /// Goodput gained after the scripted resurrection.
    pub goodput_after_resurrect: u64,
    /// Wait-cycle epochs seen by the live detector (0: the fix holds).
    pub cycle_epochs: u64,
    /// Dispatch digest (determinism pin).
    pub digest: u64,
    /// Events dispatched.
    pub events: u64,
}

/// The §4.2 precondition, replayed on a live rack with the fix on:
/// server 1 is saturating-receiving when its ToR MAC entry is evicted at
/// 2 ms (MAC timeout; ARP survives). Lossless packets to it now hit the
/// incomplete-ARP path and are dropped — no flood, no cycle. At 6 ms the
/// entry is re-seeded (the server "resurrects") and goodput resumes.
pub fn run_dead_remembered(dur: SimTime) -> DeadRememberedResult {
    let die_at = SimTime::from_millis(2);
    let resurrect_at = SimTime::from_millis(6);
    let mut c = ClusterBuilder::single_tor(3)
        .seed(29)
        .telemetry(rocescale_monitor::MetricsHub::enabled())
        .faults(
            FaultProfile::paper_default()
                .at(die_at, ScriptAction::ServerDeath { server: 1 })
                .at(resurrect_at, ScriptAction::ServerResurrect { server: 1 }),
        )
        .build();
    let ids = c.all_servers();
    saturate(&mut c, ids[0], ids[1], 7300);
    saturate(&mut c, ids[2], ids[1], 7301);

    c.run_until(SimTime(die_at.as_ps() - 1));
    let arp_drops_before = c.total_drops_of(DropReason::IncompleteArpLossless);
    let goodput_before_death = c.total_rdma_goodput();
    c.run_until(resurrect_at);
    let goodput_at_resurrect = c.total_rdma_goodput();
    c.run_until(dur);
    DeadRememberedResult {
        arp_drops_before,
        arp_drops_total: c.total_drops_of(DropReason::IncompleteArpLossless),
        goodput_before_death,
        goodput_while_dead: goodput_at_resurrect - goodput_before_death,
        goodput_after_resurrect: c.total_rdma_goodput() - goodput_at_resurrect,
        cycle_epochs: c.deadlock_probe().cycle_epochs(),
        digest: c.world.dispatch_digest(),
        events: c.world.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reroute_counts_one_real_flush_and_a_miss_storm() {
        let r = run_reroute(SimTime::from_millis(10));
        assert_eq!(
            r.invalidations, 1,
            "one scripted reroute on a hot cache = exactly one invalidation"
        );
        assert!(r.hits > 0, "the cache must have been hot: {r:?}");
        assert!(
            r.misses_after > r.misses_before,
            "live flows must re-resolve after the flush: {r:?}"
        );
        assert!(
            r.tail_goodput_bytes > 128 * 1024,
            "the incast must survive the reroute: {r:?}"
        );
        let r2 = run_reroute(SimTime::from_millis(10));
        assert_eq!((r.digest, r.events), (r2.digest, r2.events));
    }

    #[test]
    fn cascade_storm_recovers_on_scripted_stop_without_deadlock() {
        let r = run_cascade(SimTime::from_millis(12));
        assert!(r.storm_pauses > 0, "storms must generate pauses: {r:?}");
        assert!(r.storm_dropped > 0, "stormers drop their rx: {r:?}");
        assert!(
            r.goodput_after > r.goodput_during,
            "the fabric must recover after the scripted stop: {r:?}"
        );
        assert_eq!(r.lossless_drops, 0, "PFC must hold during the storm");
        assert!(r.epochs > 0, "the live detector must have run");
        assert_eq!(
            r.cycle_epochs, 0,
            "a pause storm is a tree, not a cycle: {r:?}"
        );
        let r2 = run_cascade(SimTime::from_millis(12));
        assert_eq!((r.digest, r.events), (r2.digest, r2.events));
    }

    #[test]
    fn dead_remembered_server_drops_then_resumes() {
        let r = run_dead_remembered(SimTime::from_millis(10));
        assert_eq!(
            r.arp_drops_before, 0,
            "fully resolved server: no ARP drops before death: {r:?}"
        );
        assert!(
            r.arp_drops_total > 0,
            "the fix must drop while dead-but-remembered: {r:?}"
        );
        assert!(r.goodput_before_death > 0, "{r:?}");
        assert!(
            r.goodput_after_resurrect > r.goodput_while_dead,
            "resurrection must restore goodput: {r:?}"
        );
        assert_eq!(r.cycle_epochs, 0, "the fix prevents any cycle: {r:?}");
        let r2 = run_dead_remembered(SimTime::from_millis(10));
        assert_eq!((r.digest, r.events), (r2.digest, r2.events));
    }
}
