//! Figure 5 & Figure 9 / §4.3 — the NIC PFC pause frame storm.
//!
//! One malfunctioning NIC "continually sends pause frames to its ToR
//! switch; the ToR switch in turn pauses all the rest ports including all
//! the upstream ports to the Leaf switches …" until "a single
//! malfunctioning NIC may block the entire network from transmitting"
//! (Figure 5). Figure 9 is the production incident: availability of
//! unrelated servers collapses until the watchdogs contain the storm.

use rocescale_nic::{host::TOK_INJECT_STORM, QpApp};
use rocescale_sim::SimTime;
use rocescale_topology::Tier;

use crate::cluster::{Cluster, ClusterBuilder, ServerId};
use crate::profiles::{FabricProfile, TransportProfile};

/// Result of one storm run.
#[derive(Debug, Clone)]
pub struct StormResult {
    /// Watchdogs (NIC + switch) armed?
    pub watchdogs: bool,
    /// Pause frames received by *victim* servers (not the stormer) — the
    /// Figure 9(b) metric.
    pub victim_pause_rx: u64,
    /// Victim pairs that made progress in the last quarter of the run
    /// ("healthy" servers, the Figure 9(a) availability metric).
    pub healthy_pairs: usize,
    /// Total victim pairs.
    pub total_pairs: usize,
    /// Did the NIC watchdog fire?
    pub nic_watchdog_fired: bool,
    /// Did the switch watchdog disable lossless on the stormer's port?
    pub switch_watchdog_fired: bool,
}

/// Build a 2-rack cluster, run victim traffic across racks, and put one
/// server into storm mode at 20% of `dur`.
pub fn run(watchdogs: bool, dur: SimTime) -> StormResult {
    let servers_per_tor = 6u32;
    let mut c = ClusterBuilder::two_tier(2, servers_per_tor)
        .fabric(FabricProfile::paper_default().switch_watchdog(watchdogs))
        .transport(
            TransportProfile::paper_default()
                .nic_watchdog(watchdogs.then(|| SimTime::from_millis(5))),
        )
        .build();
    // Victim pairs: rack0 server i ↔ rack1 server i (skipping server 0 of
    // rack 0, the stormer).
    let rack0 = c.servers_under(0, 0);
    let rack1 = c.servers_under(0, 1);
    let mut pairs = Vec::new();
    for i in 1..servers_per_tor as usize {
        let (a, b) = (rack0[i], rack1[i]);
        // Bidirectional, as production services are: the reverse leg is
        // what exposes victims to the propagated pauses.
        c.connect_qp(
            a,
            b,
            (6000 + i) as u16,
            QpApp::Saturate {
                msg_len: 256 * 1024,
                inflight: 2,
            },
            QpApp::Saturate {
                msg_len: 256 * 1024,
                inflight: 2,
            },
        );
        pairs.push((a, b));
    }
    let stormer = rack0[0];
    // Production traffic also flows *toward* the failing server: this is
    // what piles up behind the paused port and propagates the storm
    // (Figure 5 step 2: "the ToR switch in turn pauses all the rest
    // ports").
    c.connect_qp(
        rack1[0],
        stormer,
        6999,
        QpApp::Saturate {
            msg_len: 256 * 1024,
            inflight: 2,
        },
        QpApp::None,
    );
    let storm_at = SimTime(dur.as_ps() / 5);
    let node = c.server_node(stormer);
    c.world.schedule_timer(storm_at, node, TOK_INJECT_STORM);

    // Run to the 3/4 mark, snapshot victim progress, then finish.
    let three_q = SimTime(dur.as_ps() * 3 / 4);
    c.run_until(three_q);
    let mark: Vec<u64> = pairs
        .iter()
        .map(|(_, b)| c.rdma(*b).total_goodput_bytes())
        .collect();
    c.run_until(dur);

    let healthy = pairs
        .iter()
        .zip(&mark)
        .filter(|((_, b), m)| c.rdma(*b).total_goodput_bytes() > **m)
        .count();
    let victim_pause_rx: u64 = pairs
        .iter()
        .flat_map(|(a, b)| [a, b])
        .map(|s| c.rdma(*s).stats.pause_rx)
        .sum();
    let nic_fired = c.rdma(stormer).pause_generation_disabled();
    let switch_fired = switch_watchdog_fired(&c);
    StormResult {
        watchdogs,
        victim_pause_rx,
        healthy_pairs: healthy,
        total_pairs: pairs.len(),
        nic_watchdog_fired: nic_fired,
        switch_watchdog_fired: switch_fired,
    }
}

fn switch_watchdog_fired(c: &Cluster) -> bool {
    c.switches_of_tier(Tier::Tor)
        .into_iter()
        .any(|i| c.switch(i).stats.watchdog_disables > 0)
}

/// Availability time series for Figure 9(a): fraction of victim pairs
/// making progress per window.
pub fn availability_series(watchdogs: bool, dur: SimTime, windows: u32) -> Vec<(SimTime, f64)> {
    let servers_per_tor = 6u32;
    let mut c = ClusterBuilder::two_tier(2, servers_per_tor)
        .fabric(FabricProfile::paper_default().switch_watchdog(watchdogs))
        .transport(
            TransportProfile::paper_default()
                .nic_watchdog(watchdogs.then(|| SimTime::from_millis(5))),
        )
        .build();
    let rack0 = c.servers_under(0, 0);
    let rack1 = c.servers_under(0, 1);
    let mut pairs: Vec<(ServerId, ServerId)> = Vec::new();
    for i in 1..servers_per_tor as usize {
        c.connect_qp(
            rack0[i],
            rack1[i],
            (6000 + i) as u16,
            QpApp::Saturate {
                msg_len: 256 * 1024,
                inflight: 2,
            },
            QpApp::Saturate {
                msg_len: 256 * 1024,
                inflight: 2,
            },
        );
        pairs.push((rack0[i], rack1[i]));
    }
    c.connect_qp(
        rack1[0],
        rack0[0],
        6999,
        QpApp::Saturate {
            msg_len: 256 * 1024,
            inflight: 2,
        },
        QpApp::None,
    );
    let node = c.server_node(rack0[0]);
    c.world
        .schedule_timer(SimTime(dur.as_ps() / 5), node, TOK_INJECT_STORM);

    let mut out = Vec::new();
    let mut last: Vec<u64> = vec![0; pairs.len()];
    for w in 1..=windows {
        let t = SimTime(dur.as_ps() * w as u64 / windows as u64);
        c.run_until(t);
        let mut healthy = 0usize;
        for (i, (_, b)) in pairs.iter().enumerate() {
            let g = c.rdma(*b).total_goodput_bytes();
            if g > last[i] {
                healthy += 1;
            }
            last[i] = g;
        }
        out.push((t, healthy as f64 / pairs.len() as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 5: without watchdogs a single NIC's storm spreads pause
    /// frames to innocent servers and freezes victim traffic.
    #[test]
    fn storm_without_watchdogs_blocks_victims() {
        let r = run(false, SimTime::from_millis(40));
        assert!(r.victim_pause_rx > 0, "pauses must propagate to victims");
        assert!(
            r.healthy_pairs < r.total_pairs,
            "some victims must be blocked: {}/{}",
            r.healthy_pairs,
            r.total_pairs
        );
        assert!(!r.nic_watchdog_fired && !r.switch_watchdog_fired);
    }

    /// §4.3: with the two watchdogs armed, the storm is contained and
    /// victims keep working.
    #[test]
    fn watchdogs_contain_the_storm() {
        let r = run(true, SimTime::from_millis(40));
        assert!(
            r.nic_watchdog_fired || r.switch_watchdog_fired,
            "at least one watchdog must fire"
        );
        assert_eq!(
            r.healthy_pairs, r.total_pairs,
            "all victims must stay healthy"
        );
    }

    /// Figure 9(a): availability dips when the storm starts and recovers
    /// only with watchdogs.
    #[test]
    fn availability_recovers_only_with_watchdogs() {
        let dur = SimTime::from_millis(40);
        let without = availability_series(false, dur, 10);
        let with = availability_series(true, dur, 10);
        let tail_without = without.last().unwrap().1;
        let tail_with = with.last().unwrap().1;
        assert!(tail_with > 0.99, "watchdogs: tail availability {tail_with}");
        assert!(
            tail_without < tail_with,
            "no watchdogs must be worse: {tail_without} vs {tail_with}"
        );
    }
}
