//! §8.1 future work, made concrete — per-packet routing vs per-flow ECMP.
//!
//! "Our measurement showed ECMP achieves only 60% network utilization.
//! For TCP in best-effort networks, there are MPTCP and per-packet
//! routing for better network utilization. How to make these designs work
//! for RDMA in the lossless network context will be an interesting
//! challenge."
//!
//! This ablation shows exactly why it is a challenge. The fabric is a
//! two-path diamond whose paths have *different* cable lengths (5 m vs
//! 300 m — both within the paper's stated spans), as real multi-building
//! fabrics do. Per-flow ECMP pins each QP to one path: perfect ordering.
//! Per-packet spraying balances the links beautifully — and the delay
//! skew reorders the stream, which RoCEv2's go-back-N transport treats
//! as loss: NAKs, whole-window retransmissions, goodput collapse, with
//! **zero** packets actually dropped.

use rocescale_nic::{NicConfig, QpApp, QpHandle, RdmaHost};
use rocescale_packet::MacAddr;
use rocescale_sim::{LinkSpec, NodeId, PortId, SimTime, World};
use rocescale_switch::{EcmpGroup, PortRole, Switch, SwitchConfig};

use crate::scenarios::gbps;

/// Result of one routing-mode arm.
#[derive(Debug, Clone)]
pub struct SprayResult {
    /// Per-packet spraying on?
    pub spraying: bool,
    /// Receiver goodput, Gb/s.
    pub goodput_gbps: f64,
    /// Raw wire throughput at the sender, Gb/s (spraying keeps the wire
    /// busy — the waste is retransmission, not idleness).
    pub wire_gbps: f64,
    /// Out-of-sequence packets at the receiver (the reordering).
    pub out_of_seq: u64,
    /// NAKs the receiver generated.
    pub naks: u64,
    /// Packets dropped in the fabric (zero in both arms).
    pub drops: u64,
}

const IP_A: u32 = 0x0a000001;
const IP_B: u32 = 0x0a000101;

/// Run one arm: A → B across a two-path diamond (short leaf at 5 m, long
/// leaf at 300 m) for `dur`.
pub fn run(spraying: bool, dur: SimTime) -> SprayResult {
    let mac = MacAddr::from_id;
    let (t0_mac, t1_mac, short_mac, long_mac) = (mac(0xe0), mac(0xe1), mac(0xea), mac(0xeb));
    let sw = |name: &str, ports: u16, roles: Vec<PortRole>| {
        let mut cfg = SwitchConfig::new(name, ports);
        cfg.port_roles = roles;
        cfg.per_packet_spraying = spraying;
        cfg
    };
    use PortRole::{Fabric as F, Server as S};
    // T0: p0=A p1=short-leaf p2=long-leaf; T1 mirrored for B.
    let mut t0 = Switch::new(sw("T0", 3, vec![S, F, F]), t0_mac, 71);
    t0.routes_mut().add_connected(0x0a000000, 24);
    t0.routes_mut()
        .add(0x0a000100, 24, EcmpGroup::new(vec![PortId(1), PortId(2)]));
    t0.set_peer_mac(PortId(1), short_mac);
    t0.set_peer_mac(PortId(2), long_mac);
    t0.seed_arp(IP_A, mac(1), SimTime::ZERO);
    t0.seed_mac(mac(1), PortId(0), SimTime::ZERO);
    let mut t1 = Switch::new(sw("T1", 3, vec![S, F, F]), t1_mac, 72);
    t1.routes_mut().add_connected(0x0a000100, 24);
    t1.routes_mut()
        .add(0x0a000000, 24, EcmpGroup::new(vec![PortId(1), PortId(2)]));
    t1.set_peer_mac(PortId(1), short_mac);
    t1.set_peer_mac(PortId(2), long_mac);
    t1.seed_arp(IP_B, mac(2), SimTime::ZERO);
    t1.seed_mac(mac(2), PortId(0), SimTime::ZERO);
    let leaf = |name: &str, m: MacAddr, salt| {
        let mut l = Switch::new(sw(name, 2, vec![F, F]), m, salt);
        l.routes_mut()
            .add(0x0a000000, 24, EcmpGroup::single(PortId(0)));
        l.routes_mut()
            .add(0x0a000100, 24, EcmpGroup::single(PortId(1)));
        l.set_peer_mac(PortId(0), t0_mac);
        l.set_peer_mac(PortId(1), t1_mac);
        l
    };
    let short = leaf("short", short_mac, 73);
    let long = leaf("long", long_mac, 74);

    let host = |name: &str, id: u32, ip: u32, gw: MacAddr| {
        let mut cfg = NicConfig::new(name, id, ip, gw);
        cfg.cc = rocescale_cc::CcParams::Off;
        RdmaHost::new(cfg)
    };
    let mut world = World::new(61);
    let t0 = world.add_node(Box::new(t0));
    let t1 = world.add_node(Box::new(t1));
    let short = world.add_node(Box::new(short));
    let long = world.add_node(Box::new(long));
    let a = world.add_node(Box::new(host("A", 1, IP_A, t0_mac)));
    let b = world.add_node(Box::new(host("B", 2, IP_B, t1_mac)));
    world.connect(a, PortId(0), t0, PortId(0), LinkSpec::server_40g());
    world.connect(b, PortId(0), t1, PortId(0), LinkSpec::server_40g());
    // The asymmetry: 5 m vs 300 m leaves (≈3 µs round-trip skew).
    world.connect(
        t0,
        PortId(1),
        short,
        PortId(0),
        LinkSpec::with_length(40_000_000_000, 5),
    );
    world.connect(
        t1,
        PortId(1),
        short,
        PortId(1),
        LinkSpec::with_length(40_000_000_000, 5),
    );
    world.connect(
        t0,
        PortId(2),
        long,
        PortId(0),
        LinkSpec::with_length(40_000_000_000, 300),
    );
    world.connect(
        t1,
        PortId(2),
        long,
        PortId(1),
        LinkSpec::with_length(40_000_000_000, 300),
    );

    spray_connect(&mut world, a, b);
    world.run_until(dur);

    let rx = world.node::<RdmaHost>(b);
    let st = rx.qp_endpoint(QpHandle(0)).stats;
    let tx = world.node::<RdmaHost>(a);
    let drops: u64 = [t0, t1, short, long]
        .iter()
        .map(|s| world.node::<Switch>(*s).stats.total_drops())
        .sum();
    SprayResult {
        spraying,
        goodput_gbps: gbps(rx.total_goodput_bytes(), dur),
        wire_gbps: gbps(tx.stats.tx_bytes, dur),
        out_of_seq: st.out_of_seq_rx,
        naks: st.naks_tx,
        drops,
    }
}

fn spray_connect(world: &mut World, a: NodeId, b: NodeId) {
    let a_ip = world.node::<RdmaHost>(a).config().ip;
    let b_ip = world.node::<RdmaHost>(b).config().ip;
    world.node_mut::<RdmaHost>(a).add_qp(
        b_ip,
        0,
        15_000,
        QpApp::Saturate {
            msg_len: 1 << 20,
            inflight: 2,
        },
    );
    world
        .node_mut::<RdmaHost>(b)
        .add_qp(a_ip, 0, 15_000, QpApp::None);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §8.1 trade-off: spraying over unequal paths reorders and
    /// collapses go-back-N goodput with zero actual loss; per-flow ECMP
    /// reorders nothing.
    #[test]
    fn spraying_reorders_and_collapses_goodput() {
        let dur = SimTime::from_millis(8);
        let flow = run(false, dur);
        let spray = run(true, dur);
        assert_eq!(flow.drops + spray.drops, 0, "neither arm loses packets");
        assert_eq!(flow.out_of_seq, 0, "per-flow ECMP preserves order");
        assert!(
            flow.goodput_gbps > 25.0,
            "baseline healthy: {}",
            flow.goodput_gbps
        );
        assert!(
            spray.out_of_seq > 1000,
            "spraying must reorder: {}",
            spray.out_of_seq
        );
        assert!(spray.naks > 100, "naks {}", spray.naks);
        assert!(
            spray.goodput_gbps < flow.goodput_gbps / 2.0,
            "reordering must hurt: {} vs {}",
            spray.goodput_gbps,
            flow.goodput_gbps
        );
    }
}
