//! §2's headroom arithmetic, validated by violation.
//!
//! "The ingress port must reserve buffer space for each priority to
//! absorb packets that arrive during this 'gray period'. … The size of
//! the headroom is decided by the MTU size, the PFC reaction time of the
//! egress port, and most importantly, the propagation delay between the
//! sender and the receiver." — and it is why shallow-buffer switches can
//! afford only two lossless classes.
//!
//! We sweep the provisioned headroom as a fraction of the computed
//! requirement with senders on the *longest* cables the paper mentions
//! (300 m): at 100% the lossless guarantee holds; starved headroom drops
//! lossless packets exactly as the gray-period formula predicts.

use rocescale_nic::QpApp;
use rocescale_sim::SimTime;
use rocescale_switch::BufferConfig;
use rocescale_topology::{ClosSpec, Tier};

use crate::cluster::{ClusterBuilder, ServerId};
use crate::profiles::TransportProfile;

/// Result of one headroom arm.
#[derive(Debug, Clone)]
pub struct HeadroomResult {
    /// Provisioned fraction of the computed requirement.
    pub fraction: f64,
    /// Provisioned bytes per (port, PG).
    pub headroom_bytes: u64,
    /// Lossless packets dropped (must be zero at fraction ≥ 1.0).
    pub lossless_drops: u64,
    /// Pause frames generated.
    pub pauses: u64,
}

/// Run a 4:1 incast over 300 m server cables with headroom provisioned at
/// `fraction` of the 300 m / 40 GbE requirement.
pub fn run(fraction: f64, dur: SimTime) -> HeadroomResult {
    let required = BufferConfig::headroom_for(40_000_000_000, 300, 1120);
    let provisioned = (required as f64 * fraction) as u64;
    let spec = ClosSpec {
        // Long server cables: the widest gray period the paper cites.
        server_m: 300,
        ..ClosSpec::uniform_40g(1, 1, 1, 1, 5)
    };
    let mut c = ClusterBuilder::new(spec)
        // Raw PFC: the headroom is doing all the work.
        .transport(TransportProfile::paper_default().dcqcn(false))
        .switch_tweak(move |_, cfg| {
            cfg.buffer.headroom_per_port_pg = provisioned.max(1);
            // A small fixed XOFF threshold makes pauses fire early and
            // often, maximizing gray-period stress.
            cfg.buffer.alpha = None;
            cfg.buffer.xoff_static = 64 * 1024;
        })
        .build();
    let dst = ServerId(0);
    for i in 1..5usize {
        c.connect_qp(
            ServerId(i),
            dst,
            17_000 + i as u16,
            QpApp::Saturate {
                msg_len: 1 << 20,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    c.run_until(dur);
    let tor = c.switches_of_tier(Tier::Tor)[0];
    HeadroomResult {
        fraction,
        headroom_bytes: provisioned,
        lossless_drops: c.lossless_drops(),
        pauses: c.switch(tor).stats.total_pause_tx(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §2: the computed headroom is sufficient — and not wildly
    /// overprovisioned: starving it to a quarter breaks the lossless
    /// guarantee on 300 m cables.
    #[test]
    fn computed_headroom_is_sufficient_and_tight() {
        let dur = SimTime::from_millis(6);
        let full = run(1.0, dur);
        assert!(full.pauses > 0, "the incast must exercise PFC");
        assert_eq!(
            full.lossless_drops, 0,
            "full headroom must absorb the gray period"
        );
        let starved = run(0.25, dur);
        assert!(
            starved.lossless_drops > 0,
            "quarter headroom must overflow on 300 m cables"
        );
    }
}
