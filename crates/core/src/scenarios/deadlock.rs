//! Figure 4 / §4.2 — the PFC deadlock created by Ethernet flooding, and
//! the fix.
//!
//! The exact four-switch fragment of the paper's example:
//!
//! ```text
//!        La        Lb
//!       /  \      /  \
//!     T0    T1--/    |
//!      | \   \-------/
//!  S1 S2   S3 S4 S5
//! ```
//!
//! * S1 → S3 (dead) and S1 → S5: path {T0, La, T1} (purple / black).
//! * S4 → S2 (dead): path {T1, Lb, T0} (blue). S4 → S5 adds the incast
//!   on T1's port to S5.
//! * S2 and S3 are dead: their MAC-table entries have timed out (5 min)
//!   while their ARP entries survive (4 h) — the "incomplete ARP entry".
//!   The ToRs flood their lossless packets; flood copies parked on paused
//!   fabric ports close the cyclic buffer dependency and the fabric
//!   freezes: "Once the deadlock occurs, it does not go away even if we
//!   restart all the servers."
//!
//! With the paper's fix (drop lossless packets on incomplete ARP), the
//! flood never happens and traffic to live servers keeps flowing.

use rocescale_monitor::{MetricsHub, ProgressTracker, WaitGraph};
use rocescale_nic::{NicConfig, QpApp, RdmaHost};
use rocescale_packet::MacAddr;
use rocescale_packet::Priority;
use rocescale_sim::{LinkSpec, NodeId, PortId, SimTime, World};
use rocescale_switch::{AdminAction, DropReason, EcmpGroup, PortRole, Switch, SwitchConfig};
use rocescale_transport::QpConfig;

use crate::detect::{DeadlockProbe, ProbeLink};

/// Result of one deadlock run.
#[derive(Debug, Clone)]
pub struct DeadlockResult {
    /// Was the drop-on-incomplete-ARP fix enabled?
    pub fix_enabled: bool,
    /// Switches stuck (zero tx progress with lossless backlog) for the
    /// whole tail of the run.
    pub deadlocked_switches: Vec<String>,
    /// S5's received goodput during the *last quarter* of the run, bytes
    /// (zero once the fabric is wedged; healthy with the fix).
    pub tail_goodput_bytes: u64,
    /// Lossless packets dropped by the fix.
    pub fix_drops: u64,
    /// Pause frames sent by all four switches.
    pub pauses: u64,
    /// The pause-wait cycle at the end of the run, if one exists — the
    /// §4.2 "cyclic buffer dependency" rendered as device names.
    pub wait_cycle: Option<Vec<String>>,
}

const IP_S1: u32 = 0x0a000001;
const IP_S2: u32 = 0x0a000002;
const IP_S3: u32 = 0x0a000101;
const IP_S4: u32 = 0x0a000102;
const IP_S5: u32 = 0x0a000103;
const IP_S6: u32 = 0x0a000003;

struct Fabric {
    world: World,
    t0: NodeId,
    t1: NodeId,
    la: NodeId,
    lb: NodeId,
    s1: NodeId,
    s4: NodeId,
    s5: NodeId,
    s6: NodeId,
}

fn build(fix_enabled: bool) -> Fabric {
    build_with_macs(fix_enabled, false)
}

/// `dead_macs_seeded` = true starts S2/S3 fully resolved (alive in both
/// ARP and MAC tables) so a scripted mid-run `EvictMac` can recreate the
/// §4.2 "dead but remembered" state while traffic is already flowing.
fn build_with_macs(fix_enabled: bool, dead_macs_seeded: bool) -> Fabric {
    let mac = MacAddr::from_id;
    let (t0_mac, t1_mac, la_mac, lb_mac) = (mac(0xf0), mac(0xf1), mac(0xfa), mac(0xfb));
    let sw_cfg = |name: &str, ports: u16, roles: Vec<PortRole>| {
        let mut cfg = SwitchConfig::new(name, ports);
        cfg.port_roles = roles;
        cfg.drop_lossless_on_incomplete_arp = fix_enabled;
        cfg
    };
    use PortRole::{Fabric as F, Server as S};

    // T0: p0=S1 p1=S2(dead) p2=La p3=Lb p4=S6
    let mut t0 = Switch::new(sw_cfg("T0", 5, vec![S, S, F, F, S]), t0_mac, 10);
    t0.routes_mut().add_connected(0x0a000000, 25);
    // Force S1's cross traffic through La (the paper's path {T0,La,T1}).
    t0.routes_mut()
        .add(0x0a000100, 25, EcmpGroup::single(PortId(2)));
    t0.set_peer_mac(PortId(2), la_mac);
    t0.set_peer_mac(PortId(3), lb_mac);
    t0.seed_arp(IP_S1, mac(1), SimTime::ZERO);
    t0.seed_arp(IP_S2, mac(2), SimTime::ZERO);
    t0.seed_arp(IP_S6, mac(6), SimTime::ZERO);
    t0.seed_mac(mac(1), PortId(0), SimTime::ZERO);
    t0.seed_mac(mac(6), PortId(4), SimTime::ZERO);
    // S2 is dead: MAC entry expired, ARP entry alive — the incomplete
    // entry (its MAC is deliberately NOT seeded)... unless the scripted
    // variant starts it alive and evicts it mid-run.
    if dead_macs_seeded {
        t0.seed_mac(mac(2), PortId(1), SimTime::ZERO);
    }

    // T1: p0=S3(dead) p1=S4 p2=S5 p3=La p4=Lb
    let mut t1 = Switch::new(sw_cfg("T1", 5, vec![S, S, S, F, F]), t1_mac, 11);
    t1.routes_mut().add_connected(0x0a000100, 25);
    // Force S4's cross traffic through Lb (the paper's path {T1,Lb,T0}).
    t1.routes_mut()
        .add(0x0a000000, 25, EcmpGroup::single(PortId(4)));
    t1.set_peer_mac(PortId(3), la_mac);
    t1.set_peer_mac(PortId(4), lb_mac);
    t1.seed_arp(IP_S3, mac(3), SimTime::ZERO);
    t1.seed_arp(IP_S4, mac(4), SimTime::ZERO);
    t1.seed_arp(IP_S5, mac(5), SimTime::ZERO);
    t1.seed_mac(mac(4), PortId(1), SimTime::ZERO);
    t1.seed_mac(mac(5), PortId(2), SimTime::ZERO);
    // S3 dead: no MAC entry (same scripted-variant exception as S2).
    if dead_macs_seeded {
        t1.seed_mac(mac(3), PortId(0), SimTime::ZERO);
    }

    // Leaves: p0=T0 p1=T1.
    let mut la = Switch::new(sw_cfg("La", 2, vec![F, F]), la_mac, 12);
    la.routes_mut()
        .add(0x0a000000, 25, EcmpGroup::single(PortId(0)));
    la.routes_mut()
        .add(0x0a000100, 25, EcmpGroup::single(PortId(1)));
    la.set_peer_mac(PortId(0), t0_mac);
    la.set_peer_mac(PortId(1), t1_mac);
    let mut lb = Switch::new(sw_cfg("Lb", 2, vec![F, F]), lb_mac, 13);
    lb.routes_mut()
        .add(0x0a000000, 25, EcmpGroup::single(PortId(0)));
    lb.routes_mut()
        .add(0x0a000100, 25, EcmpGroup::single(PortId(1)));
    lb.set_peer_mac(PortId(0), t0_mac);
    lb.set_peer_mac(PortId(1), t1_mac);

    let host = |name: &str, id: u32, ip: u32, gw: MacAddr| {
        let mut cfg = NicConfig::new(name, id, ip, gw);
        cfg.cc = rocescale_cc::CcParams::Off; // raw PFC dynamics, as in the paper's stress test
        cfg.qp_defaults = QpConfig {
            rto_ps: 200_000_000, // 200 µs: senders to dead peers keep the wire busy
            ..QpConfig::default()
        };
        RdmaHost::new(cfg)
    };

    let mut world = World::new(99);
    let t0 = world.add_node(Box::new(t0));
    let t1 = world.add_node(Box::new(t1));
    let la = world.add_node(Box::new(la));
    let lb = world.add_node(Box::new(lb));
    let s1 = world.add_node(Box::new(host("S1", 1, IP_S1, t0_mac)));
    let s2 = world.add_node(Box::new(host("S2", 2, IP_S2, t0_mac)));
    let s3 = world.add_node(Box::new(host("S3", 3, IP_S3, t1_mac)));
    let s4 = world.add_node(Box::new(host("S4", 4, IP_S4, t1_mac)));
    let s5 = world.add_node(Box::new(host("S5", 5, IP_S5, t1_mac)));
    // S6: the "other sources" of the paper's incast on T1's port to S5.
    let s6 = world.add_node(Box::new(host("S6", 6, IP_S6, t0_mac)));

    let l = LinkSpec::server_40g;
    world.connect(s1, PortId(0), t0, PortId(0), l());
    world.connect(s2, PortId(0), t0, PortId(1), l());
    world.connect(s3, PortId(0), t1, PortId(0), l());
    world.connect(s4, PortId(0), t1, PortId(1), l());
    world.connect(s5, PortId(0), t1, PortId(2), l());
    world.connect(s6, PortId(0), t0, PortId(4), l());
    let f = LinkSpec::tor_leaf_40g;
    world.connect(t0, PortId(2), la, PortId(0), f());
    world.connect(t1, PortId(3), la, PortId(1), f());
    world.connect(t0, PortId(3), lb, PortId(0), f());
    world.connect(t1, PortId(4), lb, PortId(1), f());

    Fabric {
        world,
        t0,
        t1,
        la,
        lb,
        s1,
        s4,
        s5,
        s6,
    }
}

/// Wire a one-way saturating QP from host `a` toward `peer_ip`. The peer
/// may be dead (S2/S3): data then flows unacknowledged, the RTO keeps the
/// wire busy — exactly the paper's stress condition. For live peers,
/// `live_peer` creates the responder end.
fn saturate_toward(
    world: &mut World,
    a: NodeId,
    peer_ip: u32,
    live_peer: Option<NodeId>,
    udp_src: u16,
) {
    let a_ip = world.node::<RdmaHost>(a).config().ip;
    let a_qpn = world.node::<RdmaHost>(a).qp_count() as u32;
    let peer_qpn = live_peer
        .map(|p| world.node::<RdmaHost>(p).qp_count() as u32)
        .unwrap_or(0);
    world.node_mut::<RdmaHost>(a).add_qp(
        peer_ip,
        peer_qpn,
        udp_src,
        QpApp::Saturate {
            msg_len: 1 << 20,
            inflight: 4,
        },
    );
    if let Some(p) = live_peer {
        world
            .node_mut::<RdmaHost>(p)
            .add_qp(a_ip, a_qpn, udp_src, QpApp::None);
    }
}

/// Run the Figure 4 scenario for `dur`, sampling progress every 2 ms.
pub fn run(fix_enabled: bool, dur: SimTime) -> DeadlockResult {
    run_impl(fix_enabled, dur, false)
}

/// [`run`] with per-sample diagnostics printed (debugging aid).
pub fn run_debug(fix_enabled: bool, dur: SimTime) -> DeadlockResult {
    run_impl(fix_enabled, dur, true)
}

fn run_impl(fix_enabled: bool, dur: SimTime, verbose: bool) -> DeadlockResult {
    let mut f = build(fix_enabled);
    // S1 → S3 (dead; the purple packets) and S1 → S5 (the black packets).
    saturate_toward(&mut f.world, f.s1, IP_S3, None, 7001);
    saturate_toward(&mut f.world, f.s1, IP_S5, Some(f.s5), 7002);
    // S4 → S2 (dead; the blue packets) and S4 → S5 (the incast co-source
    // congesting T1's port to S5).
    saturate_toward(&mut f.world, f.s4, IP_S2, None, 7003);
    saturate_toward(&mut f.world, f.s4, IP_S5, Some(f.s5), 7004);
    // S6 → S5: "T1.p2 is congested due to incast traffic from S1 and
    // other sources" — the demand on S5's port must exceed its rate for
    // the black packets to queue.
    saturate_toward(&mut f.world, f.s6, IP_S5, Some(f.s5), 7005);

    let mut tracker = ProgressTracker::new();
    let switches = [(f.t0, "T0"), (f.t1, "T1"), (f.la, "La"), (f.lb, "Lb")];
    let sample = SimTime::from_millis(2);
    let mut t = SimTime::ZERO;
    let mut goodput_at_three_quarters = 0u64;
    while t < dur {
        t += sample;
        f.world.run_until(t);
        let round: Vec<_> = switches
            .iter()
            .map(|(id, name)| {
                let sw = f.world.node::<Switch>(*id);
                (
                    name.to_string(),
                    rocescale_monitor::deadlock::Snapshot {
                        tx_pkts: sw.total_data_tx_pkts(),
                        backlog_bytes: sw.lossless_backlog(),
                    },
                )
            })
            .collect();
        if verbose {
            let line: Vec<String> = round
                .iter()
                .map(|(n, s)| format!("{n}: tx={} bl={}", s.tx_pkts, s.backlog_bytes))
                .collect();
            let pauses: Vec<String> = switches
                .iter()
                .map(|(id, n)| {
                    let sw = f.world.node::<Switch>(*id);
                    format!(
                        "{n}:ptx={} prx={}",
                        sw.stats.total_pause_tx(),
                        sw.stats.total_pause_rx()
                    )
                })
                .collect();
            println!("t={t} {line:?} {pauses:?}");
        }
        tracker.observe(&round);
        if t.as_ps() * 4 <= dur.as_ps() * 3 {
            goodput_at_three_quarters = f.world.node::<RdmaHost>(f.s5).total_goodput_bytes();
        }
    }
    // Pause-wait graph at the end of the run: edge A→B when A's egress
    // port toward B is paused for a lossless class with backlog behind it.
    let fabric_links: [(NodeId, &str, PortId, NodeId, &str, PortId); 4] = [
        (f.t0, "T0", PortId(2), f.la, "La", PortId(0)),
        (f.t1, "T1", PortId(3), f.la, "La", PortId(1)),
        (f.t0, "T0", PortId(3), f.lb, "Lb", PortId(0)),
        (f.t1, "T1", PortId(4), f.lb, "Lb", PortId(1)),
    ];
    let mut graph = WaitGraph::new();
    let now = f.world.now();
    for (a_id, a_name, a_port, b_id, b_name, b_port) in fabric_links {
        for prio in [Priority::new(3), Priority::new(4)] {
            let a_sw = f.world.node::<Switch>(a_id);
            if a_sw.is_paused(a_port, prio, now) && a_sw.egress_depth_prio(a_port, prio) > 0 {
                graph.add_edge(a_name, b_name);
            }
            let b_sw = f.world.node::<Switch>(b_id);
            if b_sw.is_paused(b_port, prio, now) && b_sw.egress_depth_prio(b_port, prio) > 0 {
                graph.add_edge(b_name, a_name);
            }
        }
    }
    let wait_cycle = graph.find_cycle();
    let final_goodput = f.world.node::<RdmaHost>(f.s5).total_goodput_bytes();
    let fix_drops: u64 = switches
        .iter()
        .map(|(id, _)| {
            f.world
                .node::<Switch>(*id)
                .stats
                .drops_of(DropReason::IncompleteArpLossless)
        })
        .sum();
    let pauses: u64 = switches
        .iter()
        .map(|(id, _)| f.world.node::<Switch>(*id).stats.total_pause_tx())
        .sum();
    DeadlockResult {
        fix_enabled,
        deadlocked_switches: tracker.deadlocked(3, &graph),
        tail_goodput_bytes: final_goodput.saturating_sub(goodput_at_three_quarters),
        fix_drops,
        pauses,
        wait_cycle,
    }
}

/// Result of one scripted §4.2 incident replay.
#[derive(Debug, Clone)]
pub struct ScriptedDeadlockResult {
    /// Was the drop-on-incomplete-ARP fix enabled?
    pub fix_enabled: bool,
    /// When the scripted MAC evictions fired.
    pub evict_at: SimTime,
    /// First epoch at which the live detector saw a wait cycle, if ever.
    pub first_cycle_at: Option<SimTime>,
    /// Detection epochs with a cycle present / total epochs run.
    pub cycle_epochs: u64,
    /// Total detection epochs run.
    pub epochs: u64,
    /// The corroborated end-of-run verdict (stuck ∩ on a wait cycle).
    pub deadlocked_switches: Vec<String>,
    /// Lossless packets dropped by the fix (zero with the fix off).
    pub fix_drops: u64,
    /// S5's goodput over the last quarter of the run, bytes.
    pub tail_goodput_bytes: u64,
    /// Dispatch digest of the whole run (determinism pin).
    pub digest: u64,
    /// Events dispatched (pairs with the digest pin).
    pub events: u64,
}

/// The §4.2 incident as a *live replay*: S2 and S3 start healthy (fully
/// resolved), traffic flows, then a scripted admin action evicts their
/// MAC entries mid-run — the switch tables now hold the "dead but
/// remembered" state the paper describes, while ARP entries survive.
/// A [`DeadlockProbe`] watches the fabric every 2 ms.
///
/// * Fix off: the flood starts at eviction, the cyclic buffer dependency
///   forms, and the probe reports a live wait cycle mid-run.
/// * Fix on: lossless packets to the evicted MACs are dropped instead of
///   flooded; every epoch stays cycle-free and S5 keeps receiving.
pub fn run_scripted(fix_enabled: bool, dur: SimTime) -> ScriptedDeadlockResult {
    let mut f = build_with_macs(fix_enabled, true);
    // Same traffic matrix as [`run`] — but S2/S3 are reachable at first.
    saturate_toward(&mut f.world, f.s1, IP_S3, None, 7001);
    saturate_toward(&mut f.world, f.s1, IP_S5, Some(f.s5), 7002);
    saturate_toward(&mut f.world, f.s4, IP_S2, None, 7003);
    saturate_toward(&mut f.world, f.s4, IP_S5, Some(f.s5), 7004);
    saturate_toward(&mut f.world, f.s6, IP_S5, Some(f.s5), 7005);

    // The incident: both ToRs lose the dead servers' MAC entries at the
    // same maintenance tick (the paper's 5-minute MAC timeout, compressed).
    let evict_at = SimTime::from_millis(4);
    let mac = MacAddr::from_id;
    for (tor, victim) in [(f.t0, mac(2)), (f.t1, mac(3))] {
        let token = f
            .world
            .node_mut::<Switch>(tor)
            .schedule_admin(AdminAction::EvictMac { mac: victim });
        f.world.schedule_timer(evict_at, tor, token);
    }

    // Live detector over every switch egress (fabric links in both
    // directions; server ports appear as chain leaves, never cycles).
    let switches = vec![
        ("T0".to_string(), f.t0),
        ("T1".to_string(), f.t1),
        ("La".to_string(), f.la),
        ("Lb".to_string(), f.lb),
    ];
    let link = |switch: usize, port: u16, peer: &str| ProbeLink {
        switch,
        port: PortId(port),
        peer: peer.to_string(),
    };
    let links = vec![
        link(0, 0, "S1"),
        link(0, 1, "S2"),
        link(0, 2, "La"),
        link(0, 3, "Lb"),
        link(0, 4, "S6"),
        link(1, 0, "S3"),
        link(1, 1, "S4"),
        link(1, 2, "S5"),
        link(1, 3, "La"),
        link(1, 4, "Lb"),
        link(2, 0, "T0"),
        link(2, 1, "T1"),
        link(3, 0, "T0"),
        link(3, 1, "T1"),
    ];
    let mut probe = DeadlockProbe::new(
        &MetricsHub::disabled(),
        switches.clone(),
        links,
        vec![Priority::new(3), Priority::new(4)],
        3,
    );

    let sample = SimTime::from_millis(2);
    let mut t = SimTime::ZERO;
    let mut goodput_at_three_quarters = 0u64;
    while t < dur {
        t += sample;
        f.world.run_until(t);
        probe.observe(&f.world, t);
        if t.as_ps() * 4 <= dur.as_ps() * 3 {
            goodput_at_three_quarters = f.world.node::<RdmaHost>(f.s5).total_goodput_bytes();
        }
    }

    let fix_drops: u64 = switches
        .iter()
        .map(|(_, id)| {
            f.world
                .node::<Switch>(*id)
                .stats
                .drops_of(DropReason::IncompleteArpLossless)
        })
        .sum();
    let final_goodput = f.world.node::<RdmaHost>(f.s5).total_goodput_bytes();
    ScriptedDeadlockResult {
        fix_enabled,
        evict_at,
        first_cycle_at: probe.first_cycle_at(),
        cycle_epochs: probe.cycle_epochs(),
        epochs: probe.epochs(),
        deadlocked_switches: probe.verdict(),
        fix_drops,
        tail_goodput_bytes: final_goodput.saturating_sub(goodput_at_three_quarters),
        digest: f.world.dispatch_digest(),
        events: f.world.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §4.2 discovery: flooding + PFC deadlocks a Clos fragment, and
    /// the deadlock is permanent.
    #[test]
    fn flooding_plus_pfc_deadlocks() {
        let r = run(false, SimTime::from_millis(40));
        assert!(
            r.deadlocked_switches.len() >= 2,
            "a pause cycle needs ≥2 switches, got {:?}",
            r.deadlocked_switches
        );
        assert_eq!(
            r.tail_goodput_bytes, 0,
            "once wedged, even the live S5 flow stops"
        );
        assert!(r.pauses > 0);
        let cycle = r.wait_cycle.expect("a wait cycle must exist in deadlock");
        assert!(cycle.len() >= 2, "cycle {cycle:?}");
    }

    /// The fix: drop lossless packets on incomplete ARP entries — no
    /// flood, no cycle, live traffic unharmed.
    #[test]
    fn drop_on_incomplete_arp_prevents_deadlock() {
        let r = run(true, SimTime::from_millis(40));
        assert!(
            r.deadlocked_switches.is_empty(),
            "no deadlock expected, got {:?}",
            r.deadlocked_switches
        );
        assert!(r.fix_drops > 0, "the fix must be doing the dropping");
        assert!(
            r.tail_goodput_bytes > 10 << 20,
            "S5 keeps receiving: {} bytes",
            r.tail_goodput_bytes
        );
        assert!(r.wait_cycle.is_none(), "no wait cycle with the fix");
    }

    /// Scripted replay, fix off: the fabric is healthy until the MAC
    /// eviction, then the live detector reports a wait cycle *mid-run*
    /// and the corroborated verdict names ≥2 switches. Digest-pinned.
    #[test]
    fn scripted_eviction_forms_live_cycle() {
        let r = run_scripted(false, SimTime::from_millis(40));
        let first = r.first_cycle_at.expect("detector must fire mid-run");
        assert!(
            first >= r.evict_at,
            "no cycle before the eviction: {first} < {}",
            r.evict_at
        );
        assert!(
            first < SimTime::from_millis(40),
            "cycle must be seen live, not only at the end"
        );
        assert!(r.cycle_epochs > 0 && r.cycle_epochs <= r.epochs);
        assert!(
            r.deadlocked_switches.len() >= 2,
            "corroborated verdict needs ≥2 switches, got {:?}",
            r.deadlocked_switches
        );
        assert_eq!(r.fix_drops, 0, "fix off ⇒ nothing dropped by it");
        assert_eq!(r.tail_goodput_bytes, 0, "wedged fabric stops S5");
    }

    /// Scripted replay, fix on: same script, every epoch cycle-free —
    /// the fix clears every injected cycle. Digest-pinned.
    #[test]
    fn scripted_eviction_with_fix_stays_clear() {
        let r = run_scripted(true, SimTime::from_millis(40));
        assert_eq!(
            r.cycle_epochs, 0,
            "fix on ⇒ no epoch may see a cycle (first at {:?})",
            r.first_cycle_at
        );
        assert!(r.deadlocked_switches.is_empty());
        assert!(r.fix_drops > 0, "the fix must be doing the dropping");
        assert!(
            r.tail_goodput_bytes > 10 << 20,
            "S5 keeps receiving: {} bytes",
            r.tail_goodput_bytes
        );
    }

    /// Digest pins for both arms of the scripted incident: scripted
    /// admin actions ride ordinary timer events, so each replay
    /// dispatches exactly the committed event trace. Changing either
    /// constant on purpose is the reviewable act of accepting a new
    /// trace (same convention as `tests/golden_trace.rs`).
    #[test]
    fn scripted_replay_digests_are_pinned() {
        let off = run_scripted(false, SimTime::from_millis(40));
        assert_eq!(
            (off.digest, off.events),
            (8737866210602114976, 1535575),
            "fix-off replay deviates from its committed trace"
        );
        let on = run_scripted(true, SimTime::from_millis(40));
        assert_eq!(
            (on.digest, on.events),
            (14903120807112586635, 2762529),
            "fix-on replay deviates from its committed trace"
        );
    }
}
