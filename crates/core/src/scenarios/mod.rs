//! One module per paper experiment. Each scenario builds its fabric,
//! drives the workload, and returns a structured result; the `bench`
//! harness prints them, the integration tests assert on them, and
//! `EXPERIMENTS.md` records paper-vs-measured.
//!
//! | module | paper result |
//! |---|---|
//! | [`pfc_basics`] | Figure 2 — PFC prevents loss hop-by-hop |
//! | [`dscp_vlan`] | Figure 3 / §3 — DSCP-based vs VLAN-based PFC, PXE |
//! | [`livelock`] | §4.1 — go-back-0 livelock vs go-back-N |
//! | [`deadlock`] | Figure 4 / §4.2 — PFC + flooding deadlock and fix |
//! | [`storm`] | Figure 5 & 9 / §4.3 — NIC pause storm, watchdogs |
//! | [`slow_receiver`] | §4.4 — MTT thrash, large pages, dynamic buffers |
//! | [`latency`] | Figure 6 — RDMA vs TCP tail latency under incast |
//! | [`throughput`] | Figure 7 — two-podset Clos stress, ECMP ≈ 60% |
//! | [`load_latency`] | Figure 8 — RDMA latency vs load, TCP isolation |
//! | [`buffer_misconfig`] | Figure 10 / §6.2 — α = 1/64 pause storm |
//! | [`cpu`] | §1 — kernel TCP CPU cost vs RDMA |
//! | [`spray`] | §8.1 — per-packet routing vs per-flow ECMP (future work) |
//! | [`dcqcn_ablation`] | §2 — DCQCN reduces pauses; PFC is the last defense |
//! | [`cc_ablation`] | §7 — pluggable CC: DCQCN vs TIMELY vs off on one incast |
//! | [`headroom`] | §2 — the gray-period headroom formula, validated by violation |
//! | [`incident`] | §4/§6 — scripted incident replays: reroute, cascade storm, dead server |
//! | [`fleet_scale`] | §6 — paper-scale fleet (4096 hosts) on sharded execution |

pub mod buffer_misconfig;
pub mod cc_ablation;
pub mod cpu;
pub mod dcqcn_ablation;
pub mod deadlock;
pub mod dscp_vlan;
pub mod fleet_scale;
pub mod headroom;
pub mod incident;
pub mod latency;
pub mod livelock;
pub mod load_latency;
pub mod pfc_basics;
pub mod slow_receiver;
pub mod spray;
pub mod storm;
pub mod throughput;

/// Pretty-print helper: picoseconds → microseconds.
pub fn ps_to_us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Pretty-print helper: bytes over a duration → Gb/s.
pub fn gbps(bytes: u64, dur: rocescale_sim::SimTime) -> f64 {
    if dur == rocescale_sim::SimTime::ZERO {
        return 0.0;
    }
    bytes as f64 * 8.0 / dur.as_secs_f64() / 1e9
}
