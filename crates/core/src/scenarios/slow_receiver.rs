//! §4.4 — the slow-receiver symptom and its two mitigations.
//!
//! "The MTT has only 2K entries. For 4KB page size, 2K MTT entries can
//! only handle 8MB memory. … Once the receiving pipeline is slowed down
//! and the receiving buffer occupation exceeds the PFC threshold, the NIC
//! has to generate PFC pause frames to the switch."
//!
//! Mitigations measured: (a) 2 MB pages on the NIC; (b) dynamic buffer
//! sharing on the switch, which absorbs the pause-churn locally instead
//! of propagating it upstream.

use rocescale_nic::{MttConfig, QpApp};
use rocescale_sim::SimTime;

use crate::cluster::{ClusterBuilder, ServerId};
use crate::profiles::{FabricProfile, TransportProfile};
use crate::scenarios::gbps;

/// Page-size arm of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSize {
    /// 4 KB pages: the symptom.
    Small,
    /// 2 MB pages: the fix.
    Large,
}

/// Result of one slow-receiver run.
#[derive(Debug, Clone)]
pub struct SlowReceiverResult {
    /// Page-size arm.
    pub pages: PageSize,
    /// Dynamic buffer sharing on the switches?
    pub dynamic_buffers: bool,
    /// Pause frames the receiving *server* sent toward its ToR.
    pub server_pause_tx: u64,
    /// Pause frames the ToR propagated *upstream* (to leaves) — the
    /// collateral-damage metric dynamic buffering reduces.
    pub upstream_pause_tx: u64,
    /// Receiver goodput, Gb/s.
    pub goodput_gbps: f64,
    /// MTT miss ratio observed at the receiver.
    pub mtt_miss_ratio: f64,
}

/// Run: a cross-rack sender saturates one receiver whose NIC has the
/// given MTT configuration, for `dur`.
pub fn run(pages: PageSize, dynamic_buffers: bool, dur: SimTime) -> SlowReceiverResult {
    // Shrink the MTT so the thrash is visible at simulation scale; the
    // ratio page-reach : message-stream is what matters.
    let mtt = match pages {
        PageSize::Small => MttConfig {
            entries: 64,
            ..MttConfig::small_pages()
        },
        PageSize::Large => MttConfig {
            entries: 64,
            ..MttConfig::large_pages()
        },
    };
    let receiver_order = 0usize;
    let mut c = ClusterBuilder::two_tier(2, 2)
        // Isolate the PFC path.
        .transport(TransportProfile::paper_default().dcqcn(false))
        .fabric(FabricProfile::paper_default().alpha(if dynamic_buffers {
            Some(1.0 / 16.0)
        } else {
            None
        }))
        .host_tweak(move |order, cfg| {
            if order == receiver_order {
                cfg.rx.mtt = Some(mtt);
            }
        })
        .build();
    let rx = ServerId(0);
    // Sender in the *other* rack so pause propagation has an upstream
    // path to contaminate.
    let tx = c.servers_under(0, 1)[0];
    c.connect_qp(
        tx,
        rx,
        7000,
        QpApp::Saturate {
            msg_len: 1 << 20,
            inflight: 4,
        },
        QpApp::None,
    );
    c.run_until(dur);

    let tor_of_rx = c.tor_of(rx);
    let sw = c.switch(tor_of_rx);
    // Upstream pause frames: XOFFs the ToR sent on its fabric ports.
    let server_ports = c.spec().servers_per_tor as usize;
    let upstream: u64 = sw.stats.pause_tx.iter().skip(server_ports).sum();
    let host = c.rdma(rx);
    SlowReceiverResult {
        pages,
        dynamic_buffers,
        server_pause_tx: host.stats.pause_tx,
        upstream_pause_tx: upstream,
        goodput_gbps: gbps(host.total_goodput_bytes(), dur),
        mtt_miss_ratio: host
            .mtt_counters()
            .map(|(h, m)| {
                if h + m == 0 {
                    0.0
                } else {
                    m as f64 / (h + m) as f64
                }
            })
            .unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §4.4: small pages thrash the MTT and make the *server* a pause
    /// source; large pages cure it.
    #[test]
    fn small_pages_cause_pauses_large_pages_fix() {
        let dur = SimTime::from_millis(10);
        let small = run(PageSize::Small, true, dur);
        let large = run(PageSize::Large, true, dur);
        assert!(
            small.server_pause_tx > 0,
            "slow receiver must pause its ToR"
        );
        assert!(
            large.server_pause_tx * 5 < small.server_pause_tx,
            "large pages: {} vs {}",
            large.server_pause_tx,
            small.server_pause_tx
        );
        assert!(large.goodput_gbps > small.goodput_gbps);
    }

    /// "Compared with static buffer allocation, our experience showed
    /// that dynamic buffer sharing helps reduce PFC pause frame
    /// propagation."
    #[test]
    fn dynamic_buffers_absorb_propagation() {
        let dur = SimTime::from_millis(10);
        let dynamic = run(PageSize::Small, true, dur);
        let static_ = run(PageSize::Small, false, dur);
        // The static config's small fixed threshold propagates more
        // pauses upstream than the dynamic pool (which lets one congested
        // port borrow the idle buffer).
        assert!(
            dynamic.upstream_pause_tx <= static_.upstream_pause_tx,
            "dynamic {} vs static {}",
            dynamic.upstream_pause_tx,
            static_.upstream_pause_tx
        );
    }
}
