//! Figure 3 / §3 — DSCP-based PFC vs VLAN-based PFC.
//!
//! Two claims are checked: (1) RDMA with PFC protection works identically
//! in both modes (the pause frame itself never carries a VLAN tag — that
//! is the observation that makes the DSCP design possible); (2) the
//! VLAN-based design breaks PXE boot, because trunk-mode server ports
//! cannot exchange untagged frames with a NIC that has no VLAN
//! configuration yet, while DSCP-based PFC uses access-mode ports and
//! forwards them fine.

use std::any::Any;
use std::collections::VecDeque;

use rocescale_nic::QpApp;
use rocescale_packet::{EthMeta, MacAddr, Packet, PacketKind};
use rocescale_sim::{Ctx, Node, PortId, SimTime};
use rocescale_switch::DropReason;
use rocescale_topology::Tier;

use crate::cluster::{ClusterBuilder, PfcMode, ServerId};
use crate::profiles::{FabricProfile, TransportProfile};
use crate::scenarios::gbps;

/// Result of one PFC-mode arm.
#[derive(Debug, Clone)]
pub struct DscpVlanResult {
    /// Mode under test.
    pub mode: PfcMode,
    /// RDMA goodput between two servers, Gb/s (must be healthy in both).
    pub rdma_goodput_gbps: f64,
    /// Lossless drops (must be zero in both).
    pub lossless_drops: u64,
    /// PFC pauses observed (both modes pause identically).
    pub pauses: u64,
    /// Untagged "PXE" frames delivered to the provisioning server.
    pub pxe_delivered: u64,
    /// Untagged frames dropped by trunk-mode ports.
    pub pxe_dropped: u64,
}

/// A bare NIC doing PXE boot: no VLAN configuration, fires untagged DHCP
/// discover-ish frames at the provisioning server.
struct PxeBooter {
    mac: MacAddr,
    dst: MacAddr,
    to_send: u32,
    queue: VecDeque<()>,
}

impl Node for PxeBooter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.to_send {
            self.queue.push_back(());
        }
        self.pump(ctx);
    }
    fn on_packet(&mut self, _p: PortId, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_port_idle(&mut self, _p: PortId, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl PxeBooter {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while !ctx.port_busy(PortId(0)) && self.queue.pop_front().is_some() {
            let pkt = Packet::new(
                ctx.next_packet_id(),
                EthMeta {
                    src: self.mac,
                    dst: self.dst,
                    vlan: None, // PXE: the NIC has no VLAN configuration
                },
                None,
                PacketKind::Raw {
                    label: 67,
                    size: 400,
                },
                ctx.now().as_ps(),
            );
            ctx.transmit(PortId(0), pkt).expect("port idle");
        }
    }
}

/// A provisioning server counting raw frames it receives.
struct ProvisioningServer {
    mac: MacAddr,
    received: u64,
}

impl Node for ProvisioningServer {
    fn on_packet(&mut self, _p: PortId, pkt: Packet, _ctx: &mut Ctx<'_>) {
        if pkt.eth.dst == self.mac {
            if let PacketKind::Raw { label: 67, .. } = pkt.kind {
                self.received += 1;
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Run one arm of the comparison for `dur`.
pub fn run(mode: PfcMode, dur: SimTime) -> DscpVlanResult {
    // Note: the switch ports for the PXE pair are created by widening the
    // single ToR with two extra ports.
    let mut c = ClusterBuilder::single_tor(3)
        .fabric(FabricProfile::paper_default().pfc_mode(mode))
        .transport(TransportProfile::paper_default().dcqcn(false))
        .build();

    // RDMA health check traffic: 2→1 incast to exercise PFC itself.
    c.connect_qp(
        ServerId(1),
        ServerId(0),
        5001,
        QpApp::Saturate {
            msg_len: 1 << 20,
            inflight: 2,
        },
        QpApp::None,
    );
    c.connect_qp(
        ServerId(2),
        ServerId(0),
        5002,
        QpApp::Saturate {
            msg_len: 1 << 20,
            inflight: 2,
        },
        QpApp::None,
    );
    c.run_until(dur);

    let tor_idx = c.switches_of_tier(Tier::Tor)[0];
    let sw = c.switch(tor_idx);
    DscpVlanResult {
        mode,
        rdma_goodput_gbps: gbps(c.rdma(ServerId(0)).total_goodput_bytes(), dur),
        lossless_drops: c.lossless_drops(),
        pauses: sw.stats.total_pause_tx() + c.total_server_pause_rx(),
        pxe_delivered: 0,
        pxe_dropped: sw.stats.drops_of(DropReason::UntaggedOnTrunk),
    }
}

/// Run the PXE half: a bare NIC fires `frames` untagged frames at a
/// provisioning server through a ToR in the given mode. Returns
/// (delivered, dropped-by-trunk).
pub fn run_pxe(mode: PfcMode, frames: u32) -> (u64, u64) {
    use rocescale_sim::{LinkSpec, World};
    use rocescale_switch::{PortRole, Switch, SwitchConfig};

    let mut cfg = SwitchConfig::new("tor", 2);
    cfg.classify = match mode {
        PfcMode::Dscp => rocescale_switch::ClassifyMode::Dscp,
        PfcMode::Vlan => rocescale_switch::ClassifyMode::Vlan,
    };
    cfg.port_roles = vec![PortRole::Server, PortRole::Server];
    let booter_mac = MacAddr::from_id(0x00AA_0001);
    let provisioning_mac = MacAddr::from_id(0x00AA_0002);
    let mut sw = Switch::new(cfg, MacAddr::from_id(0x00AA_0100), 3);
    sw.seed_mac(provisioning_mac, PortId(1), SimTime::ZERO);
    let mut world = World::new(5);
    let sw_id = world.add_node(Box::new(sw));
    let booter = world.add_node(Box::new(PxeBooter {
        mac: booter_mac,
        dst: provisioning_mac,
        to_send: frames,
        queue: VecDeque::new(),
    }));
    let server = world.add_node(Box::new(ProvisioningServer {
        mac: provisioning_mac,
        received: 0,
    }));
    world.connect(booter, PortId(0), sw_id, PortId(0), LinkSpec::server_40g());
    world.connect(server, PortId(0), sw_id, PortId(1), LinkSpec::server_40g());
    world.run_until_idle(1_000_000);
    let delivered = world.node::<ProvisioningServer>(server).received;
    let dropped = world
        .node::<Switch>(sw_id)
        .stats
        .drops_of(DropReason::UntaggedOnTrunk);
    (delivered, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §3: both PFC flavours protect RDMA equally…
    #[test]
    fn rdma_works_in_both_modes() {
        let dur = SimTime::from_millis(4);
        for mode in [PfcMode::Dscp, PfcMode::Vlan] {
            let r = run(mode, dur);
            assert!(
                r.rdma_goodput_gbps > 25.0,
                "{mode:?}: goodput {}",
                r.rdma_goodput_gbps
            );
            assert_eq!(r.lossless_drops, 0, "{mode:?}");
            assert!(r.pauses > 0, "{mode:?}: incast must pause");
        }
    }

    /// …but only VLAN mode breaks PXE boot.
    #[test]
    fn pxe_breaks_only_under_vlan_trunking() {
        let (delivered, dropped) = run_pxe(PfcMode::Vlan, 10);
        assert_eq!(delivered, 0, "trunk mode must break PXE");
        assert_eq!(dropped, 10);
        let (delivered, dropped) = run_pxe(PfcMode::Dscp, 10);
        assert_eq!(delivered, 10, "access mode must deliver PXE");
        assert_eq!(dropped, 0);
    }
}
