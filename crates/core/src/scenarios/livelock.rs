//! §4.1 — the RDMA transport livelock experiment.
//!
//! "We connected two servers A and B, via a single switch (W), and
//! carried out three experiments for RDMA SEND, WRITE, and READ. … The
//! switch was configured to drop any packet with the least significant
//! byte of IP ID equals to 0xff. … We found that even with this low
//! packet drop rate, the application level goodput was zero."

use rocescale_nic::QpApp;
use rocescale_sim::SimTime;
use rocescale_switch::DropReason;
use rocescale_transport::{LossRecovery, Verb};

use crate::cluster::{ClusterBuilder, ServerId};
use crate::profiles::{FaultProfile, TransportProfile};
use crate::scenarios::gbps;

/// Which verb drives the transfer (the paper runs all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// RDMA SEND of 4 MB messages.
    Send,
    /// RDMA WRITE of 4 MB messages.
    Write,
    /// RDMA READ of 4 MB chunks (B reads from A).
    Read,
}

/// Result of one livelock run.
#[derive(Debug, Clone)]
pub struct LivelockResult {
    /// Loss recovery scheme under test.
    pub recovery: LossRecovery,
    /// Verb exercised.
    pub workload: Workload,
    /// Application goodput, Gb/s.
    pub goodput_gbps: f64,
    /// Raw link throughput at the sender, Gb/s (stays ≈ line rate even
    /// in livelock — "the link was fully utilized with line rate, yet
    /// the application was not making any progress").
    pub wire_gbps: f64,
    /// Packets dropped by the injected filter.
    pub filter_drops: u64,
    /// Messages completed.
    pub messages_done: u64,
    /// Packets retransmitted by the data sender (go-back-N resends the
    /// whole window tail; selective repeat resends only the holes).
    pub retx_pkts: u64,
    /// Bytes retransmitted by the data sender.
    pub retx_bytes: u64,
}

/// Run the experiment: A and B under one switch, deterministic 1/256
/// drop, 4 MB messages, for `dur` of simulated time.
pub fn run(recovery: LossRecovery, workload: Workload, dur: SimTime) -> LivelockResult {
    const MSG: u32 = 4 << 20;
    let mut c = ClusterBuilder::single_tor(2)
        .transport(
            TransportProfile::paper_default()
                .recovery(recovery)
                // Isolate loss recovery from rate control.
                .dcqcn(false)
                .qp_rto(SimTime::from_micros(100)),
        )
        .faults(FaultProfile::paper_default().drop_ip_id_low_byte(Some(0xff)))
        .build();
    let (a, b) = (ServerId(0), ServerId(1));
    // `qa` is always the endpoint streaming the 4 MB of data A→B (READ
    // responses included), so its retransmission counters are the ones
    // the recovery schemes differ on.
    let qa = match workload {
        Workload::Send | Workload::Write => {
            // A pushes to B as fast as possible.
            let (qa, _qb) = c.connect_qp(a, b, 5000, QpApp::None, QpApp::None);
            // Keep several messages posted; repost is not needed because
            // in livelock nothing ever completes, and in go-back-N the
            // backlog below outlasts the run.
            let verb = |len| match workload {
                Workload::Send => Verb::Send { len },
                Workload::Write => Verb::Write { len },
                Workload::Read => unreachable!(),
            };
            let posts = (dur.as_secs_f64() * 40e9 / 8.0 / MSG as f64).ceil() as u32 + 8;
            for _ in 0..posts {
                c.rdma_mut(a).post(qa, verb(MSG), SimTime::ZERO, false);
            }
            qa
        }
        Workload::Read => {
            // B reads 4 MB chunks from A: the data flows A→B as READ
            // responses.
            let (qa, qb) = c.connect_qp(a, b, 5000, QpApp::None, QpApp::None);
            let posts = (dur.as_secs_f64() * 40e9 / 8.0 / MSG as f64).ceil() as u32 + 8;
            for _ in 0..posts {
                c.rdma_mut(b)
                    .post(qb, Verb::Read { len: MSG }, SimTime::ZERO, false);
            }
            qa
        }
    };
    c.run_until(dur);
    let (goodput_bytes, msgs, wire_bytes) = match workload {
        Workload::Send | Workload::Write => {
            let rx = c.rdma(b);
            let tx = c.rdma(a);
            (
                rx.total_goodput_bytes(),
                tx.stats.send_completions,
                tx.stats.tx_bytes,
            )
        }
        Workload::Read => {
            let rx = c.rdma(b);
            let tx = c.rdma(a);
            (
                rx.total_goodput_bytes(),
                rx.stats.send_completions,
                tx.stats.tx_bytes,
            )
        }
    };
    let tor = c.switches_of_tier(rocescale_topology::Tier::Tor)[0];
    let sender_ep = c.rdma(a).qp_endpoint(qa);
    let (retx_pkts, retx_bytes) = (sender_ep.stats.retx_pkts, sender_ep.stats.retx_bytes);
    LivelockResult {
        recovery,
        workload,
        goodput_gbps: gbps(goodput_bytes, dur),
        wire_gbps: gbps(wire_bytes, dur),
        filter_drops: c.switch(tor).stats.drops_of(DropReason::InjectedFilter),
        messages_done: msgs,
        retx_pkts,
        retx_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §4.1 table: go-back-0 goodput is zero at full wire rate for
    /// every verb; go-back-N restores useful goodput.
    #[test]
    fn goback0_livelocks_all_verbs_goback_n_recovers() {
        let dur = SimTime::from_millis(8);
        for wl in [Workload::Send, Workload::Write, Workload::Read] {
            let r0 = run(LossRecovery::GoBack0, wl, dur);
            assert_eq!(r0.goodput_gbps, 0.0, "{wl:?} must livelock");
            assert!(
                r0.wire_gbps > 25.0,
                "{wl:?} wire must stay near line rate: {}",
                r0.wire_gbps
            );
            assert!(r0.filter_drops > 100, "{wl:?}: filter active");
            assert_eq!(r0.messages_done, 0);

            let rn = run(LossRecovery::GoBackN, wl, dur);
            assert!(
                rn.goodput_gbps > 20.0,
                "{wl:?} go-back-N goodput: {}",
                rn.goodput_gbps
            );
            assert!(rn.messages_done >= 5, "{wl:?}: {}", rn.messages_done);
        }
    }

    /// The IRN-style contrast: selective repeat also escapes the
    /// livelock, and does so resending only the dropped holes — strictly
    /// fewer retransmitted bytes than go-back-N's window tails.
    #[test]
    fn selective_repeat_recovers_with_fewer_retransmitted_bytes() {
        let dur = SimTime::from_millis(8);
        let gbn = run(LossRecovery::GoBackN, Workload::Send, dur);
        let sr = run(LossRecovery::SelectiveRepeat, Workload::Send, dur);
        assert!(sr.goodput_gbps > 20.0, "SR goodput: {}", sr.goodput_gbps);
        assert!(sr.messages_done >= 5, "SR msgs: {}", sr.messages_done);
        assert!(sr.retx_pkts > 0, "the 1/256 filter must have bitten");
        assert!(
            sr.retx_bytes < gbn.retx_bytes,
            "selective repeat must resend fewer bytes: {} vs {}",
            sr.retx_bytes,
            gbn.retx_bytes
        );
    }
}
